"""Room-scale simulation: multi-rack topologies on one stacked batch.

Builds a hot-spot room (one rack pinned near full load among idle
neighbours), runs the whole room as a single ``(n_racks * B,)``
vectorized batch, prints the per-rack picture (supply, mean inlet,
worst junction, fan energy), then contrasts the aisle-containment
schemes on the same scenario to show how containment caps the hot
rack's reach.

Usage::

    python examples/room_simulation.py [n_racks] [servers_per_rack] [duration_seconds]
"""

from __future__ import annotations

import sys

from repro import RoomConfig, RoomSimulator
from repro.analysis.report import format_table
from repro.room import hot_spot_rack_room


def run_room(containment: str, n_racks: int, servers: int, duration_s: float):
    config = RoomConfig(
        n_rows=1,
        racks_per_row=n_racks,
        servers_per_rack=servers,
        containment=containment,
    )
    room = hot_spot_rack_room(config, duration_s=duration_s, seed=1, hot_rack=0)
    sim = RoomSimulator(room, dt_s=0.5, record_decimation=10)
    return room, sim.run(duration_s, label=f"room/{containment}")


def main() -> None:
    n_racks = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    servers = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    duration_s = float(sys.argv[3]) if len(sys.argv) > 3 else 600.0

    print(
        f"Simulating a {n_racks}-rack x {servers}-server room "
        f"(rack 0 hot) for {duration_s:.0f} s on the stacked batch..."
    )
    room, result = run_room("none", n_racks, servers, duration_s)
    extras = result.extras
    print(
        f"backend: {extras['backend']} "
        f"(controllers: {extras.get('controller_backend', 'scalar')}, "
        f"stacked width {extras['stacked_width']})"
    )

    print()
    rows = []
    for r, rack_result in enumerate(result.rack_results):
        fleet = rack_result.metrics
        rows.append(
            [
                f"rack{r}" + (" (hot)" if r == 0 else ""),
                result.supply_c[r],
                float(sum(rack_result.mean_inlet_c) / fleet.n_servers),
                fleet.worst_max_junction_c,
                fleet.fan_energy_j,
            ]
        )
    print(
        format_table(
            [
                "rack",
                "supply [degC]",
                "mean inlet [degC]",
                "worst Tj [degC]",
                "fan energy [J]",
            ],
            rows,
        )
    )

    metrics = result.metrics
    print()
    print(
        f"room: {metrics.n_servers} servers, "
        f"inlet spread {metrics.inlet_spread_c:.2f} degC, "
        f"supply margin {metrics.supply_margin_c:.2f} degC, "
        f"IT {metrics.total_energy_j / 1e3:.1f} kJ + "
        f"CRAC {metrics.crac_energy_j / 1e3:.1f} kJ"
    )

    print()
    print("Containment sweep (same hot-spot room):")
    rows = []
    for containment in ("none", "cold_aisle", "hot_aisle"):
        # The "none" room already ran above; reuse its result.
        swept = (
            result
            if containment == "none"
            else run_room(containment, n_racks, servers, duration_s)[1]
        )
        m = swept.metrics
        rows.append(
            [
                containment,
                m.inlet_spread_c,
                m.worst_max_junction_c,
                m.fan_energy_j,
            ]
        )
    print(
        format_table(
            [
                "containment",
                "inlet spread [degC]",
                "worst Tj [degC]",
                "fan energy [J]",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
