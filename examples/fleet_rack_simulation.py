"""Rack-scale simulation: coupled servers plus a parallel campaign.

Simulates a heterogeneous-sensor rack where each server's inlet is the
room ambient plus recirculated exhaust from upstream servers, prints the
per-server picture (inlet, junction, fan, energy), then sweeps the
recirculation fraction through a small :class:`CampaignRunner` campaign
to show how rack coupling inflates worst-case junction temperature and
fan energy.

Usage::

    python examples/fleet_rack_simulation.py [n_servers] [duration_seconds]
"""

from __future__ import annotations

import sys

from repro import CampaignRunner, FleetConfig, FleetSimulator, campaign_grid
from repro.analysis.report import format_table, sparkline
from repro.fleet import heterogeneous_sensor_rack


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 600.0

    print(
        f"Simulating a {n_servers}-server heterogeneous-sensor rack "
        f"for {duration_s:.0f} s (recirculation fraction 0.25)..."
    )
    rack = heterogeneous_sensor_rack(
        n_servers=n_servers,
        duration_s=duration_s,
        seed=1,
        fleet=FleetConfig(n_servers=n_servers, recirc_fraction=0.25),
    )
    result = FleetSimulator(rack, dt_s=0.5, record_decimation=10).run(duration_s)

    print()
    rows = []
    for i, (slot, server) in enumerate(zip(rack, result.server_results)):
        rows.append(
            [
                slot.name,
                slot.sensor.config.lag_s,
                result.mean_inlet_c[i],
                server.max_junction_c,
                float(server.fan_speed_rpm.mean()),
                server.fan_energy_j,
            ]
        )
    print(
        format_table(
            [
                "server",
                "lag [s]",
                "mean inlet [degC]",
                "max Tj [degC]",
                "mean fan [rpm]",
                "fan E [J]",
            ],
            rows,
            float_format="{:.1f}",
        )
    )

    print()
    print("  junction spread across the rack over time:")
    junctions = result.junction_matrix()
    print("   ", sparkline(junctions.max(axis=0) - junctions.min(axis=0), 70))
    print()
    summary = result.metrics
    print(
        f"  fleet: worst Tj {summary.worst_max_junction_c:.1f} degC, "
        f"total energy {summary.total_energy_j / 1e3:.1f} kJ, "
        f"violations {summary.violation_percent:.2f} %, "
        f"peak spread {summary.peak_junction_spread_c:.1f} degC"
    )

    print()
    print("Campaign: recirculation fraction sweep (2 seeds each, workers=2)...")
    tasks = campaign_grid(
        ["hetero_sensors"],
        seeds=[1, 2],
        recirc_fractions=[0.0, 0.15, 0.3],
        n_servers=n_servers,
        duration_s=min(duration_s, 300.0),
        dt_s=0.5,
        record_decimation=10,
    )
    results = CampaignRunner(workers=2).run(tasks)

    rows = []
    for task, res in zip(tasks, results):
        metrics = res.metrics
        rows.append(
            [
                task.label,
                metrics.worst_max_junction_c,
                metrics.fan_energy_j,
                metrics.peak_junction_spread_c,
            ]
        )
    print()
    print(
        format_table(
            ["task", "worst Tj [degC]", "fan E [J]", "peak spread [degC]"],
            rows,
            float_format="{:.1f}",
        )
    )
    print()
    print("Recirculation couples the rack: downstream inlets run hotter, so")
    print("fans spend more energy and the worst-case junction climbs even")
    print("though every server runs the same DTM stack.")


if __name__ == "__main__":
    main()
