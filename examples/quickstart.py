"""Quickstart: simulate the paper's full DTM stack on one workload.

Runs the complete scheme (rule-based coordination + adaptive T_ref +
single-step fan scaling) on the Section VI-A synthetic workload and
prints the headline metrics plus terminal trace plots.

Usage::

    python examples/quickstart.py [duration_seconds]
"""

from __future__ import annotations

import sys

from repro import run_scheme
from repro.analysis.report import format_table, sparkline


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 1200.0

    print(f"Simulating {duration_s:.0f} s of the full scheme "
          "(R-coord + A-Tref + SSfan)...")
    result = run_scheme("rcoord_atref_ssfan", duration_s=duration_s, seed=1)

    print()
    print("  demand   :", sparkline(result.demand, 70))
    print("  applied  :", sparkline(result.applied_util, 70))
    print("  fan      :", sparkline(result.fan_speed_rpm, 70))
    print("  junction :", sparkline(result.junction_c, 70))
    print("  measured :", sparkline(result.tmeas_c, 70))
    print()

    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [
                ["deadline violations [%]", summary["violation_percent"]],
                ["fan energy [J]", summary["fan_energy_j"]],
                ["CPU energy [J]", summary["cpu_energy_j"]],
                ["max junction [degC]", summary["max_junction_c"]],
                ["mean fan speed [rpm]", summary["mean_fan_speed_rpm"]],
            ],
        )
    )
    print()
    print("The junction stays below the 80 degC limit while the fan tracks")
    print("the load; spikes trigger brief max-speed boosts (SSfan).")


if __name__ == "__main__":
    main()
