"""Compare all five Table III coordination schemes on the same workload.

Reproduces the paper's headline comparison at example scale: for each
scheme, the deadline-violation percentage and the fan energy normalized
to the uncoordinated baseline.

Usage::

    python examples/compare_coordination.py [duration_seconds] [seed]
"""

from __future__ import annotations

import sys

from repro.analysis.metrics import compare_schemes
from repro.analysis.report import format_table, sparkline
from repro.sim.scenarios import SCHEME_LABELS, SCHEME_NAMES, run_scheme


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 1200.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    results = {}
    for scheme in SCHEME_NAMES:
        print(f"running {SCHEME_LABELS[scheme]} ...")
        results[scheme] = run_scheme(scheme, duration_s=duration_s, seed=seed)

    rows = compare_schemes(results)
    print()
    print(
        format_table(
            ["solution", "violations [%]", "norm. fan energy", "max Tj [C]"],
            [
                [SCHEME_LABELS[r.label], r.violation_percent,
                 r.normalized_fan_energy, r.max_junction_c]
                for r in rows
            ],
        )
    )
    print()
    print("fan speed traces:")
    for scheme in SCHEME_NAMES:
        print(f"  {scheme:20s} {sparkline(results[scheme].fan_speed_rpm, 60)}")
    print()
    print("Expected shape (paper Table III): E-coord trades the worst")
    print("violations for the lowest fan energy; the rule-based schemes cut")
    print("violations, with A-Tref recovering energy and SSfan finishing")
    print("with the best performance at a slight energy premium.")


if __name__ == "__main__":
    main()
