"""Fault injection walkthrough: blackout, seized fan, CRAC brownout.

Runs three fault studies and prints what fired, how fast the telemetry
watchdog contained it, and what the degradation cost:

1. ``sensor_blackout`` - half the rack's sensors go dark; the failsafe
   forces those fans to maximum one transport delay + one control
   period after onset, and we score the energy penalty of flying blind.
2. ``seized_fan_rack`` - the upstream fan seizes; overheat exposure
   (degC-seconds above the limit) quantifies the thermal damage a
   single-server analysis would miss.
3. ``crac_brownout`` - a room's CRAC supply ramps hot through its RC
   time constant and recovers; room metrics show the transient.

Usage::

    python examples/fault_injection.py [n_servers] [duration_seconds]
"""

from __future__ import annotations

import sys

from repro import FleetSimulator, RoomSimulator
from repro.analysis import (
    fault_impact,
    fleet_overheat_exposure_c_s,
)
from repro.analysis.report import format_table, sparkline
from repro.faults import crac_brownout, seized_fan_rack, sensor_blackout
from repro.fleet import homogeneous_rack


def blackout_study(n_servers: int, duration_s: float) -> None:
    print(f"1) Sensor blackout on a {n_servers}-server rack")
    rack, faults = sensor_blackout(
        n_servers=n_servers,
        duration_s=duration_s,
        seed=1,
        start_s=duration_s / 3.0,
        blackout_s=duration_s / 6.0,
    )
    result = FleetSimulator(
        rack, dt_s=0.5, record_decimation=4, faults=faults
    ).run(duration_s)
    impact = fault_impact(result.extras["faults"])
    rows = [
        ("events fired", f"{impact.n_fired}"),
        ("failsafe engagements", f"{impact.failsafe_engagements}"),
        ("mean detection latency", f"{impact.mean_detection_latency_s:.1f} s"),
        ("failsafe dwell", f"{impact.failsafe_time_s:.0f} s"),
        ("failsafe energy penalty", f"{impact.failsafe_energy_penalty_j:.0f} J"),
    ]
    print(format_table(("metric", "value"), rows))
    server0 = result.server_results[0]
    print(f"   srv00 fan: {sparkline(server0.fan_speed_rpm)}")
    print()


def seized_fan_study(n_servers: int, duration_s: float) -> None:
    print(f"2) Seized upstream fan on a {n_servers}-server rack")
    rack, faults = seized_fan_rack(
        n_servers=n_servers,
        duration_s=duration_s,
        seed=1,
        start_s=duration_s / 3.0,
        seize_s=duration_s / 2.0,
    )
    faulted = FleetSimulator(
        rack, dt_s=0.5, record_decimation=4, faults=faults
    ).run(duration_s)
    clean_rack = homogeneous_rack(
        n_servers=n_servers, duration_s=duration_s, seed=1
    )
    clean = FleetSimulator(clean_rack, dt_s=0.5, record_decimation=4).run(
        duration_s
    )
    limit_c = 78.0
    rows = [
        (
            "overheat exposure (faulted)",
            f"{fleet_overheat_exposure_c_s(faulted.server_results, limit_c):.1f} degC*s",
        ),
        (
            "overheat exposure (clean)",
            f"{fleet_overheat_exposure_c_s(clean.server_results, limit_c):.1f} degC*s",
        ),
        (
            "worst junction (faulted)",
            f"{faulted.metrics.worst_max_junction_c:.1f} degC",
        ),
        (
            "fan energy (faulted / clean)",
            f"{faulted.metrics.fan_energy_j:.0f} / {clean.metrics.fan_energy_j:.0f} J",
        ),
    ]
    print(format_table(("metric", "value"), rows))
    print(f"   seized srv00 tach: {sparkline(faulted.server_results[0].fan_speed_rpm)}")
    print()


def brownout_study(duration_s: float) -> None:
    print("3) CRAC brownout in a 2x2-rack room (RC supply transient)")
    room, faults = crac_brownout(
        room=None,  # default room with a 120 s CRAC time constant
        duration_s=duration_s,
        seed=1,
        start_s=duration_s / 3.0,
        brownout_s=duration_s / 3.0,
        supply_rise_c=6.0,
    )
    result = RoomSimulator(
        room, dt_s=0.5, record_decimation=4, faults=faults
    ).run(duration_s)
    metrics = result.metrics
    rows = [
        ("backend", str(result.extras["backend"])),
        ("events fired", f"{result.extras['faults']['n_fired']}"),
        ("worst junction", f"{metrics.worst_max_junction_c:.1f} degC"),
        ("supply margin", f"{metrics.supply_margin_c:.1f} degC"),
        ("fan + CRAC energy", f"{metrics.fan_energy_j + metrics.crac_energy_j:.0f} J"),
    ]
    print(format_table(("metric", "value"), rows))
    hottest = result.rack_results[0].server_results[0]
    print(f"   rack00/srv00 junction: {sparkline(hottest.junction_c)}")
    print()


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 900.0
    blackout_study(n_servers, duration_s)
    seized_fan_study(n_servers, duration_s)
    brownout_study(duration_s)


if __name__ == "__main__":
    main()
