"""Study: how the sensing non-idealities destabilize simple fan control.

Reproduces the paper's motivation (Figs 1 and 4) as a parameter study:

* a deadzone controller on an ideal sensor converges;
* adding the 10 s lag + 1 degC quantization makes it oscillate;
* the adaptive PID with the Eqn 10 guard stays stable on the same
  degraded telemetry;
* a lag sweep shows how oscillation amplitude grows with delay.

Usage::

    python examples/sensor_nonideality_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import ServerConfig, ideal_sensing_config
from repro.analysis.report import format_table, sparkline
from repro.analysis.stability import analyze_stability
from repro.core.fan_baselines import DeadzoneFanController
from repro.sim.scenarios import build_fan_controller, run_fan_only
from repro.workload.synthetic import ConstantWorkload


def deadzone(config: ServerConfig) -> DeadzoneFanController:
    return DeadzoneFanController(
        t_low_c=74.0,
        t_high_c=76.0,
        step_rpm=600.0,
        fan_limits_rpm=(config.fan.min_speed_rpm, config.fan.max_speed_rpm),
        initial_speed_rpm=2500.0,
    )


def run_case(label, controller, config) -> tuple[str, object]:
    result = run_fan_only(
        controller,
        ConstantWorkload(0.5),
        1500.0,
        config=config,
        initial_utilization=0.5,
        dt_s=0.5,
        label=label,
    )
    return label, result


def main() -> None:
    base = ServerConfig().with_control(fan_interval_s=5.0)
    ideal = replace(base, sensing=ideal_sensing_config())
    adaptive_cfg = ServerConfig()

    cases = [
        run_case("deadzone + ideal sensor", deadzone(ideal), ideal),
        run_case("deadzone + lag/quant", deadzone(base), base),
        run_case(
            "adaptive PID + lag/quant",
            build_fan_controller(adaptive_cfg, initial_speed_rpm=2500.0),
            adaptive_cfg,
        ),
    ]

    rows = []
    print("fan speed traces (constant 50% load):")
    for label, result in cases:
        report = analyze_stability(
            result.times, result.fan_speed_rpm, min_amplitude=500.0
        )
        rows.append([label, report.oscillatory, report.amplitude,
                     report.period_s])
        print(f"  {label:26s} {sparkline(result.fan_speed_rpm, 56)}")
    print()
    print(
        format_table(
            ["configuration", "oscillates", "amplitude [rpm]", "period [s]"],
            rows,
        )
    )

    print()
    print("lag sweep (deadzone controller):")
    sweep_rows = []
    for lag in (0.0, 2.0, 5.0, 10.0, 20.0):
        config = base.with_sensing(lag_s=lag)
        _, result = run_case(f"lag={lag}", deadzone(config), config)
        amplitude = analyze_stability(
            result.times, result.fan_speed_rpm, min_amplitude=500.0
        ).amplitude
        sweep_rows.append([lag, amplitude])
    print(format_table(["lag [s]", "fan oscillation amplitude [rpm]"],
                       sweep_rows))
    print()
    print("The delay, not the controller structure alone, drives the")
    print("oscillation - the paper's core observation (Section I).")


if __name__ == "__main__":
    main()
