"""Run the Ziegler-Nichols tuning pipeline on the simulated server.

Demonstrates the Section IV-A/IV-B workflow end to end:

1. find the ultimate gain Ku and period Pu at each operating region
   (closed-loop proportional-only experiments on the lagged plant),
2. map them to PID gains, and
3. verify the Section IV-B claim that the low-speed region is ~8x more
   sensitive - which is why a single gain set cannot serve both regions.

Usage::

    python examples/tune_fan_controller.py [region_rpm ...]
"""

from __future__ import annotations

import sys

from repro import ServerConfig
from repro.analysis.linearize import linearization_error
from repro.analysis.report import format_table
from repro.core.tuning import (
    ZieglerNicholsRule,
    find_ultimate_gain,
    ziegler_nichols_gains,
)
from repro.thermal.steady_state import SteadyStateServerModel


def main() -> None:
    regions = [float(arg) for arg in sys.argv[1:]] or [2000.0, 6000.0]
    config = ServerConfig()
    steady = SteadyStateServerModel(config)

    rows = []
    for speed in regions:
        print(f"tuning at {speed:.0f} rpm (bisection on the decay ratio)...")
        ultimate = find_ultimate_gain(config, speed)
        gains = ziegler_nichols_gains(
            ultimate.ku, ultimate.pu_s, ZieglerNicholsRule.NO_OVERSHOOT
        )
        slope = steady.junction_slope_per_rpm(0.4, speed)
        rows.append(
            [speed, slope, ultimate.ku, ultimate.pu_s, gains.kp, gains.ki,
             gains.kd]
        )

    print()
    print(
        format_table(
            ["region [rpm]", "dTj/dV [K/rpm]", "Ku [rpm/K]", "Pu [s]",
             "Kp", "Ki", "Kd"],
            rows,
            float_format="{:.4g}",
        )
    )
    if len(rows) >= 2:
        ratio = rows[-1][2] / rows[0][2]
        print()
        print(f"Ku ratio between the outer regions: {ratio:.1f}x")
        print("(Section IV-B: the 2000 rpm region is ~8x more sensitive,")
        print(" so gains tuned at 6000 rpm destabilize the loop there.)")
    error = linearization_error(config and steady, tuple(regions))
    print(f"piecewise linearization error with these regions: {error:.1%} "
          "(paper: within 5%)")


if __name__ == "__main__":
    main()
