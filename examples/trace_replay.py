"""Replay a recorded utilization trace through the DTM stack.

Production traces are proprietary (the paper's Fig. 1 data came from a
private industrial partner), so this example synthesizes a bursty
"recorded" trace, saves it as the CSV a user would provide, loads it
back via :class:`~repro.workload.traces.TraceWorkload`, and compares two
schemes on it.

Usage::

    python examples/trace_replay.py [trace.csv]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import ServerConfig
from repro.analysis.report import format_table, sparkline
from repro.sim.engine import Simulator
from repro.sim.scenarios import build_global_controller, build_plant, build_sensor
from repro.workload.traces import TraceWorkload


def synthesize_trace(path: Path, duration_s: int = 1200, seed: int = 7) -> None:
    """A plausible bursty server trace: baseline + diurnal-ish drift +
    request bursts, sampled at 1 Hz."""
    rng = np.random.default_rng(seed)
    t = np.arange(duration_s, dtype=float)
    base = 0.25 + 0.15 * np.sin(2 * np.pi * t / 900.0)
    bursts = np.zeros_like(base)
    for start in rng.integers(0, duration_s - 60, size=8):
        width = int(rng.integers(20, 60))
        bursts[start : start + width] += float(rng.uniform(0.2, 0.5))
    noise = rng.normal(0.0, 0.03, size=base.size)
    TraceWorkload(np.clip(base + bursts + noise, 0.0, 1.0)).to_csv(path)


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "repro_example_trace.csv"
        synthesize_trace(path)
        print(f"synthesized a demo trace at {path}")

    workload = TraceWorkload.from_csv(path)
    duration_s = workload.duration_s
    config = ServerConfig()

    rows = []
    traces = {}
    for scheme in ("uncoordinated", "rcoord_atref_ssfan"):
        controller = build_global_controller(scheme, config)
        sim = Simulator(
            build_plant(config),
            build_sensor(config, seed=1),
            workload,
            controller,
            dt_s=0.2,
            record_decimation=5,
        )
        result = sim.run(duration_s, label=scheme)
        traces[scheme] = result
        rows.append(
            [scheme, result.violation_percent, result.fan_energy_j,
             result.max_junction_c]
        )

    print()
    print("demand :", sparkline(traces[rows[0][0]].demand, 70))
    for scheme, result in traces.items():
        print(f"{scheme:20s} fan:", sparkline(result.fan_speed_rpm, 60))
    print()
    print(
        format_table(
            ["scheme", "violations [%]", "fan energy [J]", "max Tj [C]"], rows
        )
    )


if __name__ == "__main__":
    main()
