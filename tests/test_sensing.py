"""Sensing pipeline: quantizer, delay line, noise, I2C bus, sensor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SensingConfig
from repro.errors import SensorError
from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.sensing.i2c import I2CBus
from repro.sensing.noise import GaussianNoise, NoNoise, UniformNoise
from repro.sensing.sensor import TemperatureSensor
from repro.sensing.telemetry import TelemetryRecorder


class TestAdcQuantizer:
    def test_one_degree_lsb(self):
        adc = AdcQuantizer(step=1.0, bits=8)
        assert adc.quantize(75.4) == 75.0
        assert adc.quantize(75.6) == 76.0

    def test_half_step_rounds(self):
        adc = AdcQuantizer(step=1.0, bits=8)
        assert adc.quantize(74.5) in (74.0, 75.0)  # banker's rounding allowed

    def test_saturation(self):
        adc = AdcQuantizer(step=1.0, bits=8)
        assert adc.quantize(500.0) == 255.0
        assert adc.quantize(-40.0) == 0.0

    def test_code_range(self):
        adc = AdcQuantizer(step=1.0, bits=8)
        assert adc.code(500.0) == 255
        assert adc.code(-40.0) == 0

    def test_pass_through_mode(self):
        adc = AdcQuantizer(step=0.0)
        assert adc.quantize(75.4321) == 75.4321

    def test_pass_through_code_raises(self):
        with pytest.raises(SensorError):
            AdcQuantizer(step=0.0).code(1.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(SensorError):
            AdcQuantizer(step=1.0).quantize(float("nan"))

    def test_from_config(self):
        adc = AdcQuantizer.from_config(SensingConfig())
        assert adc.step == 1.0
        assert adc.bits == 8

    @settings(max_examples=50)
    @given(st.floats(0.0, 255.0))
    def test_quantization_error_bounded(self, value):
        adc = AdcQuantizer(step=1.0, bits=8)
        assert abs(adc.quantize(value) - value) <= 0.5 + 1e-9

    @settings(max_examples=50)
    @given(st.floats(0.0, 255.0))
    def test_idempotent(self, value):
        adc = AdcQuantizer(step=1.0, bits=8)
        once = adc.quantize(value)
        assert adc.quantize(once) == once

    @settings(max_examples=25)
    @given(st.floats(0.0, 255.0), st.floats(0.0, 255.0))
    def test_monotone(self, a, b):
        adc = AdcQuantizer(step=1.0, bits=8)
        if a <= b:
            assert adc.quantize(a) <= adc.quantize(b)


class TestDelayLine:
    def test_fixed_delay(self):
        line = DelayLine(10.0)
        line.push(0.0, 1.0)
        line.push(5.0, 2.0)
        assert line.read(10.0) == 1.0
        assert line.read(14.9) == 1.0
        assert line.read(15.0) == 2.0

    def test_zero_delay_is_transparent(self):
        line = DelayLine(0.0)
        line.push(1.0, 42.0)
        assert line.read(1.0) == 42.0

    def test_initial_value_before_first_sample(self):
        line = DelayLine(10.0, initial_value=99.0)
        line.push(0.0, 1.0)
        assert line.read(5.0) == 99.0

    def test_read_without_data_raises(self):
        line = DelayLine(10.0)
        line.push(0.0, 1.0)
        with pytest.raises(SensorError):
            line.read(5.0)

    def test_peek_returns_none_instead(self):
        line = DelayLine(10.0)
        line.push(0.0, 1.0)
        assert line.peek(5.0) is None
        assert line.peek(10.0) == 1.0

    def test_out_of_order_push_rejected(self):
        line = DelayLine(10.0)
        line.push(5.0, 1.0)
        with pytest.raises(SensorError):
            line.push(4.0, 2.0)

    def test_zero_order_hold(self):
        line = DelayLine(2.0)
        line.push(0.0, 5.0)
        assert line.read(2.0) == 5.0
        assert line.read(100.0) == 5.0  # holds last delivered value

    @settings(max_examples=25)
    @given(st.floats(0.0, 30.0), st.lists(st.floats(-50, 150), min_size=1, max_size=20))
    def test_delayed_identity_property(self, delay, values):
        """Reading at t + delay returns exactly the value pushed at t."""
        line = DelayLine(delay)
        for i, value in enumerate(values):
            line.push(float(i), value)
        for i, value in enumerate(values):
            assert line.read(float(i) + delay) == value


class TestNoiseModels:
    def test_no_noise(self):
        assert NoNoise().sample() == 0.0

    def test_gaussian_zero_std(self):
        assert GaussianNoise(0.0).sample() == 0.0

    def test_gaussian_reproducible(self):
        a = [GaussianNoise(1.0, seed=7).sample() for _ in range(3)]
        b = [GaussianNoise(1.0, seed=7).sample() for _ in range(3)]
        # Same seed, same stream -- but built separately so compare first draws
        assert a[0] == b[0]

    def test_gaussian_statistics(self):
        noise = GaussianNoise(2.0, seed=1)
        samples = [noise.sample() for _ in range(4000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.15
        assert 3.0 < var < 5.0

    def test_uniform_bounded(self):
        noise = UniformNoise(0.5, seed=3)
        for _ in range(200):
            assert -0.5 <= noise.sample() <= 0.5

    def test_uniform_zero_width(self):
        assert UniformNoise(0.0).sample() == 0.0


class TestI2CBus:
    def test_round_robin_delivery(self):
        bus = I2CBus(transaction_time_s=1.0)
        bus.attach("a")
        bus.attach("b")
        bus.step(2.0, {"a": 10.0, "b": 20.0})
        assert bus.read("a", 2.0) == 10.0
        assert bus.read("b", 2.0) == 20.0

    def test_value_captured_at_transaction_start(self):
        bus = I2CBus(transaction_time_s=1.0)
        bus.attach("a")
        bus.step(0.5, {"a": 1.0})  # transaction started at t=0 with value 1.0
        bus.step(1.5, {"a": 99.0})
        assert bus.read("a", 1.5) == 1.0

    def test_base_latency(self):
        bus = I2CBus(transaction_time_s=1.0, base_latency_s=5.0)
        bus.attach("a")
        bus.step(1.0, {"a": 7.0})
        assert bus.read("a", 1.0) is None  # delivered but latency pending
        assert bus.read("a", 6.0) == 7.0

    def test_worst_case_lag_grows_with_devices(self):
        bus = I2CBus(transaction_time_s=0.5)
        bus.attach("a")
        lag_one = bus.worst_case_lag_s()
        for i in range(7):
            bus.attach(f"d{i}")
        assert bus.worst_case_lag_s() > lag_one

    def test_duplicate_attach_rejected(self):
        bus = I2CBus()
        bus.attach("a")
        with pytest.raises(SensorError):
            bus.attach("a")

    def test_no_devices_rejected(self):
        with pytest.raises(SensorError):
            I2CBus().step(1.0, {})

    def test_missing_value_rejected(self):
        bus = I2CBus()
        bus.attach("a")
        with pytest.raises(SensorError):
            bus.step(1.0, {})

    def test_time_monotonic(self):
        bus = I2CBus()
        bus.attach("a")
        bus.step(5.0, {"a": 1.0})
        with pytest.raises(SensorError):
            bus.step(4.0, {"a": 1.0})

    def test_history_records_transactions(self):
        bus = I2CBus(transaction_time_s=1.0)
        bus.attach("a")
        bus.step(3.0, {"a": 1.0})
        assert len(bus.history) == 3
        assert all(txn.duration_s == pytest.approx(1.0) for txn in bus.history)

    def test_contention_staleness(self):
        """With N devices each device refreshes every N transactions."""
        bus = I2CBus(transaction_time_s=1.0)
        for name in ("a", "b", "c", "d"):
            bus.attach(name)
        bus.step(4.0, {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        # After 4 transactions each device was read exactly once.
        devices = [txn.device for txn in bus.history]
        assert devices == ["a", "b", "c", "d"]


class TestTemperatureSensor:
    def test_reports_quantized_delayed_value(self):
        sensor = TemperatureSensor(SensingConfig(lag_s=10.0))
        for t in range(0, 31):
            sensor.observe(float(t), 70.0 + 0.3 * t)
        reading = sensor.read(30.0)
        # Value sampled at ~t=20 (lag 10): 76.0 quantized.
        assert reading.value_c == pytest.approx(76.0)

    def test_read_before_observe_raises(self):
        sensor = TemperatureSensor(SensingConfig())
        with pytest.raises(SensorError):
            sensor.read(0.0)

    def test_first_observation_primes_pipeline(self):
        sensor = TemperatureSensor(SensingConfig(lag_s=10.0))
        sensor.observe(0.0, 55.4)
        assert sensor.read(0.0).value_c == 55.0

    def test_sampling_cadence(self):
        sensor = TemperatureSensor(SensingConfig(lag_s=0.0, sample_interval_s=1.0))
        sensor.observe(0.0, 50.0)
        # Sub-interval observations are ignored.
        sensor.observe(0.5, 99.0)
        assert sensor.read(0.5).value_c == 50.0
        sensor.observe(1.0, 60.0)
        assert sensor.read(1.0).value_c == 60.0

    def test_ideal_sensor_passthrough(self):
        config = SensingConfig(lag_s=0.0, quantization_step_c=0.0)
        sensor = TemperatureSensor(config)
        sensor.observe(0.0, 71.234)
        assert sensor.read(0.0).value_c == pytest.approx(71.234)

    def test_lag_visible_end_to_end(self):
        sensor = TemperatureSensor(SensingConfig(lag_s=10.0))
        for t in range(0, 25):
            sensor.observe(float(t), 60.0 if t < 12 else 80.0)
        # At t=21 the sensor still reports the pre-step value sampled at 11.
        assert sensor.read(21.0).value_c == 60.0
        # At t=22 the t=12 sample (80) has cleared the 10 s delay.
        assert sensor.read(22.0).value_c == 80.0

    def test_last_reading_property(self):
        sensor = TemperatureSensor(SensingConfig())
        sensor.observe(0.0, 50.0)
        sensor.read(0.0)
        assert sensor.last_reading is not None
        assert sensor.last_reading.value_c == 50.0


class TestTelemetryRecorder:
    def test_records_and_exports(self):
        rec = TelemetryRecorder()
        rec.record(t=0.0, x=1.0)
        rec.record(t=1.0, x=2.0)
        assert rec.length == 2
        assert list(rec.array("x")) == [1.0, 2.0]

    def test_channel_set_fixed_after_first_record(self):
        rec = TelemetryRecorder()
        rec.record(a=1.0)
        with pytest.raises(Exception):
            rec.record(b=2.0)

    def test_unknown_channel_raises(self):
        rec = TelemetryRecorder()
        rec.record(a=1.0)
        with pytest.raises(Exception):
            rec.array("zzz")

    def test_last(self):
        rec = TelemetryRecorder()
        rec.record(a=1.0)
        rec.record(a=5.0)
        assert rec.last("a") == 5.0

    def test_arrays_returns_all(self):
        rec = TelemetryRecorder()
        rec.record(a=1.0, b=2.0)
        arrays = rec.arrays()
        assert set(arrays) == {"a", "b"}

    def test_unbounded_by_default(self):
        rec = TelemetryRecorder()
        for i in range(100):
            rec.record(a=float(i))
        assert rec.max_samples is None
        assert rec.length == rec.total_recorded == 100
        assert rec.dropped == 0

    def test_ring_keeps_most_recent_samples(self):
        rec = TelemetryRecorder(max_samples=3)
        for i in range(7):
            rec.record(t=float(i), v=float(10 * i))
        assert rec.length == 3
        assert rec.total_recorded == 7
        assert rec.dropped == 4
        assert list(rec.array("t")) == [4.0, 5.0, 6.0]
        assert list(rec.array("v")) == [40.0, 50.0, 60.0]

    def test_ring_channels_stay_aligned(self):
        rec = TelemetryRecorder(max_samples=2)
        for i in range(5):
            rec.record(t=float(i), v=float(-i))
        t, v = rec.array("t"), rec.array("v")
        assert list(t) == [3.0, 4.0]
        assert list(v) == [-3.0, -4.0]
        assert rec.last("v") == -4.0

    def test_ring_shorter_than_cap(self):
        rec = TelemetryRecorder(max_samples=10)
        rec.record(a=1.0)
        rec.record(a=2.0)
        assert rec.length == 2
        assert rec.dropped == 0
        assert list(rec.array("a")) == [1.0, 2.0]

    def test_invalid_cap_raises(self):
        with pytest.raises(Exception):
            TelemetryRecorder(max_samples=0)
