"""Power-sensor telemetry pipeline (the Fig. 1 signal)."""

from __future__ import annotations

import pytest

from repro.config import CpuPowerConfig
from repro.errors import SensorError
from repro.sensing.power_sensor import PowerSensor


class TestPowerSensor:
    def test_reads_eqn1_power(self):
        sensor = PowerSensor(lag_s=0.0)
        sensor.observe_utilization(0.0, 0.5)
        reading = sensor.read(0.0)
        # 96 + 64 * 0.5 = 128 W, quantized with LSB 160/255.
        assert reading.power_w == pytest.approx(128.0, abs=sensor.lsb_w)

    def test_lag_end_to_end(self):
        sensor = PowerSensor(lag_s=10.0)
        for t in range(0, 25):
            sensor.observe_utilization(float(t), 0.1 if t < 12 else 0.9)
        low_power = 96.0 + 64.0 * 0.1
        assert sensor.read(21.0).power_w == pytest.approx(
            low_power, abs=sensor.lsb_w
        )
        high_power = 96.0 + 64.0 * 0.9
        assert sensor.read(22.0).power_w == pytest.approx(
            high_power, abs=sensor.lsb_w
        )

    def test_lsb_scales_with_range(self):
        sensor = PowerSensor(CpuPowerConfig(p_max_w=160.0, p_idle_w=96.0))
        assert sensor.lsb_w == pytest.approx(160.0 / 255.0)

    def test_read_before_observe_raises(self):
        with pytest.raises(SensorError):
            PowerSensor().read(0.0)

    def test_observe_power_directly(self):
        sensor = PowerSensor(lag_s=0.0)
        sensor.observe_power(0.0, 100.0)
        assert sensor.read(0.0).power_w == pytest.approx(100.0, abs=sensor.lsb_w)

    def test_sampling_cadence(self):
        sensor = PowerSensor(lag_s=0.0, sample_interval_s=1.0)
        sensor.observe_power(0.0, 100.0)
        sensor.observe_power(0.5, 150.0)  # ignored: sub-interval
        assert sensor.read(0.5).power_w == pytest.approx(100.0, abs=sensor.lsb_w)

    def test_noise_seeded(self):
        a = PowerSensor(lag_s=0.0, noise_std_w=2.0, seed=1)
        b = PowerSensor(lag_s=0.0, noise_std_w=2.0, seed=1)
        a.observe_power(0.0, 120.0)
        b.observe_power(0.0, 120.0)
        assert a.read(0.0).power_w == b.read(0.0).power_w

    def test_invalid_utilization_rejected(self):
        with pytest.raises(Exception):
            PowerSensor().observe_utilization(0.0, 1.5)
