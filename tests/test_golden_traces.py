"""Golden-trace reproduction: every backend against pinned fixtures.

``tests/golden/`` holds one canonical rack run per Table III scheme and
one faulted room (CRAC brownout), generated on the scalar reference
backend by ``tools/regen_golden.py``.  Replaying them here pins the
two-tier contract against *stored* values, so a regression that shifts
both live backends the same way (which the pairwise equivalence tests
cannot see) still fails:

* scalar and vectorized must reproduce the fixtures **bit-for-bit**
  (JSON round-trips floats exactly);
* fused must reproduce the decision channels bit-for-bit and the
  thermal channels / energies within the tier-B tolerances.

After an intentional behaviour change, regenerate with
``PYTHONPATH=src python tools/regen_golden.py`` and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.fleet import FleetSimulator, build_fleet_scenario
from repro.room.campaign import RoomTask, run_room_task
from tests.test_backend_conformance import (
    ENERGY_RTOL,
    EXACT_CHANNELS,
    INLET_ATOL,
    THERMAL_ATOL,
    THERMAL_CHANNELS,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
RACK_FIXTURES = sorted(GOLDEN_DIR.glob("rack_*.json"))
ROOM_FIXTURE = GOLDEN_DIR / "room_crac_brownout.json"

BACKENDS = ("scalar", "vectorized", "fused")


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _assert_fleet_matches(result, fixture_payload, subsample, backend, tag):
    """One FleetResult against one fixture's servers/mean-inlet block."""
    exact = backend in ("scalar", "vectorized")
    servers = fixture_payload["servers"]
    assert result.n_servers == len(servers), tag
    for i, expected in enumerate(servers):
        got = result.server(i)
        for name, pinned in expected["channels"].items():
            live = np.asarray(got.channels[name])[::subsample]
            pinned = np.asarray(pinned)
            if exact or name in EXACT_CHANNELS:
                assert np.array_equal(live, pinned, equal_nan=True), (
                    f"{tag}: server {i} channel {name} diverged from golden"
                )
            else:
                assert name in THERMAL_CHANNELS, name
                drift = np.max(np.abs(live - pinned))
                assert drift < THERMAL_ATOL, (
                    f"{tag}: server {i} {name} drift {drift:.3e}"
                )
        summary = got.summary()
        for key, pinned in expected["summary"].items():
            if exact or key in ("duration_s", "violation_percent",
                                "mean_fan_speed_rpm"):
                assert summary[key] == pinned, f"{tag}: server {i} {key}"
            elif key == "max_junction_c":
                assert abs(summary[key] - pinned) < THERMAL_ATOL, (
                    f"{tag}: server {i} {key}"
                )
            else:
                rel = abs(summary[key] - pinned) / max(abs(pinned), 1e-12)
                assert rel < ENERGY_RTOL, f"{tag}: server {i} {key}"
    live_inlets = np.asarray(result.mean_inlet_c)
    pinned_inlets = np.asarray(fixture_payload["mean_inlet_c"])
    if exact:
        assert np.array_equal(live_inlets, pinned_inlets), tag
    else:
        assert np.max(np.abs(live_inlets - pinned_inlets)) < INLET_ATOL, tag


@pytest.mark.parametrize(
    "fixture_path", RACK_FIXTURES, ids=lambda p: p.stem
)
@pytest.mark.parametrize("backend", BACKENDS)
def test_rack_golden_traces(fixture_path, backend):
    fixture = _load(fixture_path)
    p = fixture["params"]
    rack = build_fleet_scenario(
        p["scenario"],
        n_servers=p["n_servers"],
        duration_s=p["duration_s"],
        seed=p["seed"],
        fleet=FleetConfig(
            n_servers=p["n_servers"],
            recirc_fraction=p["recirc_fraction"],
        ),
        scheme=fixture["scheme"],
    )
    sim = FleetSimulator(
        rack,
        dt_s=p["dt_s"],
        record_decimation=p["record_decimation"],
        backend=backend,
    )
    result = sim.run(p["duration_s"], label=fixture_path.stem)
    assert result.extras["backend"] == backend
    _assert_fleet_matches(
        result,
        fixture,
        fixture["subsample"],
        backend,
        f"{fixture_path.stem}/{backend}",
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_room_golden_trace(backend):
    fixture = _load(ROOM_FIXTURE)
    result = run_room_task(RoomTask(backend=backend, **fixture["params"]))
    assert result.extras["backend"] == backend
    for r, rack_payload in enumerate(fixture["racks"]):
        _assert_fleet_matches(
            result.rack_results[r],
            rack_payload,
            fixture["subsample"],
            backend,
            f"room/rack{r}/{backend}",
        )
    live_supply = np.asarray(result.supply_c)
    pinned_supply = np.asarray(fixture["supply_c"])
    if backend in ("scalar", "vectorized"):
        assert np.array_equal(live_supply, pinned_supply)
        assert result.crac_energy_j == fixture["crac_energy_j"]
    else:
        assert np.max(np.abs(live_supply - pinned_supply)) < INLET_ATOL
        rel = abs(result.crac_energy_j - fixture["crac_energy_j"]) / max(
            fixture["crac_energy_j"], 1e-12
        )
        assert rel < 1e-9
    # The fault summary (event counts, impact windows) is backend-
    # independent: shared injector state, identical decision sequences.
    live_faults = json.loads(json.dumps(result.extras["faults"]))
    assert live_faults == fixture["faults"]
