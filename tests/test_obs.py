"""Observability subsystem: collectors, sinks, lanes, campaigns, report CLI.

The load-bearing contract here is the one docs/observability.md pins:
**observation never perturbs the simulation**.  Every lane test runs the
same scenario bare and instrumented and demands bitwise-equal telemetry;
the campaign tests demand that merged deterministic metrics are
identical between serial and process-pool execution.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.errors import ObsError
from repro.faults import FaultEvent, FaultSchedule
from repro.fleet import FleetSimulator, homogeneous_rack
from repro.fleet.campaign import (
    CampaignRunner,
    CampaignTask,
    merge_campaign_obs,
)
from repro.obs import (
    PHASES,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricSink,
    ObsCollector,
    ObsConfig,
    SpanBuffer,
    StdoutSink,
    build_sink,
    merge_summaries,
    resolve_obs,
)
from repro.obs.report import main as report_main
from repro.room import RoomSimulator, RoomTask, uniform_room
from repro.room.campaign import run_room_task
from repro.sim.engine import Simulator
from repro.sim.scenarios import (
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
)


def _assert_channels_equal(a, b):
    for name, chan in a.channels.items():
        assert np.array_equal(chan, b.channels[name], equal_nan=True), (
            f"channel {name} differs for {a.label}"
        )


def _assert_fleet_equal(a, b):
    for ra, rb in zip(a.server_results, b.server_results):
        _assert_channels_equal(ra, rb)
        assert ra.energy.cpu_j == rb.energy.cpu_j
        assert ra.energy.fan_j == rb.energy.fan_j
    assert a.mean_inlet_c == b.mean_inlet_c


def _single_sim(obs=None, faults=None):
    return Simulator(
        plant=build_plant(),
        sensor=build_sensor(),
        workload=paper_workload(120.0, seed=11),
        controller=build_global_controller("rcoord"),
        dt_s=0.1,
        faults=faults,
        obs=obs,
    )


DROPOUT = FaultSchedule(
    events=(
        FaultEvent("dropout", server=1, start_s=10.0, duration_s=20.0),
        FaultEvent("fan_ceiling", server=0, start_s=5.0, duration_s=40.0,
                   magnitude=4000.0),
    ),
    seed=3,
)


class TestSpanBuffer:
    def test_keeps_appends_in_order(self):
        buf = SpanBuffer(capacity=8)
        for i in range(5):
            buf.append("p", float(i), float(i) + 0.5, 1)
        spans = buf.spans()
        assert [s.start_s for s in spans] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert buf.dropped == 0
        assert spans[0].duration_s == 0.5

    def test_evicts_oldest_past_capacity(self):
        buf = SpanBuffer(capacity=3)
        for i in range(7):
            buf.append("p", float(i), float(i) + 1.0, 0)
        assert len(buf) == 3
        assert buf.total == 7
        assert buf.dropped == 4
        assert [s.start_s for s in buf.spans()] == [4.0, 5.0, 6.0]

    def test_capacity_one(self):
        buf = SpanBuffer(capacity=1)
        buf.append("a", 0.0, 1.0, 0)
        buf.append("b", 1.0, 2.0, 0)
        spans = buf.spans()
        assert len(spans) == 1 and spans[0].name == "b"
        assert buf.dropped == 1


class TestHistogram:
    def test_counts_and_moments(self):
        hist = Histogram()
        for v in (0.5, 0.5, 3.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == 4.0
        assert hist.min == 0.5 and hist.max == 3.0
        assert hist.mean == pytest.approx(4.0 / 3.0)
        assert sum(hist.counts) == 3

    def test_overflow_bucket(self):
        hist = Histogram(bounds=(1.0, math.inf))
        hist.observe(0.5)
        hist.observe(1e9)
        d = hist.as_dict()
        assert d["buckets"] == {"1": 1, "inf": 1}

    def test_empty_as_dict(self):
        d = Histogram().as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["mean"] is None


class TestConfigAndResolve:
    def test_invalid_config_rejected(self):
        with pytest.raises(ObsError):
            ObsConfig(trace_capacity=0)
        with pytest.raises(ObsError):
            ObsConfig(emit_every_s=0.0)

    def test_resolve_normalizes_disabled_to_none(self):
        assert resolve_obs(None) is None
        assert resolve_obs(ObsConfig(enabled=False)) is None
        collector = ObsCollector(ObsConfig(enabled=False))
        assert resolve_obs(collector) is None

    def test_resolve_builds_and_passes_through(self):
        built = resolve_obs(ObsConfig())
        assert isinstance(built, ObsCollector)
        collector = ObsCollector()
        assert resolve_obs(collector) is collector

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ObsError):
            resolve_obs("yes please")


class TestSinks:
    def test_build_sink_specs(self, tmp_path):
        assert isinstance(build_sink(None), MemorySink)
        assert isinstance(build_sink("memory"), MemorySink)
        assert isinstance(build_sink("stdout"), StdoutSink)
        sink = build_sink(f"jsonl:{tmp_path}/m.jsonl")
        assert isinstance(sink, JsonlSink)
        passthrough = MemorySink()
        assert build_sink(passthrough) is passthrough

    def test_bad_specs_rejected(self):
        with pytest.raises(ObsError):
            build_sink("jsonl:")
        with pytest.raises(ObsError):
            build_sink("carrier-pigeon")

    def test_jsonl_sink_appends_and_is_lazy(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # lazy: nothing emitted yet
        sink.emit({"a": 1})
        sink.emit({"b": 2.5})
        sink.close()
        sink.close()  # idempotent
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == [{"a": 1}, {"b": 2.5}]
        assert sink.n_records == 2

    def test_stdout_sink(self, capsys):
        StdoutSink().emit({"x": 1})
        assert json.loads(capsys.readouterr().out) == {"x": 1}

    def test_base_sink_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MetricSink().emit({})


class TestCollector:
    def test_phase_accumulates(self):
        obs = ObsCollector()
        obs.phase("plant", 1.0, 1.5)
        obs.phase("plant", 2.0, 2.25)
        obs.phase("sensing", 0.0, 0.1)
        assert obs.phase_totals["plant"] == pytest.approx(0.75)
        summary = obs.summary()
        assert summary["phases"]["plant"]["count"] == 2
        fractions = [e["fraction"] for e in summary["phases"].values()]
        assert sum(fractions) == pytest.approx(1.0)

    def test_counters_gauges_hists(self):
        obs = ObsCollector()
        obs.count("control_steps")
        obs.count("control_steps", 4)
        obs.gauge("servers", 16)
        obs.observe("step_s", 0.001)
        summary = obs.summary()
        assert summary["counters"]["control_steps"] == 5
        assert summary["gauges"]["servers"] == 16.0
        assert summary["hists"]["step_s"]["count"] == 1

    def test_nested_spans_track_depth(self):
        obs = ObsCollector()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.spans()}
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1

    def test_streaming_cadence(self):
        obs = ObsCollector(ObsConfig(emit_every_s=10.0))
        obs.arm_stream(0.0)
        for k in range(1, 301):
            obs.tick(k * 0.1, 1)
        # 30 s of sim time at a 10 s cadence: 3 streamed snapshots.
        assert obs.emitted_records == 3
        obs.finish_run(30.0)
        records = obs.sink.records
        assert len(records) == 4
        assert records[-1]["type"] == "final"
        assert records[-1]["counters"]["server_steps"] == 300

    def test_no_streaming_without_cadence(self):
        obs = ObsCollector()
        obs.arm_stream(0.0)
        for k in range(1, 100):
            obs.tick(k * 0.1, 4)
        assert obs.emitted_records == 0

    def test_trace_disabled_records_no_spans(self):
        obs = ObsCollector(ObsConfig(trace=False))
        obs.phase("plant", 0.0, 1.0)
        with obs.span("run"):
            pass
        assert obs.spans() == []
        assert obs.phase_totals["plant"] == 1.0  # timing still on

    def test_chrome_trace_export(self, tmp_path):
        obs = ObsCollector()
        with obs.span("run"):
            obs.phase("plant", 10.0, 10.5)
        doc = obs.chrome_trace()
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
        assert all(e["dur"] >= 0 for e in doc["traceEvents"])
        path = tmp_path / "trace.jsonl"
        n = obs.export_trace_jsonl(path)
        assert n == len(doc["traceEvents"])
        first = json.loads(path.read_text().splitlines()[0])
        # pid/label identify the producing worker so multi-process
        # campaign traces can be stitched into one timeline.
        assert set(first) == {
            "name", "start_s", "end_s", "depth", "pid", "label",
        }
        assert first["pid"] == os.getpid()


class TestMergeSummaries:
    def test_merges_counters_and_phases(self):
        a = ObsCollector()
        a.phase("plant", 0.0, 1.0)
        a.count("server_steps", 10)
        a.observe("h", 0.5)
        b = ObsCollector()
        b.phase("plant", 0.0, 2.0)
        b.phase("control", 0.0, 1.0)
        b.count("server_steps", 5)
        b.observe("h", 3.0)
        merged = merge_summaries([a.summary(), b.summary()])
        assert merged["runs"] == 2
        assert merged["counters"]["server_steps"] == 15
        assert merged["phases"]["plant"]["total_s"] == pytest.approx(3.0)
        assert merged["phases"]["plant"]["count"] == 2
        assert merged["hists"]["h"]["count"] == 2
        assert merged["hists"]["h"]["min"] == 0.5
        assert merged["hists"]["h"]["max"] == 3.0

    def test_skips_disabled_and_empty(self):
        merged = merge_summaries([{}, {"enabled": False}, None])
        assert merged["runs"] == 0


class TestLanesBitForBit:
    """Instrumented runs are bitwise identical to uninstrumented ones."""

    def test_single_server(self):
        bare = _single_sim().run(120.0)
        inst = _single_sim(obs=ObsConfig()).run(120.0)
        _assert_channels_equal(bare, inst)
        assert "obs" not in bare.extras
        obs = inst.extras["obs"]
        assert obs["counters"]["server_steps"] == 1200
        assert set(obs["phases"]) <= set(PHASES)

    def test_disabled_config_leaves_no_trace(self):
        result = _single_sim(obs=ObsConfig(enabled=False)).run(60.0)
        assert "obs" not in result.extras

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_fleet_backends(self, backend):
        def run(obs):
            rack = homogeneous_rack(n_servers=4, duration_s=60.0, seed=5)
            sim = FleetSimulator(
                rack, dt_s=0.1, record_decimation=5, backend=backend, obs=obs
            )
            return sim.run(60.0, label="fleet")

        bare = run(None)
        inst = run(ObsConfig())
        _assert_fleet_equal(bare, inst)
        obs = inst.extras["obs"]
        assert obs["counters"]["server_steps"] == 4 * 600
        assert obs["label"] == "fleet"

    def test_fleet_counters_match_across_backends(self):
        def counters(backend):
            rack = homogeneous_rack(n_servers=4, duration_s=60.0, seed=5)
            sim = FleetSimulator(
                rack, dt_s=0.1, backend=backend, obs=ObsConfig()
            )
            return sim.run(60.0).extras["obs"]["counters"]

        assert counters("scalar") == counters("vectorized")

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_stacked_room(self, backend):
        def run(obs):
            room = uniform_room(duration_s=40.0, seed=2)
            sim = RoomSimulator(
                room, dt_s=0.1, record_decimation=5, backend=backend, obs=obs
            )
            return sim.run(40.0, label="room")

        bare = run(None)
        inst = run(ObsConfig())
        for ra, rb in zip(bare.rack_results, inst.rack_results):
            _assert_fleet_equal(ra, rb)
        obs = inst.extras["obs"]
        assert obs["counters"]["server_steps"] == bare.n_servers * 400
        assert "obs" not in bare.extras

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_fault_injected_fleet(self, backend):
        def run(obs):
            rack = homogeneous_rack(n_servers=4, duration_s=60.0, seed=5)
            sim = FleetSimulator(
                rack,
                dt_s=0.1,
                backend=backend,
                faults=DROPOUT,
                obs=obs,
            )
            return sim.run(60.0, label="faulted")

        bare = run(None)
        inst = run(ObsConfig())
        _assert_fleet_equal(bare, inst)
        obs = inst.extras["obs"]
        engagements = inst.extras["faults"]["failsafe"]["engagements"]
        assert engagements >= 1
        assert obs["counters"]["failsafe_engagements"] == engagements
        assert "faults" in obs["phases"] or backend == "scalar"

    def test_failsafe_counter_matches_across_backends(self):
        def counters(backend):
            rack = homogeneous_rack(n_servers=4, duration_s=60.0, seed=5)
            sim = FleetSimulator(
                rack, dt_s=0.1, backend=backend, faults=DROPOUT,
                obs=ObsConfig(),
            )
            return sim.run(60.0).extras["obs"]["counters"]

        scalar = counters("scalar")
        vector = counters("vectorized")
        assert scalar == vector
        assert scalar["failsafe_engagements"] >= 1


class TestCampaignObs:
    TASKS = [
        CampaignTask(
            scenario="homogeneous",
            n_servers=4,
            seed=seed,
            duration_s=20.0,
            obs=ObsConfig(),
        )
        for seed in range(3)
    ]

    def test_tasks_reject_live_collectors(self):
        with pytest.raises(Exception):
            CampaignTask(scenario="homogeneous", obs=ObsCollector())
        with pytest.raises(Exception):
            RoomTask(scenario="uniform", obs=ObsCollector())

    def test_obs_tasks_run_solo_with_attribution(self):
        results = CampaignRunner(workers=None).run(self.TASKS)
        for result in results:
            assert "chunk" not in result.extras  # solo, not stacked
            assert result.extras["obs"]["counters"]["server_steps"] == 800
            worker = result.extras["worker"]
            assert worker["pid"] > 0
            assert worker["task_wall_s"] > 0.0

    def test_worker_attribution_on_stacked_chunks(self):
        tasks = [
            CampaignTask(
                scenario="homogeneous", n_servers=4, seed=s, duration_s=20.0
            )
            for s in range(2)
        ]
        results = CampaignRunner(workers=None, chunk_size=2).run(tasks)
        for result in results:
            assert result.extras["chunk"]["size"] == 2
            assert result.extras["worker"]["task_wall_s"] > 0.0

    def test_merge_serial_equals_parallel(self):
        serial = CampaignRunner(workers=None).run(self.TASKS)
        parallel = CampaignRunner(workers=2).run(self.TASKS)
        ms = merge_campaign_obs(serial)
        mp = merge_campaign_obs(parallel)
        assert ms["runs"] == mp["runs"] == len(self.TASKS)
        assert ms["counters"] == mp["counters"]
        assert set(ms["phases"]) == set(mp["phases"])
        for name, entry in ms["phases"].items():
            assert entry["count"] == mp["phases"][name]["count"]

    def test_workers_never_open_file_sinks(self, tmp_path):
        path = tmp_path / "never.jsonl"
        task = CampaignTask(
            scenario="homogeneous",
            n_servers=4,
            duration_s=20.0,
            obs=ObsConfig(sink=f"jsonl:{path}"),
        )
        (result,) = CampaignRunner(workers=2).run([task])
        assert not path.exists()
        assert result.extras["obs"]["counters"]["server_steps"] == 800

    def test_room_task_obs(self):
        task = RoomTask(
            scenario="uniform",
            duration_s=20.0,
            servers_per_rack=2,
            obs=ObsConfig(),
        )
        result = run_room_task(task)
        assert result.extras["obs"]["counters"]["server_steps"] == 800
        assert result.extras["worker"]["task_wall_s"] > 0.0

    def test_merge_without_instrumented_results(self):
        tasks = [
            CampaignTask(
                scenario="homogeneous", n_servers=2, duration_s=20.0
            )
        ]
        results = CampaignRunner(workers=None).run(tasks)
        assert merge_campaign_obs(results)["runs"] == 0


class TestReportCLI:
    def _metrics_file(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        collector = ObsCollector(
            ObsConfig(emit_every_s=30.0, sink=f"jsonl:{path}")
        )
        collector.label = "demo"
        sim = _single_sim(obs=collector)
        sim.run(120.0, label="demo")
        return path

    def test_run_summary_table(self, tmp_path, capsys):
        path = self._metrics_file(tmp_path)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "server_steps" in out

    def test_phase_breakdown(self, tmp_path, capsys):
        path = self._metrics_file(tmp_path)
        assert report_main(["--phases", str(path)]) == 0
        out = capsys.readouterr().out
        assert "plant" in out and "% of timed" in out

    def test_trace_table(self, tmp_path, capsys):
        collector = ObsCollector()
        sim = _single_sim(obs=collector)
        sim.run(60.0)
        trace = tmp_path / "trace.jsonl"
        collector.export_trace_jsonl(trace)
        assert report_main(["--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "plant" in out and "mean_us" in out

    def test_missing_file_errors(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert report_main([str(path)]) == 1
        assert "not JSON" in capsys.readouterr().err
