"""Multi-core plant and per-core sensor array (Section I scaling)."""

from __future__ import annotations

import pytest

from repro.config import SensingConfig, ServerConfig
from repro.errors import SensorError, ThermalModelError
from repro.sensing.sensor_array import SensorArray
from repro.thermal.multicore import MultiCoreServerModel
from repro.thermal.server import ServerThermalModel


class TestMultiCorePlant:
    def test_balanced_load_matches_single_node_model(self):
        """With equal per-core load the multi-core model reduces exactly
        to the paper's single-junction plant."""
        cfg = ServerConfig()
        multi = MultiCoreServerModel(cfg, n_cores=4, initial_utilization=0.3,
                                     initial_fan_speed_rpm=3000.0)
        single = ServerThermalModel(cfg, initial_utilization=0.3,
                                    initial_fan_speed_rpm=3000.0)
        for _ in range(200):
            multi.step(0.5, [0.6] * 4, 3500.0)
            single.step(0.5, 0.6, 3500.0)
        assert multi.state.hottest_c == pytest.approx(single.junction_c,
                                                      abs=1e-6)
        assert multi.state.spread_c == pytest.approx(0.0, abs=1e-9)

    def test_imbalanced_load_creates_spread(self):
        multi = MultiCoreServerModel(ServerConfig(), n_cores=4)
        for _ in range(100):
            multi.step(0.5, [1.0, 0.1, 0.1, 0.1], 4000.0)
        state = multi.state
        assert state.spread_c > 5.0
        assert state.junctions_c[0] == state.hottest_c

    def test_hot_core_hotter_than_balanced_average(self):
        """Concentrating the same total load on one core raises the peak
        junction - why per-core sensing matters."""
        cfg = ServerConfig()
        hot = MultiCoreServerModel(cfg, n_cores=4)
        balanced = MultiCoreServerModel(cfg, n_cores=4)
        for _ in range(200):
            hot.step(0.5, [0.8, 0.0, 0.0, 0.0], 4000.0)
            balanced.step(0.5, [0.2] * 4, 4000.0)
        assert hot.state.hottest_c > balanced.state.hottest_c + 3.0

    def test_total_power_matches_eqn1(self):
        multi = MultiCoreServerModel(ServerConfig(), n_cores=4)
        state = multi.step(0.5, [0.5] * 4, 4000.0)
        assert state.cpu_power_w == pytest.approx(96.0 + 64.0 * 0.5)

    def test_wrong_utilization_count_rejected(self):
        multi = MultiCoreServerModel(ServerConfig(), n_cores=4)
        with pytest.raises(ThermalModelError):
            multi.step(0.5, [0.5, 0.5], 4000.0)

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ThermalModelError):
            MultiCoreServerModel(ServerConfig(), n_cores=0)


class TestSensorArray:
    def test_contention_lag_scales_with_sensor_count(self):
        small = SensorArray(2, transaction_time_s=0.5)
        large = SensorArray(16, transaction_time_s=0.5)
        assert large.worst_case_lag_s() > small.worst_case_lag_s()

    def test_sixteen_sensors_reach_paper_scale_lag(self):
        """16 sensors at 0.5 s/transaction + 0.5 s firmware latency put
        the worst-case staleness at the paper's ~10 s figure."""
        array = SensorArray(16, transaction_time_s=0.55, base_latency_s=0.5)
        assert array.worst_case_lag_s() == pytest.approx(9.85, abs=0.5)

    def test_read_hottest_tracks_hot_core(self):
        array = SensorArray(4, transaction_time_s=0.25)
        for t in range(1, 10):
            array.observe(float(t), [70.0, 85.0, 72.0, 71.0])
        assert array.read_hottest(9.0) == 85.0

    def test_readings_are_quantized(self):
        array = SensorArray(2, SensingConfig(), transaction_time_s=0.25)
        for t in range(1, 6):
            array.observe(float(t), [70.4, 71.6])
        readings = array.read_all(5.0)
        assert readings["core0"] == 70.0
        assert readings["core1"] == 72.0

    def test_read_before_delivery_raises(self):
        array = SensorArray(2)
        with pytest.raises(SensorError):
            array.read_hottest(0.0)

    def test_wrong_temperature_count_rejected(self):
        array = SensorArray(3)
        with pytest.raises(SensorError):
            array.observe(1.0, [70.0])

    def test_staleness_visible_on_fast_change(self):
        """A jump on one core reaches the firmware only after the bus
        cycles back to that sensor."""
        array = SensorArray(8, transaction_time_s=1.0, base_latency_s=0.0)
        # Feed stable temps long enough for all sensors to deliver once.
        for t in range(1, 10):
            array.observe(float(t), [70.0] * 8)
        assert array.read_hottest(9.0) == 70.0
        # core7 jumps; its next transaction is several seconds away.
        for t in range(10, 20):
            array.observe(float(t), [70.0] * 7 + [90.0])
        assert array.read_hottest(10.5) == 70.0  # not yet delivered
        assert array.read_hottest(19.0) == 90.0  # eventually visible


class TestClosedLoopWithArray:
    def test_dtm_on_hottest_reading_keeps_all_cores_safe(self, fast_schedule):
        """Drive the multi-core plant with the adaptive PID acting on the
        sensor array's hottest reading: every core stays below critical
        even under imbalanced load."""
        from repro.core.fan_controller import AdaptivePIDFanController
        from repro.core.quantization import QuantizationGuard

        cfg = ServerConfig()
        plant = MultiCoreServerModel(cfg, n_cores=4, initial_utilization=0.2,
                                     initial_fan_speed_rpm=3000.0)
        array = SensorArray(4, cfg.sensing, transaction_time_s=0.5)
        controller = AdaptivePIDFanController(
            schedule=fast_schedule,
            t_ref_c=75.0,
            fan_limits_rpm=(cfg.fan.min_speed_rpm, cfg.fan.max_speed_rpm),
            interval_s=cfg.control.fan_interval_s,
            initial_speed_rpm=3000.0,
            quantization_guard=QuantizationGuard(1.0),
            slew_limit_rpm=1500.0,
        )
        speed = 3000.0
        hottest_seen = 0.0
        next_decision = cfg.control.fan_interval_s
        for k in range(1, 1200):
            t = k * 0.5
            utils = [0.9, 0.3, 0.3, 0.3]  # persistent imbalance
            state = plant.step(0.5, utils, speed)
            array.observe(t, list(state.junctions_c))
            hottest_seen = max(hottest_seen, state.hottest_c)
            if t >= next_decision:
                proposal = controller.propose(t, array.read_hottest(t))
                controller.notify_applied(proposal)
                speed = proposal
                next_decision += cfg.control.fan_interval_s
        assert hottest_seen < 90.0
        # The loop converged near the reference for the hottest core.
        assert plant.state.hottest_c == pytest.approx(75.0, abs=3.0)
