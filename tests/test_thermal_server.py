"""Server plant and steady-state model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ServerConfig
from repro.errors import UnitsError
from repro.thermal.server import ServerThermalModel
from repro.thermal.steady_state import SteadyStateServerModel


class TestSteadyStateModel:
    def test_junction_above_ambient(self, steady):
        assert steady.junction_c(0.0, 4000.0) > steady.config.ambient_c

    def test_junction_increases_with_load(self, steady):
        assert steady.junction_c(0.9, 4000.0) > steady.junction_c(0.1, 4000.0)

    def test_junction_decreases_with_fan_speed(self, steady):
        assert steady.junction_c(0.5, 8000.0) < steady.junction_c(0.5, 2000.0)

    def test_slope_negative_and_region_dependent(self, steady):
        s2000 = steady.junction_slope_per_rpm(0.4, 2000.0)
        s6000 = steady.junction_slope_per_rpm(0.4, 6000.0)
        assert s2000 < 0.0 and s6000 < 0.0
        # Section IV-B: low-speed region ~8x more sensitive.
        assert 5.0 < s2000 / s6000 < 12.0

    def test_slope_matches_finite_difference(self, steady):
        eps = 1.0
        numeric = (
            steady.junction_c(0.4, 3000.0 + eps)
            - steady.junction_c(0.4, 3000.0 - eps)
        ) / (2.0 * eps)
        assert steady.junction_slope_per_rpm(0.4, 3000.0) == pytest.approx(
            numeric, rel=1e-4
        )

    def test_required_fan_speed_inverts_junction(self, steady):
        speed = steady.required_fan_speed_rpm(0.5, 75.0)
        assert steady.junction_c(0.5, speed) == pytest.approx(75.0, abs=1e-6)

    def test_required_fan_speed_clamps_to_max(self, steady):
        # An unreachable target (too cold) returns max speed.
        assert steady.required_fan_speed_rpm(1.0, 50.0) == 8500.0

    def test_required_fan_speed_clamps_to_min(self, steady):
        # A very permissive target returns min speed.
        assert steady.required_fan_speed_rpm(0.0, 120.0) == 1000.0

    def test_required_speed_monotone_in_load(self, steady):
        assert steady.required_fan_speed_rpm(0.7, 75.0) > steady.required_fan_speed_rpm(
            0.1, 75.0
        )

    @settings(max_examples=30)
    @given(st.floats(0.0, 1.0), st.floats(70.0, 90.0))
    def test_required_speed_roundtrip_property(self, util, target):
        steady = SteadyStateServerModel(ServerConfig())
        speed = steady.required_fan_speed_rpm(util, target)
        junction = steady.junction_c(util, speed)
        if 1000.0 < speed < 8500.0:
            assert junction == pytest.approx(target, abs=1e-6)
        elif speed == 8500.0:
            assert junction >= target - 1e-6  # even max fan can't go colder
        else:
            assert junction <= target + 1e-6  # min fan already cold enough

    def test_marginal_fan_power_increases_with_speed(self, steady):
        assert steady.marginal_fan_power_w_per_rpm(
            8000.0
        ) > steady.marginal_fan_power_w_per_rpm(2000.0)

    def test_marginal_cpu_power_is_pdyn(self, steady):
        assert steady.marginal_cpu_power_w_per_util() == 64.0


class TestServerThermalModel:
    def test_initial_state_is_settled(self, config):
        plant = ServerThermalModel(config, initial_utilization=0.3,
                                   initial_fan_speed_rpm=3000.0)
        before = plant.junction_c
        plant.step(0.1, 0.3, 3000.0)
        assert plant.junction_c == pytest.approx(before, abs=1e-6)

    def test_step_advances_time(self, plant):
        plant.step(0.1, 0.5, 4000.0)
        plant.step(0.1, 0.5, 4000.0)
        assert plant.time_s == pytest.approx(0.2)

    def test_commanded_speed_clamped(self, plant):
        state = plant.step(0.1, 0.5, 99999.0)
        assert state.fan_speed_rpm == 8500.0
        state = plant.step(0.1, 0.5, 0.0)
        assert state.fan_speed_rpm == 1000.0

    def test_total_power_is_sum(self, plant):
        state = plant.step(0.1, 0.5, 4000.0)
        assert state.total_power_w == pytest.approx(
            state.cpu_power_w + state.fan_power_w
        )

    def test_cpu_power_follows_eqn1(self, plant):
        state = plant.step(0.1, 0.5, 4000.0)
        assert state.cpu_power_w == pytest.approx(96.0 + 64.0 * 0.5)

    def test_settle_jumps_to_steady_state(self, plant):
        plant.settle(0.7, 6000.0)
        expected = plant.steady_state_junction_c(0.7, 6000.0)
        assert plant.junction_c == pytest.approx(expected, abs=1e-9)

    def test_junction_tracks_heatsink_plus_die_rise(self, plant):
        plant.settle(0.5, 4000.0)
        state = plant.state
        rise = plant.config.die.r_die_k_per_w * (96.0 + 32.0)
        assert state.junction_c - state.heatsink_c == pytest.approx(rise, abs=1e-9)

    def test_long_run_converges_to_steady_state(self, plant):
        for _ in range(5000):
            plant.step(0.5, 0.6, 5000.0)
        assert plant.junction_c == pytest.approx(
            plant.steady_state_junction_c(0.6, 5000.0), abs=0.01
        )

    def test_invalid_utilization_rejected(self, plant):
        with pytest.raises(UnitsError):
            plant.step(0.1, 1.5, 4000.0)

    def test_multi_socket_scales_power(self):
        config = ServerConfig(n_sockets=2)
        plant = ServerThermalModel(config)
        state = plant.step(0.1, 0.5, 4000.0)
        assert state.cpu_power_w == pytest.approx(2 * (96.0 + 32.0))

    def test_steady_state_delegation_matches(self, plant, steady):
        assert plant.steady_state_junction_c(0.4, 3000.0) == pytest.approx(
            steady.junction_c(0.4, 3000.0)
        )
