"""General thermal RC network: construction, dynamics, and validation
against the two-node closed forms."""

from __future__ import annotations

import math

import pytest

from repro.errors import ThermalModelError
from repro.thermal.network import ThermalNetwork, ThermalNode


def two_node_network() -> ThermalNetwork:
    """Die + heat sink as a network (fixed conductances)."""
    die = ThermalNode(
        name="die",
        capacitance_j_per_k=0.1 / 0.15,
        neighbors={"hs": 1.0 / 0.15},
        initial_temp_c=28.0,
    )
    hs = ThermalNode(
        name="hs",
        capacitance_j_per_k=300.0,
        conductance_to_ambient_w_per_k=1.0 / 0.25,
        initial_temp_c=28.0,
    )
    return ThermalNetwork([die, hs], ambient_c=28.0)


class TestConstruction:
    def test_empty_network_rejected(self):
        with pytest.raises(ThermalModelError):
            ThermalNetwork([])

    def test_duplicate_names_rejected(self):
        node = ThermalNode("a", 1.0, 1.0)
        with pytest.raises(ThermalModelError):
            ThermalNetwork([node, ThermalNode("a", 1.0, 1.0)])

    def test_unknown_neighbor_rejected(self):
        node = ThermalNode("a", 1.0, 1.0, neighbors={"ghost": 1.0})
        with pytest.raises(ThermalModelError):
            ThermalNetwork([node])

    def test_isolated_network_rejected(self):
        # No path to ambient anywhere: temperatures would diverge.
        a = ThermalNode("a", 1.0, 0.0, neighbors={"b": 1.0})
        b = ThermalNode("b", 1.0, 0.0)
        with pytest.raises(ThermalModelError):
            ThermalNetwork([a, b])

    def test_self_edge_rejected(self):
        node = ThermalNode("a", 1.0, 1.0, neighbors={"a": 1.0})
        with pytest.raises(ThermalModelError):
            ThermalNetwork([node])

    def test_node_validation(self):
        with pytest.raises(Exception):
            ThermalNode("bad", capacitance_j_per_k=-1.0)


class TestDynamics:
    def test_steady_state_single_node(self):
        node = ThermalNode("n", 100.0, conductance_to_ambient_w_per_k=2.0)
        net = ThermalNetwork([node], ambient_c=25.0)
        ss = net.steady_state_c({"n": 50.0})
        # T = T_amb + P/G = 25 + 25
        assert ss["n"] == pytest.approx(50.0)

    def test_step_matches_single_node_exponential(self):
        node = ThermalNode("n", 100.0, conductance_to_ambient_w_per_k=2.0,
                           initial_temp_c=25.0)
        net = ThermalNetwork([node], ambient_c=25.0)
        net.step(10.0, {"n": 50.0})
        tau = 100.0 / 2.0
        expected = 50.0 + (25.0 - 50.0) * math.exp(-10.0 / tau)
        assert net.temperature_c("n") == pytest.approx(expected, rel=1e-9)

    def test_two_node_steady_state_matches_series_resistance(self):
        net = two_node_network()
        ss = net.steady_state_c({"die": 100.0})
        # Heat flows die -> hs -> ambient through 0.15 + 0.25 K/W.
        assert ss["die"] == pytest.approx(28.0 + 100.0 * 0.40)
        assert ss["hs"] == pytest.approx(28.0 + 100.0 * 0.25)

    def test_long_integration_reaches_steady_state(self):
        net = two_node_network()
        for _ in range(500):
            net.step(10.0, {"die": 100.0})
        ss = net.steady_state_c({"die": 100.0})
        assert net.temperature_c("die") == pytest.approx(ss["die"], abs=1e-6)
        assert net.temperature_c("hs") == pytest.approx(ss["hs"], abs=1e-6)

    def test_negative_power_rejected(self):
        net = two_node_network()
        with pytest.raises(ThermalModelError):
            net.step(1.0, {"die": -5.0})

    def test_unknown_power_node_rejected(self):
        net = two_node_network()
        with pytest.raises(ThermalModelError):
            net.step(1.0, {"nope": 5.0})

    def test_set_ambient_shifts_steady_state(self):
        net = two_node_network()
        ss_cold = net.steady_state_c({"die": 100.0})
        net.set_ambient(38.0)
        ss_hot = net.steady_state_c({"die": 100.0})
        assert ss_hot["die"] - ss_cold["die"] == pytest.approx(10.0)

    def test_edge_conductance_update(self):
        net = two_node_network()
        # Doubling the die-hs conductance halves that resistance.
        net.set_edge_conductance("die", "hs", 2.0 / 0.15)
        ss = net.steady_state_c({"die": 100.0})
        assert ss["die"] == pytest.approx(28.0 + 100.0 * (0.075 + 0.25))

    def test_ambient_conductance_update(self):
        net = two_node_network()
        net.set_ambient_conductance("hs", 1.0 / 0.125)
        ss = net.steady_state_c({"die": 100.0})
        assert ss["die"] == pytest.approx(28.0 + 100.0 * (0.15 + 0.125))

    def test_reset(self):
        net = two_node_network()
        net.reset({"die": 60.0})
        assert net.temperature_c("die") == 60.0
        assert net.temperature_c("hs") == 28.0


class TestAgainstTwoNodePlant:
    def test_network_matches_server_model_steady_state(self, config, steady):
        """The general solver agrees with the dedicated plant at a fixed
        operating point (fan speed folded into the conductances)."""
        speed = 4000.0
        util = 0.5
        power = 96.0 + 64.0 * util
        r_hs = steady.heatsink_resistance(speed)
        r_die = config.die.r_die_k_per_w
        die = ThermalNode(
            "die", config.die.time_constant_s / r_die, neighbors={"hs": 1.0 / r_die}
        )
        hs = ThermalNode(
            "hs",
            config.heatsink.tau_at_max_airflow_s
            / steady.heatsink_resistance(config.fan.max_speed_rpm),
            conductance_to_ambient_w_per_k=1.0 / r_hs,
        )
        net = ThermalNetwork([die, hs], ambient_c=config.ambient_c)
        ss = net.steady_state_c({"die": power})
        assert ss["die"] == pytest.approx(steady.junction_c(util, speed), abs=1e-9)
