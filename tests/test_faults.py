"""Fault-injection subsystem: schedules, equivalence, failsafe, metrics.

The load-bearing guarantees:

* every fault kind produces **bit-for-bit identical** runs on the
  scalar and vectorized backends (the subsystem's core contract),
* fault scenarios run at room scale through :class:`RoomSimulator` on
  both lanes, again bit-for-bit,
* the telemetry watchdog forces max fan within one control period of a
  dropout reaching the firmware (property-tested over timing grids),
* the CRAC time constant's ``tau = 0`` limit reproduces the static
  supply model exactly,
* fault summaries and metrics are consistent across lanes.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    fault_impact,
    fleet_overheat_exposure_c_s,
    overheat_exposure_c_s,
)
from repro.config import CRACConfig, RoomConfig, ServerConfig
from repro.errors import FaultConfigError, RoomError
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    build_fault_scenario,
    cascading_failures,
    crac_brownout,
    seized_fan_rack,
    sensor_blackout,
)
from repro.fleet import FleetSimulator, homogeneous_rack
from repro.room import RoomSimulator, uniform_room
from repro.room.scenarios import failed_crac_room
from repro.sim.engine import Simulator
from repro.sim.scenarios import build_global_controller, build_plant, build_sensor
from repro.workload.synthetic import ConstantWorkload


def _assert_results_equal(a, b):
    """Bitwise channel + energy equality between two lockstep results."""
    for ra, rb in zip(a.server_results, b.server_results):
        for name, chan in ra.channels.items():
            assert np.array_equal(chan, rb.channels[name], equal_nan=True), (
                f"channel {name} differs for {ra.label}"
            )
        assert ra.energy.cpu_j == rb.energy.cpu_j
        assert ra.energy.fan_j == rb.energy.fan_j


#: One event of every fault kind a rack run supports, spread over four
#: servers with overlapping windows.
ALL_KINDS_SCHEDULE = FaultSchedule(
    events=(
        FaultEvent("dropout", server=1, start_s=40.0, duration_s=60.0),
        FaultEvent("stuck", server=0, start_s=30.0, duration_s=50.0),
        FaultEvent("offset", server=2, start_s=20.0, duration_s=100.0, magnitude=-3.0),
        FaultEvent("drift", server=3, start_s=10.0, duration_s=150.0, magnitude=0.02),
        FaultEvent(
            "noise_burst", server=2, start_s=60.0, duration_s=40.0, magnitude=1.5
        ),
        FaultEvent("fan_seize", server=0, start_s=50.0, duration_s=80.0),
        FaultEvent(
            "fan_ceiling", server=3, start_s=5.0, duration_s=200.0, magnitude=4000.0
        ),
        FaultEvent(
            "tach_misreport", server=1, start_s=0.0, duration_s=100.0, magnitude=1.2
        ),
        FaultEvent(
            "fouling",
            server=2,
            start_s=30.0,
            duration_s=90.0,
            magnitude=0.05,
            ramp_steps=6,
        ),
    ),
    seed=7,
)


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(FaultConfigError):
            FaultEvent("nonsense")
        with pytest.raises(FaultConfigError):
            FaultEvent("offset", magnitude=None)
        with pytest.raises(FaultConfigError):
            FaultEvent("dropout", magnitude=3.0)
        with pytest.raises(FaultConfigError):
            FaultEvent("noise_burst", magnitude=-1.0)
        with pytest.raises(FaultConfigError):
            FaultEvent("fouling", magnitude=0.1, duration_s=-5.0)
        with pytest.raises(FaultConfigError):
            FaultEvent("stuck", server=-1)
        with pytest.raises(FaultConfigError):
            FaultEvent("stuck", ramp_steps=4)
        with pytest.raises(FaultConfigError):
            FaultEvent(
                "fouling", magnitude=0.1, duration_s=math.inf, ramp_steps=4
            )

    def test_schedule_is_picklable_and_hashable(self):
        clone = pickle.loads(pickle.dumps(ALL_KINDS_SCHEDULE))
        assert clone == ALL_KINDS_SCHEDULE
        assert hash(clone) == hash(ALL_KINDS_SCHEDULE)
        assert clone.kinds == ALL_KINDS_SCHEDULE.kinds
        assert clone.has_dropout

    def test_validate_for_rejects_out_of_range_servers(self):
        schedule = FaultSchedule(events=(FaultEvent("stuck", server=9),))
        with pytest.raises(FaultConfigError):
            schedule.validate_for(4)
        schedule.validate_for(10)

    def test_fired_events_window_intersection(self):
        event = FaultEvent("stuck", server=0, start_s=100.0, duration_s=50.0)
        schedule = FaultSchedule(events=(event,))
        assert schedule.fired_events(0.0, 120.0) == (event,)
        assert schedule.fired_events(0.0, 90.0) == ()
        assert schedule.fired_events(160.0, 300.0) == ()

    def test_room_faults_rejected_outside_rooms(self):
        schedule = FaultSchedule(
            events=(FaultEvent("crac_brownout", server=0, magnitude=5.0),)
        )
        rack = homogeneous_rack(n_servers=2, duration_s=30.0, seed=0)
        with pytest.raises(FaultConfigError):
            FleetSimulator(rack, faults=schedule).run(30.0)


class TestBackendEquivalence:
    """The core contract: faults do not break scalar==vectorized."""

    def _run(self, backend, schedule, duration_s=300.0, scheme="rcoord"):
        rack = homogeneous_rack(
            n_servers=4, duration_s=duration_s, seed=3, scheme=scheme
        )
        sim = FleetSimulator(
            rack,
            dt_s=0.1,
            record_decimation=1,
            backend=backend,
            faults=schedule,
        )
        return sim.run(duration_s)

    def test_all_fault_kinds_bitwise_equal(self):
        scalar = self._run("scalar", ALL_KINDS_SCHEDULE)
        vectorized = self._run("vectorized", ALL_KINDS_SCHEDULE)
        assert scalar.extras["backend"] == "scalar"
        assert vectorized.extras["backend"] == "vectorized"
        assert vectorized.extras["controller_backend"] == "vectorized"
        _assert_results_equal(scalar, vectorized)

    def test_fault_summaries_identical_across_backends(self):
        scalar = self._run("scalar", ALL_KINDS_SCHEDULE)
        vectorized = self._run("vectorized", ALL_KINDS_SCHEDULE)
        assert scalar.extras["faults"] == vectorized.extras["faults"]
        summary = vectorized.extras["faults"]
        assert summary["failsafe"]["engagements"] == 1
        # Dropout at 40 s reaches firmware one transport delay later.
        assert summary["detection_latency_s"] == {1: 10.0}

    def test_each_kind_alone_bitwise_equal(self):
        for event in ALL_KINDS_SCHEDULE.events:
            schedule = FaultSchedule(events=(event,), seed=5)
            scalar = self._run("scalar", schedule, duration_s=150.0)
            vectorized = self._run("vectorized", schedule, duration_s=150.0)
            _assert_results_equal(scalar, vectorized)

    def test_empty_schedule_matches_fault_free_run(self):
        """Hooks installed but idle must not perturb the trajectory."""
        hooked = self._run("vectorized", FaultSchedule())
        rack = homogeneous_rack(n_servers=4, duration_s=300.0, seed=3)
        bare = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, backend="vectorized"
        ).run(300.0)
        _assert_results_equal(hooked, bare)
        assert hooked.extras["faults"]["n_fired"] == 0

    def test_faults_with_ssfan_controllers(self):
        """The vectorized controller lane composes with faults for SSfan."""
        schedule = FaultSchedule(
            events=(
                FaultEvent("dropout", server=0, start_s=30.0, duration_s=40.0),
                FaultEvent("fan_seize", server=1, start_s=20.0, duration_s=60.0),
            ),
            seed=2,
        )
        scalar = self._run(
            "scalar", schedule, duration_s=150.0, scheme="rcoord_atref_ssfan"
        )
        vectorized = self._run(
            "vectorized", schedule, duration_s=150.0, scheme="rcoord_atref_ssfan"
        )
        assert vectorized.extras["controller_backend"] == "vectorized"
        assert "controller_fallbacks" not in vectorized.extras
        _assert_results_equal(scalar, vectorized)


class TestRoomLaneFaults:
    def _run_room(self, backend, builder):
        room, schedule = builder()
        sim = RoomSimulator(
            room, dt_s=0.1, record_decimation=1, backend=backend, faults=schedule
        )
        return sim.run(200.0)

    def test_crac_brownout_scalar_vs_vectorized(self):
        cfg = RoomConfig(
            n_rows=1,
            racks_per_row=2,
            servers_per_rack=2,
            crac=CRACConfig(supply_time_constant_s=60.0),
        )

        def build():
            return crac_brownout(
                room=cfg,
                duration_s=200.0,
                seed=2,
                start_s=50.0,
                brownout_s=80.0,
                supply_rise_c=5.0,
            )

        scalar = self._run_room("scalar", build)
        vectorized = self._run_room("vectorized", build)
        assert vectorized.extras["backend"] == "vectorized"
        _assert_results_equal(scalar, vectorized)
        assert vectorized.extras["faults"]["n_fired"] == 1

    def test_brownout_raises_room_temperatures(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)

        def run(rise):
            room, schedule = crac_brownout(
                room=cfg,
                duration_s=200.0,
                seed=2,
                start_s=50.0,
                brownout_s=120.0,
                supply_rise_c=rise,
            )
            return RoomSimulator(
                room, dt_s=0.1, record_decimation=1, faults=schedule
            ).run(200.0)

        hot = run(6.0)
        mild = run(0.0)
        assert (
            hot.metrics.worst_max_junction_c
            > mild.metrics.worst_max_junction_c
        )

    def test_cascading_failures_room_equivalence(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)

        def build():
            room = uniform_room(cfg, duration_s=200.0, seed=1)
            schedule = FaultSchedule(
                events=(
                    FaultEvent(
                        "fouling",
                        server=0,
                        start_s=30.0,
                        duration_s=60.0,
                        magnitude=0.08,
                        ramp_steps=8,
                    ),
                    FaultEvent(
                        "fan_seize", server=0, start_s=70.0, duration_s=100.0
                    ),
                    FaultEvent(
                        "dropout", server=0, start_s=90.0, duration_s=60.0
                    ),
                ),
                seed=1,
            )
            return room, schedule

        scalar = self._run_room("scalar", build)
        vectorized = self._run_room("vectorized", build)
        _assert_results_equal(scalar, vectorized)
        windows = vectorized.extras["faults"]["failsafe"]["windows"]
        assert len(windows) == 1
        # The failsafe commanded max fan, but the seized fan could not
        # follow - the cascade's defining interaction - so the recorded
        # energy penalty is zero: nothing changed physically.
        assert windows[0]["forced_rpm"] == pytest.approx(8500.0)
        assert windows[0]["penalty_w"] == 0.0

    def test_brownout_needs_forcing_row(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        room = uniform_room(cfg, duration_s=60.0, seed=0)  # no forcing row
        schedule = FaultSchedule(
            events=(FaultEvent("crac_brownout", server=0, magnitude=4.0),)
        )
        with pytest.raises(FaultConfigError):
            RoomSimulator(room, faults=schedule).run(60.0)


class TestTelemetryWatchdog:
    @settings(max_examples=15, deadline=None)
    @given(
        start=st.floats(20.0, 60.0),
        duration=st.floats(10.0, 60.0),
        lag=st.sampled_from([0.0, 5.0, 10.0]),
    )
    def test_failsafe_within_one_control_period(self, start, duration, lag):
        """Max fan within one CPU period of the dropout reaching firmware."""
        config = ServerConfig().with_sensing(lag_s=lag)
        plant = build_plant(config=config)
        sim = Simulator(
            plant,
            build_sensor(config=config, seed=1),
            ConstantWorkload(0.5),
            build_global_controller("rcoord", config),
            dt_s=0.1,
            faults=FaultSchedule(
                events=(
                    FaultEvent(
                        "dropout", server=0, start_s=start, duration_s=duration
                    ),
                )
            ),
        )
        result = sim.run(start + duration + 60.0)
        cpu_period = config.control.cpu_interval_s
        tmeas = result.tmeas_c
        fan = result.fan_speed_rpm
        times = result.times
        invalid = np.isnan(tmeas)
        assert invalid.any(), "dropout never reached the firmware"
        t_first_nan = times[invalid][0]
        v_max = config.fan.max_speed_rpm
        # Every record from one control period after the first invalid
        # reading until recovery must show the forced maximum.
        forced = (times >= t_first_nan + cpu_period) & invalid
        assert np.all(fan[forced] == v_max)
        summary = sim.fault_summary
        assert summary["failsafe"]["engagements"] >= 1
        window = summary["failsafe"]["windows"][0]
        assert window["engaged_s"] <= t_first_nan + cpu_period + 1e-6
        assert summary["detection_latency_s"][0] == pytest.approx(
            window["engaged_s"] - start
        )

    def test_controller_resumes_after_recovery(self):
        """Post-fault control picks up from the pre-fault DTM state."""
        schedule = FaultSchedule(
            events=(
                FaultEvent("dropout", server=0, start_s=50.0, duration_s=30.0),
            )
        )
        rack = homogeneous_rack(n_servers=2, duration_s=240.0, seed=4)
        result = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, faults=schedule
        ).run(240.0)
        server = result.server_results[0]
        window = result.extras["faults"]["failsafe"]["windows"][0]
        assert window["released_s"] is not None
        after = server.times > window["released_s"] + 1.0
        assert np.all(np.isfinite(server.tmeas_c[after]))
        # The forced max is abandoned once the DTM resumes.
        assert server.fan_speed_rpm[after][-1] < 8500.0


class TestFaultStatePersistence:
    def test_fouling_syncs_back_after_vectorized_run(self):
        """Fouling persists on the plant across the batch hand-off.

        A faulted vectorized run followed by a fault-free run of the
        *same rack* must match the identical scalar-backend sequence:
        the fouled sink carries over on both lanes.
        """
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    "fouling",
                    server=0,
                    start_s=20.0,
                    duration_s=40.0,
                    magnitude=0.06,
                    ramp_steps=4,
                ),
            )
        )

        def two_runs(backend):
            rack = homogeneous_rack(n_servers=2, duration_s=240.0, seed=6)
            FleetSimulator(
                rack, dt_s=0.1, record_decimation=1, backend=backend,
                faults=schedule,
            ).run(120.0)
            fouling = rack.slots[0].plant.heatsink.fouling_k_per_w
            second = FleetSimulator(
                rack, dt_s=0.1, record_decimation=1, backend="scalar"
            ).run(60.0)
            return fouling, second

        fouling_s, second_s = two_runs("scalar")
        fouling_v, second_v = two_runs("vectorized")
        assert fouling_s == fouling_v == pytest.approx(0.06)
        _assert_results_equal(second_s, second_v)

    def test_detection_latency_pairs_latest_dropout(self):
        """A blip that never engages must not inflate the latency.

        The first dropout window falls between sample instants (samples
        land on the 1 s cadence), so no NaN ever reaches the firmware
        and the watchdog stays quiet; the latency must pair the actual
        engagement with the *second* onset, not the earliest one.
        """
        schedule = FaultSchedule(
            events=(
                FaultEvent("dropout", server=0, start_s=30.2, duration_s=0.6),
                FaultEvent("dropout", server=0, start_s=120.0, duration_s=30.0),
            )
        )
        rack = homogeneous_rack(n_servers=2, duration_s=300.0, seed=2)
        result = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, faults=schedule
        ).run(300.0)
        summary = result.extras["faults"]
        windows = summary["failsafe"]["windows"]
        assert len(windows) == 1
        assert summary["detection_latency_s"][0] == pytest.approx(
            windows[0]["engaged_s"] - 120.0
        )
        assert summary["detection_latency_s"][0] == pytest.approx(10.0)


class TestFailsafePenalty:
    def test_penalty_integrates_actuator_regime_changes(self):
        """A seize ending mid-engagement starts costing from then on."""
        schedule = FaultSchedule(
            events=(
                FaultEvent("fan_seize", server=0, start_s=30.0, duration_s=50.0),
                FaultEvent("dropout", server=0, start_s=40.0, duration_s=80.0),
            )
        )
        rack = homogeneous_rack(n_servers=2, duration_s=240.0, seed=5)
        result = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, faults=schedule
        ).run(240.0)
        [window] = result.extras["faults"]["failsafe"]["windows"]
        # Engaged during the seize (instantaneous penalty zero), but the
        # seize ends at 80 s while the engagement runs to ~130 s, so the
        # integrated energy penalty must count the forced-max tail.
        assert window["engaged_s"] < 80.0 < window["released_s"]
        assert window["penalty_w"] == 0.0
        assert window["penalty_j"] > 0.0
        impact = fault_impact(result.extras["faults"])
        assert impact.failsafe_energy_penalty_j == pytest.approx(
            window["penalty_j"]
        )


class TestCRACTimeConstant:
    def test_tau_zero_is_static_limit(self):
        """Dynamic machinery at tau=0 reproduces the static room bitwise."""
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        static = uniform_room(cfg, duration_s=120.0, seed=5)
        dynamic = uniform_room(
            cfg, duration_s=120.0, seed=5, forcing_units=(0,)
        )
        assert not static.coupling.is_dynamic
        assert dynamic.coupling.is_dynamic
        a = RoomSimulator(static, dt_s=0.1).run(120.0)
        b = RoomSimulator(dynamic, dt_s=0.1).run(120.0)
        _assert_results_equal(a, b)

    def test_failed_crac_becomes_step_response(self):
        """tau>0 turns the failed unit's supply rise into an RC ramp."""
        cfg = RoomConfig(
            n_rows=1,
            racks_per_row=2,
            servers_per_rack=2,
            crac=CRACConfig(supply_time_constant_s=60.0),
        )
        room = failed_crac_room(cfg, duration_s=240.0, seed=5)
        assert room.coupling.is_dynamic
        sim = RoomSimulator(room, dt_s=0.1, record_decimation=1)
        sim.run(240.0)
        states = room.coupling.supply_states_c
        assert states is not None
        # The failed unit's supply state approaches its failure rise
        # from below: a transient, not a constant offset.
        rise = cfg.crac.failure_supply_rise_c
        row = room.coupling.crac_unit_rows[0]
        assert 0.9 * rise < states[row] < rise

    def test_supply_state_monotone_toward_forcing(self):
        """The RC filter approaches a constant forcing monotonically."""
        cfg = RoomConfig(
            n_rows=1,
            racks_per_row=2,
            servers_per_rack=2,
            crac=CRACConfig(
                supply_time_constant_s=50.0, return_sensitivity_k_per_k=0.0
            ),
        )
        room = uniform_room(cfg, duration_s=60.0, seed=0, forcing_units=(0,))
        coupling = room.coupling
        coupling.prepare_run(1.0)
        coupling.set_supply_forcing(0, 4.0)
        rises = np.zeros(room.n_servers)
        previous = 0.0
        row = coupling.crac_unit_rows[0]
        for _ in range(300):
            coupling.apply(rises)
            current = coupling.supply_states_c[row]
            assert current >= previous
            previous = current
        assert previous == pytest.approx(4.0, rel=1e-2)

    def test_static_failed_crac_forcing_row_not_double_counted(self):
        """A tau=0 failed unit's rise lives in the base inlets only.

        Adding a forcing row for it (as brownout campaigns do) must not
        re-apply failure_supply_rise_c through the filter.
        """
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        plain = failed_crac_room(cfg, duration_s=120.0, seed=3)
        forced = failed_crac_room(
            cfg, duration_s=120.0, seed=3, forcing_units=(0,)
        )
        assert forced.coupling.is_dynamic
        a = RoomSimulator(plain, dt_s=0.1).run(120.0)
        b = RoomSimulator(forced, dt_s=0.1).run(120.0)
        _assert_results_equal(a, b)

    def test_dynamic_coupling_requires_prepare_run(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        room = uniform_room(cfg, duration_s=60.0, seed=0, forcing_units=(0,))
        with pytest.raises(RoomError):
            room.coupling.apply(np.zeros(room.n_servers))


class TestFaultScenariosAndMetrics:
    def test_registry_builders(self):
        rack, schedule = build_fault_scenario("sensor_blackout", n_servers=4)
        assert schedule.has_dropout
        assert rack.n_servers == 4
        rack, schedule = seized_fan_rack(n_servers=3, seized_index=1)
        assert schedule.events[0].kind == "fan_seize"
        room, schedule = cascading_failures(
            room=RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        )
        assert [event.kind for event in schedule.events] == [
            "fouling",
            "fan_seize",
            "dropout",
        ]
        with pytest.raises(FaultConfigError):
            build_fault_scenario("not_a_scenario")

    def test_sensor_blackout_run_and_metrics(self):
        rack, schedule = sensor_blackout(
            n_servers=4, duration_s=200.0, seed=1, start_s=60.0, blackout_s=50.0
        )
        result = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, faults=schedule
        ).run(200.0)
        impact = fault_impact(result.extras["faults"])
        assert impact.n_fired == 2
        assert impact.failsafe_engagements == 2
        assert impact.mean_detection_latency_s == pytest.approx(10.0)
        assert impact.failsafe_time_s > 0.0
        assert impact.failsafe_energy_penalty_j > 0.0
        assert math.isfinite(impact.as_dict()["failsafe_energy_penalty_j"])

    def test_brownout_rejects_nonzero_unit(self):
        with pytest.raises(FaultConfigError):
            crac_brownout(duration_s=60.0, unit=1)

    def test_overheat_exposure(self):
        rack, schedule = seized_fan_rack(
            n_servers=2,
            duration_s=400.0,
            seed=1,
            start_s=60.0,
            seize_s=300.0,
        )
        faulted = FleetSimulator(
            rack, dt_s=0.1, record_decimation=1, faults=schedule
        ).run(400.0)
        clean_rack = homogeneous_rack(n_servers=2, duration_s=400.0, seed=1)
        clean = FleetSimulator(clean_rack, dt_s=0.1, record_decimation=1).run(
            400.0
        )
        limit = 77.0
        exposure_faulted = fleet_overheat_exposure_c_s(
            faulted.server_results, limit
        )
        exposure_clean = fleet_overheat_exposure_c_s(
            clean.server_results, limit
        )
        assert exposure_faulted > exposure_clean
        assert overheat_exposure_c_s(faulted.server_results[0], 200.0) == 0.0
