"""PID controller: Eqn 4 law, anti-windup, limits, gain blending."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pid import PIDController, PIDGains
from repro.errors import ControlError
from repro.units import UnitsError


class TestPIDGains:
    def test_negative_gain_rejected(self):
        with pytest.raises(UnitsError):
            PIDGains(kp=-1.0)

    def test_scaled(self):
        scaled = PIDGains(2.0, 4.0, 8.0).scaled(0.5)
        assert (scaled.kp, scaled.ki, scaled.kd) == (1.0, 2.0, 4.0)

    def test_blend_endpoints(self):
        a, b = PIDGains(1.0, 1.0, 1.0), PIDGains(3.0, 5.0, 7.0)
        assert a.blend(b, 0.0) == a
        assert a.blend(b, 1.0) == b

    def test_blend_midpoint(self):
        a, b = PIDGains(1.0, 1.0, 1.0), PIDGains(3.0, 5.0, 7.0)
        mid = a.blend(b, 0.5)
        assert (mid.kp, mid.ki, mid.kd) == (2.0, 3.0, 4.0)

    def test_blend_weight_validated(self):
        with pytest.raises(ControlError):
            PIDGains(1.0).blend(PIDGains(2.0), 1.5)

    @settings(max_examples=25)
    @given(st.floats(0.0, 1.0))
    def test_blend_bounded_property(self, alpha):
        a, b = PIDGains(1.0, 2.0, 3.0), PIDGains(9.0, 8.0, 7.0)
        mid = a.blend(b, alpha)
        assert min(a.kp, b.kp) <= mid.kp <= max(a.kp, b.kp)
        assert min(a.ki, b.ki) <= mid.ki <= max(a.ki, b.ki)


class TestPIDController:
    def make(self, **kwargs) -> PIDController:
        defaults = dict(
            gains=PIDGains(kp=2.0, ki=0.1, kd=0.5),
            setpoint=75.0,
            sample_time_s=30.0,
            output_offset=3000.0,
        )
        defaults.update(kwargs)
        return PIDController(**defaults)

    def test_proportional_action(self):
        pid = self.make(gains=PIDGains(kp=2.0))
        # error = 77 - 75 = +2 -> output = offset + 2 * 2
        assert pid.update(77.0) == pytest.approx(3004.0)

    def test_integral_accumulates(self):
        pid = self.make(gains=PIDGains(kp=0.0, ki=0.1))
        pid.update(76.0)  # I = 1 * 30
        out = pid.update(76.0)  # I = 2 * 30
        assert out == pytest.approx(3000.0 + 0.1 * 60.0)

    def test_derivative_on_error_change(self):
        pid = self.make(gains=PIDGains(kp=0.0, kd=30.0))
        pid.update(76.0)  # first call: derivative 0
        out = pid.update(78.0)  # de = 2 over 30 s
        assert out == pytest.approx(3000.0 + 30.0 * (2.0 / 30.0))

    def test_first_derivative_is_zero(self):
        pid = self.make(gains=PIDGains(kp=0.0, kd=100.0))
        assert pid.update(80.0) == pytest.approx(3000.0)

    def test_eqn4_combined(self):
        pid = self.make(gains=PIDGains(kp=2.0, ki=0.1, kd=30.0))
        pid.update(76.0)
        out = pid.update(77.0)
        expected = 3000.0 + 2.0 * 2.0 + 0.1 * (1.0 + 2.0) * 30.0 + 30.0 * (1.0 / 30.0)
        assert out == pytest.approx(expected)

    def test_output_clamped(self):
        pid = self.make(
            gains=PIDGains(kp=1000.0), output_limits=(1000.0, 8500.0)
        )
        assert pid.update(90.0) == 8500.0
        assert pid.update(10.0) == 1000.0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ControlError):
            self.make(output_limits=(5000.0, 1000.0))

    def test_anti_windup_backcalculation(self):
        """After saturation, a sign flip reacts immediately."""
        pid = self.make(
            gains=PIDGains(kp=10.0, ki=1.0), output_limits=(1000.0, 8500.0)
        )
        for _ in range(50):
            pid.update(90.0)  # long saturation high
        out = pid.update(70.0)  # error flips to -5
        assert out < 8500.0  # must unstick immediately

    def test_reset_integral(self):
        pid = self.make(gains=PIDGains(kp=0.0, ki=1.0))
        pid.update(80.0)
        pid.reset_integral()
        assert pid.integral == 0.0

    def test_full_reset(self):
        pid = self.make()
        pid.update(80.0)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.last_output is None

    def test_setpoint_change(self):
        pid = self.make(gains=PIDGains(kp=1.0))
        pid.setpoint = 70.0
        assert pid.update(71.0) == pytest.approx(3001.0)

    def test_offset_mutable(self):
        pid = self.make(gains=PIDGains(kp=1.0))
        pid.output_offset = 5000.0
        assert pid.update(75.0) == pytest.approx(5000.0)

    def test_zero_error_holds_offset(self):
        pid = self.make()
        assert pid.update(75.0) == pytest.approx(3000.0)

    def test_regulation_converges_on_reverse_acting_plant(self):
        """Closed loop on a cooling-style plant converges to the setpoint.

        The plant mimics the fan loop's sign convention: a larger control
        output *lowers* the measured value (u cools against a constant
        disturbance d), and a measurement above the setpoint produces a
        positive error that increases the output.
        """
        pid = PIDController(
            gains=PIDGains(kp=0.5, ki=0.05),
            setpoint=10.0,
            sample_time_s=1.0,
            output_offset=0.0,
            output_limits=(-100.0, 100.0),
        )
        disturbance = 20.0
        y = 0.0
        for _ in range(400):
            u = pid.update(y)
            y += 0.2 * (disturbance - u - y)
        assert y == pytest.approx(10.0, abs=0.2)
