"""Streaming health monitors and the incident layer (repro.obs.monitor).

Three contracts anchor this suite:

1. **Non-perturbation** (inherited from the obs subsystem): a monitored
   run is bit-for-bit identical to a bare run on every lane - scalar,
   vectorized, fused, stacked room, fault-injected.
2. **Cross-lane incident identity**: the incident list a run produces
   is *identical* - not merely close - whichever backend produced it.
3. **Detection quality**: every seeded PR 5 fault scenario with a
   dedicated detector is caught (with a recorded latency bound), and
   fault-free runs - including the committed golden-trace scenarios -
   never raise a scored detector.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FleetConfig
from repro.errors import ObsError
from repro.faults import FaultEvent, FaultSchedule
from repro.faults.scenarios import build_fault_scenario
from repro.fleet import FleetSimulator, homogeneous_rack
from repro.fleet.campaign import CampaignRunner, CampaignTask, merge_campaign_obs
from repro.fleet.scenarios import _assemble_rack, build_fleet_scenario, build_server_slot
from repro.obs import (
    SEVERITIES,
    HealthMonitor,
    MonitorConfig,
    ObsCollector,
    ObsConfig,
    arm_run_monitor,
    merge_summaries,
    score_detections,
)
from repro.obs.report import main as report_main
from repro.room import RoomSimulator, uniform_room
from repro.sim.engine import Simulator
from repro.sim.scenarios import (
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
)
from repro.workload.synthetic import SquareWaveWorkload

#: Sensor transport lag in the stock config (SensingConfig.lag_s).
LAG_S = 10.0
#: Fan control period in the stock config (ControlConfig.fan_interval_s).
FAN_S = 30.0

#: A stuck + drift schedule for the identity/perturbation lane tests.
SENSOR_FAULTS = FaultSchedule(
    events=(
        FaultEvent("stuck", server=1, start_s=100.0, duration_s=150.0),
        FaultEvent("drift", server=2, start_s=50.0, duration_s=200.0, magnitude=0.05),
    ),
    seed=0,
    label="sensor_faults",
)


def _assert_channels_equal(a, b):
    for name, chan in a.channels.items():
        assert np.array_equal(chan, b.channels[name], equal_nan=True), (
            f"channel {name} differs for {a.label}"
        )


def _assert_fleet_equal(a, b):
    for ra, rb in zip(a.server_results, b.server_results):
        _assert_channels_equal(ra, rb)
    assert a.mean_inlet_c == b.mean_inlet_c


def _single_sim(obs=None, faults=None):
    return Simulator(
        build_plant(),
        build_sensor(seed=3),
        paper_workload(600.0, seed=3),
        build_global_controller("rcoord"),
        dt_s=0.1,
        record_decimation=5,
        obs=obs,
        faults=faults,
    )


def _square_rack(n=2, stagger_s=10.0):
    """Rack with sustained square-wave demand: guaranteed excitation."""
    slots = [
        build_server_slot(
            f"s{i:02d}",
            workload=SquareWaveWorkload(
                low=0.1, high=0.6, half_period_s=60.0, phase_s=stagger_s * i
            ),
        )
        for i in range(n)
    ]
    return _assemble_rack(slots, FleetConfig(n_servers=n))


def _monitor(n=1, *, config=None, lag=None, **kwargs):
    return HealthMonitor(
        config or MonitorConfig(),
        limits_c=[80.0] * n,
        fan_max_rpm=[5000.0] * n,
        fan_interval_s=[FAN_S] * n,
        start_s=0.0,
        sensor_lag_s=None if lag is None else [lag] * n,
        **kwargs,
    )


class TestMonitorConfig:
    def test_defaults_validate_and_hash(self):
        cfg = MonitorConfig()
        assert cfg.enabled
        hash(cfg)  # campaign chunk keys hash their ObsConfig
        hash(ObsConfig(monitor=cfg))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_every_s": 0.0},
            {"sample_every_s": math.nan},
            {"tmeas_margin_c": -1.0},
            {"tmeas_limit_c": math.inf},
            {"fan_sat_fraction": 0.0},
            {"fan_sat_fraction": 1.5},
            {"fan_sat_dwell_s": -1.0},
            {"stuck_periods": 0},
            {"stuck_min_util_delta": -0.1},
            {"drift_tau_fast_s": 0.0},
            {"drift_tau_slow_s": 5.0, "drift_tau_fast_s": 10.0},
            {"drift_residual_c": 0.0},
            {"drift_dwell_s": -1.0},
            {"drift_util_band": -0.1},
            {"drift_warmup_s": -1.0},
            {"supply_margin_c": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ObsError):
            MonitorConfig(**kwargs)

    def test_obs_config_rejects_non_monitor(self):
        with pytest.raises(ObsError):
            ObsConfig(monitor="yes please")

    def test_mismatched_server_lists_rejected(self):
        with pytest.raises(ObsError):
            HealthMonitor(
                MonitorConfig(),
                limits_c=[80.0, 80.0],
                fan_max_rpm=[5000.0],
                fan_interval_s=[30.0, 30.0],
                start_s=0.0,
            )

    def test_rack_supplies_need_inlet_limit(self):
        with pytest.raises(ObsError):
            _monitor(rack_supplies=[(28.0, ())])


class TestDetectorUnits:
    """Drive HealthMonitor directly: each detector's state machine."""

    def test_tmeas_margin_opens_and_clears(self):
        mon = _monitor(config=MonitorConfig(tmeas_limit_c=80.0, tmeas_margin_c=2.0))
        mon.sample_server(5.0, 0, 77.0, 1000.0, 0.3)
        assert mon.incidents == []
        mon.sample_server(10.0, 0, 78.5, 1000.0, 0.3)
        (inc,) = mon.incidents
        assert inc["detector"] == "tmeas_margin"
        assert inc["severity"] == "critical"
        assert inc["severity"] in SEVERITIES
        assert inc["scope"] == "server:0"
        assert inc["onset_s"] == 10.0
        assert inc["clear_s"] is None
        mon.sample_server(15.0, 0, 76.0, 1000.0, 0.3)
        assert inc["clear_s"] == 15.0

    def test_fan_saturation_needs_dwell(self):
        cfg = MonitorConfig(fan_sat_fraction=0.98, fan_sat_dwell_s=60.0)
        mon = _monitor(config=cfg)
        for t in (5.0, 30.0, 60.0):
            mon.sample_server(t, 0, 70.0, 4950.0, 0.5)
        assert mon.incidents == []  # dwell not yet elapsed
        mon.sample_server(65.0, 0, 70.0, 4950.0, 0.5)
        (inc,) = mon.incidents
        assert inc["detector"] == "fan_saturation"
        assert inc["onset_s"] == 65.0
        # A dip below the threshold clears and resets the dwell clock.
        mon.sample_server(70.0, 0, 70.0, 3000.0, 0.5)
        assert inc["clear_s"] == 70.0
        mon.sample_server(75.0, 0, 70.0, 4950.0, 0.5)
        assert len(mon.incidents) == 1

    def test_stuck_needs_both_freeze_and_power_movement(self):
        cfg = MonitorConfig(stuck_periods=2, stuck_min_util_delta=0.25)
        # Frozen reading, steady power: a quiet healthy server - silent.
        mon = _monitor(config=cfg)
        for k in range(40):
            mon.sample_server(5.0 * (k + 1), 0, 75.0, 1000.0, 0.3)
        assert mon.incidents == []
        # Frozen reading while (lag-old) smoothed power swings: stuck.
        mon = _monitor(config=cfg)
        for k in range(40):
            util = 0.1 if k % 16 < 8 else 0.9
            mon.sample_server(5.0 * (k + 1), 0, 75.0, 1000.0, util)
        incs = [i for i in mon.incidents if i["detector"] == "stuck_sensor"]
        assert incs and incs[0]["severity"] == "critical"
        assert incs[0]["onset_s"] >= 2 * FAN_S

    def test_stuck_gate_is_lag_aligned(self):
        """Power moving within the last transport lag must not count."""
        cfg = MonitorConfig(stuck_periods=1, stuck_min_util_delta=0.25)

        def feed(mon):
            # Reading frozen throughout; utilization steps hard near the
            # *end* of the window - with a lag-deep ring the excursion
            # only becomes visible lag seconds later.
            for k in range(10):
                util = 0.9 if k >= 7 else 0.1
                mon.sample_server(5.0 * (k + 1), 0, 75.0, 1000.0, util)

        eager = _monitor(config=cfg, lag=0.0)
        feed(eager)  # 50 s > one fan period; the step is visible at once
        lagged = _monitor(config=cfg, lag=30.0)
        feed(lagged)
        assert [i["detector"] for i in eager.incidents] == ["stuck_sensor"]
        assert lagged.incidents == []

    def test_nan_reading_resets_stuck_and_drift(self):
        mon = _monitor(config=MonitorConfig(stuck_periods=1, stuck_min_util_delta=0.2))
        for k in range(20):
            util = 0.1 if k % 8 < 4 else 0.8
            mon.sample_server(5.0 * (k + 1), 0, 75.0, 1000.0, util)
        open_incs = [i for i in mon.incidents if i["clear_s"] is None]
        assert open_incs
        mon.sample_server(105.0, 0, math.nan, 1000.0, 0.5)
        assert all(i["clear_s"] is not None for i in mon.incidents)

    def test_drift_fires_after_dwell_and_respects_warmup(self):
        cfg = MonitorConfig(
            drift_residual_c=1.0, drift_dwell_s=20.0, drift_warmup_s=100.0,
            sample_every_s=5.0,
        )
        mon = _monitor(config=cfg)
        # Ramp the reading at steady utilization: residual grows while
        # the util gate stays open, but nothing may fire inside warmup.
        t, reading = 0.0, 60.0
        for _ in range(60):
            t += 5.0
            reading += 0.15 * 5.0
            mon.sample_server(t, 0, reading, 1000.0, 0.3)
        drift = [i for i in mon.incidents if i["detector"] == "sensor_drift"]
        assert drift and drift[0]["onset_s"] >= 100.0
        assert drift[0]["severity"] == "warning"

    def test_drift_gated_on_steady_utilization(self):
        cfg = MonitorConfig(
            drift_residual_c=1.0, drift_dwell_s=20.0, drift_warmup_s=0.0,
            drift_util_band=0.05, sample_every_s=5.0,
        )
        mon = _monitor(config=cfg)
        t, reading = 0.0, 60.0
        for k in range(60):
            t += 5.0
            reading += 0.15 * 5.0
            mon.sample_server(t, 0, reading, 1000.0, 0.1 if k % 2 else 0.9)
        assert [i for i in mon.incidents if i["detector"] == "sensor_drift"] == []

    def test_supply_margin_windows(self):
        mon = _monitor(
            config=MonitorConfig(supply_margin_c=3.0),
            rack_supplies=[(28.0, ((100.0, 200.0, 6.0),)), (28.0, ())],
            inlet_limit_c=35.0,
        )
        mon.commit(50.0)
        assert mon.incidents == []
        mon.commit(100.0)
        (inc,) = mon.incidents
        assert inc["detector"] == "supply_margin"
        assert inc["scope"] == "rack:0"
        assert inc["onset_s"] == 100.0
        mon.commit(150.0)
        assert inc["clear_s"] is None
        mon.commit(200.0)  # window is half-open: [start, end)
        assert inc["clear_s"] == 200.0

    def test_commit_advances_cadence(self):
        mon = _monitor(config=MonitorConfig(sample_every_s=5.0))
        assert mon.next_due_s == 5.0
        mon.commit(5.0)
        assert mon.next_due_s == 10.0
        mon.commit(30.0)  # catches up past skipped instants
        assert mon.next_due_s == 35.0


class TestScoreDetections:
    def test_pairs_events_with_earliest_incident(self):
        schedule = FaultSchedule(
            events=(FaultEvent("stuck", server=0, start_s=100.0, duration_s=100.0),),
            seed=0,
        )
        incidents = [
            {"detector": "stuck_sensor", "scope": "server:0", "onset_s": 90.0},
            {"detector": "stuck_sensor", "scope": "server:0", "onset_s": 160.0},
            {"detector": "stuck_sensor", "scope": "server:0", "onset_s": 180.0},
        ]
        score = score_detections(incidents, schedule)
        (event,) = score["events"]
        assert event["detected"] and event["latency_s"] == 60.0
        assert score["max_latency_s"] == 60.0
        # the 90 s incident predates the fault: a false positive
        assert [fp["onset_s"] for fp in score["false_positives"]] == [90.0]

    def test_missed_events_and_unscored_detectors(self):
        schedule = FaultSchedule(
            events=(FaultEvent("drift", server=1, start_s=50.0,
                               duration_s=100.0, magnitude=0.05),),
            seed=0,
        )
        incidents = [
            {"detector": "tmeas_margin", "scope": "server:1", "onset_s": 10.0},
        ]
        score = score_detections(incidents, schedule)
        assert score["detected"] == 0
        assert [e["kind"] for e in score["missed"]] == ["drift"]
        assert score["false_positives"] == []  # tmeas_margin is not scored
        assert score["max_latency_s"] is None


MONITORED = ObsConfig(monitor=MonitorConfig())


class TestNonPerturbation:
    """Monitored runs are bit-for-bit identical to bare runs, every lane."""

    def test_single_server(self):
        faults = FaultSchedule(
            events=(FaultEvent("stuck", server=0, start_s=40.0, duration_s=60.0),),
            seed=0,
        )
        bare = _single_sim(faults=faults).run(120.0)
        mon = _single_sim(obs=MONITORED, faults=faults).run(120.0)
        _assert_channels_equal(bare, mon)
        assert isinstance(mon.extras["obs"]["incidents"], list)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized", "fused"])
    def test_fleet_backends(self, backend):
        def run(obs):
            rack = homogeneous_rack(n_servers=4, duration_s=120.0, seed=5)
            sim = FleetSimulator(
                rack, dt_s=0.1, backend=backend, faults=SENSOR_FAULTS, obs=obs
            )
            return sim.run(120.0, label="fleet")

        bare = run(None)
        mon = run(MONITORED)
        _assert_fleet_equal(bare, mon)
        assert "incidents" in mon.extras["obs"]

    @pytest.mark.parametrize("backend", ["scalar", "vectorized", "fused"])
    def test_stacked_room(self, backend):
        def run(obs):
            room = uniform_room(duration_s=60.0, seed=2)
            sim = RoomSimulator(room, dt_s=0.1, backend=backend, obs=obs)
            return sim.run(60.0, label="room")

        bare = run(None)
        mon = run(MONITORED)
        for ra, rb in zip(bare.rack_results, mon.rack_results):
            _assert_fleet_equal(ra, rb)


class TestIncidentIdentity:
    """The incident list is identical whichever backend produced it."""

    def test_fleet_backends_identical_incidents(self):
        def incidents(backend):
            rack = homogeneous_rack(n_servers=4, duration_s=300.0, seed=0)
            sim = FleetSimulator(
                rack, backend=backend, faults=SENSOR_FAULTS, obs=MONITORED
            )
            return sim.run(300.0, label="x").extras["obs"]["incidents"]

        scalar = incidents("scalar")
        assert scalar  # the schedule must actually raise incidents
        assert scalar == incidents("vectorized") == incidents("fused")

    def test_room_backends_identical_incidents(self):
        def incidents(backend):
            room = uniform_room(duration_s=120.0, seed=2)
            sim = RoomSimulator(room, backend=backend, obs=MONITORED)
            return sim.run(120.0, label="room").extras["obs"]["incidents"]

        scalar = incidents("scalar")
        assert scalar == incidents("vectorized") == incidents("fused")


class TestSeededDetection:
    """Detectors catch every seeded PR 5 scenario; fault-free runs stay clean."""

    def test_stuck_detected_within_latency_bound(self):
        start = 150.0
        schedule = FaultSchedule(
            events=(FaultEvent("stuck", server=0, start_s=start, duration_s=300.0),),
            seed=0,
        )
        sim = FleetSimulator(
            _square_rack(), backend="vectorized", faults=schedule, obs=MONITORED
        )
        result = sim.run(500.0, label="stuck")
        score = score_detections(result.extras["obs"]["incidents"], schedule)
        (event,) = score["events"]
        assert event["detected"]
        # Transport lag delays the freeze's visibility; the detector
        # needs stuck_periods fan periods of frozen readings plus one
        # period of slack for the utilization gate.
        cfg = MonitorConfig()
        assert event["latency_s"] <= LAG_S + (cfg.stuck_periods + 1) * FAN_S
        assert score["false_positives"] == []

    def test_drift_detected(self):
        schedule = FaultSchedule(
            events=(FaultEvent("drift", server=1, start_s=200.0,
                               duration_s=600.0, magnitude=0.05),),
            seed=0,
        )
        rack = homogeneous_rack(n_servers=4, duration_s=900.0, seed=0)
        sim = FleetSimulator(
            rack, backend="vectorized", faults=schedule, obs=MONITORED
        )
        result = sim.run(900.0, label="drift")
        score = score_detections(result.extras["obs"]["incidents"], schedule)
        (event,) = score["events"]
        assert event["detected"]
        assert score["false_positives"] == []

    def test_crac_brownout_supply_margin(self):
        room, schedule = build_fault_scenario("crac_brownout")
        sim = RoomSimulator(
            room, backend="vectorized", faults=schedule, obs=MONITORED
        )
        # The registered scenario browns out at t=900 for 900 s; running
        # just past onset keeps the test fast while pinning latency 0.
        result = sim.run(1000.0, label="brownout")
        score = score_detections(result.extras["obs"]["incidents"], schedule)
        (event,) = score["events"]
        assert event["detected"]
        assert event["latency_s"] == 0.0
        assert score["false_positives"] == []

    @pytest.mark.parametrize(
        "scheme",
        ["uncoordinated", "ecoord", "rcoord", "rcoord_atref", "rcoord_atref_ssfan"],
    )
    def test_golden_scenarios_raise_no_scored_detector(self, scheme):
        """The committed golden-trace runs are fault-free: zero FPs."""
        rack = build_fleet_scenario(
            "homogeneous",
            n_servers=4,
            duration_s=60.0,
            seed=11,
            fleet=FleetConfig(n_servers=4, recirc_fraction=0.3),
            scheme=scheme,
        )
        sim = FleetSimulator(rack, dt_s=0.1, backend="vectorized", obs=MONITORED)
        result = sim.run(60.0, label=f"golden/{scheme}")
        scored = [
            inc
            for inc in result.extras["obs"]["incidents"]
            if inc["detector"] in ("stuck_sensor", "sensor_drift", "supply_margin")
        ]
        assert scored == []


class TestStuckProperty:
    """Seeded stuck faults are always caught under sustained excitation."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(start=st.floats(min_value=120.0, max_value=300.0))
    def test_stuck_fires_within_bound(self, start):
        start = round(start, 1)
        schedule = FaultSchedule(
            events=(FaultEvent("stuck", server=0, start_s=start, duration_s=400.0),),
            seed=0,
        )
        sim = FleetSimulator(
            _square_rack(), backend="vectorized", faults=schedule, obs=MONITORED
        )
        result = sim.run(start + 400.0, label="prop")
        cfg = MonitorConfig()
        bound = LAG_S + (cfg.stuck_periods + 1) * FAN_S
        onsets = [
            inc["onset_s"]
            for inc in result.extras["obs"]["incidents"]
            if inc["detector"] == "stuck_sensor"
            and inc["scope"] == "server:0"
            and inc["onset_s"] >= start
        ]
        assert onsets, f"stuck fault at t={start} never detected"
        assert min(onsets) - start <= bound

    def test_never_fires_fault_free(self):
        sim = FleetSimulator(
            _square_rack(4), backend="vectorized", obs=MONITORED
        )
        result = sim.run(900.0, label="clean")
        assert [
            inc
            for inc in result.extras["obs"]["incidents"]
            if inc["detector"] in ("stuck_sensor", "sensor_drift")
        ] == []


class TestCampaignMerge:
    def test_merge_summaries_sorts_incidents(self):
        def summary(label, onsets):
            collector = ObsCollector(ObsConfig())
            collector.label = label
            collector.arm_stream(0.0)
            for onset in onsets:
                collector.record_incident(
                    {
                        "detector": "tmeas_margin",
                        "severity": "critical",
                        "scope": "server:0",
                        "onset_s": onset,
                        "clear_s": None,
                        "value": 78.0,
                        "run": label,
                    }
                )
            collector.finish_run(10.0)
            return collector.summary()

        merged = merge_summaries([summary("b", [30.0, 10.0]), summary("a", [20.0])])
        assert [(i["onset_s"], i["run"]) for i in merged["incidents"]] == [
            (10.0, "b"),
            (20.0, "a"),
            (30.0, "b"),
        ]

    def test_campaign_serial_equals_parallel_incidents(self):
        tasks = [
            CampaignTask(
                scenario="homogeneous",
                n_servers=4,
                seed=seed,
                duration_s=60.0,
                faults=SENSOR_FAULTS,
                obs=MONITORED,
            )
            for seed in range(2)
        ]
        serial = merge_campaign_obs(CampaignRunner(workers=None).run(tasks))
        parallel = merge_campaign_obs(CampaignRunner(workers=2).run(tasks))
        assert serial["incidents"]
        assert serial["incidents"] == parallel["incidents"]


class TestTraceAndSinks:
    def test_incidents_reach_summary_spans_and_sink(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        obs = ObsCollector(
            ObsConfig(sink=f"jsonl:{path}", monitor=MonitorConfig())
        )
        rack = homogeneous_rack(n_servers=4, duration_s=120.0, seed=5)
        sim = FleetSimulator(
            rack, backend="vectorized", faults=SENSOR_FAULTS, obs=obs
        )
        result = sim.run(120.0, label="traced")
        incidents = result.extras["obs"]["incidents"]
        assert incidents
        assert obs.incidents == incidents

        # Live emits: one type=="incident" record per onset.
        records = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        live = [r for r in records if r.get("type") == "incident"]
        assert len(live) == len(incidents)
        assert {r["detector"] for r in live} == {
            i["detector"] for i in incidents
        }

        # Zero-duration incident spans export as Chrome instant events.
        spans = [e for e in obs.trace_events() if e["name"].startswith("incident:")]
        assert len(spans) == len(incidents)
        assert all(e["ph"] == "i" and e["s"] == "t" for e in spans)
        assert all("dur" not in e for e in spans)
        phase_events = [e for e in obs.trace_events() if e["ph"] == "X"]
        assert phase_events  # ordinary spans still export as complete events

        out = tmp_path / "trace.jsonl"
        n = obs.export_trace_jsonl(out)
        names = [json.loads(line)["name"] for line in out.read_text().splitlines()]
        assert n == len(names)
        assert any(name.startswith("incident:") for name in names)

    def test_arm_run_monitor_clears_stale_monitor(self):
        obs = ObsCollector(ObsConfig(monitor=MonitorConfig()))
        monitor = arm_run_monitor(
            obs,
            plants=[build_plant()],
            controllers=[build_global_controller("rcoord")],
            start_s=0.0,
        )
        assert obs.monitor is monitor is not None
        bare = ObsCollector(ObsConfig())
        assert arm_run_monitor(
            bare,
            plants=[build_plant()],
            controllers=[build_global_controller("rcoord")],
            start_s=0.0,
        ) is None
        assert bare.monitor is None


class TestReportIncidents:
    def test_incident_table_from_mixed_records(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        records = [
            # live emit from a run whose snapshot never landed
            {
                "type": "incident",
                "label": "orphan",
                "detector": "fan_saturation",
                "severity": "warning",
                "scope": "server:3",
                "onset_s": 42.0,
                "clear_s": None,
                "value": 4900.0,
                "run": "orphan",
            },
            # final snapshot (carries clear times; supersedes live emits)
            {
                "type": "final",
                "label": "fleet",
                "incidents": [
                    {
                        "detector": "stuck_sensor",
                        "severity": "critical",
                        "scope": "server:1",
                        "onset_s": 170.0,
                        "clear_s": 255.0,
                        "value": 75.0,
                        "run": "fleet",
                    }
                ],
            },
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert report_main(["--incidents", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stuck_sensor" in out
        assert "fan_saturation" in out
        assert "open" in out  # un-cleared incident renders as open
        assert "255.0" in out

    def test_incident_table_from_real_run(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        obs = ObsConfig(sink=f"jsonl:{path}", monitor=MonitorConfig())
        rack = homogeneous_rack(n_servers=4, duration_s=120.0, seed=5)
        FleetSimulator(
            rack, backend="vectorized", faults=SENSOR_FAULTS, obs=obs
        ).run(120.0, label="fleet")
        assert report_main(["--incidents", str(path)]) == 0
        out = capsys.readouterr().out
        assert "detector" in out and "onset_s" in out

    def test_no_incidents_message(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps({"type": "final", "label": "x"}) + "\n")
        assert report_main(["--incidents", str(path)]) == 0
        assert "no incidents" in capsys.readouterr().out
