"""Experiment registry and the fast experiments end-to-end.

The heavy experiments (fig3, fig5, table3) run in reduced form here; the
benchmarks run them at full length.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.fig1_sensor_lag import contention_lag_table
from repro.experiments.registry import get_experiment, run_experiment
from repro.experiments.table2_rules import EXPECTED
from repro.experiments.table3_coordination import PAPER_TABLE_III


class TestRegistry:
    def test_all_experiments_registered(self):
        get_experiment("table2")  # triggers load
        from repro.experiments.registry import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "table2",
            "table3",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


class TestFig1:
    def test_checks_pass(self):
        result = run_experiment("fig1")
        assert result.all_checks_pass, result.checks

    def test_measured_lag_close_to_configured(self):
        result = run_experiment("fig1")
        assert result.data["apparent_lag_s"] == pytest.approx(10.0, abs=2.0)

    def test_contention_table_monotone(self):
        table = contention_lag_table()
        lags = [lag for _, lag in table]
        assert lags == sorted(lags)


class TestTable2:
    def test_checks_pass(self):
        result = run_experiment("table2")
        assert result.all_checks_pass, result.checks

    def test_covers_all_nine_cells(self):
        assert len(EXPECTED) == 9

    def test_report_mentions_every_cell(self):
        result = run_experiment("table2")
        assert result.report.count("True") == 9


class TestTable3Constants:
    def test_paper_values_recorded(self):
        assert PAPER_TABLE_III["uncoordinated"] == (26.12, 1.000)
        assert PAPER_TABLE_III["ecoord"] == (44.44, 0.703)
        assert PAPER_TABLE_III["rcoord_atref_ssfan"] == (6.92, 0.804)


class TestShortTable3:
    """A single-seed, short-horizon Table III still shows the key contrasts."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table3", duration_s=900.0, seeds=(1,))

    def test_ecoord_has_worst_violations(self, result):
        measured = result.data["measured"]
        assert measured["ecoord"][0] == max(v for v, _ in measured.values())

    def test_ecoord_has_lowest_energy(self, result):
        measured = result.data["measured"]
        assert measured["ecoord"][1] == min(e for _, e in measured.values())

    def test_full_scheme_beats_baseline(self, result):
        measured = result.data["measured"]
        assert (
            measured["rcoord_atref_ssfan"][0] < measured["uncoordinated"][0]
        )


class TestShortFig4:
    def test_deadzone_oscillates_and_adaptive_does_not(self):
        # 1500 s: enough for >= 3 full deadzone cycles (period ~165 s)
        # inside the trailing analysis window.
        result = run_experiment("fig4", duration_s=1500.0)
        stability = result.data["stability"]
        assert stability["deadzone"]["oscillatory"]
        assert not stability["adaptive"]["oscillatory"]
        assert not stability["deadzone_ideal"]["oscillatory"]


class TestCli:
    def test_main_runs_fast_experiments(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["table2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Table II" in captured.out
