"""Vectorized batch backend: equivalence with the scalar engine.

The batch backend's contract is *bit-for-bit* agreement with the scalar
path for every stock configuration: it runs the same floating-point
operations in the same order, element-wise.  These tests pin that
contract across all four rack scenario builders, a seeded parameter
sweep, a decoupled rack against independent single-server runs, and the
heterogeneous-structure fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FleetConfig, ServerConfig
from repro.errors import SimulationError
from repro.fleet import (
    FleetSimulator,
    Rack,
    RecirculationMatrix,
    build_fleet_scenario,
    build_server_slot,
)
from repro.fleet.rack import ServerSlot
from repro.fleet.scenarios import _SEED_STRIDE
from repro.sim import (
    BatchRunSpec,
    ParameterSweep,
    Simulator,
    batch_unsupported_reason,
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
    run_batch,
)
from repro.sim.batch import BatchStepper
from repro.thermal.ambient import StepAmbient
from repro.thermal.server import ServerThermalModel
from repro.workload.spikes import SpikeProcess
from repro.workload.synthetic import (
    CompositeWorkload,
    ConstantWorkload,
    NoisyWorkload,
    SquareWaveWorkload,
    StepWorkload,
)

_N = 4
_DUR = 60.0
_DT = 0.1
_DEC = 3


def _scenario_rack(name: str, recirc: float = 0.3, seed: int = 11):
    return build_fleet_scenario(
        name,
        n_servers=_N,
        duration_s=_DUR,
        seed=seed,
        fleet=FleetConfig(n_servers=_N, recirc_fraction=recirc),
    )


def _assert_results_identical(a, b):
    """Two FleetResults must agree bit-for-bit."""
    assert a.n_servers == b.n_servers
    for i in range(a.n_servers):
        ra, rb = a.server(i), b.server(i)
        for name, channel in ra.channels.items():
            assert np.array_equal(channel, rb.channels[name]), (
                f"server {i} channel {name} diverged"
            )
        assert ra.performance == rb.performance, f"server {i} performance"
        assert ra.energy == rb.energy, f"server {i} energy"
    assert a.mean_inlet_c == b.mean_inlet_c


class TestRackEquivalence:
    @pytest.mark.parametrize(
        "scenario",
        ["homogeneous", "hetero_sensors", "staggered_waves", "hot_spot"],
    )
    def test_vectorized_matches_scalar_bit_for_bit(self, scenario):
        scalar = FleetSimulator(
            _scenario_rack(scenario), dt_s=_DT, record_decimation=_DEC,
            backend="scalar",
        ).run(_DUR)
        vectorized = FleetSimulator(
            _scenario_rack(scenario), dt_s=_DT, record_decimation=_DEC,
            backend="vectorized",
        ).run(_DUR)
        assert vectorized.extras["backend"] == "vectorized"
        assert scalar.extras["backend"] == "scalar"
        _assert_results_identical(scalar, vectorized)

    @pytest.mark.parametrize(
        "scenario",
        ["homogeneous", "hetero_sensors", "staggered_waves", "hot_spot"],
    )
    def test_plant_and_inlet_state_synced_back(self, scenario):
        """After a batch run the rack objects hold the same final state a
        scalar run leaves behind (mixed workflows stay consistent)."""
        rack_scalar = _scenario_rack(scenario)
        rack_vec = _scenario_rack(scenario)
        FleetSimulator(rack_scalar, dt_s=_DT, backend="scalar").run(_DUR)
        FleetSimulator(rack_vec, dt_s=_DT, backend="vectorized").run(_DUR)
        for slot_s, slot_v in zip(rack_scalar, rack_vec):
            assert slot_s.plant.state == slot_v.plant.state
            assert slot_s.plant.time_s == slot_v.plant.time_s
            assert slot_s.inlet.offset_c == slot_v.inlet.offset_c

    def test_auto_backend_picks_vectorized_when_supported(self):
        result = FleetSimulator(
            _scenario_rack("homogeneous"), dt_s=_DT, backend="auto"
        ).run(_DUR)
        assert result.extras["backend"] == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            FleetSimulator(_scenario_rack("homogeneous"), backend="gpu")


class TestDecoupledRack:
    def test_vectorized_decoupled_matches_independent_runs_exactly(self):
        """A decoupled rack on the batch backend must reproduce N
        independent single-server scalar Simulator runs bit-for-bit."""
        seed = 7
        rack = build_fleet_scenario(
            "homogeneous",
            n_servers=3,
            duration_s=_DUR,
            seed=seed,
            fleet=FleetConfig(n_servers=3, recirc_fraction=0.0),
        )
        fleet_res = FleetSimulator(
            rack, dt_s=_DT, record_decimation=_DEC, backend="vectorized"
        ).run(_DUR)
        assert fleet_res.extras["backend"] == "vectorized"

        cfg = ServerConfig()
        for i in range(3):
            s = seed + _SEED_STRIDE * i
            single = Simulator(
                build_plant(cfg),
                build_sensor(cfg, seed=s),
                paper_workload(_DUR, seed=s),
                build_global_controller("rcoord", cfg),
                dt_s=_DT,
                record_decimation=_DEC,
            ).run(_DUR)
            for name, channel in single.channels.items():
                assert np.array_equal(
                    channel, fleet_res.server(i).channels[name]
                ), f"server {i} channel {name} diverged"
            assert single.energy == fleet_res.server(i).energy
            assert single.performance == fleet_res.server(i).performance


def _sweep_pieces(lag_s: float):
    cfg = ServerConfig().with_sensing(lag_s=lag_s)
    return (
        build_plant(cfg),
        build_sensor(cfg, seed=5),
        paper_workload(_DUR, seed=5),
        build_global_controller("rcoord", cfg),
    )


def _sweep_runner(lag_s: float):
    plant, sensor, workload, controller = _sweep_pieces(lag_s)
    return Simulator(
        plant, sensor, workload, controller, dt_s=_DT, record_decimation=_DEC
    ).run(_DUR, label=f"lag={lag_s}")


def _sweep_spec(lag_s: float) -> BatchRunSpec:
    plant, sensor, workload, controller = _sweep_pieces(lag_s)
    return BatchRunSpec(
        plant=plant,
        sensor=sensor,
        workload=workload,
        controller=controller,
        duration_s=_DUR,
        dt_s=_DT,
        record_decimation=_DEC,
        label=f"lag={lag_s}",
    )


class TestSweepEquivalence:
    def test_vectorized_sweep_matches_scalar_runner(self):
        values = [0.0, 5.0, 10.0, 20.0]
        metric_fns = {"fan_j": lambda r: r.fan_energy_j}
        scalar = ParameterSweep(_sweep_runner, metric_fns).run(values)
        vectorized = ParameterSweep(
            _sweep_runner, metric_fns, spec_builder=_sweep_spec
        ).run(values, backend="vectorized")
        for ps, pv in zip(scalar, vectorized):
            assert ps.value == pv.value
            assert ps.metrics == pv.metrics
            for name, channel in ps.result.channels.items():
                assert np.array_equal(channel, pv.result.channels[name]), (
                    f"value {ps.value} channel {name} diverged"
                )
            assert ps.result.performance == pv.result.performance
            assert ps.result.energy == pv.result.energy

    def test_spec_only_sweep_scalar_backend(self):
        points = ParameterSweep(spec_builder=_sweep_spec).run([0.0, 10.0])
        assert [p.result.label for p in points] == ["lag=0.0", "lag=10.0"]

    def test_vectorized_without_spec_builder_rejected(self):
        sweep = ParameterSweep(_sweep_runner)
        with pytest.raises(SimulationError):
            sweep.run([1.0], backend="vectorized")

    def test_sweep_needs_runner_or_spec_builder(self):
        with pytest.raises(SimulationError):
            ParameterSweep()


class TestFallback:
    def _time_varying_rack(self):
        slot = build_server_slot("srv00", workload=ConstantWorkload(0.4))
        plant = ServerThermalModel(
            slot.plant.config,
            ambient=StepAmbient(25.0, 30.0, step_time_s=10.0),
        )
        odd = ServerSlot(
            name="srv00",
            plant=plant,
            sensor=slot.sensor,
            workload=slot.workload,
            controller=slot.controller,
            inlet=slot.inlet,
        )
        return Rack([odd], coupling=RecirculationMatrix.decoupled(1))

    def test_vectorized_falls_back_on_time_varying_ambient(self):
        result = FleetSimulator(
            self._time_varying_rack(), dt_s=_DT, backend="vectorized"
        ).run(30.0)
        assert result.extras["backend"] == "scalar"
        assert "ambient" in result.extras["fallback_reason"]

    def test_unsupported_reasons(self):
        plant, sensor, workload, controller = _sweep_pieces(10.0)
        assert batch_unsupported_reason([plant], [sensor]) is None
        # A primed sensor carries state the batch backend cannot adopt.
        sensor.observe(0.0, 70.0)
        reason = batch_unsupported_reason([plant], [sensor])
        assert reason is not None and "primed" in reason

        class OddPlant(ServerThermalModel):
            pass

        odd = OddPlant(ServerConfig())
        reason = batch_unsupported_reason([odd], [build_sensor(ServerConfig())])
        assert reason is not None and "OddPlant" in reason

    def test_run_batch_rejects_mismatched_grids(self):
        with pytest.raises(SimulationError):
            run_batch([])
        spec_a = _sweep_spec(0.0)
        plant, sensor, workload, controller = _sweep_pieces(5.0)
        spec_b = BatchRunSpec(
            plant=plant,
            sensor=sensor,
            workload=workload,
            controller=controller,
            duration_s=2 * _DUR,
        )
        with pytest.raises(SimulationError):
            run_batch([spec_a, spec_b])

    def test_batch_stepper_rejects_unsupported_servers(self):
        plant, sensor, workload, controller = _sweep_pieces(0.0)
        sensor.observe(0.0, 70.0)
        with pytest.raises(SimulationError):
            BatchStepper(
                plants=[plant],
                sensors=[sensor],
                workloads=[workload],
                controllers=[controller],
                n_steps=10,
                dt_s=_DT,
            )


class TestStateSyncAndFallbackRegressions:
    def test_scalar_run_after_vectorized_matches_scalar_after_scalar(self):
        """Sensors (not just plants/inlets) are synced back after a batch
        run, so a follow-up scalar run continues identically."""
        rack_a = _scenario_rack("homogeneous")
        rack_b = _scenario_rack("homogeneous")
        FleetSimulator(rack_a, dt_s=_DT, backend="scalar").run(30.0)
        FleetSimulator(rack_b, dt_s=_DT, backend="vectorized").run(30.0)
        for slot in rack_b:
            assert slot.sensor.is_primed
        # The second run falls back to scalar on both racks (sensors now
        # carry state) and must agree bit-for-bit.
        res_a = FleetSimulator(rack_a, dt_s=_DT, backend="auto").run(30.0)
        res_b = FleetSimulator(rack_b, dt_s=_DT, backend="auto").run(30.0)
        assert res_b.extras["backend"] == "scalar"
        _assert_results_identical(res_a, res_b)

    def test_auto_falls_back_when_coupled_plant_lacks_coupled_inlet(self):
        """A rack whose plant ambient is not the slot's CoupledInlet must
        fall back to scalar, not crash, on backend='auto'."""
        from repro.thermal.ambient import ConstantAmbient

        slot = build_server_slot("srv00", workload=ConstantWorkload(0.4))
        plant = ServerThermalModel(
            slot.plant.config, ambient=ConstantAmbient(28.0)
        )
        odd = ServerSlot(
            name="srv00",
            plant=plant,
            sensor=slot.sensor,
            workload=slot.workload,
            controller=slot.controller,
            inlet=slot.inlet,
        )
        rack = Rack([odd], coupling=RecirculationMatrix.decoupled(1))
        result = FleetSimulator(rack, dt_s=_DT, backend="auto").run(30.0)
        assert result.extras["backend"] == "scalar"

    def test_spike_train_long_spike_matches_scalar_scan(self):
        """Spikes outliving the scalar scan's 3600 s break heuristic must
        still agree between demand() and demand_array()."""
        from repro.workload.spikes import Spike, SpikeTrain

        train = SpikeTrain(
            [Spike(0.0, 7200.0, 0.5), Spike(100.0, 5.0, 0.3)]
        )
        times = np.array([50.0, 102.0, 4000.0, 8000.0])
        expected = np.array([train.demand(float(t)) for t in times])
        assert np.array_equal(train.demand_array(times), expected)

    def test_scalar_engine_respects_plant_step_override(self):
        """ServerStepper's fast path must not bypass a subclass step()."""
        calls = []

        class TracingPlant(ServerThermalModel):
            def step(self, dt_s, utilization, fan_speed_rpm):
                calls.append(dt_s)
                return super().step(dt_s, utilization, fan_speed_rpm)

        cfg = ServerConfig()
        sim = Simulator(
            TracingPlant(cfg),
            build_sensor(cfg, seed=1),
            ConstantWorkload(0.4),
            build_global_controller("rcoord", cfg),
            dt_s=0.5,
        )
        sim.run(5.0)
        assert len(calls) == 10


class TestDemandArrayEquivalence:
    """demand_array must equal per-step demand() calls, draw for draw."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConstantWorkload(0.4),
            lambda: StepWorkload(0.2, 0.8, step_time_s=7.3),
            lambda: SquareWaveWorkload(low=0.1, high=0.7, half_period_s=13.0),
            lambda: NoisyWorkload(
                SquareWaveWorkload(half_period_s=9.0), std=0.05, seed=3
            ),
            lambda: SpikeProcess(
                horizon_s=120.0, rate_per_s=1.0 / 10.0, seed=9
            ),
            lambda: CompositeWorkload(
                [
                    SquareWaveWorkload(half_period_s=11.0),
                    SpikeProcess(horizon_s=120.0, rate_per_s=0.2, seed=2),
                ]
            ),
            lambda: paper_workload(120.0, seed=4),
        ],
        ids=[
            "constant",
            "step",
            "square",
            "noisy",
            "spikes",
            "composite",
            "paper",
        ],
    )
    def test_matches_scalar_loop(self, factory):
        times = np.array([0.0 + (k + 1) * 0.1 for k in range(1200)])
        scalar_wl = factory()
        array_wl = factory()
        expected = np.array([scalar_wl.demand(float(t)) for t in times])
        assert np.array_equal(array_wl.demand_array(times), expected)
