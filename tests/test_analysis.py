"""Analysis utilities: stability metrics, Table III metrics, linearization,
and plain-text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.linearize import (
    linearization_error,
    linearize_plant,
    suggest_regions,
)
from repro.analysis.metrics import compare_schemes, scheme_row
from repro.analysis.report import format_table, sparkline
from repro.analysis.stability import (
    analyze_stability,
    is_oscillatory,
    oscillation_amplitude,
    overshoot_percent,
    settling_time_s,
)
from repro.errors import AnalysisError


def sine(period_s=100.0, amplitude=1.0, duration_s=1000.0, n=2000):
    times = np.linspace(0.0, duration_s, n)
    return times, amplitude * np.sin(2 * np.pi * times / period_s)


class TestStability:
    def test_flat_signal_not_oscillatory(self):
        times = np.linspace(0, 100, 500)
        values = np.full(500, 42.0)
        assert not is_oscillatory(times, values, min_amplitude=1.0)

    def test_sine_is_oscillatory(self):
        times, values = sine(amplitude=5.0)
        assert is_oscillatory(times, values, min_amplitude=5.0)

    def test_small_oscillation_below_threshold(self):
        times, values = sine(amplitude=0.1)
        assert not is_oscillatory(times, values, min_amplitude=1.0)

    def test_amplitude(self):
        times, values = sine(amplitude=3.0)
        assert oscillation_amplitude(values) == pytest.approx(6.0, rel=0.01)

    def test_analyze_reports_period(self):
        times, values = sine(period_s=80.0, amplitude=4.0)
        report = analyze_stability(times, values, min_amplitude=2.0)
        assert report.oscillatory
        assert report.period_s == pytest.approx(80.0, rel=0.05)

    def test_decaying_signal_settles(self):
        times = np.linspace(0, 200, 1000)
        values = 10.0 * np.exp(-times / 20.0)
        settle = settling_time_s(times, values, final_value=0.0, tolerance=0.05)
        # 5% of the 10-unit peak: t = 20 * ln(20) ~ 60 s.
        assert settle == pytest.approx(60.0, abs=5.0)

    def test_never_settling_returns_inf(self):
        times, values = sine(amplitude=5.0)
        assert settling_time_s(times, values, final_value=0.0) == float("inf")

    def test_overshoot(self):
        values = np.array([0.0, 5.0, 12.0, 9.0, 10.0, 10.0])
        assert overshoot_percent(values, 0.0, 10.0) == pytest.approx(20.0)

    def test_no_overshoot(self):
        values = np.array([0.0, 5.0, 9.0, 10.0])
        assert overshoot_percent(values, 0.0, 10.0) == 0.0

    def test_downward_overshoot(self):
        values = np.array([10.0, 4.0, -2.0, 0.0])
        assert overshoot_percent(values, 10.0, 0.0) == pytest.approx(20.0)

    def test_zero_step_rejected(self):
        with pytest.raises(AnalysisError):
            overshoot_percent(np.array([1.0]), 5.0, 5.0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_stability([1, 2, 3], [1, 2])


class TestMetrics:
    def make_result(self, label, fan_j):
        from repro.config import ServerConfig
        from repro.power.energy import EnergyBreakdown
        from repro.sim.result import SimulationResult
        from repro.workload.performance import PerformanceSummary

        return SimulationResult(
            channels={"time": np.array([1.0]), "junction": np.array([70.0])},
            performance=PerformanceSummary(100, 10, 1.0, 50.0),
            energy=EnergyBreakdown(cpu_j=1000.0, fan_j=fan_j),
            config=ServerConfig(),
            dt_s=0.1,
            label=label,
        )

    def test_scheme_row_normalizes(self):
        base = self.make_result("base", 100.0)
        other = self.make_result("other", 70.0)
        row = scheme_row(other, base)
        assert row.normalized_fan_energy == pytest.approx(0.7)
        assert row.violation_percent == pytest.approx(10.0)

    def test_compare_schemes_order_preserved(self):
        results = {
            "uncoordinated": self.make_result("uncoordinated", 100.0),
            "ecoord": self.make_result("ecoord", 70.0),
        }
        rows = compare_schemes(results)
        assert [r.label for r in rows] == ["uncoordinated", "ecoord"]

    def test_missing_baseline_rejected(self):
        with pytest.raises(AnalysisError):
            compare_schemes({"ecoord": self.make_result("e", 1.0)})


class TestLinearize:
    def test_paper_knots_meet_five_percent(self, steady):
        """Section IV-B: two regions (2000/6000) linearize within 5%."""
        error = linearization_error(steady, (2000.0, 6000.0))
        assert error <= 0.05

    def test_single_segment_is_worse(self, steady):
        single = linearization_error(steady, ())
        two = linearization_error(steady, (2000.0, 6000.0))
        assert single > two

    def test_fit_interpolates_exactly_at_knots(self, steady):
        fit = linearize_plant(steady, knots_rpm=(1000.0, 4000.0, 8500.0))
        assert fit.evaluate(4000.0) == pytest.approx(
            steady.junction_c(0.4, 4000.0)
        )

    def test_suggest_regions_meets_target(self, steady):
        fit = suggest_regions(steady, target_error=0.05)
        assert fit.max_relative_error <= 0.05
        assert fit.n_regions <= 4

    def test_out_of_range_knots_rejected(self, steady):
        with pytest.raises(AnalysisError):
            linearize_plant(steady, knots_rpm=(500.0, 9000.0))


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbbb"], [["x", 1.5], ["yy", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [["only-one"]])

    def test_sparkline_length(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40

    def test_sparkline_short_signal(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_sparkline_constant(self):
        assert set(sparkline([5.0] * 10)) == {"▁"}

    def test_sparkline_empty_rejected(self):
        with pytest.raises(AnalysisError):
            sparkline([])
