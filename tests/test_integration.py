"""Cross-module integration tests: full closed-loop properties.

These exercise the whole stack (workload -> plant -> sensing -> DTM) and
assert system-level invariants the paper's design is supposed to provide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stability import analyze_stability
from repro.config import ServerConfig
from repro.sim.engine import Simulator
from repro.sim.scenarios import (
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
)
from repro.workload.synthetic import ConstantWorkload, SquareWaveWorkload


def run_closed_loop(
    scheme, fast_schedule, workload=None, duration=900.0, seed=3, config=None
):
    cfg = config or ServerConfig()
    controller = build_global_controller(scheme, cfg, fast_schedule)
    plant = build_plant(cfg)
    sensor = build_sensor(cfg, seed=seed)
    if workload is None:
        workload = paper_workload(duration, seed=seed)
    sim = Simulator(plant, sensor, workload, controller, dt_s=0.2,
                    record_decimation=5)
    return sim.run(duration, label=scheme)


class TestThermalSafety:
    """No scheme may let the junction run away."""

    @pytest.mark.parametrize(
        "scheme", ["uncoordinated", "rcoord", "rcoord_atref", "rcoord_atref_ssfan"]
    )
    def test_junction_bounded(self, scheme, fast_schedule):
        result = run_closed_loop(scheme, fast_schedule)
        assert result.max_junction_c < 90.0

    def test_ecoord_junction_bounded(self, fast_schedule):
        # E-coord sacrifices performance, not safety.
        result = run_closed_loop("ecoord", fast_schedule)
        assert result.max_junction_c < 90.0


class TestStateValidity:
    def test_knobs_always_within_physical_range(self, fast_schedule):
        result = run_closed_loop("rcoord_atref_ssfan", fast_schedule)
        assert result.fan_speed_rpm.min() >= 1000.0
        assert result.fan_speed_rpm.max() <= 8500.0
        assert result.cpu_cap.min() >= 0.1
        assert result.cpu_cap.max() <= 1.0

    def test_applied_never_exceeds_demand_or_cap(self, fast_schedule):
        result = run_closed_loop("rcoord", fast_schedule)
        assert np.all(result.applied_util <= result.demand + 1e-9)
        assert np.all(result.applied_util <= result.cpu_cap + 1e-9)


class TestSteadyTracking:
    def test_constant_load_converges_to_t_ref(self, fast_schedule):
        result = run_closed_loop(
            "rcoord", fast_schedule, workload=ConstantWorkload(0.5),
            duration=1500.0,
        )
        tail = result.junction_c[result.times > 900.0]
        # Settles within the quantization deadband around T_ref = 75.
        assert abs(tail.mean() - 75.0) < 2.0
        assert tail.max() - tail.min() < 3.0

    def test_constant_load_fan_does_not_limit_cycle(self, fast_schedule):
        result = run_closed_loop(
            "rcoord", fast_schedule, workload=ConstantWorkload(0.5),
            duration=1500.0,
        )
        report = analyze_stability(
            result.times, result.fan_speed_rpm, min_amplitude=500.0
        )
        assert not report.oscillatory


class TestCoordinationContrast:
    def test_ecoord_throttles_hardest(self, fast_schedule):
        workload = SquareWaveWorkload(low=0.1, high=0.7, half_period_s=300.0)
        ecoord = run_closed_loop("ecoord", fast_schedule, workload=workload)
        rcoord = run_closed_loop("rcoord", fast_schedule, workload=workload)
        assert ecoord.violation_percent > rcoord.violation_percent

    def test_ecoord_spends_least_fan_energy(self, fast_schedule):
        workload = SquareWaveWorkload(low=0.1, high=0.7, half_period_s=300.0)
        ecoord = run_closed_loop("ecoord", fast_schedule, workload=workload)
        rcoord = run_closed_loop("rcoord", fast_schedule, workload=workload)
        assert ecoord.fan_energy_j < rcoord.fan_energy_j

    def test_ssfan_reduces_violations_on_spiky_load(self, fast_schedule):
        atref = run_closed_loop("rcoord_atref", fast_schedule, seed=11)
        ssfan = run_closed_loop("rcoord_atref_ssfan", fast_schedule, seed=11)
        assert ssfan.violation_percent <= atref.violation_percent + 1.0


class TestSensingImpactOnControl:
    def test_larger_lag_degrades_tracking(self, fast_schedule):
        """More transport delay -> larger junction excursions (the core
        premise of the paper)."""
        workload = SquareWaveWorkload(low=0.1, high=0.7, half_period_s=300.0)
        excursions = {}
        for lag in (0.0, 20.0):
            cfg = ServerConfig().with_sensing(lag_s=lag)
            result = run_closed_loop(
                "rcoord", fast_schedule, workload=workload, config=cfg
            )
            excursions[lag] = result.max_junction_c
        assert excursions[20.0] >= excursions[0.0] - 0.5


class TestDeterminism:
    def test_same_seed_same_result(self, fast_schedule):
        a = run_closed_loop("rcoord_atref", fast_schedule, seed=5, duration=300.0)
        b = run_closed_loop("rcoord_atref", fast_schedule, seed=5, duration=300.0)
        assert np.array_equal(a.junction_c, b.junction_c)
        assert a.violation_percent == b.violation_percent

    def test_different_seed_different_noise(self, fast_schedule):
        a = run_closed_loop("rcoord", fast_schedule, seed=5, duration=300.0)
        b = run_closed_loop("rcoord", fast_schedule, seed=6, duration=300.0)
        assert not np.array_equal(a.demand, b.demand)
