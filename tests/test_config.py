"""Configuration dataclasses: Table I defaults, validation, serialization."""

from __future__ import annotations

import pytest

from repro.config import (
    ControlConfig,
    CpuPowerConfig,
    DieConfig,
    FanConfig,
    HeatSinkConfig,
    SensingConfig,
    ServerConfig,
    default_server_config,
    ideal_sensing_config,
)
from repro.errors import ConfigError, UnitsError


class TestTableIDefaults:
    """The defaults must match Table I of the paper."""

    def test_cpu_power_range(self):
        cpu = CpuPowerConfig()
        assert cpu.p_max_w == 160.0
        assert cpu.p_idle_w == 96.0
        assert cpu.p_dynamic_w == 64.0
        assert cpu.p_static_w == 96.0

    def test_fan_parameters(self):
        fan = FanConfig()
        assert fan.power_per_socket_w == 29.4
        assert fan.max_speed_rpm == 8500.0
        assert fan.sample_interval_s == 1.0

    def test_heatsink_resistance_law(self):
        hs = HeatSinkConfig()
        assert hs.r_base_k_per_w == 0.141
        assert hs.r_coeff == 132.51
        assert hs.r_exponent == 0.923
        assert hs.tau_at_max_airflow_s == 60.0

    def test_die_time_constant(self):
        assert DieConfig().time_constant_s == 0.1

    def test_sensing_nonidealities(self):
        sensing = SensingConfig()
        assert sensing.lag_s == 10.0
        assert sensing.quantization_step_c == 1.0
        assert sensing.adc_bits == 8

    def test_control_intervals(self):
        control = ControlConfig()
        assert control.cpu_interval_s == 1.0
        assert control.fan_interval_s == 30.0
        assert control.t_ref_fan_c == 75.0

    def test_adc_full_scale(self):
        sensing = SensingConfig()
        assert sensing.adc_max_c == 255.0


class TestValidation:
    def test_cpu_max_below_idle_rejected(self):
        with pytest.raises(ConfigError):
            CpuPowerConfig(p_max_w=50.0, p_idle_w=96.0)

    def test_fan_min_above_max_rejected(self):
        with pytest.raises(ConfigError):
            FanConfig(min_speed_rpm=9000.0)

    def test_negative_fan_power_rejected(self):
        with pytest.raises(UnitsError):
            FanConfig(power_per_socket_w=-1.0)

    def test_adc_bits_out_of_range(self):
        with pytest.raises(ConfigError):
            SensingConfig(adc_bits=0)
        with pytest.raises(ConfigError):
            SensingConfig(adc_bits=64)

    def test_control_deadzone_order(self):
        with pytest.raises(ConfigError):
            ControlConfig(t_low_c=85.0, t_high_c=80.0)

    def test_cap_step_bounds(self):
        with pytest.raises(ConfigError):
            ControlConfig(cap_step=0.0)
        with pytest.raises(ConfigError):
            ControlConfig(cap_step=1.5)

    def test_n_sockets_positive(self):
        with pytest.raises(ConfigError):
            ServerConfig(n_sockets=0)

    def test_negative_lag_rejected(self):
        with pytest.raises(UnitsError):
            SensingConfig(lag_s=-1.0)


class TestSerialization:
    def test_roundtrip(self):
        config = ServerConfig()
        rebuilt = ServerConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_roundtrip_with_overrides(self):
        config = ServerConfig(ambient_c=30.0, n_sockets=2)
        rebuilt = ServerConfig.from_dict(config.to_dict())
        assert rebuilt.ambient_c == 30.0
        assert rebuilt.n_sockets == 2

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            ServerConfig.from_dict({"definitely_not_a_key": 1})

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigError):
            ServerConfig.from_dict({"cpu": 42})


class TestHelpers:
    def test_with_sensing_returns_modified_copy(self):
        config = ServerConfig()
        modified = config.with_sensing(lag_s=0.0)
        assert modified.sensing.lag_s == 0.0
        assert config.sensing.lag_s == 10.0  # original untouched

    def test_with_control_returns_modified_copy(self):
        config = ServerConfig()
        modified = config.with_control(fan_interval_s=10.0)
        assert modified.control.fan_interval_s == 10.0
        assert config.control.fan_interval_s == 30.0

    def test_default_server_config(self):
        assert default_server_config() == ServerConfig()

    def test_ideal_sensing_has_no_nonidealities(self):
        ideal = ideal_sensing_config()
        assert ideal.lag_s == 0.0
        assert ideal.quantization_step_c == 0.0
        assert ideal.noise_std_c == 0.0

    def test_config_is_hashable(self):
        # The tuner's lru_cache requires hashable configs.
        assert hash(ServerConfig()) == hash(ServerConfig())
