"""RC node, heat sink, and die models (Eqns 2-3 and Table I laws)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DieConfig, HeatSinkConfig
from repro.errors import ThermalModelError, UnitsError
from repro.thermal.die import CpuDie
from repro.thermal.heatsink import HeatSink
from repro.thermal.rc_node import RCNode


class TestRCNode:
    def test_steady_state_formula(self):
        node = RCNode(0.2, 100.0, 25.0)
        # Eqn (3): T_ss = T_ref + R * P
        assert node.steady_state_c(25.0, 100.0) == pytest.approx(45.0)

    def test_step_toward_steady_state(self):
        node = RCNode(0.2, 100.0, 25.0)
        before = abs(node.temperature_c - node.steady_state_c(25.0, 100.0))
        node.step(5.0, 25.0, 100.0)
        after = abs(node.temperature_c - node.steady_state_c(25.0, 100.0))
        assert after < before

    def test_exact_exponential_update(self):
        node = RCNode(0.2, 100.0, 25.0)
        node.step(10.0, 25.0, 100.0)
        tau = 0.2 * 100.0
        expected = 45.0 + (25.0 - 45.0) * math.exp(-10.0 / tau)
        assert node.temperature_c == pytest.approx(expected)

    def test_large_step_reaches_steady_state(self):
        node = RCNode(0.2, 100.0, 25.0)
        node.step(1e6, 25.0, 100.0)
        assert node.temperature_c == pytest.approx(45.0, abs=1e-6)

    def test_unconditional_stability_with_tiny_time_constant(self):
        # The exact integrator cannot blow up even with dt >> tau.
        node = RCNode(0.001, 1.0, 25.0)  # tau = 1 ms
        node.step(100.0, 25.0, 50.0)
        assert node.temperature_c == pytest.approx(25.05, abs=1e-6)

    def test_time_constant_property(self):
        node = RCNode(0.5, 60.0, 25.0)
        assert node.time_constant_s == pytest.approx(30.0)

    def test_resistance_setter_validates(self):
        node = RCNode(0.5, 60.0, 25.0)
        with pytest.raises(UnitsError):
            node.resistance_k_per_w = -1.0

    def test_reset(self):
        node = RCNode(0.5, 60.0, 25.0)
        node.reset(70.0)
        assert node.temperature_c == 70.0

    @settings(max_examples=25)
    @given(
        st.floats(0.05, 1.0),
        st.floats(10.0, 500.0),
        st.floats(0.0, 200.0),
        st.floats(0.1, 100.0),
    )
    def test_monotone_approach_property(self, r, c, power, dt):
        """Each step moves the temperature strictly toward steady state."""
        node = RCNode(r, c, 25.0)
        t_ss = node.steady_state_c(25.0, power)
        gap_before = node.temperature_c - t_ss
        node.step(dt, 25.0, power)
        gap_after = node.temperature_c - t_ss
        assert abs(gap_after) <= abs(gap_before) + 1e-9
        # No overshoot: the sign of the gap never flips.
        if gap_before != 0.0:
            assert gap_after * gap_before >= 0.0


class TestHeatSink:
    def make(self) -> HeatSink:
        return HeatSink(HeatSinkConfig(), max_fan_speed_rpm=8500.0,
                        initial_temp_c=28.0)

    def test_resistance_matches_table_i_formula(self):
        hs = self.make()
        expected = 0.141 + 132.51 / 2000.0**0.923
        assert hs.resistance_at(2000.0) == pytest.approx(expected)

    def test_resistance_decreases_with_speed(self):
        hs = self.make()
        assert hs.resistance_at(8000.0) < hs.resistance_at(2000.0)

    def test_capacitance_from_tau_at_max_airflow(self):
        hs = self.make()
        # tau = R(8500) * C must equal 60 s (Table I).
        assert hs.time_constant_at(8500.0) == pytest.approx(60.0)

    def test_time_constant_grows_at_low_speed(self):
        hs = self.make()
        assert hs.time_constant_at(2000.0) > hs.time_constant_at(6000.0)

    def test_resistance_slope_negative(self):
        hs = self.make()
        assert hs.resistance_slope_at(3000.0) < 0.0

    def test_resistance_slope_matches_finite_difference(self):
        hs = self.make()
        eps = 0.1
        numeric = (hs.resistance_at(3000.0 + eps) - hs.resistance_at(3000.0 - eps)) / (
            2.0 * eps
        )
        assert hs.resistance_slope_at(3000.0) == pytest.approx(numeric, rel=1e-5)

    def test_zero_speed_rejected(self):
        hs = self.make()
        with pytest.raises(ThermalModelError):
            hs.resistance_at(0.0)

    def test_step_converges_to_steady_state(self):
        hs = self.make()
        for _ in range(2000):
            hs.step(1.0, 3000.0, 28.0, 120.0)
        assert hs.temperature_c == pytest.approx(
            hs.steady_state_c(3000.0, 28.0, 120.0), abs=1e-3
        )

    def test_faster_fan_cools_steady_state(self):
        hs = self.make()
        assert hs.steady_state_c(8000.0, 28.0, 120.0) < hs.steady_state_c(
            2000.0, 28.0, 120.0
        )


class TestCpuDie:
    def test_capacitance_derived_from_tau(self):
        die = CpuDie(DieConfig(), initial_temp_c=50.0)
        assert die.time_constant_s == pytest.approx(0.1)

    def test_steady_state(self):
        die = CpuDie(DieConfig(r_die_k_per_w=0.15), initial_temp_c=50.0)
        assert die.steady_state_c(60.0, 100.0) == pytest.approx(75.0)

    def test_fast_settling(self):
        # tau = 0.1 s: after 1 s the die is settled to within exp(-10).
        die = CpuDie(DieConfig(), initial_temp_c=50.0)
        die.step(1.0, 60.0, 100.0)
        assert die.temperature_c == pytest.approx(
            die.steady_state_c(60.0, 100.0), abs=5e-3
        )

    def test_reset(self):
        die = CpuDie(DieConfig(), initial_temp_c=50.0)
        die.reset(80.0)
        assert die.temperature_c == 80.0
