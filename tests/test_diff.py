"""First-divergence locator (repro.obs.diff): API and CLI.

The acceptance contract: on a deliberately perturbed fused-backend run,
the diff names the *exact* first divergent ``(step, channel)`` - not
merely "the runs differ".
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.config import FleetConfig
from repro.errors import ObsError
from repro.fleet import FleetSimulator, build_fleet_scenario, homogeneous_rack
from repro.obs.diff import (
    DECISION_CHANNELS,
    Divergence,
    diff_channels,
    diff_fleet_results,
    diff_results,
    diff_vs_golden,
    main,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _fused_result(duration_s=60.0, seed=7, n_servers=4):
    rack = homogeneous_rack(
        n_servers=n_servers, duration_s=duration_s, seed=seed
    )
    sim = FleetSimulator(rack, dt_s=0.1, record_decimation=5, backend="fused")
    return sim.run(duration_s, label="fused")


def _as_payload(result):
    """A FleetResult as the golden-style ``{"servers": [...]}`` mapping."""
    return {
        "servers": [
            {"channels": {k: np.asarray(v).tolist() for k, v in r.channels.items()}}
            for r in result.server_results
        ]
    }


class TestDiffChannels:
    def test_identical_returns_none(self):
        a = {"time": [0.0, 1.0], "tmeas": [50.0, 51.0]}
        assert diff_channels(a, dict(a)) is None

    def test_reports_first_index_and_time(self):
        a = {"time": [0.0, 1.0, 2.0], "tmeas": [50.0, 51.0, 52.0]}
        b = {"time": [0.0, 1.0, 2.0], "tmeas": [50.0, 51.0, 99.0]}
        found = diff_channels(a, b, where="server 0")
        assert found == Divergence(
            index=2, channel="tmeas", a=52.0, b=99.0, time_s=2.0, where="server 0"
        )
        assert "step 2" in found.describe()
        assert "'tmeas'" in found.describe()
        assert "[server 0]" in found.describe()
        assert "t=2" in found.describe()

    def test_ties_resolve_to_recording_order(self):
        # Both channels diverge at index 1; "tmeas" precedes "fan_speed"
        # in the telemetry recording order.
        a = {"fan_speed": [1.0, 2.0], "tmeas": [50.0, 51.0]}
        b = {"fan_speed": [1.0, 9.0], "tmeas": [50.0, 99.0]}
        assert diff_channels(a, b).channel == "tmeas"

    def test_earlier_index_wins_over_channel_order(self):
        a = {"tmeas": [50.0, 51.0, 52.0], "fan_speed": [1.0, 2.0, 3.0]}
        b = {"tmeas": [50.0, 51.0, 99.0], "fan_speed": [1.0, 9.0, 3.0]}
        found = diff_channels(a, b)
        assert (found.index, found.channel) == (1, "fan_speed")

    def test_nan_equals_nan(self):
        a = {"tmeas": [50.0, math.nan, 52.0]}
        b = {"tmeas": [50.0, math.nan, 52.0]}
        assert diff_channels(a, b) is None
        c = {"tmeas": [50.0, math.nan, math.nan]}
        found = diff_channels(a, c)
        assert found.index == 2

    def test_tolerance_mode(self):
        a = {"junction": [60.0, 61.0]}
        b = {"junction": [60.0, 61.0 + 1e-9]}
        assert diff_channels(a, b) is not None  # exact mode sees it
        assert diff_channels(a, b, atol=1e-6) is None
        assert diff_channels(a, b, rtol=1e-6) is None

    def test_channel_subset_and_errors(self):
        a = {"tmeas": [50.0], "junction": [60.0]}
        b = {"tmeas": [50.0], "junction": [99.0]}
        assert diff_channels(a, b, channels=["tmeas"]) is None
        with pytest.raises(ObsError):
            diff_channels(a, b, channels=["nope"])
        with pytest.raises(ObsError):
            diff_channels({"x": [1.0]}, {"y": [1.0]})
        with pytest.raises(ObsError):
            diff_channels({"tmeas": [1.0]}, {"tmeas": [1.0, 2.0]})


class TestDiffResults:
    def test_identical_runs_return_none(self):
        a = _fused_result()
        b = _fused_result()
        assert diff_fleet_results(a, b) is None
        assert diff_results(a.server(0), b.server(0)) is None

    def test_perturbed_fused_run_pinpoints_step_and_channel(self):
        """The acceptance case: a deliberate flip is located exactly."""
        result = _fused_result()
        payload_a = _as_payload(result)
        payload_b = _as_payload(result)
        chan = payload_b["servers"][2]["channels"]["tmeas"]
        step = 37
        chan[step] += 1.0  # one quantization code on one server
        found = diff_fleet_results(payload_a, payload_b)
        assert found is not None
        assert found.index == step
        assert found.channel == "tmeas"
        assert found.where == "server 2"
        times = payload_a["servers"][2]["channels"]["time"]
        assert found.time_s == times[step]
        assert found.b == found.a + 1.0

    def test_earliest_server_wins(self):
        result = _fused_result()
        payload_a = _as_payload(result)
        payload_b = _as_payload(result)
        payload_b["servers"][3]["channels"]["fan_speed"][10] += 1.0
        payload_b["servers"][1]["channels"]["fan_speed"][5] += 1.0
        found = diff_fleet_results(payload_a, payload_b)
        assert (found.index, found.where) == (5, "server 1")

    def test_decision_only_ignores_thermal_drift(self):
        result = _fused_result()
        payload_a = _as_payload(result)
        payload_b = _as_payload(result)
        payload_b["servers"][0]["channels"]["junction"][12] += 1e-7
        assert (
            diff_fleet_results(payload_a, payload_b, channels=DECISION_CHANNELS)
            is None
        )
        assert diff_fleet_results(payload_a, payload_b) is not None


class TestDiffVsGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        fixture = json.loads((GOLDEN_DIR / "rack_rcoord.json").read_text())
        p = fixture["params"]
        rack = build_fleet_scenario(
            p["scenario"],
            n_servers=p["n_servers"],
            duration_s=p["duration_s"],
            seed=p["seed"],
            fleet=FleetConfig(
                n_servers=p["n_servers"],
                recirc_fraction=p["recirc_fraction"],
            ),
            scheme=fixture["scheme"],
        )
        sim = FleetSimulator(
            rack,
            dt_s=p["dt_s"],
            record_decimation=p["record_decimation"],
            backend="vectorized",
        )
        return fixture, sim.run(p["duration_s"], label="rcoord")

    def test_fresh_run_matches_fixture(self, golden):
        fixture, result = golden
        assert diff_vs_golden(result, fixture) is None

    def test_perturbed_fixture_located_on_subsampled_grid(self, golden):
        fixture, result = golden
        tampered = json.loads(json.dumps(fixture))
        chan = tampered["servers"][1]["channels"]["fan_speed"]
        chan[4] += 10.0
        found = diff_vs_golden(result, tampered)
        assert (found.index, found.channel, found.where) == (
            4,
            "fan_speed",
            "server 1",
        )
        # Index lives on the fixture's subsampled grid.
        stride = fixture["subsample"]
        recorded = np.asarray(result.server(1).channels["time"])
        assert found.time_s == recorded[::stride][4]


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_exit_0(self, tmp_path, capsys):
        result = _fused_result(duration_s=20.0)
        a = self._write(tmp_path, "a.json", _as_payload(result))
        b = self._write(tmp_path, "b.json", _as_payload(result))
        assert main([a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_exit_1_names_step_and_channel(self, tmp_path, capsys):
        result = _fused_result(duration_s=20.0)
        payload = _as_payload(result)
        a = self._write(tmp_path, "a.json", payload)
        tampered = json.loads(json.dumps(payload))
        tampered["servers"][0]["channels"]["cpu_cap"][9] -= 0.5
        b = self._write(tmp_path, "b.json", tampered)
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "step 9" in out
        assert "'cpu_cap'" in out
        assert "server 0" in out

    def test_decision_only_flag(self, tmp_path, capsys):
        result = _fused_result(duration_s=20.0)
        payload = _as_payload(result)
        a = self._write(tmp_path, "a.json", payload)
        tampered = json.loads(json.dumps(payload))
        tampered["servers"][0]["channels"]["junction"][3] += 1e-7
        b = self._write(tmp_path, "b.json", tampered)
        assert main([a, b, "--decision-only"]) == 0
        assert main([a, b]) == 1
        capsys.readouterr()

    def test_tolerance_flags(self, tmp_path, capsys):
        payload = {"channels": {"time": [0.0, 1.0], "junction": [60.0, 61.0]}}
        a = self._write(tmp_path, "a.json", payload)
        tampered = json.loads(json.dumps(payload))
        tampered["channels"]["junction"][1] += 1e-9
        b = self._write(tmp_path, "b.json", tampered)
        assert main([a, b]) == 1
        assert main([a, b, "--atol", "1e-6"]) == 0
        capsys.readouterr()

    def test_bad_input_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        ok = self._write(
            tmp_path, "ok.json", {"channels": {"tmeas": [1.0]}}
        )
        assert main([missing, ok]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        assert main([str(bad), ok]) == 2
        short = self._write(
            tmp_path, "short.json", {"channels": {"tmeas": [1.0, 2.0]}}
        )
        assert main([ok, short]) == 2  # shape mismatch is an input error
        capsys.readouterr()

    def test_channels_flag(self, tmp_path, capsys):
        payload = {"channels": {"tmeas": [50.0], "junction": [60.0]}}
        a = self._write(tmp_path, "a.json", payload)
        tampered = json.loads(json.dumps(payload))
        tampered["channels"]["junction"][0] = 99.0
        b = self._write(tmp_path, "b.json", tampered)
        assert main([a, b, "--channels", "tmeas"]) == 0
        assert main([a, b]) == 1
        capsys.readouterr()
