"""Unit helpers: conversions, validation, clamping."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import UnitsError


class TestConversions:
    def test_celsius_kelvin_roundtrip(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_rpm_rps_roundtrip(self):
        assert units.rpm_to_rps(8500.0) == pytest.approx(141.6667, rel=1e-4)
        assert units.rps_to_rpm(units.rpm_to_rps(1234.5)) == pytest.approx(1234.5)

    @given(st.floats(-200.0, 200.0))
    def test_kelvin_roundtrip_property(self, temp_c):
        back = units.kelvin_to_celsius(units.celsius_to_kelvin(temp_c))
        assert back == pytest.approx(temp_c, abs=1e-9)


class TestChecks:
    def test_temperature_accepts_ambient(self):
        assert units.check_temperature(25.0) == 25.0

    def test_temperature_rejects_below_absolute_zero(self):
        with pytest.raises(UnitsError):
            units.check_temperature(-300.0)

    def test_temperature_rejects_nan(self):
        with pytest.raises(UnitsError):
            units.check_temperature(float("nan"))

    def test_temperature_rejects_inf(self):
        with pytest.raises(UnitsError):
            units.check_temperature(float("inf"))

    def test_fan_speed_rejects_negative(self):
        with pytest.raises(UnitsError):
            units.check_fan_speed(-1.0)

    def test_fan_speed_accepts_zero(self):
        assert units.check_fan_speed(0.0) == 0.0

    def test_power_rejects_negative(self):
        with pytest.raises(UnitsError):
            units.check_power(-0.1)

    def test_duration_rejects_zero(self):
        with pytest.raises(UnitsError):
            units.check_duration(0.0)

    def test_duration_accepts_small(self):
        assert units.check_duration(1e-6) == 1e-6

    def test_utilization_bounds(self):
        assert units.check_utilization(0.0) == 0.0
        assert units.check_utilization(1.0) == 1.0
        with pytest.raises(UnitsError):
            units.check_utilization(1.0001)
        with pytest.raises(UnitsError):
            units.check_utilization(-0.0001)

    def test_positive_rejects_zero(self):
        with pytest.raises(UnitsError):
            units.check_positive(0.0)

    def test_nonnegative_accepts_zero(self):
        assert units.check_nonnegative(0.0) == 0.0

    def test_error_message_includes_name(self):
        with pytest.raises(UnitsError, match="my_quantity"):
            units.check_positive(-1.0, "my_quantity")


class TestClamp:
    def test_clamp_inside(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_clamp_low(self):
        assert units.clamp(-5.0, 0.0, 10.0) == 0.0

    def test_clamp_high(self):
        assert units.clamp(50.0, 0.0, 10.0) == 10.0

    def test_clamp_empty_interval_raises(self):
        with pytest.raises(UnitsError):
            units.clamp(1.0, 10.0, 0.0)

    @given(
        st.floats(-1e6, 1e6),
        st.floats(-1e3, 1e3),
        st.floats(0.0, 1e3),
    )
    def test_clamp_always_within_bounds(self, value, low, width):
        high = low + width
        result = units.clamp(value, low, high)
        assert low <= result <= high

    @given(st.floats(-1e6, 1e6))
    def test_clamp_identity_inside(self, value):
        assert units.clamp(value, -1e7, 1e7) == value

    def test_finite_check_message(self):
        with pytest.raises(UnitsError, match="finite"):
            units.check_nonnegative(math.inf)
