"""Fan controllers: the adaptive PID and the threshold/deadzone baselines."""

from __future__ import annotations

import pytest

from repro.core.fan_baselines import (
    DeadzoneFanController,
    SingleThresholdFanController,
    StaticFanController,
)
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainRegion, GainSchedule
from repro.core.pid import PIDGains
from repro.core.quantization import QuantizationGuard
from repro.errors import ControlError

LIMITS = (1000.0, 8500.0)


def make_adaptive(
    schedule=None, guard=None, slew=None, initial=3000.0
) -> AdaptivePIDFanController:
    if schedule is None:
        schedule = GainSchedule(
            [
                GainRegion(2000.0, PIDGains(kp=300.0, ki=6.0, kd=0.0)),
                GainRegion(6000.0, PIDGains(kp=2400.0, ki=48.0, kd=0.0)),
            ]
        )
    return AdaptivePIDFanController(
        schedule=schedule,
        t_ref_c=75.0,
        fan_limits_rpm=LIMITS,
        interval_s=30.0,
        initial_speed_rpm=initial,
        quantization_guard=guard,
        slew_limit_rpm=slew,
    )


class TestAdaptivePID:
    def test_hot_reading_raises_speed(self):
        ctrl = make_adaptive()
        proposal = ctrl.propose(30.0, 78.0)
        assert proposal > 3000.0

    def test_cold_reading_lowers_speed(self):
        ctrl = make_adaptive()
        proposal = ctrl.propose(30.0, 72.0)
        assert proposal < 3000.0

    def test_guard_holds_inside_deadband(self):
        ctrl = make_adaptive(guard=QuantizationGuard(1.0))
        assert ctrl.propose(30.0, 75.5) == 3000.0

    def test_guard_freezes_integral(self):
        ctrl = make_adaptive(guard=QuantizationGuard(1.0))
        ctrl.propose(30.0, 75.5)
        assert ctrl.pid.integral == 0.0

    def test_error_shaping_reduces_response(self):
        plain = make_adaptive()
        shaped = make_adaptive(guard=QuantizationGuard(1.0))
        assert shaped.propose(30.0, 78.0) < plain.propose(30.0, 78.0)

    def test_slew_limit_bounds_change(self):
        ctrl = make_adaptive(slew=500.0)
        proposal = ctrl.propose(30.0, 85.0)
        assert proposal == 3500.0

    def test_direction_guard_blocks_inverted_proposals(self):
        """A hot reading can never produce a proposal below applied speed."""
        ctrl = make_adaptive(guard=QuantizationGuard(1.0))
        # Wind the integral strongly negative with cold readings.
        for k in range(1, 6):
            proposal = ctrl.propose(30.0 * k, 70.0)
            ctrl.notify_applied(proposal)
        applied = ctrl.applied_speed_rpm
        hot = ctrl.propose(999.0, 79.0)
        assert hot >= applied

    def test_notify_applied_anchors_position(self):
        ctrl = make_adaptive()
        ctrl.notify_applied(5000.0)
        assert ctrl.applied_speed_rpm == 5000.0

    def test_notify_applied_clamps(self):
        ctrl = make_adaptive()
        ctrl.notify_applied(99999.0)
        assert ctrl.applied_speed_rpm == 8500.0

    def test_region_change_resets_integral_and_rebases(self):
        ctrl = make_adaptive(initial=3000.0)
        # Build up some integral in region 0.
        ctrl.propose(30.0, 78.0)
        assert ctrl.pid.integral != 0.0
        # Move into region 1 and propose again.
        ctrl.notify_applied(7000.0)
        ctrl.propose(60.0, 75.0)
        assert ctrl.region_index == 1
        assert ctrl.pid.output_offset == 7000.0

    def test_proposal_within_limits(self):
        ctrl = make_adaptive()
        assert ctrl.propose(30.0, 120.0) <= 8500.0
        ctrl2 = make_adaptive()
        assert ctrl2.propose(30.0, 0.0) >= 1000.0

    def test_set_reference(self):
        ctrl = make_adaptive()
        ctrl.set_reference(78.0)
        assert ctrl.t_ref_c == 78.0
        # Reading of 78 is now on-target.
        assert ctrl.propose(30.0, 78.0) == pytest.approx(3000.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ControlError):
            AdaptivePIDFanController(
                schedule=GainSchedule.fixed(PIDGains(1.0)),
                t_ref_c=75.0,
                fan_limits_rpm=(8500.0, 1000.0),
            )

    def test_invalid_slew_rejected(self):
        with pytest.raises(ControlError):
            make_adaptive(slew=-5.0)

    def test_default_initial_speed_is_midrange(self):
        ctrl = AdaptivePIDFanController(
            schedule=GainSchedule.fixed(PIDGains(1.0)),
            t_ref_c=75.0,
            fan_limits_rpm=LIMITS,
        )
        assert ctrl.applied_speed_rpm == pytest.approx(4750.0)


class TestStaticFan:
    def test_constant(self):
        ctrl = StaticFanController(4000.0)
        assert ctrl.propose(0.0, 90.0) == 4000.0
        assert ctrl.propose(100.0, 40.0) == 4000.0


class TestSingleThreshold:
    def test_switches_at_threshold(self):
        ctrl = SingleThresholdFanController(80.0, 2000.0, 7000.0)
        assert ctrl.propose(0.0, 79.9) == 2000.0
        assert ctrl.propose(1.0, 80.0) == 7000.0

    def test_order_validated(self):
        with pytest.raises(ControlError):
            SingleThresholdFanController(80.0, 7000.0, 2000.0)


class TestDeadzone:
    def make(self) -> DeadzoneFanController:
        return DeadzoneFanController(
            t_low_c=74.0,
            t_high_c=76.0,
            step_rpm=500.0,
            fan_limits_rpm=LIMITS,
            initial_speed_rpm=3000.0,
        )

    def test_holds_inside_zone(self):
        ctrl = self.make()
        assert ctrl.propose(0.0, 75.0) == 3000.0

    def test_steps_up_above_zone(self):
        ctrl = self.make()
        assert ctrl.propose(0.0, 77.0) == 3500.0

    def test_steps_down_below_zone(self):
        ctrl = self.make()
        assert ctrl.propose(0.0, 73.0) == 2500.0

    def test_saturates_at_limits(self):
        ctrl = self.make()
        for _ in range(50):
            ctrl.propose(0.0, 90.0)
        assert ctrl.speed_rpm == 8500.0

    def test_thresholds_validated(self):
        with pytest.raises(ControlError):
            DeadzoneFanController(80.0, 70.0, 500.0, LIMITS)

    def test_notify_applied(self):
        ctrl = self.make()
        ctrl.notify_applied(4200.0)
        assert ctrl.speed_rpm == 4200.0
