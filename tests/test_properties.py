"""Hypothesis property tests on system-level invariants.

These complement the per-module property tests with randomized
closed-loop invariants: whatever the (bounded) workload, the DTM must
keep the plant in a valid state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ServerConfig
from repro.core.base import ControlInputs, ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.rules import RuleBasedCoordinator
from repro.core.uncoordinated import UncoordinatedCoordinator
from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.thermal.server import ServerThermalModel


class TestPlantProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 1.0), st.floats(1000.0, 8500.0)),
            min_size=1,
            max_size=40,
        )
    )
    def test_junction_bounded_by_extremes(self, steps):
        """The junction always stays between the coldest and hottest
        steady states reachable with the commanded inputs."""
        plant = ServerThermalModel(ServerConfig())
        coldest = plant.steady_state_junction_c(0.0, 8500.0)
        hottest = plant.steady_state_junction_c(1.0, 1000.0)
        lo = min(coldest, plant.junction_c)
        hi = max(hottest, plant.junction_c)
        for util, speed in steps:
            plant.step(1.0, util, speed)
            assert lo - 1e-6 <= plant.junction_c <= hi + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(1000.0, 8500.0))
    def test_settle_matches_long_simulation(self, util, speed):
        a = ServerThermalModel(ServerConfig())
        a.settle(util, speed)
        b = ServerThermalModel(ServerConfig())
        for _ in range(400):
            b.step(5.0, util, speed)
        assert a.junction_c == pytest.approx(b.junction_c, abs=0.05)


class TestCoordinatorProperties:
    @settings(max_examples=50)
    @given(
        st.floats(1000.0, 8500.0),
        st.floats(0.1, 1.0),
        st.one_of(st.none(), st.floats(1000.0, 8500.0)),
        st.one_of(st.none(), st.floats(0.1, 1.0)),
        st.floats(60.0, 95.0),
    )
    def test_rule_based_moves_at_most_one_knob(
        self, fan, cap, fan_prop, cap_prop, tmeas
    ):
        current = ControlState(fan_speed_rpm=fan, cpu_cap=cap)
        inputs = ControlInputs(time_s=1.0, tmeas_c=tmeas, measured_util=0.5)
        result = RuleBasedCoordinator().coordinate(
            current, fan_prop, cap_prop, inputs
        )
        moved = (result.fan_speed_rpm != fan) + (result.cpu_cap != cap)
        assert moved <= 1

    @settings(max_examples=50)
    @given(
        st.floats(1000.0, 8500.0),
        st.floats(0.1, 1.0),
        st.one_of(st.none(), st.floats(1000.0, 8500.0)),
        st.one_of(st.none(), st.floats(0.1, 1.0)),
    )
    def test_uncoordinated_applies_exactly_the_proposals(
        self, fan, cap, fan_prop, cap_prop
    ):
        current = ControlState(fan_speed_rpm=fan, cpu_cap=cap)
        inputs = ControlInputs(time_s=1.0, tmeas_c=75.0, measured_util=0.5)
        result = UncoordinatedCoordinator().coordinate(
            current, fan_prop, cap_prop, inputs
        )
        assert result.fan_speed_rpm == (fan if fan_prop is None else fan_prop)
        assert result.cpu_cap == (cap if cap_prop is None else cap_prop)


class TestCapperProperties:
    @settings(max_examples=50)
    @given(
        st.floats(60.0, 95.0),
        st.floats(0.1, 1.0),
    )
    def test_cap_stays_in_range(self, tmeas, cap):
        capper = DeadzoneCpuCapper(76.0, 80.0, step=0.02, cap_min=0.1)
        proposal = capper.propose(0.0, tmeas, cap)
        assert 0.1 <= proposal <= 1.0
        # One decision moves the cap by at most one step.
        assert abs(proposal - cap) <= 0.02 + 1e-12


class TestSensingChainProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(st.floats(20.0, 120.0), min_size=5, max_size=60),
        st.integers(0, 15),
    )
    def test_quantize_then_delay_commutes(self, values, delay_steps):
        """Quantizing before or after the (noise-free) delay line yields
        the same firmware-visible sequence."""
        adc = AdcQuantizer(step=1.0, bits=8)
        line_a = DelayLine(float(delay_steps), initial_value=0.0)
        line_b = DelayLine(float(delay_steps), initial_value=0.0)
        out_a = []
        out_b = []
        for i, value in enumerate(values):
            t = float(i)
            line_a.push(t, adc.quantize(value))
            line_b.push(t, value)
            out_a.append(line_a.read(t))
            out_b.append(adc.quantize(line_b.read(t)))
        assert out_a == out_b


class TestEngineConservation:
    def test_cpu_energy_matches_applied_utilization(self, fast_schedule):
        """CPU energy integrates Eqn 1 of the applied utilization."""
        from repro.sim.engine import Simulator
        from repro.sim.scenarios import (
            build_global_controller,
            build_plant,
            build_sensor,
        )
        from repro.workload.synthetic import ConstantWorkload

        cfg = ServerConfig()
        controller = build_global_controller("rcoord", cfg, fast_schedule)
        sim = Simulator(
            build_plant(cfg),
            build_sensor(cfg),
            ConstantWorkload(0.5),
            controller,
            dt_s=0.5,
        )
        result = sim.run(200.0)
        expected = np.trapezoid(
            96.0 + 64.0 * result.applied_util, result.times
        )
        assert result.cpu_energy_j == pytest.approx(expected, rel=0.02)
