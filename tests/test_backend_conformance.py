"""Property-based backend-conformance suite: the two-tier contract.

``docs/backends.md`` formalizes equivalence between the three execution
backends as two tiers:

* **Tier A** (scalar vs. vectorized): *bit-for-bit* - every telemetry
  channel, energy total, and summary agrees to the last bit, whatever
  the topology, workload, scheme, or fault schedule.
* **Tier B** (fused vs. vectorized): decision channels (measurements,
  fan commands, caps, applied utilization, set-points, timestamps) stay
  bit-for-bit, while the window-scanned thermal trajectories and the
  trapezoid energy totals are tolerance-bounded (the closed-form scan
  reorders arithmetic; measured drift is ~1e-13, the bounds below keep
  three orders of margin).

The randomized tests draw topologies (rack width, recirculation
fraction), workloads/seeds, Table III schemes, and fault schedules from
hypothesis; the deterministic tests pin every scheme on the array lane
(zero controller fallbacks), scalar-resume-after-fused sync-back, and
the ``REPRO_DISABLE_NUMBA`` scan-kernel gate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FleetConfig, RoomConfig
from repro.faults.events import FaultEvent, FaultSchedule
from repro.fleet import FleetSimulator, build_fleet_scenario
from repro.room import RoomSimulator, uniform_room
from repro.sim.backends import (
    batch_backend_names,
    fused_scan_impl,
    numba_available,
    numba_disabled,
)

_DT = 0.1

#: Table III coordination schemes; all five must ride the array lane.
SCHEMES = (
    "uncoordinated",
    "rcoord",
    "rcoord_atref",
    "ecoord",
    "rcoord_atref_ssfan",
)

#: Channels the fused backend must reproduce bit-for-bit (tier B).
EXACT_CHANNELS = (
    "applied", "cpu_cap", "demand", "fan_speed", "t_ref", "time", "tmeas",
)
#: Channels covered by the tier-B thermal tolerance.
THERMAL_CHANNELS = ("junction", "heatsink")

#: Tier-B bounds, with ~3 orders of margin over measured drift (~1e-13
#: absolute on trajectories, ~1e-14 relative on energies).
THERMAL_ATOL = 1e-9
ENERGY_RTOL = 1e-11
INLET_ATOL = 1e-9


def _rack(scheme, n=4, seed=11, recirc=0.3, duration=60.0):
    return build_fleet_scenario(
        "homogeneous",
        n_servers=n,
        duration_s=duration,
        seed=seed,
        fleet=FleetConfig(n_servers=n, recirc_fraction=recirc),
        scheme=scheme,
    )


def _run(backend, scheme, n=4, seed=11, recirc=0.3, duration=60.0,
         dec=5, faults=None):
    sim = FleetSimulator(
        _rack(scheme, n=n, seed=seed, recirc=recirc, duration=duration),
        dt_s=_DT,
        record_decimation=dec,
        backend=backend,
        faults=faults,
    )
    result = sim.run(duration, label=f"{scheme}/{backend}")
    assert result.extras["backend"] == backend
    return result


def assert_tier_a(scalar, vectorized):
    """Scalar and vectorized results must agree to the last bit."""
    assert scalar.n_servers == vectorized.n_servers
    for i in range(scalar.n_servers):
        rs, rv = scalar.server(i), vectorized.server(i)
        for name, channel in rs.channels.items():
            assert np.array_equal(
                channel, rv.channels[name], equal_nan=True
            ), f"tier A: server {i} channel {name} diverged"
        assert rs.summary() == rv.summary(), f"tier A: server {i} summary"
    assert scalar.mean_inlet_c == vectorized.mean_inlet_c
    if "faults" in scalar.extras or "faults" in vectorized.extras:
        assert scalar.extras["faults"] == vectorized.extras["faults"]


def assert_tier_b(vectorized, fused):
    """Fused must match vectorized exactly on decisions, within
    tolerance on window-scanned thermals and trapezoid energies."""
    assert fused.n_servers == vectorized.n_servers
    for i in range(vectorized.n_servers):
        rv, rf = vectorized.server(i), fused.server(i)
        for name in EXACT_CHANNELS:
            assert np.array_equal(
                rv.channels[name], rf.channels[name], equal_nan=True
            ), f"tier B: server {i} decision channel {name} diverged"
        for name in THERMAL_CHANNELS:
            drift = np.max(np.abs(rv.channels[name] - rf.channels[name]))
            assert drift < THERMAL_ATOL, (
                f"tier B: server {i} {name} drift {drift:.3e} "
                f"exceeds {THERMAL_ATOL:.0e}"
            )
        sv, sf = rv.summary(), rf.summary()
        for key in ("fan_energy_j", "cpu_energy_j"):
            rel = abs(sv[key] - sf[key]) / max(abs(sv[key]), 1e-12)
            assert rel < ENERGY_RTOL, (
                f"tier B: server {i} {key} rel drift {rel:.3e}"
            )
        assert sv["violation_percent"] == sf["violation_percent"]
    inlet_drift = np.max(
        np.abs(np.asarray(vectorized.mean_inlet_c)
               - np.asarray(fused.mean_inlet_c))
    )
    assert inlet_drift < INLET_ATOL
    if "faults" in vectorized.extras or "faults" in fused.extras:
        assert vectorized.extras["faults"] == fused.extras["faults"]


class TestTableThreeSchemes:
    """All five schemes, all three backends, array lane end to end."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_two_tier_contract(self, scheme):
        scalar = _run("scalar", scheme)
        vectorized = _run("vectorized", scheme)
        fused = _run("fused", scheme)
        assert_tier_a(scalar, vectorized)
        assert_tier_b(vectorized, fused)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fused_keeps_whole_rack_on_array_lane(self, scheme):
        """No silent scalar-controller fallback on any scheme."""
        fused = _run("fused", scheme)
        assert fused.extras["controller_backend"] == "vectorized"
        assert "controller_fallbacks" not in fused.extras
        assert fused.extras["scan_impl"] == fused_scan_impl()

    def test_backend_registry_names(self):
        assert batch_backend_names() == ("fused", "vectorized")


# Fault kinds the randomized schedules draw from, with magnitude rules.
_FAULT_KINDS = st.sampled_from(
    ["dropout", "stuck", "offset", "fan_seize", "fouling", "drift"]
)


@st.composite
def _conformance_case(draw, with_faults=False):
    n = draw(st.integers(min_value=2, max_value=5))
    case = {
        "n": n,
        "scheme": draw(st.sampled_from(SCHEMES)),
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
        "recirc": draw(
            st.floats(min_value=0.0, max_value=0.45,
                      allow_nan=False, allow_infinity=False)
        ),
        "dec": draw(st.integers(min_value=1, max_value=7)),
        "duration": draw(st.sampled_from([20.0, 30.0, 40.0])),
    }
    if not with_faults:
        return case
    events = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(_FAULT_KINDS)
        magnitude = None
        if kind == "offset":
            magnitude = draw(st.sampled_from([-4.0, -1.5, 2.0, 5.0]))
        elif kind == "fouling":
            magnitude = draw(st.sampled_from([0.1, 0.3, 0.6]))
        elif kind == "drift":
            magnitude = draw(st.sampled_from([0.005, 0.02, 0.05]))
        events.append(
            FaultEvent(
                kind=kind,
                server=draw(st.integers(min_value=0, max_value=n - 1)),
                start_s=draw(st.sampled_from([3.0, 7.5, 12.0])),
                duration_s=draw(st.sampled_from([5.0, 10.0, 20.0])),
                magnitude=magnitude,
            )
        )
    case["faults"] = FaultSchedule(events)
    return case


class TestRandomizedConformance:
    """Hypothesis: the contract holds across random topologies,
    workloads (per-server seeded), schemes, and fault schedules."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=_conformance_case())
    def test_two_tier_contract_randomized(self, case):
        scalar = _run("scalar", case["scheme"], n=case["n"],
                      seed=case["seed"], recirc=case["recirc"],
                      duration=case["duration"], dec=case["dec"])
        vectorized = _run("vectorized", case["scheme"], n=case["n"],
                          seed=case["seed"], recirc=case["recirc"],
                          duration=case["duration"], dec=case["dec"])
        fused = _run("fused", case["scheme"], n=case["n"],
                     seed=case["seed"], recirc=case["recirc"],
                     duration=case["duration"], dec=case["dec"])
        assert_tier_a(scalar, vectorized)
        assert_tier_b(vectorized, fused)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=_conformance_case(with_faults=True))
    def test_two_tier_contract_under_faults(self, case):
        kw = dict(n=case["n"], seed=case["seed"], recirc=case["recirc"],
                  duration=case["duration"], dec=case["dec"],
                  faults=case["faults"])
        scalar = _run("scalar", case["scheme"], **kw)
        vectorized = _run("vectorized", case["scheme"], **kw)
        fused = _run("fused", case["scheme"], **kw)
        assert_tier_a(scalar, vectorized)
        assert_tier_b(vectorized, fused)


class TestScalarResumeAfterFused:
    """The fused stepper syncs state back into the scalar objects, so a
    follow-up scalar run continues from where the batch left off."""

    def test_sync_back_state_matches_vectorized(self):
        rack_v = _rack("rcoord_atref")
        rack_f = _rack("rcoord_atref")
        FleetSimulator(rack_v, dt_s=_DT, backend="vectorized").run(30.0)
        FleetSimulator(rack_f, dt_s=_DT, backend="fused").run(30.0)
        for slot_v, slot_f in zip(rack_v, rack_f):
            assert slot_f.sensor.is_primed
            assert slot_v.plant.time_s == slot_f.plant.time_s
            sv, sf = slot_v.plant.state, slot_f.plant.state
            assert sv.junction_c == pytest.approx(
                sf.junction_c, abs=THERMAL_ATOL
            )
            assert sv.heatsink_c == pytest.approx(
                sf.heatsink_c, abs=THERMAL_ATOL
            )
            assert sv.fan_speed_rpm == sf.fan_speed_rpm
            assert sv.utilization == sf.utilization
            assert slot_v.inlet.offset_c == pytest.approx(
                slot_f.inlet.offset_c, abs=INLET_ATOL
            )

    def test_scalar_resume_trajectories_stay_bounded(self):
        """Resumed scalar runs from fused- and vectorized-synced racks
        track each other within the tier-B drift (the resumed lane is
        scalar on both sides; only the starting state differs)."""
        rack_v = _rack("rcoord_atref")
        rack_f = _rack("rcoord_atref")
        FleetSimulator(rack_v, dt_s=_DT, backend="vectorized").run(30.0)
        FleetSimulator(rack_f, dt_s=_DT, backend="fused").run(30.0)
        res_v = FleetSimulator(rack_v, dt_s=_DT, backend="auto").run(20.0)
        res_f = FleetSimulator(rack_f, dt_s=_DT, backend="auto").run(20.0)
        # Primed sensors force the scalar reference loop on both racks.
        assert res_v.extras["backend"] == "scalar"
        assert res_f.extras["backend"] == "scalar"
        for i in range(res_v.n_servers):
            rv, rf = res_v.server(i), res_f.server(i)
            for name, channel in rv.channels.items():
                assert np.allclose(
                    channel, rf.channels[name],
                    atol=1e-6, rtol=0.0, equal_nan=True,
                ), f"resumed server {i} channel {name}"


class TestNumbaGate:
    """The scan-kernel selection respects the environment gate and the
    fused backend stays within tier B on the NumPy fallback."""

    def test_scan_impl_consistent_with_gates(self):
        impl = fused_scan_impl()
        assert impl in ("numba", "numpy")
        assert impl == ("numba" if numba_available() else "numpy")

    def test_disable_env_forces_numpy_scan(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert numba_disabled()
        assert not numba_available()
        assert fused_scan_impl() == "numpy"
        vectorized = _run("vectorized", "rcoord", duration=30.0)
        fused = _run("fused", "rcoord", duration=30.0)
        assert fused.extras["scan_impl"] == "numpy"
        assert_tier_b(vectorized, fused)

    def test_disable_env_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "0")
        assert not numba_disabled()


class TestRoomConformance:
    """The contract holds one level up: stacked rooms with sparse
    cross-rack coupling and CRAC supply dynamics."""

    def _room_result(self, backend):
        config = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=3)
        room = uniform_room(config, duration_s=40.0, seed=5)
        sim = RoomSimulator(
            room, dt_s=_DT, record_decimation=4, backend=backend
        )
        result = sim.run(40.0)
        assert result.extras["backend"] == backend
        return result

    def test_room_two_tier_contract(self):
        scalar = self._room_result("scalar")
        vectorized = self._room_result("vectorized")
        fused = self._room_result("fused")
        for rs, rv, rf in zip(
            scalar.rack_results,
            vectorized.rack_results,
            fused.rack_results,
        ):
            assert_tier_a(rs, rv)
            assert_tier_b(rv, rf)
            assert rf.extras["backend"] == "fused"
        assert np.allclose(
            np.asarray(vectorized.supply_c), np.asarray(fused.supply_c),
            atol=INLET_ATOL, rtol=0.0,
        )
        rel = abs(vectorized.crac_energy_j - fused.crac_energy_j) / max(
            vectorized.crac_energy_j, 1e-12
        )
        assert rel < 1e-9
