"""Simulation engine, result container, scenario builders, sweep harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.core.base import ControlState
from repro.core.fan_baselines import StaticFanController
from repro.core.global_controller import GlobalController
from repro.errors import AnalysisError, ExperimentError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.scenarios import (
    SCHEME_NAMES,
    build_fan_controller,
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
    run_fan_only,
)
from repro.sim.sweep import ParameterSweep
from repro.workload.synthetic import ConstantWorkload


def make_static_sim(config=None, speed=4000.0, dt=0.5) -> Simulator:
    cfg = config or ServerConfig()
    controller = GlobalController(
        control=cfg.control,
        fan_controller=StaticFanController(speed),
        initial_state=ControlState(fan_speed_rpm=speed, cpu_cap=1.0),
    )
    return Simulator(
        plant=build_plant(cfg),
        sensor=build_sensor(cfg),
        workload=ConstantWorkload(0.5),
        controller=controller,
        dt_s=dt,
    )


class TestSimulator:
    def test_run_produces_aligned_channels(self):
        result = make_static_sim().run(60.0)
        lengths = {arr.size for arr in result.channels.values()}
        assert len(lengths) == 1

    def test_time_axis(self):
        result = make_static_sim(dt=0.5).run(30.0)
        assert result.times[0] == pytest.approx(0.5)
        assert result.times[-1] == pytest.approx(30.0)

    def test_static_fan_reaches_steady_state(self, steady):
        result = make_static_sim(speed=4000.0).run(1200.0)
        expected = steady.junction_c(0.5, 4000.0)
        assert result.junction_c[-1] == pytest.approx(expected, abs=0.2)

    def test_tmeas_is_quantized(self):
        result = make_static_sim().run(120.0)
        assert np.allclose(result.tmeas_c, np.round(result.tmeas_c))

    def test_tmeas_lags_junction(self):
        """After the startup transient the measurement matches the junction
        value from lag seconds earlier."""
        cfg = ServerConfig()
        result = make_static_sim(cfg, dt=0.5).run(240.0)
        times = result.times
        lag = cfg.sensing.lag_s
        idx_now = np.searchsorted(times, 200.0)
        idx_then = np.searchsorted(times, 200.0 - lag)
        measured = result.tmeas_c[idx_now]
        true_then = result.junction_c[idx_then]
        assert abs(measured - true_then) <= 1.0  # within one LSB

    def test_dt_larger_than_cpu_interval_rejected(self):
        cfg = ServerConfig()
        with pytest.raises(SimulationError):
            Simulator(
                plant=build_plant(cfg),
                sensor=build_sensor(cfg),
                workload=ConstantWorkload(0.5),
                controller=GlobalController(
                    control=cfg.control, fan_controller=StaticFanController(4000.0)
                ),
                dt_s=2.0,
            )

    def test_decimation(self):
        sim = make_static_sim(dt=0.5)
        sim._decimation = 10  # 10 * 0.5 s per record
        result = sim.run(60.0)
        assert result.times.size == 12

    def test_energy_accumulates(self):
        result = make_static_sim().run(60.0)
        assert result.fan_energy_j > 0.0
        assert result.cpu_energy_j > 0.0

    def test_fan_energy_matches_static_speed(self):
        result = make_static_sim(speed=8500.0).run(100.0)
        assert result.fan_energy_j == pytest.approx(29.4 * 100.0, rel=0.02)


class TestSimulationResult:
    def test_unknown_channel_raises(self):
        result = make_static_sim().run(10.0)
        with pytest.raises(AnalysisError):
            result.channel("nonexistent")

    def test_summary_keys(self):
        summary = make_static_sim().run(10.0).summary()
        assert {"violation_percent", "fan_energy_j", "max_junction_c"} <= set(
            summary
        )

    def test_normalized_fan_energy(self):
        a = make_static_sim(speed=4000.0).run(50.0)
        b = make_static_sim(speed=8000.0).run(50.0)
        assert b.normalized_fan_energy(a) > 1.0
        assert a.normalized_fan_energy(a) == pytest.approx(1.0)


class TestScenarios:
    def test_build_plant_settled_at_t_ref(self, config):
        plant = build_plant(config, initial_utilization=0.1)
        assert plant.junction_c == pytest.approx(75.0, abs=0.5)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ExperimentError):
            build_global_controller("definitely-not-a-scheme")

    def test_all_schemes_buildable(self, config, fast_schedule):
        for scheme in SCHEME_NAMES:
            controller = build_global_controller(scheme, config, fast_schedule)
            assert controller.state.cpu_cap == 1.0

    def test_scheme_composition(self, config, fast_schedule):
        from repro.core.ecoord import EnergyAwareCoordinator
        from repro.core.rules import RuleBasedCoordinator
        from repro.core.uncoordinated import UncoordinatedCoordinator

        assert isinstance(
            build_global_controller("uncoordinated", config, fast_schedule).coordinator,
            UncoordinatedCoordinator,
        )
        assert isinstance(
            build_global_controller("ecoord", config, fast_schedule).coordinator,
            EnergyAwareCoordinator,
        )
        assert isinstance(
            build_global_controller("rcoord", config, fast_schedule).coordinator,
            RuleBasedCoordinator,
        )

    def test_paper_workload_range(self):
        workload = paper_workload(600.0, seed=1)
        demands = [workload.demand(float(t)) for t in range(0, 600, 7)]
        assert all(0.0 <= d <= 1.0 for d in demands)
        assert max(demands) > 0.5  # reaches the high phase
        assert min(demands) < 0.3  # reaches the low phase

    def test_paper_workload_reproducible(self):
        a = paper_workload(300.0, seed=9)
        b = paper_workload(300.0, seed=9)
        assert [a.demand(float(t)) for t in range(300)] == [
            b.demand(float(t)) for t in range(300)
        ]

    def test_run_fan_only_short(self, config, fast_schedule):
        controller = build_fan_controller(
            config, schedule=fast_schedule, initial_speed_rpm=2000.0
        )
        result = run_fan_only(
            controller, ConstantWorkload(0.4), 120.0, config=config, dt_s=0.5
        )
        assert result.times.size > 0
        assert result.cpu_cap.min() == 1.0  # no capper in fan-only mode


class TestParameterSweep:
    def test_sweep_collects_metrics(self):
        def runner(speed):
            return make_static_sim(speed=speed).run(20.0)

        sweep = ParameterSweep(
            runner, metric_fns={"fan_j": lambda r: r.fan_energy_j}
        )
        points = sweep.run([2000.0, 8000.0])
        table = ParameterSweep.table(points, "fan_j")
        assert table[1][1] > table[0][1]

    def test_empty_sweep_rejected(self):
        sweep = ParameterSweep(lambda v: None)
        with pytest.raises(SimulationError):
            sweep.run([])
