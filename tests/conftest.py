"""Shared fixtures for the test suite.

``fast_schedule`` is a hand-built two-region gain schedule numerically
close to what the Ziegler-Nichols pipeline produces for the Table I
server; it keeps unit tests fast.  ``tuned_schedule`` runs the real tuner
once per session for the tests that exercise the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.config import ServerConfig
from repro.core.gain_schedule import GainRegion, GainSchedule
from repro.core.pid import PIDGains
from repro.core.tuning import default_gain_schedule
from repro.thermal.server import ServerThermalModel
from repro.thermal.steady_state import SteadyStateServerModel


@pytest.fixture()
def config() -> ServerConfig:
    """The Table I server configuration."""
    return ServerConfig()


@pytest.fixture()
def steady(config: ServerConfig) -> SteadyStateServerModel:
    """Closed-form steady-state model."""
    return SteadyStateServerModel(config)


@pytest.fixture()
def plant(config: ServerConfig) -> ServerThermalModel:
    """A fresh dynamic plant."""
    return ServerThermalModel(config)


@pytest.fixture(scope="session")
def fast_schedule() -> GainSchedule:
    """Two-region schedule matching the tuner's output closely (no tuner)."""
    return GainSchedule(
        [
            GainRegion(2000.0, PIDGains(kp=294.0, ki=6.5, kd=8826.0)),
            GainRegion(6000.0, PIDGains(kp=2389.0, ki=45.0, kd=84302.0)),
        ]
    )


@pytest.fixture(scope="session")
def tuned_schedule() -> GainSchedule:
    """The real Ziegler-Nichols pipeline output (cached per session)."""
    return default_gain_schedule(ServerConfig())
