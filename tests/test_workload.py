"""Workload generators, filters, and the deadline-violation model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.filters import EwmaFilter, MovingAverageFilter
from repro.workload.performance import DeadlineTracker
from repro.workload.spikes import Spike, SpikeProcess, SpikeTrain
from repro.workload.synthetic import (
    CompositeWorkload,
    ConstantWorkload,
    NoisyWorkload,
    SineWorkload,
    SquareWaveWorkload,
    StepWorkload,
)
from repro.workload.traces import TraceWorkload


class TestSynthetic:
    def test_constant(self):
        assert ConstantWorkload(0.4).demand(123.0) == 0.4

    def test_step(self):
        wl = StepWorkload(0.1, 0.7, 60.0)
        assert wl.demand(59.9) == 0.1
        assert wl.demand(60.0) == 0.7

    def test_square_wave_alternation(self):
        wl = SquareWaveWorkload(low=0.1, high=0.7, half_period_s=100.0)
        assert wl.demand(50.0) == 0.1
        assert wl.demand(150.0) == 0.7
        assert wl.demand(250.0) == 0.1

    def test_square_wave_phase(self):
        wl = SquareWaveWorkload(low=0.1, high=0.7, half_period_s=100.0, phase_s=100.0)
        assert wl.demand(50.0) == 0.7

    def test_square_wave_order_validated(self):
        with pytest.raises(WorkloadError):
            SquareWaveWorkload(low=0.8, high=0.2)

    def test_sine_bounds_validated(self):
        with pytest.raises(WorkloadError):
            SineWorkload(mean=0.9, amplitude=0.3)

    def test_sine_midline(self):
        wl = SineWorkload(mean=0.4, amplitude=0.3, period_s=100.0)
        assert wl.demand(0.0) == pytest.approx(0.4)
        assert wl.demand(25.0) == pytest.approx(0.7)

    def test_noisy_wraps_and_clamps(self):
        wl = NoisyWorkload(ConstantWorkload(0.02), std=0.5, seed=1)
        for t in range(100):
            assert 0.0 <= wl.demand(float(t)) <= 1.0

    def test_noisy_consistent_within_resolution(self):
        wl = NoisyWorkload(ConstantWorkload(0.5), std=0.1, seed=2, resolution_s=1.0)
        assert wl.demand(3.1) == wl.demand(3.9)

    def test_noisy_reproducible_by_seed(self):
        a = NoisyWorkload(ConstantWorkload(0.5), std=0.1, seed=3)
        b = NoisyWorkload(ConstantWorkload(0.5), std=0.1, seed=3)
        assert a.demand(5.0) == b.demand(5.0)

    def test_noisy_zero_std_passthrough(self):
        wl = NoisyWorkload(ConstantWorkload(0.5), std=0.0)
        assert wl.demand(1.0) == 0.5

    def test_composite_sums_and_clamps(self):
        wl = CompositeWorkload([ConstantWorkload(0.7), ConstantWorkload(0.6)])
        assert wl.demand(0.0) == 1.0

    def test_composite_empty_rejected(self):
        with pytest.raises(WorkloadError):
            CompositeWorkload([])

    def test_demands_vectorized(self):
        wl = ConstantWorkload(0.25)
        assert wl.demands([0.0, 1.0, 2.0]) == [0.25, 0.25, 0.25]

    @settings(max_examples=25)
    @given(st.floats(0.0, 10000.0))
    def test_square_wave_always_valid_property(self, t):
        wl = SquareWaveWorkload()
        assert wl.demand(t) in (0.1, 0.7)


class TestDemandArrayExactness:
    """Vectorized demand_array overrides match the scalar loop bit-for-bit.

    The batch backend's equivalence contract leans on these: the scalar
    engine calls demand() per step, the batch engine demand_array() per
    chunk, and both must see the exact same floats.
    """

    #: The batch stepper's visiting pattern: ascending uniform grid.
    TIMES = np.array([0.1 * (k + 1) for k in range(5000)])

    def _assert_exact(self, workload, times=None):
        times = self.TIMES if times is None else times
        scalar = np.array([workload.demand(float(t)) for t in times])
        assert np.array_equal(workload.demand_array(times), scalar)

    def test_sine_exact(self):
        # np.sin routes float64 through the same libm call math.sin
        # makes; this pin is what the override's exactness rests on.
        self._assert_exact(SineWorkload(mean=0.4, amplitude=0.3, period_s=137.0))

    def test_trace_exact_hold_and_wrap(self):
        samples = np.linspace(0.0, 1.0, 101)
        self._assert_exact(TraceWorkload(samples, sample_interval_s=0.7))
        self._assert_exact(
            TraceWorkload(samples, sample_interval_s=0.7, wrap=True)
        )

    def test_trace_array_rejects_negative_times(self):
        wl = TraceWorkload([0.5])
        with pytest.raises(WorkloadError):
            wl.demand_array(np.array([1.0, -0.1]))

    def test_noisy_bulk_draws_match_scalar_stream(self):
        # Fresh twin instances: the array path's bulk normal(size=k)
        # draws must consume the RNG stream exactly as the scalar
        # per-slot draws do.
        array_wl = NoisyWorkload(SquareWaveWorkload(), std=0.04, seed=11)
        scalar_wl = NoisyWorkload(SquareWaveWorkload(), std=0.04, seed=11)
        scalar = np.array([scalar_wl.demand(float(t)) for t in self.TIMES])
        assert np.array_equal(array_wl.demand_array(self.TIMES), scalar)

    def test_noisy_bulk_handles_repeated_slots(self):
        # Non-ascending public calls can revisit a slot inside one
        # demand_array; the repeat must cache-hit its first draw, not
        # consume an extra draw and desync the stream.
        times = np.array([5.0, 7.0, 5.0, 9.0])
        array_wl = NoisyWorkload(ConstantWorkload(0.5), std=0.1, seed=1)
        scalar_wl = NoisyWorkload(ConstantWorkload(0.5), std=0.1, seed=1)
        scalar = np.array([scalar_wl.demand(float(t)) for t in times])
        assert np.array_equal(array_wl.demand_array(times), scalar)
        # The streams stay aligned afterwards too.
        assert array_wl.demand(11.0) == scalar_wl.demand(11.0)

    def test_noisy_bulk_respects_prior_cache(self):
        # Slots already drawn by scalar demand() calls must be reused,
        # with only the cache misses drawn (in order) from the stream.
        array_wl = NoisyWorkload(SquareWaveWorkload(), std=0.04, seed=13)
        scalar_wl = NoisyWorkload(SquareWaveWorkload(), std=0.04, seed=13)
        for t in self.TIMES[1000:1500]:
            array_wl.demand(float(t))
            scalar_wl.demand(float(t))
        scalar = np.array([scalar_wl.demand(float(t)) for t in self.TIMES])
        assert np.array_equal(array_wl.demand_array(self.TIMES), scalar)


class TestSpikes:
    def test_spike_active_window(self):
        spike = Spike(start_s=10.0, duration_s=5.0, height=0.3)
        assert not spike.active(9.9)
        assert spike.active(10.0)
        assert spike.active(14.9)
        assert not spike.active(15.0)

    def test_train_demand(self):
        train = SpikeTrain([Spike(10.0, 5.0, 0.3)])
        assert train.demand(12.0) == 0.3
        assert train.demand(20.0) == 0.0

    def test_overlapping_spikes_take_max(self):
        train = SpikeTrain([Spike(0.0, 10.0, 0.2), Spike(5.0, 10.0, 0.5)])
        assert train.demand(7.0) == 0.5

    def test_process_reproducible(self):
        a = SpikeProcess(1000.0, 0.01, seed=5)
        b = SpikeProcess(1000.0, 0.01, seed=5)
        assert [s.start_s for s in a.spikes] == [s.start_s for s in b.spikes]

    def test_process_rate(self):
        process = SpikeProcess(100000.0, 0.01, seed=7)
        count = len(process.spikes)
        # Poisson with mean 1000: within 4 sigma.
        assert 850 < count < 1150

    def test_process_horizon_respected(self):
        process = SpikeProcess(500.0, 0.05, seed=2)
        assert all(s.start_s < 500.0 for s in process.spikes)

    def test_process_ranges_respected(self):
        process = SpikeProcess(
            5000.0, 0.01, height_range=(0.2, 0.3), duration_range_s=(5.0, 10.0),
            seed=3,
        )
        for spike in process.spikes:
            assert 0.2 <= spike.height <= 0.3
            assert 5.0 <= spike.duration_s <= 10.0

    def test_bad_ranges_rejected(self):
        with pytest.raises(WorkloadError):
            SpikeProcess(100.0, 0.1, height_range=(0.5, 0.2))


class TestTraces:
    def test_zero_order_hold(self):
        wl = TraceWorkload([0.1, 0.5, 0.9], sample_interval_s=10.0)
        assert wl.demand(0.0) == 0.1
        assert wl.demand(9.9) == 0.1
        assert wl.demand(10.0) == 0.5
        assert wl.demand(25.0) == 0.9

    def test_holds_last_without_wrap(self):
        wl = TraceWorkload([0.1, 0.5], sample_interval_s=1.0)
        assert wl.demand(100.0) == 0.5

    def test_wrap(self):
        wl = TraceWorkload([0.1, 0.5], sample_interval_s=1.0, wrap=True)
        assert wl.demand(2.0) == 0.1
        assert wl.demand(3.0) == 0.5

    def test_invalid_samples_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload([0.1, 1.5])
        with pytest.raises(WorkloadError):
            TraceWorkload([])

    def test_negative_time_rejected(self):
        wl = TraceWorkload([0.5])
        with pytest.raises(WorkloadError):
            wl.demand(-1.0)

    def test_csv_roundtrip(self, tmp_path):
        wl = TraceWorkload([0.1, 0.2, 0.3])
        path = tmp_path / "trace.csv"
        wl.to_csv(path)
        loaded = TraceWorkload.from_csv(path)
        assert np.allclose(loaded.samples, wl.samples)

    def test_duration(self):
        assert TraceWorkload([0.1] * 10, sample_interval_s=2.0).duration_s == 20.0


class TestFilters:
    def test_moving_average_partial_window(self):
        f = MovingAverageFilter(window=4)
        assert f.update(1.0) == 1.0
        assert f.update(3.0) == 2.0

    def test_moving_average_sliding(self):
        f = MovingAverageFilter(window=2)
        f.update(1.0)
        f.update(3.0)
        assert f.update(5.0) == 4.0  # (3 + 5) / 2

    def test_moving_average_empty_value(self):
        assert MovingAverageFilter().value == 0.0

    def test_moving_average_reset(self):
        f = MovingAverageFilter(window=3)
        f.update(9.0)
        f.reset()
        assert f.value == 0.0
        assert f.count == 0

    def test_invalid_window(self):
        with pytest.raises(WorkloadError):
            MovingAverageFilter(window=0)

    def test_ewma_first_sample(self):
        f = EwmaFilter(alpha=0.5)
        assert f.update(10.0) == 10.0

    def test_ewma_smoothing(self):
        f = EwmaFilter(alpha=0.5)
        f.update(0.0)
        assert f.update(10.0) == 5.0

    def test_ewma_alpha_one_tracks_input(self):
        f = EwmaFilter(alpha=1.0)
        f.update(1.0)
        assert f.update(7.0) == 7.0

    def test_ewma_zero_alpha_rejected(self):
        with pytest.raises(WorkloadError):
            EwmaFilter(alpha=0.0)

    @settings(max_examples=25)
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50))
    def test_moving_average_bounded_property(self, samples):
        f = MovingAverageFilter(window=5)
        for s in samples:
            value = f.update(s)
            assert 0.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestDeadlineTracker:
    def test_no_violation_when_cap_sufficient(self):
        tracker = DeadlineTracker()
        assert not tracker.record(demanded=0.5, applied=0.5)
        assert tracker.summary.violation_percent == 0.0

    def test_violation_when_throttled(self):
        tracker = DeadlineTracker()
        assert tracker.record(demanded=0.8, applied=0.5)
        assert tracker.summary.violations == 1

    def test_tolerance(self):
        tracker = DeadlineTracker(tolerance=0.05)
        assert not tracker.record(demanded=0.52, applied=0.50)

    def test_violation_percent(self):
        tracker = DeadlineTracker()
        tracker.record(0.8, 0.5)
        tracker.record(0.5, 0.5)
        assert tracker.summary.violation_percent == pytest.approx(50.0)

    def test_recent_degradation_window(self):
        tracker = DeadlineTracker(window=2)
        tracker.record(0.8, 0.5)  # gap 0.3
        tracker.record(0.5, 0.5)  # gap 0
        assert tracker.recent_degradation == pytest.approx(0.15)
        tracker.record(0.5, 0.5)  # gap 0; 0.3 falls out of window
        assert tracker.recent_degradation == pytest.approx(0.0)

    def test_degradation_fraction(self):
        tracker = DeadlineTracker()
        tracker.record(1.0, 0.5)
        summary = tracker.summary
        assert summary.degradation_fraction == pytest.approx(0.5)

    def test_reset(self):
        tracker = DeadlineTracker()
        tracker.record(0.9, 0.1)
        tracker.reset()
        assert tracker.summary.periods == 0
        assert tracker.recent_degradation == 0.0

    def test_empty_summary(self):
        summary = DeadlineTracker().summary
        assert summary.violation_fraction == 0.0
        assert summary.degradation_fraction == 0.0
