"""GlobalController: decision timing, coordination wiring, A-Tref, SSfan."""

from __future__ import annotations

import pytest

from repro.config import ControlConfig
from repro.core.base import ControlInputs, ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainSchedule
from repro.core.global_controller import GlobalController
from repro.core.pid import PIDGains
from repro.core.rules import RuleBasedCoordinator
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling


def make_fan(initial=3000.0) -> AdaptivePIDFanController:
    return AdaptivePIDFanController(
        schedule=GainSchedule.fixed(PIDGains(kp=300.0, ki=6.0)),
        t_ref_c=75.0,
        fan_limits_rpm=(1000.0, 8500.0),
        interval_s=30.0,
        initial_speed_rpm=initial,
    )


def make_controller(**kwargs) -> GlobalController:
    defaults = dict(
        control=ControlConfig(),
        fan_controller=make_fan(),
        coordinator=RuleBasedCoordinator(),
        cpu_capper=DeadzoneCpuCapper(76.0, 80.0, step=0.02),
        initial_state=ControlState(fan_speed_rpm=3000.0, cpu_cap=1.0),
    )
    defaults.update(kwargs)
    return GlobalController(**defaults)


def inputs(t, tmeas=77.0, util=0.5, degradation=0.0) -> ControlInputs:
    return ControlInputs(
        time_s=t, tmeas_c=tmeas, measured_util=util,
        recent_degradation=degradation,
    )


class TestDecisionTiming:
    def test_cap_decided_every_step(self):
        controller = make_controller()
        controller.step(inputs(1.0, tmeas=81.0))
        assert controller.state.cpu_cap == pytest.approx(0.98)
        controller.step(inputs(2.0, tmeas=81.0))
        assert controller.state.cpu_cap == pytest.approx(0.96)

    def test_fan_not_due_before_interval(self):
        controller = make_controller()
        controller.step(inputs(1.0, tmeas=81.0))
        fan_prop, cap_prop = controller.last_proposals
        assert fan_prop is None
        assert cap_prop is not None

    def test_fan_due_at_interval(self):
        controller = make_controller()
        for t in range(1, 31):
            controller.step(inputs(float(t), tmeas=81.0))
        fan_prop, _ = controller.last_proposals
        assert fan_prop is not None

    def test_fan_interval_respected_after_decision(self):
        controller = make_controller()
        for t in range(1, 32):
            controller.step(inputs(float(t), tmeas=81.0))
        fan_prop, _ = controller.last_proposals
        assert fan_prop is None  # t = 31: next decision at 60


class TestCoordinationWiring:
    def test_emergency_moves_exactly_one_knob(self):
        controller = make_controller()
        before = controller.state
        for t in range(1, 31):
            controller.step(inputs(float(t), tmeas=82.0))
        after = controller.state
        # Cap fell (many cap decisions) and fan rose at t=30 via Table II
        # (fan-up wins at the collision instant, so the cap skipped one cut).
        assert after.cpu_cap < before.cpu_cap
        assert after.fan_speed_rpm > before.fan_speed_rpm

    def test_state_applied_back_to_fan_controller(self):
        fan = make_fan()
        controller = make_controller(fan_controller=fan)
        for t in range(1, 31):
            controller.step(inputs(float(t), tmeas=82.0))
        assert fan.applied_speed_rpm == controller.state.fan_speed_rpm

    def test_default_coordinator_is_uncoordinated(self):
        controller = GlobalController(
            control=ControlConfig(),
            fan_controller=make_fan(),
        )
        from repro.core.uncoordinated import UncoordinatedCoordinator

        assert isinstance(controller.coordinator, UncoordinatedCoordinator)

    def test_fan_only_configuration(self):
        controller = GlobalController(
            control=ControlConfig(),
            fan_controller=make_fan(),
            cpu_capper=None,
        )
        for t in range(1, 31):
            controller.step(inputs(float(t), tmeas=82.0))
        assert controller.state.cpu_cap == 1.0  # untouched without a capper


class TestAdaptiveSetpointIntegration:
    def test_t_ref_follows_predicted_util(self):
        controller = make_controller(
            setpoint=AdaptiveSetpoint(t_min_c=70.0, t_max_c=80.0, window=5)
        )
        for t in range(1, 6):
            controller.step(inputs(float(t), util=0.9))
        assert controller.t_ref_c == pytest.approx(79.0)

    def test_fan_reference_updated(self):
        fan = make_fan()
        controller = make_controller(
            fan_controller=fan,
            setpoint=AdaptiveSetpoint(t_min_c=70.0, t_max_c=80.0, window=1),
        )
        controller.step(inputs(1.0, util=0.0))
        assert fan.t_ref_c == pytest.approx(70.0)


class TestSingleStepIntegration:
    def test_boost_overrides_fan(self, steady):
        controller = make_controller(
            single_step=SingleStepFanScaling(steady, degradation_threshold=0.05)
        )
        state = controller.step(inputs(1.0, degradation=0.2))
        assert state.fan_speed_rpm == 8500.0

    def test_boost_propagates_to_fan_controller(self, steady):
        fan = make_fan()
        controller = make_controller(
            fan_controller=fan,
            single_step=SingleStepFanScaling(steady, degradation_threshold=0.05),
        )
        controller.step(inputs(1.0, degradation=0.2))
        assert fan.applied_speed_rpm == 8500.0

    def test_no_boost_without_degradation(self, steady):
        controller = make_controller(
            single_step=SingleStepFanScaling(steady, degradation_threshold=0.05)
        )
        state = controller.step(inputs(1.0, degradation=0.0))
        assert state.fan_speed_rpm == 3000.0
