"""Power models: Eqn 1 CPU power, cubic fan law, energy accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CpuPowerConfig
from repro.errors import AnalysisError, UnitsError
from repro.power.cpu import CpuPowerModel
from repro.power.energy import EnergyAccountant
from repro.power.fan import FanCurve, FanPowerModel


class TestCpuPower:
    def test_idle_and_max(self):
        model = CpuPowerModel()
        assert model.power_w(0.0) == 96.0
        assert model.power_w(1.0) == 160.0

    def test_linear_midpoint(self):
        model = CpuPowerModel()
        assert model.power_w(0.5) == pytest.approx(128.0)

    def test_inversion_roundtrip(self):
        model = CpuPowerModel()
        assert model.utilization_for_power(model.power_w(0.37)) == pytest.approx(0.37)

    def test_inversion_out_of_range(self):
        model = CpuPowerModel()
        with pytest.raises(UnitsError):
            model.utilization_for_power(50.0)
        with pytest.raises(UnitsError):
            model.utilization_for_power(200.0)

    def test_zero_dynamic_power_inversion(self):
        model = CpuPowerModel(CpuPowerConfig(p_max_w=96.0, p_idle_w=96.0))
        assert model.utilization_for_power(96.0) == 0.0

    def test_marginal_power(self):
        assert CpuPowerModel().marginal_power_per_utilization_w() == 64.0

    @given(st.floats(0.0, 1.0))
    def test_power_within_range_property(self, util):
        power = CpuPowerModel().power_w(util)
        assert 96.0 <= power <= 160.0


class TestFanPower:
    def test_anchor_point(self):
        model = FanPowerModel()
        assert model.power_w(8500.0) == pytest.approx(29.4)

    def test_cubic_scaling(self):
        model = FanPowerModel()
        assert model.power_w(4250.0) == pytest.approx(29.4 / 8.0)

    def test_zero_speed_zero_power(self):
        assert FanPowerModel().power_w(0.0) == 0.0

    def test_marginal_power_matches_derivative(self):
        model = FanPowerModel()
        eps = 0.5
        numeric = (model.power_w(5000.0 + eps) - model.power_w(5000.0 - eps)) / (
            2 * eps
        )
        assert model.marginal_power_w_per_rpm(5000.0) == pytest.approx(
            numeric, rel=1e-6
        )

    def test_speed_for_power_roundtrip(self):
        model = FanPowerModel()
        assert model.speed_for_power_rpm(model.power_w(3210.0)) == pytest.approx(
            3210.0
        )

    @settings(max_examples=25)
    @given(st.floats(0.0, 8500.0), st.floats(0.0, 8500.0))
    def test_monotone_property(self, a, b):
        model = FanPowerModel()
        if a <= b:
            assert model.power_w(a) <= model.power_w(b) + 1e-12


class TestFanCurve:
    def test_reduces_to_cubic_law(self):
        curve = FanCurve(29.4, 8500.0, exponent=3.0)
        model = FanPowerModel()
        for speed in (1000.0, 4000.0, 8500.0):
            assert curve.power_w(speed) == pytest.approx(model.power_w(speed))

    def test_offset(self):
        curve = FanCurve(20.0, 8000.0, exponent=3.0, offset_w=2.0)
        assert curve.power_w(0.0) == 2.0
        assert curve.power_w(8000.0) == pytest.approx(22.0)

    def test_exponent_sensitivity(self):
        square = FanCurve(29.4, 8500.0, exponent=2.0)
        cubic = FanCurve(29.4, 8500.0, exponent=3.0)
        # Below the anchor a lower exponent draws more power.
        assert square.power_w(4000.0) > cubic.power_w(4000.0)


class TestEnergyAccountant:
    def test_trapezoidal_integration(self):
        acct = EnergyAccountant()
        acct.record(0.0, 100.0, 10.0)
        acct.record(10.0, 100.0, 10.0)
        assert acct.breakdown.cpu_j == pytest.approx(1000.0)
        assert acct.breakdown.fan_j == pytest.approx(100.0)

    def test_ramp_integration(self):
        acct = EnergyAccountant()
        acct.record(0.0, 0.0, 0.0)
        acct.record(10.0, 100.0, 0.0)
        assert acct.breakdown.cpu_j == pytest.approx(500.0)

    def test_non_monotonic_time_rejected(self):
        acct = EnergyAccountant()
        acct.record(10.0, 1.0, 1.0)
        with pytest.raises(AnalysisError):
            acct.record(5.0, 1.0, 1.0)

    def test_negative_power_rejected(self):
        acct = EnergyAccountant()
        with pytest.raises(UnitsError):
            acct.record(0.0, -1.0, 0.0)

    def test_reset(self):
        acct = EnergyAccountant()
        acct.record(0.0, 100.0, 10.0)
        acct.record(10.0, 100.0, 10.0)
        acct.reset()
        assert acct.breakdown.total_j == 0.0

    def test_breakdown_properties(self):
        acct = EnergyAccountant()
        acct.record(0.0, 30.0, 10.0)
        acct.record(1.0, 30.0, 10.0)
        breakdown = acct.breakdown
        assert breakdown.total_j == pytest.approx(40.0)
        assert breakdown.fan_fraction == pytest.approx(0.25)

    def test_empty_breakdown_fraction(self):
        assert EnergyAccountant().breakdown.fan_fraction == 0.0
