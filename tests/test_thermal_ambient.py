"""Ambient profiles."""

from __future__ import annotations

import pytest

from repro.thermal.ambient import ConstantAmbient, DiurnalAmbient, StepAmbient


class TestConstantAmbient:
    def test_value(self):
        assert ConstantAmbient(28.0).temperature_c(12345.0) == 28.0


class TestStepAmbient:
    def test_before_and_after(self):
        profile = StepAmbient(25.0, 35.0, step_time_s=100.0)
        assert profile.temperature_c(99.9) == 25.0
        assert profile.temperature_c(100.0) == 35.0
        assert profile.temperature_c(500.0) == 35.0


class TestDiurnalAmbient:
    def test_mean_at_phase_zero(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=3.0, period_s=86400.0)
        assert profile.temperature_c(0.0) == pytest.approx(25.0)

    def test_peak_at_quarter_period(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=3.0, period_s=86400.0)
        assert profile.temperature_c(86400.0 / 4.0) == pytest.approx(28.0)

    def test_periodicity(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=3.0, period_s=1000.0)
        assert profile.temperature_c(123.0) == pytest.approx(
            profile.temperature_c(1123.0)
        )

    def test_bounded_by_amplitude(self):
        profile = DiurnalAmbient(mean_c=25.0, amplitude_c=3.0, period_s=500.0)
        for t in range(0, 500, 25):
            assert 22.0 - 1e-9 <= profile.temperature_c(float(t)) <= 28.0 + 1e-9
