"""Perf-trajectory diffing (tools/bench_diff.py).

The tool gates CI on throughput regressions between the working tree's
``BENCH_*.json`` and a baseline (git ref or directory), so this suite
pins the exit-code contract: 0 clean/informational, 1 regression past
the threshold, 2 bad input - and the soft modes (mode mismatch,
``--no-fail``) that must never fail a run.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_diff", REPO_ROOT / "tools" / "bench_diff.py"
)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


def _bench_payload(steps_per_sec, *, smoke=False, bench="rack16"):
    return {
        "meta": {"smoke": smoke},
        "benchmarks": {
            bench: {
                "n_servers": 16,
                "server_steps_per_sec": steps_per_sec,
                "overhead_ratio": 1.01,
            }
        },
    }


def _write(dirpath: Path, payload, name="BENCH_fleet.json"):
    dirpath.mkdir(parents=True, exist_ok=True)
    (dirpath / name).write_text(json.dumps(payload))
    return dirpath


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "current", tmp_path / "baseline"


def _run(current, baseline, *extra):
    return bench_diff.main(
        [
            "--current-dir",
            str(current),
            "--baseline-dir",
            str(baseline),
            *extra,
        ]
    )


class TestDeltas:
    def test_throughput_deltas_only_per_sec_metrics(self):
        rows = bench_diff.throughput_deltas(
            _bench_payload(900.0), _bench_payload(1000.0)
        )
        (row,) = rows  # overhead_ratio and n_servers are ignored
        assert row["metric"] == "server_steps_per_sec"
        assert row["delta"] == pytest.approx(-0.10)

    def test_disjoint_benchmarks_yield_nothing(self):
        rows = bench_diff.throughput_deltas(
            _bench_payload(900.0, bench="a"), _bench_payload(1000.0, bench="b")
        )
        assert rows == []

    def test_missing_benchmarks_lists_dropped_names(self):
        missing = bench_diff.missing_benchmarks(
            _bench_payload(900.0, bench="a"), _bench_payload(1000.0, bench="b")
        )
        assert missing == ["b"]
        assert (
            bench_diff.missing_benchmarks(
                _bench_payload(900.0), _bench_payload(1000.0)
            )
            == []
        )

    def test_render_plain_and_markdown_flag_regressions(self):
        rows = [
            {
                "benchmark": "rack16",
                "metric": "server_steps_per_sec",
                "baseline": 1000.0,
                "current": 800.0,
                "delta": -0.20,
            }
        ]
        plain = bench_diff.render_rows(rows, markdown=False, threshold=0.10)
        assert "-20.0% !" in plain
        md = bench_diff.render_rows(rows, markdown=True, threshold=0.10)
        assert md.splitlines()[0].startswith("| benchmark |")
        assert "| -20.0% ! |" in md
        ok = bench_diff.render_rows(
            [dict(rows[0], delta=-0.05, current=950.0)],
            markdown=False,
            threshold=0.10,
        )
        assert "!" not in ok


class TestExitCodes:
    def test_no_regression_exit_0(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(1010.0))
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline) == 0
        assert "+1.0%" in capsys.readouterr().out

    def test_regression_past_threshold_exit_1(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(800.0))
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline) == 1
        captured = capsys.readouterr()
        assert "-20.0% !" in captured.out
        assert "regressed" in captured.err

    def test_no_fail_downgrades_to_exit_0(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(800.0))
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline, "--no-fail") == 0
        capsys.readouterr()

    def test_threshold_is_adjustable(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(800.0))
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline, "--threshold", "0.25") == 0
        assert _run(current, baseline, "--threshold", "0.15") == 1
        capsys.readouterr()

    def test_dropped_benchmark_exit_1(self, dirs, capsys):
        """A lane vanishing from the records must fail the gate, not
        silently shrink the comparison to the intersection."""
        current, baseline = dirs
        _write(current, _bench_payload(1000.0, bench="rack16"))
        baseline_payload = _bench_payload(1000.0, bench="rack16")
        baseline_payload["benchmarks"]["room4x16_stacked"] = {
            "server_steps_per_sec": 500.0
        }
        _write(baseline, baseline_payload)
        assert _run(current, baseline) == 1
        captured = capsys.readouterr()
        assert "room4x16_stacked" in captured.out
        assert "missing from the current records" in captured.err

    def test_dropped_benchmark_soft_modes(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(1000.0, smoke=True, bench="rack16"))
        baseline_payload = _bench_payload(1000.0, bench="rack16")
        baseline_payload["benchmarks"]["room4x16_stacked"] = {
            "server_steps_per_sec": 500.0
        }
        _write(baseline, baseline_payload)
        # Mode mismatch: informational only (smoke runs may legitimately
        # collect a different set).
        assert _run(current, baseline) == 0
        capsys.readouterr()
        # Same mode but --no-fail: informational only.
        _write(current, _bench_payload(1000.0, bench="rack16"))
        assert _run(current, baseline, "--no-fail") == 0
        capsys.readouterr()

    def test_mode_mismatch_is_informational(self, dirs, capsys):
        """Smoke vs full records use different durations: never gate."""
        current, baseline = dirs
        _write(current, _bench_payload(500.0, smoke=True))
        _write(baseline, _bench_payload(1000.0, smoke=False))
        assert _run(current, baseline) == 0
        assert "mode mismatch" in capsys.readouterr().out

    def test_missing_baseline_skips(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(800.0))
        baseline.mkdir()
        assert _run(current, baseline) == 0
        assert "no baseline found" in capsys.readouterr().out

    def test_no_current_files_exit_0(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert _run(empty, empty) == 0
        assert "nothing to diff" in capsys.readouterr().out

    def test_malformed_current_exit_2(self, dirs, capsys):
        current, baseline = dirs
        current.mkdir()
        (current / "BENCH_fleet.json").write_text('{"not": "benchmarks"}')
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline) == 2
        capsys.readouterr()

    def test_negative_threshold_exit_2(self, dirs, capsys):
        current, baseline = dirs
        _write(current, _bench_payload(1000.0))
        _write(baseline, _bench_payload(1000.0))
        assert _run(current, baseline, "--threshold", "-1") == 2
        capsys.readouterr()


class TestGitBaseline:
    def test_head_baseline_matches_committed_records(self, capsys):
        """The committed BENCH files diff cleanly against themselves."""
        committed = sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not committed:
            pytest.skip("no committed BENCH_*.json")
        payload = bench_diff.baseline_from_git(committed[0].name, "HEAD")
        assert payload is not None and "benchmarks" in payload

    def test_unknown_ref_returns_none(self):
        assert (
            bench_diff.baseline_from_git("BENCH_fleet.json", "no-such-ref")
            is None
        )


class TestHistory:
    def _append(self, tmp_path, payload, name="BENCH_fleet.json"):
        current = _write(tmp_path / "current", payload, name)
        history = tmp_path / "BENCH_HISTORY.jsonl"
        added = bench_diff.append_history(
            history, sorted(current.glob("BENCH_*.json"))
        )
        return history, added

    def test_append_records_per_sec_metrics(self, tmp_path):
        history, added = self._append(tmp_path, _bench_payload(1000.0))
        assert added == 1
        records = bench_diff.read_history(history)
        (record,) = records
        assert record["benchmark"] == "rack16"
        assert record["mode"] == "full"
        assert record["metrics"] == {"server_steps_per_sec": 1000.0}
        # Ratio/config fields never enter the trajectory.
        assert "overhead_ratio" not in record["metrics"]
        assert record["commit"] and record["date"]

    def test_append_is_idempotent_per_commit(self, tmp_path):
        history, added = self._append(tmp_path, _bench_payload(1000.0))
        assert added == 1
        again = bench_diff.append_history(
            history, sorted((tmp_path / "current").glob("BENCH_*.json"))
        )
        assert again == 0
        assert len(bench_diff.read_history(history)) == 1

    def test_smoke_mode_recorded(self, tmp_path):
        history, _ = self._append(tmp_path, _bench_payload(1.0, smoke=True))
        assert bench_diff.read_history(history)[0]["mode"] == "smoke"

    def test_history_rows_delta_same_mode_only(self):
        records = [
            {"commit": "a", "date": "d1", "mode": "full",
             "file": "BENCH_fleet.json", "benchmark": "rack16",
             "metrics": {"server_steps_per_sec": 1000.0}},
            {"commit": "b", "date": "d2", "mode": "smoke",
             "file": "BENCH_fleet.json", "benchmark": "rack16",
             "metrics": {"server_steps_per_sec": 10.0}},
            {"commit": "c", "date": "d3", "mode": "full",
             "file": "BENCH_fleet.json", "benchmark": "rack16",
             "metrics": {"server_steps_per_sec": 1100.0}},
        ]
        rows = bench_diff.history_rows(records)
        assert rows[0]["delta"] is None
        assert rows[1]["delta"] is None  # smoke never diffs against full
        assert rows[2]["delta"] == pytest.approx(0.10)

    def test_history_cli_round_trip(self, tmp_path, capsys):
        current = _write(tmp_path / "current", _bench_payload(1000.0))
        history = tmp_path / "BENCH_HISTORY.jsonl"
        assert bench_diff.main([
            "--current-dir", str(current),
            "--history-file", str(history),
            "--append-history",
        ]) == 0
        capsys.readouterr()
        assert bench_diff.main([
            "--history", "--history-file", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "rack16" in out and "server_steps_per_sec" in out

    def test_history_cli_empty_file(self, tmp_path, capsys):
        assert bench_diff.main([
            "--history", "--history-file", str(tmp_path / "none.jsonl"),
        ]) == 0
        assert "no history" in capsys.readouterr().out

    def test_seeded_repo_history_parses(self):
        """The committed BENCH_HISTORY.jsonl stays loadable and typed."""
        path = REPO_ROOT / "BENCH_HISTORY.jsonl"
        if not path.exists():
            pytest.skip("no committed history")
        records = bench_diff.read_history(path)
        assert records
        for record in records:
            assert record["mode"] in ("full", "smoke")
            assert all(
                name.endswith("_per_sec")
                for name in record["metrics"]
            )
