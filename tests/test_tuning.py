"""Ziegler-Nichols tuning pipeline (Eqns 5-7 and the Ku/Pu search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.core.tuning import (
    DEFAULT_REGION_SPEEDS_RPM,
    ZieglerNicholsRule,
    default_gain_schedule,
    measure_oscillation,
    simulate_p_only_loop,
    ziegler_nichols_gains,
)
from repro.errors import UnitsError


class TestZieglerNicholsRules:
    def test_classic_pid_matches_eqns_5_to_7(self):
        gains = ziegler_nichols_gains(1000.0, 90.0, ZieglerNicholsRule.CLASSIC_PID)
        assert gains.kp == pytest.approx(600.0)  # 0.6 Ku
        assert gains.ki == pytest.approx(600.0 * 2.0 / 90.0)  # KP * 2 / Pu
        assert gains.kd == pytest.approx(600.0 * 90.0 / 8.0)  # KP * Pu / 8

    def test_p_only_has_no_integral(self):
        gains = ziegler_nichols_gains(1000.0, 90.0, ZieglerNicholsRule.P_ONLY)
        assert gains.kp == 500.0
        assert gains.ki == 0.0
        assert gains.kd == 0.0

    def test_pi_has_no_derivative(self):
        gains = ziegler_nichols_gains(1000.0, 90.0, ZieglerNicholsRule.CLASSIC_PI)
        assert gains.kd == 0.0
        assert gains.ki > 0.0

    def test_no_overshoot_is_gentlest(self):
        classic = ziegler_nichols_gains(1000.0, 90.0, ZieglerNicholsRule.CLASSIC_PID)
        gentle = ziegler_nichols_gains(1000.0, 90.0, ZieglerNicholsRule.NO_OVERSHOOT)
        assert gentle.kp < classic.kp

    def test_invalid_inputs_rejected(self):
        with pytest.raises(UnitsError):
            ziegler_nichols_gains(0.0, 90.0)
        with pytest.raises(UnitsError):
            ziegler_nichols_gains(100.0, 0.0)


class TestPOnlyLoop:
    def test_error_decays_at_low_gain(self, config):
        times, errors = simulate_p_only_loop(
            config, kp=50.0, fan_speed_rpm=3000.0, duration_s=1200.0,
            quantized=False,
        )
        # Tail error well below the 2 degC perturbation.
        assert abs(errors[-100:]).max() < 0.5

    def test_high_gain_sustains_oscillation(self, config):
        times, errors = simulate_p_only_loop(
            config, kp=2500.0, fan_speed_rpm=2000.0, duration_s=1800.0,
            quantized=False,
        )
        measurement = measure_oscillation(times, errors)
        assert measurement.decay_ratio > 0.9
        assert measurement.period_s > 0.0

    def test_quantized_loop_limit_cycles_earlier(self, config):
        """On the quantized loop, a moderate gain already limit-cycles."""
        _, errors_q = simulate_p_only_loop(
            config, kp=800.0, fan_speed_rpm=2000.0, duration_s=1800.0,
            quantized=True,
        )
        _, errors_i = simulate_p_only_loop(
            config, kp=800.0, fan_speed_rpm=2000.0, duration_s=1800.0,
            quantized=False,
        )
        assert abs(errors_q[-300:]).max() > abs(errors_i[-300:]).max()


class TestMeasureOscillation:
    def test_overdamped_signal(self):
        times = np.linspace(0.0, 100.0, 500)
        errors = 2.0 * np.exp(-times / 10.0)
        result = measure_oscillation(times, errors)
        assert result.decay_ratio == 0.0

    def test_sustained_sine(self):
        times = np.linspace(0.0, 1000.0, 5000)
        errors = np.sin(2 * np.pi * times / 90.0)
        result = measure_oscillation(times, errors)
        assert result.decay_ratio == pytest.approx(1.0, abs=0.02)
        assert result.period_s == pytest.approx(90.0, rel=0.02)

    def test_decaying_sine(self):
        times = np.linspace(0.0, 1000.0, 5000)
        errors = np.exp(-times / 300.0) * np.sin(2 * np.pi * times / 90.0)
        result = measure_oscillation(times, errors)
        assert result.decay_ratio < 0.95

    def test_growing_sine(self):
        times = np.linspace(0.0, 600.0, 3000)
        errors = np.exp(times / 300.0) * np.sin(2 * np.pi * times / 90.0)
        result = measure_oscillation(times, errors)
        assert result.decay_ratio > 1.0


class TestDefaultSchedule:
    def test_two_regions_at_paper_speeds(self, tuned_schedule):
        speeds = [r.ref_speed_rpm for r in tuned_schedule.regions]
        assert speeds == list(DEFAULT_REGION_SPEEDS_RPM)

    def test_high_region_hotter(self, tuned_schedule):
        """Section IV-B: the low-speed region is ~8x more sensitive, so
        its gains must be correspondingly smaller."""
        low, high = tuned_schedule.regions
        ratio = high.gains.kp / low.gains.kp
        assert 4.0 < ratio < 14.0

    def test_all_gains_positive(self, tuned_schedule):
        for region in tuned_schedule.regions:
            assert region.gains.kp > 0.0
            assert region.gains.ki > 0.0
            assert region.gains.kd > 0.0

    def test_cached(self):
        a = default_gain_schedule(ServerConfig())
        b = default_gain_schedule(ServerConfig())
        assert a is b
