"""Coordinators: Table II rules, uncoordinated baseline, E-coord, capper,
setpoint adaptation, and single-step fan scaling."""

from __future__ import annotations

import pytest

from repro.core.base import ControlInputs, ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.ecoord import EnergyAwareCoordinator
from repro.core.rules import (
    CoordinationAction,
    RuleBasedCoordinator,
    classify,
    table_ii_action,
)
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling, SingleStepPhase
from repro.core.uncoordinated import UncoordinatedCoordinator
from repro.errors import ControlError


def inputs(tmeas=77.0, util=0.5, degradation=0.0, demand=None) -> ControlInputs:
    return ControlInputs(
        time_s=100.0,
        tmeas_c=tmeas,
        measured_util=util,
        recent_degradation=degradation,
        demand_estimate=demand,
    )


STATE = ControlState(fan_speed_rpm=4000.0, cpu_cap=0.6)


class TestClassify:
    def test_signs(self):
        assert classify(5.0) == 1
        assert classify(-5.0) == -1
        assert classify(0.0) == 0

    def test_tolerance(self):
        assert classify(1e-12) == 0


class TestTableII:
    """All nine cells of Table II."""

    @pytest.mark.parametrize(
        "ds, du, expected",
        [
            (-1, -1, CoordinationAction.FAN_DOWN),
            (-1, 0, CoordinationAction.FAN_DOWN),
            (-1, 1, CoordinationAction.CAP_UP),
            (0, -1, CoordinationAction.CAP_DOWN),
            (0, 0, CoordinationAction.NONE),
            (0, 1, CoordinationAction.CAP_UP),
            (1, -1, CoordinationAction.FAN_UP),
            (1, 0, CoordinationAction.FAN_UP),
            (1, 1, CoordinationAction.FAN_UP),
        ],
    )
    def test_cell(self, ds, du, expected):
        assert table_ii_action(ds, du) is expected

    def test_single_action_invariant(self):
        """At most one knob moves, whatever the proposals."""
        coordinator = RuleBasedCoordinator()
        for ds in (-1, 0, 1):
            for du in (-1, 0, 1):
                fan_prop = STATE.fan_speed_rpm + 500.0 * ds
                cap_prop = STATE.cpu_cap + 0.1 * du
                result = coordinator.coordinate(STATE, fan_prop, cap_prop, inputs())
                fan_moved = result.fan_speed_rpm != STATE.fan_speed_rpm
                cap_moved = result.cpu_cap != STATE.cpu_cap
                assert not (fan_moved and cap_moved)

    def test_none_proposals_treated_as_no_change(self):
        coordinator = RuleBasedCoordinator()
        result = coordinator.coordinate(STATE, None, 0.7, inputs())
        assert result.cpu_cap == 0.7
        assert result.fan_speed_rpm == STATE.fan_speed_rpm
        assert coordinator.last_action is CoordinationAction.CAP_UP

    def test_action_counts(self):
        coordinator = RuleBasedCoordinator()
        coordinator.coordinate(STATE, 5000.0, None, inputs())
        coordinator.coordinate(STATE, 5000.0, None, inputs())
        assert coordinator.action_counts[CoordinationAction.FAN_UP] == 2


class TestUncoordinated:
    def test_applies_both(self):
        coordinator = UncoordinatedCoordinator()
        result = coordinator.coordinate(STATE, 5000.0, 0.8, inputs())
        assert result.fan_speed_rpm == 5000.0
        assert result.cpu_cap == 0.8

    def test_none_proposals_keep_state(self):
        coordinator = UncoordinatedCoordinator()
        assert coordinator.coordinate(STATE, None, None, inputs()) == STATE


class TestEnergyAware:
    @pytest.fixture()
    def coordinator(self, steady) -> EnergyAwareCoordinator:
        return EnergyAwareCoordinator(
            steady, t_emergency_c=80.0, t_comfort_c=76.0
        )

    def test_emergency_prefers_capping(self, coordinator):
        result = coordinator.coordinate(STATE, 5000.0, 0.5, inputs(tmeas=81.0))
        assert coordinator.last_action is CoordinationAction.CAP_DOWN
        assert result.cpu_cap == 0.5
        assert result.fan_speed_rpm == STATE.fan_speed_rpm

    def test_emergency_fan_up_when_cap_exhausted(self, coordinator):
        result = coordinator.coordinate(STATE, 5000.0, None, inputs(tmeas=81.0))
        assert coordinator.last_action is CoordinationAction.FAN_UP
        assert result.fan_speed_rpm == 5000.0

    def test_fan_up_rejected_below_admission_band(self, coordinator):
        # At 77 degC a fan boost buys nothing [6] values: rejected.
        result = coordinator.coordinate(STATE, 5000.0, None, inputs(tmeas=77.0))
        assert result == STATE
        assert coordinator.last_action is CoordinationAction.NONE

    def test_fan_up_admitted_in_preemergency_band(self, coordinator):
        result = coordinator.coordinate(STATE, 5000.0, None, inputs(tmeas=79.5))
        assert result.fan_speed_rpm == 5000.0

    def test_relaxation_prefers_fan_down(self, coordinator):
        result = coordinator.coordinate(STATE, 3000.0, 0.7, inputs(tmeas=73.0))
        assert coordinator.last_action is CoordinationAction.FAN_DOWN
        assert result.fan_speed_rpm == 3000.0
        assert result.cpu_cap == STATE.cpu_cap

    def test_cap_recovery_between_fan_decisions(self, coordinator):
        result = coordinator.coordinate(STATE, None, 0.7, inputs(tmeas=73.0))
        assert result.cpu_cap == 0.7

    def test_threshold_order_validated(self, steady):
        with pytest.raises(ControlError):
            EnergyAwareCoordinator(steady, t_emergency_c=70.0, t_comfort_c=76.0)


class TestDeadzoneCapper:
    def make(self) -> DeadzoneCpuCapper:
        return DeadzoneCpuCapper(t_low_c=76.0, t_high_c=80.0, step=0.02,
                                 cap_min=0.1)

    def test_cuts_above_high(self):
        capper = self.make()
        assert capper.propose(0.0, 81.0, 0.5) == pytest.approx(0.48)

    def test_raises_below_low(self):
        capper = self.make()
        assert capper.propose(0.0, 75.0, 0.5) == pytest.approx(0.52)

    def test_holds_inside_zone(self):
        capper = self.make()
        assert capper.propose(0.0, 78.0, 0.5) == 0.5

    def test_clamps_at_min(self):
        capper = self.make()
        assert capper.propose(0.0, 90.0, 0.1) == 0.1

    def test_clamps_at_max(self):
        capper = self.make()
        assert capper.propose(0.0, 70.0, 1.0) == 1.0

    def test_threshold_order_validated(self):
        with pytest.raises(ControlError):
            DeadzoneCpuCapper(t_low_c=82.0, t_high_c=80.0)

    def test_step_validated(self):
        with pytest.raises(ControlError):
            DeadzoneCpuCapper(76.0, 80.0, step=0.0)


class TestAdaptiveSetpoint:
    def test_linear_mapping(self):
        setpoint = AdaptiveSetpoint(t_min_c=70.0, t_max_c=80.0)
        assert setpoint.reference_for(0.0) == 70.0
        assert setpoint.reference_for(1.0) == 80.0
        assert setpoint.reference_for(0.5) == 75.0

    def test_low_load_attenuates(self):
        setpoint = AdaptiveSetpoint()
        assert setpoint.reference_for(0.1) < setpoint.reference_for(0.7)

    def test_update_uses_moving_average(self):
        setpoint = AdaptiveSetpoint(window=2)
        setpoint.update(0.0)
        t_ref = setpoint.update(1.0)  # average 0.5
        assert t_ref == pytest.approx(75.0)
        assert setpoint.predicted_util == pytest.approx(0.5)

    def test_custom_util_range_clamps(self):
        setpoint = AdaptiveSetpoint(util_low=0.2, util_high=0.8)
        assert setpoint.reference_for(0.1) == 70.0
        assert setpoint.reference_for(0.9) == 80.0

    def test_range_order_validated(self):
        with pytest.raises(ControlError):
            AdaptiveSetpoint(t_min_c=80.0, t_max_c=70.0)
        with pytest.raises(ControlError):
            AdaptiveSetpoint(util_low=0.8, util_high=0.2)


class TestSingleStep:
    @pytest.fixture()
    def scaler(self, steady) -> SingleStepFanScaling:
        return SingleStepFanScaling(
            steady,
            degradation_threshold=0.08,
            max_boost_periods=3,
            refractory_periods=5,
        )

    def test_inactive_without_degradation(self, scaler):
        result = scaler.apply(STATE, inputs(degradation=0.0), 75.0, 0.5)
        assert result == STATE
        assert scaler.phase is SingleStepPhase.INACTIVE

    def test_boost_on_degradation(self, scaler):
        result = scaler.apply(STATE, inputs(degradation=0.2), 75.0, 0.5)
        assert result.fan_speed_rpm == 8500.0
        assert scaler.phase is SingleStepPhase.BOOSTED
        assert scaler.boost_count == 1

    def test_boost_releases_to_safe_landing(self, scaler, steady):
        scaler.apply(STATE, inputs(degradation=0.2), 75.0, 0.5)
        result = scaler.apply(
            STATE, inputs(degradation=0.0, demand=0.8), 75.0, 0.5
        )
        expected = steady.required_fan_speed_rpm(0.85, 78.0)
        assert result.fan_speed_rpm == pytest.approx(expected)
        assert scaler.phase is SingleStepPhase.REFRACTORY

    def test_boost_bounded_by_max_periods(self, scaler):
        scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        for _ in range(2):
            result = scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
            assert result.fan_speed_rpm == 8500.0
        # Third post-trigger period: forced landing despite degradation.
        result = scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        assert result.fan_speed_rpm < 8500.0

    def test_refractory_blocks_retrigger(self, scaler):
        scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        scaler.apply(STATE, inputs(degradation=0.0), 75.0, 0.5)  # land
        result = scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        assert scaler.phase is SingleStepPhase.REFRACTORY
        assert scaler.boost_count == 1
        assert result.fan_speed_rpm < 8500.0

    def test_refractory_expires(self, scaler):
        scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        scaler.apply(STATE, inputs(degradation=0.0), 75.0, 0.5)
        for _ in range(5):
            scaler.apply(STATE, inputs(degradation=0.0), 75.0, 0.5)
        assert scaler.phase is SingleStepPhase.INACTIVE

    def test_zero_threshold_disables(self, steady):
        scaler = SingleStepFanScaling(steady, degradation_threshold=0.0)
        result = scaler.apply(STATE, inputs(degradation=0.9), 75.0, 0.5)
        assert result == STATE

    def test_landing_tracks_demand_decay(self, scaler, steady):
        scaler.apply(STATE, inputs(degradation=0.5), 75.0, 0.5)
        scaler.apply(STATE, inputs(degradation=0.0, demand=0.9), 75.0, 0.5)
        # During refractory the landing follows the (falling) demand.
        result = scaler.apply(
            STATE, inputs(degradation=0.0, demand=0.3), 75.0, 0.3
        )
        expected = steady.required_fan_speed_rpm(0.35, 78.0)
        assert result.fan_speed_rpm == pytest.approx(expected)

    def test_parameter_validation(self, steady):
        with pytest.raises(ControlError):
            SingleStepFanScaling(steady, max_boost_periods=0)
        with pytest.raises(ControlError):
            SingleStepFanScaling(steady, refractory_periods=-1)
