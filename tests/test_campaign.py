"""Campaign runner, shared parallel machinery, and parallel sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FleetError, SimulationError
from repro.fleet import CampaignRunner, CampaignTask, campaign_grid
from repro.sim.parallel import parallel_map, resolve_workers
from repro.sim.sweep import ParameterSweep


def _square(x):
    return x * x


def _run_short_static(speed):
    """Module-level sweep runner so the process pool can pickle it."""
    from tests.test_sim import make_static_sim

    return make_static_sim(speed=speed).run(20.0)


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, list(range(8)), workers=2) == [
            x * x for x in range(8)
        ]

    def test_negative_workers_rejected(self):
        with pytest.raises(SimulationError):
            parallel_map(_square, [1], workers=-1)

    def test_resolve_workers_caps_at_items(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(0, 3) == 1


class TestCampaignTask:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(FleetError):
            CampaignTask(scenario="nope")

    def test_label_is_stable(self):
        task = CampaignTask(
            scenario="hot_spot", n_servers=4, seed=3, recirc_fraction=0.25
        )
        assert task.label == "hot_spot/n4/f0.25/s3"

    def test_grid_order_and_count(self):
        tasks = campaign_grid(
            ["homogeneous", "hot_spot"],
            seeds=[0, 1],
            recirc_fractions=[0.0, 0.3],
            n_servers=2,
            duration_s=30.0,
        )
        assert len(tasks) == 8
        assert tasks[0].scenario == "homogeneous"
        assert [t.seed for t in tasks[:2]] == [0, 1]
        assert tasks[0].recirc_fraction == 0.0
        assert tasks[2].recirc_fraction == 0.3


class TestCampaignRunner:
    def test_empty_campaign_rejected(self):
        with pytest.raises(FleetError):
            CampaignRunner().run([])

    def test_sixteen_server_hetero_campaign_parallel_matches_serial(self):
        """Acceptance: a 16-server heterogeneous-rack campaign through
        workers=4 produces identical FleetResult metrics as the serial
        path."""
        tasks = [
            CampaignTask(
                scenario="hetero_sensors",
                n_servers=16,
                seed=seed,
                duration_s=60.0,
                dt_s=0.5,
                record_decimation=5,
                recirc_fraction=0.25,
            )
            for seed in (0, 1)
        ]
        serial = CampaignRunner(workers=None).run(tasks)
        parallel = CampaignRunner(workers=4).run(tasks)

        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert s.n_servers == p.n_servers == 16
            assert s.summary() == p.summary()
            assert s.mean_inlet_c == p.mean_inlet_c
            for rs, rp in zip(s.server_results, p.server_results):
                for name, channel in rs.channels.items():
                    assert np.array_equal(channel, rp.channels[name])

    def test_results_keep_task_order_and_labels(self):
        tasks = campaign_grid(
            ["hot_spot", "homogeneous"],
            seeds=[5],
            recirc_fractions=[0.2],
            n_servers=2,
            duration_s=20.0,
            dt_s=0.5,
            record_decimation=5,
        )
        results = CampaignRunner().run(tasks)
        assert [r.label for r in results] == [t.label for t in tasks]
        assert all(r.extras["task"] == t for r, t in zip(results, tasks))

    def test_run_summaries_flattens(self):
        task = CampaignTask(
            scenario="homogeneous",
            n_servers=2,
            duration_s=20.0,
            dt_s=0.5,
            record_decimation=5,
        )
        summaries = CampaignRunner().run_summaries([task])
        assert summaries[0]["n_servers"] == 2.0
        assert summaries[0]["total_energy_j"] > 0.0


class TestCampaignChunking:
    """Same-shape tasks stack into one batch run without changing results."""

    def _tasks(self, n_servers=3, seeds=(0, 1, 2)):
        return [
            CampaignTask(
                scenario="homogeneous",
                n_servers=n_servers,
                seed=seed,
                duration_s=30.0,
                dt_s=0.5,
                record_decimation=5,
            )
            for seed in seeds
        ]

    def test_chunked_matches_unchunked_bit_for_bit(self):
        tasks = self._tasks()
        solo = CampaignRunner(chunk_size=1).run(tasks)
        chunked = CampaignRunner(chunk_size=4).run(tasks)
        for s, c in zip(solo, chunked):
            assert s.label == c.label
            assert s.mean_inlet_c == c.mean_inlet_c
            for rs, rc in zip(s.server_results, c.server_results):
                for name, channel in rs.channels.items():
                    assert np.array_equal(channel, rc.channels[name])

    def test_chunk_composition_recorded_in_extras(self):
        tasks = self._tasks()
        results = CampaignRunner(chunk_size=2).run(tasks)
        # Three same-shape tasks, chunk_size 2 -> a pair and a singleton.
        assert results[0].extras["chunk"] == {
            "size": 2,
            "labels": (tasks[0].label, tasks[1].label),
            "position": 0,
        }
        assert results[1].extras["chunk"]["position"] == 1
        assert results[0].extras["stacked"]["width"] == 6
        assert "chunk" not in results[2].extras  # singleton runs solo
        assert all(r.extras["task"] == t for r, t in zip(results, tasks))

    def test_mixed_shapes_chunk_separately_in_task_order(self):
        tasks = self._tasks(n_servers=2, seeds=(0,)) + self._tasks(
            n_servers=3, seeds=(1,)
        ) + self._tasks(n_servers=2, seeds=(2,))
        results = CampaignRunner(chunk_size=4).run(tasks)
        assert [r.label for r in results] == [t.label for t in tasks]
        assert [r.n_servers for r in results] == [2, 3, 2]
        # The two 2-server tasks stacked together despite the 3-server
        # task sitting between them.
        assert results[0].extras["chunk"]["size"] == 2
        assert results[2].extras["chunk"]["position"] == 1

    def test_scalar_backend_tasks_do_not_stack(self):
        tasks = [
            CampaignTask(
                scenario="homogeneous",
                n_servers=2,
                seed=seed,
                duration_s=20.0,
                dt_s=0.5,
                record_decimation=5,
                backend="scalar",
            )
            for seed in (0, 1)
        ]
        results = CampaignRunner(chunk_size=4).run(tasks)
        for result in results:
            assert result.extras["backend"] == "scalar"
            assert "chunk" not in result.extras

    def test_chunked_parallel_matches_serial(self):
        tasks = self._tasks(seeds=(0, 1, 2, 3))
        serial = CampaignRunner(workers=None, chunk_size=2).run(tasks)
        parallel = CampaignRunner(workers=2, chunk_size=2).run(tasks)
        for s, p in zip(serial, parallel):
            assert s.summary() == p.summary()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(FleetError):
            CampaignRunner(chunk_size=0)


class TestParallelSweep:
    def test_workers_match_sequential(self):
        sweep = ParameterSweep(
            _run_short_static, metric_fns={"fan_j": lambda r: r.fan_energy_j}
        )
        values = [2000.0, 5000.0, 8000.0]
        seq = sweep.run(values)
        par = sweep.run(values, workers=2)
        assert [p.value for p in par] == values
        assert [p.metrics["fan_j"] for p in par] == [
            p.metrics["fan_j"] for p in seq
        ]
