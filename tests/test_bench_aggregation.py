"""Unit tests for the benchmark wall-time aggregator.

``bench_report.median_of_best`` exists because a ratio of two plain
best-of-N minimums once put the obs-disabled lane 6% *under* bare
(``disabled_overhead_ratio`` 0.94) - a lucky scheduler slot on one side,
not a real speedup.  The benchmarks directory is not a package, so the
module is loaded off its file path.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)

from bench_report import median_of_best  # noqa: E402


class TestMedianOfBest:
    def test_group_minima_then_median(self):
        # groups of 2: minima are [1.0, 3.0, 5.0] -> median 3.0
        samples = [1.0, 2.0, 4.0, 3.0, 5.0, 6.0]
        assert median_of_best(samples, groups=3) == 3.0

    def test_remainder_spreads_over_leading_groups(self):
        # 7 samples over 3 groups -> sizes 3, 2, 2.
        samples = [9.0, 1.0, 9.0, 2.0, 9.0, 3.0, 9.0]
        # minima: min(9,1,9)=1, min(2,9)=2, min(3,9)=3 -> median 2
        assert median_of_best(samples, groups=3) == 2.0

    def test_single_group_is_plain_min(self):
        assert median_of_best([5.0, 2.0, 7.0], groups=1) == 2.0

    def test_one_sample_per_group_is_plain_median(self):
        assert median_of_best([3.0, 1.0, 2.0], groups=3) == 2.0

    def test_single_outlier_round_cannot_drag_the_aggregate(self):
        """The artifact this aggregator fixes: one anomalously fast round
        moves one group's minimum, but the median across groups holds."""
        steady = [10.0] * 15
        lucky = steady.copy()
        lucky[7] = 6.0  # one round catches an idle machine
        assert median_of_best(steady, groups=5) == 10.0
        assert median_of_best(lucky, groups=5) == 10.0
        # A plain min would have reported the outlier.
        assert min(lucky) == 6.0

    def test_rejects_bad_group_counts(self):
        with pytest.raises(ValueError):
            median_of_best([1.0, 2.0], groups=0)
        with pytest.raises(ValueError):
            median_of_best([1.0, 2.0], groups=3)
