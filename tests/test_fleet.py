"""Fleet subsystem: coupling physics, rack model, lockstep simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FleetConfig, ServerConfig
from repro.errors import AnalysisError, ConfigError, FleetError
from repro.fleet import (
    ExhaustModel,
    FleetSimulator,
    Rack,
    RecirculationMatrix,
    build_server_slot,
    heterogeneous_sensor_rack,
    homogeneous_rack,
    hot_spot_rack,
    staggered_waves_rack,
)
from repro.fleet.scenarios import _SEED_STRIDE
from repro.analysis.metrics import fleet_summary
from repro.sim import Simulator
from repro.sim.scenarios import (
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
)
from repro.thermal.ambient import ConstantAmbient, CoupledInlet
from repro.workload.synthetic import ConstantWorkload


class TestExhaustModel:
    def test_rise_scales_inversely_with_fan_speed(self):
        model = ExhaustModel(conductance_at_max_w_per_k=50.0, max_speed_rpm=8500.0)
        assert model.rise_c(200.0, 8500.0) == pytest.approx(4.0)
        assert model.rise_c(200.0, 4250.0) == pytest.approx(8.0)

    def test_conductance_floor(self):
        model = ExhaustModel(
            conductance_at_max_w_per_k=50.0,
            max_speed_rpm=8500.0,
            min_conductance_fraction=0.2,
        )
        assert model.conductance_w_per_k(0.0) == pytest.approx(10.0)
        assert model.rise_c(100.0, 100.0) == pytest.approx(10.0)

    def test_invalid_inputs_rejected(self):
        model = ExhaustModel()
        with pytest.raises(FleetError):
            model.rise_c(-1.0, 4000.0)
        with pytest.raises(FleetError):
            model.conductance_w_per_k(-1.0)
        with pytest.raises(FleetError):
            ExhaustModel(min_conductance_fraction=0.0)


class TestRecirculationMatrix:
    def test_chain_structure(self):
        m = RecirculationMatrix.chain(3, 0.5).matrix
        assert m[0, 0] == 0.0
        assert m[1, 0] == pytest.approx(0.5)
        assert m[2, 0] == pytest.approx(0.25)
        assert m[2, 1] == pytest.approx(0.5)
        assert np.all(np.triu(m) == 0.0)

    def test_decoupled_is_zero(self):
        coupling = RecirculationMatrix.decoupled(4)
        assert coupling.is_decoupled
        assert np.all(coupling.inlet_offsets_c(np.ones(4)) == 0.0)

    def test_offsets_are_matrix_product(self):
        coupling = RecirculationMatrix.chain(3, 0.5)
        offsets = coupling.inlet_offsets_c(np.array([4.0, 2.0, 1.0]))
        assert offsets[0] == pytest.approx(0.0)
        assert offsets[1] == pytest.approx(2.0)
        assert offsets[2] == pytest.approx(2.0)  # 0.25*4 + 0.5*2

    def test_validation(self):
        with pytest.raises(FleetError):
            RecirculationMatrix(np.ones((2, 3)))
        with pytest.raises(FleetError):
            RecirculationMatrix(np.array([[0.0, -0.1], [0.0, 0.0]]))
        with pytest.raises(FleetError):
            RecirculationMatrix(np.array([[0.1, 0.0], [0.0, 0.0]]))
        with pytest.raises(FleetError):
            RecirculationMatrix.chain(3, 1.0)
        with pytest.raises(FleetError):
            coupling = RecirculationMatrix.chain(3, 0.5)
            coupling.inlet_offsets_c(np.ones(2))


class TestCoupledInlet:
    def test_reduces_to_base_without_offset(self):
        inlet = CoupledInlet(ConstantAmbient(28.0))
        assert inlet.temperature_c(0.0) == 28.0
        assert inlet.temperature_c(1e6) == 28.0

    def test_offset_adds_to_base(self):
        inlet = CoupledInlet(room_c=25.0)
        inlet.set_offset_c(3.5)
        assert inlet.temperature_c(10.0) == pytest.approx(28.5)
        assert inlet.offset_c == pytest.approx(3.5)

    def test_offset_validation(self):
        inlet = CoupledInlet()
        with pytest.raises(ConfigError):
            inlet.set_offset_c(float("nan"))
        with pytest.raises(ConfigError):
            inlet.set_offset_c(-1.0)


class TestFleetConfig:
    def test_defaults_valid(self):
        fleet = FleetConfig()
        assert fleet.room_c == ServerConfig().ambient_c

    def test_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(n_servers=0)
        with pytest.raises(ConfigError):
            FleetConfig(recirc_fraction=1.0)
        with pytest.raises(ConfigError):
            FleetConfig(min_conductance_fraction=0.0)


def constant_load_rack(n_servers, fraction, level=0.5):
    """Identical servers under identical constant load (noise-free)."""
    slots = [
        build_server_slot(
            f"srv{i:02d}", workload=ConstantWorkload(level), seed=0
        )
        for i in range(n_servers)
    ]
    return Rack(slots, coupling=RecirculationMatrix.chain(n_servers, fraction))


class TestRack:
    def test_empty_rack_rejected(self):
        with pytest.raises(FleetError):
            Rack([])

    def test_coupling_size_mismatch_rejected(self):
        slots = [
            build_server_slot("a", workload=ConstantWorkload(0.3)),
            build_server_slot("b", workload=ConstantWorkload(0.3)),
        ]
        with pytest.raises(FleetError):
            Rack(slots, coupling=RecirculationMatrix.chain(3, 0.2))

    def test_update_inlets_decoupled_is_zero(self):
        rack = constant_load_rack(3, 0.0)
        offsets = rack.update_inlets()
        assert np.all(offsets == 0.0)

    def test_update_inlets_coupled_offsets_downstream_only(self):
        rack = constant_load_rack(3, 0.4)
        offsets = rack.update_inlets()
        assert offsets[0] == 0.0
        assert offsets[1] > 0.0
        assert offsets[2] > 0.0


class TestFleetSimulator:
    def test_zero_recirculation_matches_single_server_bit_for_bit(self):
        """The coupling acceptance test: a decoupled rack must reproduce N
        independent single-server Simulator runs exactly."""
        n, dur, dt, dec, seed = 3, 90.0, 0.5, 2, 7
        rack = homogeneous_rack(
            n_servers=n,
            duration_s=dur,
            seed=seed,
            fleet=FleetConfig(n_servers=n, recirc_fraction=0.0),
        )
        fleet_res = FleetSimulator(rack, dt_s=dt, record_decimation=dec).run(dur)

        cfg = ServerConfig()
        for i in range(n):
            s = seed + _SEED_STRIDE * i
            single = Simulator(
                build_plant(cfg),
                build_sensor(cfg, seed=s),
                paper_workload(dur, seed=s),
                build_global_controller("rcoord", cfg),
                dt_s=dt,
                record_decimation=dec,
            ).run(dur)
            for name, channel in single.channels.items():
                assert np.array_equal(
                    channel, fleet_res.server(i).channels[name]
                ), f"server {i} channel {name} diverged"
            assert single.energy == fleet_res.server(i).energy
            assert single.performance == fleet_res.server(i).performance

    def test_recirculation_strictly_heats_downstream_inlets(self):
        """With recirculation > 0, inlet temperatures must strictly
        increase along the airflow path."""
        rack = constant_load_rack(4, 0.5)
        result = FleetSimulator(rack, dt_s=0.5, record_decimation=5).run(120.0)
        inlets = np.array(result.mean_inlet_c)
        assert np.all(np.diff(inlets) > 0.0)
        # The final instantaneous inlets are ordered too.
        assert np.all(np.diff(rack.inlet_temperatures_c()) > 0.0)

    def test_recirculation_raises_junction_temperatures(self):
        cold = FleetSimulator(
            constant_load_rack(3, 0.0), dt_s=0.5, record_decimation=5
        ).run(120.0)
        hot = FleetSimulator(
            constant_load_rack(3, 0.5), dt_s=0.5, record_decimation=5
        ).run(120.0)
        assert (
            hot.metrics.worst_max_junction_c > cold.metrics.worst_max_junction_c
        )
        assert hot.metrics.peak_junction_spread_c > 0.1
        assert cold.metrics.peak_junction_spread_c < 0.5

    def test_result_shape_and_lockstep(self):
        rack = constant_load_rack(3, 0.3)
        result = FleetSimulator(rack, dt_s=0.5, record_decimation=2).run(30.0)
        assert result.n_servers == 3
        matrix = result.junction_matrix()
        assert matrix.shape == (3, result.times.size)
        assert {r.times.size for r in result.server_results} == {
            result.times.size
        }


class TestFleetScenarios:
    def test_all_builders_produce_racks(self):
        for builder in (
            homogeneous_rack,
            heterogeneous_sensor_rack,
            staggered_waves_rack,
            hot_spot_rack,
        ):
            rack = builder(n_servers=3, duration_s=60.0, seed=1)
            assert rack.n_servers == 3
            assert [slot.name for slot in rack] == ["srv00", "srv01", "srv02"]

    def test_hetero_sensor_rack_varies_sensing(self):
        rack = heterogeneous_sensor_rack(n_servers=4, duration_s=60.0)
        lags = {slot.sensor.config.lag_s for slot in rack}
        assert len(lags) > 1

    def test_hot_spot_validates_index(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            hot_spot_rack(n_servers=3, hot_index=5)

    def test_unknown_scenario_rejected(self):
        from repro.errors import ExperimentError
        from repro.fleet import build_fleet_scenario

        with pytest.raises(ExperimentError):
            build_fleet_scenario("not-a-scenario")

    def test_fleet_config_size_mismatch_rejected(self):
        with pytest.raises(FleetError):
            homogeneous_rack(
                n_servers=3, duration_s=30.0, fleet=FleetConfig(n_servers=2)
            )


class TestFleetSummary:
    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            fleet_summary([])

    def test_mismatched_lengths_rejected(self):
        rack = constant_load_rack(2, 0.0)
        a = FleetSimulator(rack, dt_s=0.5).run(10.0)
        short = FleetSimulator(constant_load_rack(1, 0.0), dt_s=0.5).run(5.0)
        with pytest.raises(AnalysisError):
            fleet_summary([a.server(0), short.server(0)])

    def test_totals_sum_servers(self):
        rack = constant_load_rack(2, 0.0)
        result = FleetSimulator(rack, dt_s=0.5).run(30.0)
        summary = result.metrics
        assert summary.total_energy_j == pytest.approx(
            sum(r.energy.total_j for r in result.server_results)
        )
        assert summary.violation_percent == 0.0
