"""Fused-backend internals: coefficient caches and window semantics.

The fused kernel (:mod:`repro.sim.fused`) caches two things per plant
*version* - the closed-form scan coefficients (``powers``/``geom`` per
node and window width) and the plant-coefficient column views - because
:class:`~repro.sim.batch.BatchThermalPlant` mutates its coefficient
arrays **in place** (array identity never changes).  These tests pin the
version counter's bump rules and prove the fused caches go stale and
rebuild at exactly the instants fan commands or mid-run fouling faults
change the coefficients.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FleetConfig, ServerConfig
from repro.faults.events import FaultEvent, FaultSchedule
from repro.fleet import FleetSimulator, build_fleet_scenario
from repro.sim.batch import BatchThermalPlant
from repro.sim.fused import FusedStepper
from repro.thermal.server import ServerThermalModel

_DT = 0.1


def _plants(n=3):
    return [ServerThermalModel(ServerConfig()) for _ in range(n)]


def _rack(scheme="rcoord_atref", n=4, seed=11, duration=60.0):
    return build_fleet_scenario(
        "homogeneous",
        n_servers=n,
        duration_s=duration,
        seed=seed,
        fleet=FleetConfig(n_servers=n, recirc_fraction=0.3),
        scheme=scheme,
    )


class TestPlantVersionCounter:
    """The monotonic counter every coefficient-derived cache keys on."""

    def test_apply_fan_speed_bumps_version(self):
        plant = BatchThermalPlant(_plants(), dt_s=_DT)
        v0 = plant.version
        plant.apply_fan_speed(0, 4000.0)
        assert plant.version == v0 + 1
        # Re-applying a cached level still counts as a coefficient write
        # (the arrays are mutated in place either way).
        plant.apply_fan_speed(0, 4000.0)
        assert plant.version == v0 + 2

    def test_set_fouling_bumps_version_and_clears_level_cache(self):
        plant = BatchThermalPlant(_plants(), dt_s=_DT)
        plant.apply_fan_speed(1, 5000.0)
        r_clean = plant.r_hs[1]
        v0 = plant.version
        plant.set_fouling(1, 0.4)
        assert plant.version == v0 + 1
        # The stale cached level must not be served after fouling: the
        # re-applied speed resolves against the fouled resistance.
        plant.apply_fan_speed(1, 5000.0)
        assert plant.r_hs[1] == pytest.approx(r_clean + 0.4)

    def test_noop_fouling_does_not_bump(self):
        plant = BatchThermalPlant(_plants(), dt_s=_DT)
        plant.set_fouling(2, 0.0)
        assert plant.version == 0

    def test_coefficient_arrays_keep_identity(self):
        """In-place mutation is the whole reason the counter exists: a
        cache keyed on array identity would never invalidate."""
        plant = BatchThermalPlant(_plants(), dt_s=_DT)
        r_hs, hs_decay = plant.r_hs, plant.hs_decay
        plant.apply_fan_speed(0, 3000.0)
        plant.set_fouling(0, 0.2)
        plant.apply_fan_speed(0, 3000.0)
        assert plant.r_hs is r_hs
        assert plant.hs_decay is hs_decay

    def test_snapshot_detaches_fan_arrays(self):
        """Copy-on-write for the fan-state mirrors the stepper holds."""
        plant = BatchThermalPlant(_plants(), dt_s=_DT)
        for i in range(3):
            plant.apply_fan_speed(i, 3000.0)
        fan_w, clamped = plant.fan_w, plant.clamped_speed
        plant.snapshot_fan_state()
        plant.apply_fan_speed(0, 8000.0)
        # The held references keep their pre-decision values.
        assert plant.fan_w is not fan_w
        assert plant.clamped_speed is not clamped
        assert clamped[0] == 3000.0
        assert plant.clamped_speed[0] == 8000.0


def _fused_stepper(rack, n_steps=600):
    slots = list(rack)
    return FusedStepper(
        plants=[s.plant for s in slots],
        sensors=[s.sensor for s in slots],
        workloads=[s.workload for s in slots],
        controllers=[s.controller for s in slots],
        n_steps=n_steps,
        dt_s=_DT,
        coupling=rack.coupling,
        exhaust=rack.exhaust,
    )


class TestFusedCoefficientCache:
    def test_cache_rebuilds_on_version_change(self):
        stepper = _fused_stepper(_rack())
        assert stepper._coeff_version == -1
        assert stepper._cols is None
        stepper.run()
        plant = stepper._plant
        # The caches were built against a live plant version.  They may
        # trail it by the run-ending control decision (fan writes land
        # *after* the last window's version check) but never by more:
        # every window start re-checks, so a stale cache survives at most
        # until the next window boundary.
        assert 0 <= stepper._coeff_version <= plant.version
        assert stepper._cols is not None
        if stepper.scan_impl == "numpy":
            assert stepper._coeff_cache
        # A coefficient write leaves them stale for the next window
        # check to rebuild.
        v = stepper._coeff_version
        plant.apply_fan_speed(0, 8500.0)
        assert plant.version > v

    def test_cached_columns_track_plant_arrays(self):
        """The cached column views alias the live coefficient arrays, so
        in-place writes flow through without a rebuild mid-window."""
        stepper = _fused_stepper(_rack())
        stepper.run()
        _, _, _, r_hs_col, _ = stepper._cols
        assert r_hs_col.base is stepper._plant.r_hs

    def test_mid_run_fouling_stays_equivalent(self):
        """A fouling fault mid-run changes r_hs/hs_decay in place; the
        fused lane must pick the change up at the fault instant, not
        serve a stale scan cache.  Pinned against the vectorized lane."""
        faults = FaultSchedule(
            [
                FaultEvent(
                    kind="fouling",
                    server=1,
                    start_s=20.0,
                    duration_s=25.0,
                    magnitude=0.5,
                ),
                FaultEvent(
                    kind="fan_seize", server=2, start_s=15.0, duration_s=30.0
                ),
            ]
        )
        results = {}
        for backend in ("vectorized", "fused"):
            sim = FleetSimulator(
                _rack(),
                dt_s=_DT,
                record_decimation=2,
                backend=backend,
                faults=faults,
            )
            results[backend] = sim.run(60.0)
            assert results[backend].extras["backend"] == backend
        rv, rf = results["vectorized"], results["fused"]
        assert rv.extras["faults"] == rf.extras["faults"]
        for i in range(rv.n_servers):
            sv, sf = rv.server(i), rf.server(i)
            for name in ("tmeas", "fan_speed", "cpu_cap", "applied"):
                assert np.array_equal(
                    sv.channels[name], sf.channels[name], equal_nan=True
                ), f"server {i} {name}"
            for name in ("junction", "heatsink"):
                drift = np.max(
                    np.abs(sv.channels[name] - sf.channels[name])
                )
                assert drift < 1e-9, f"server {i} {name}: {drift:.3e}"


class TestWindowSemantics:
    def test_counters_match_vectorized(self):
        """Window fusion must not change how often control/sensing run:
        the obs counters (control decisions, server steps) agree with
        the per-dt vectorized lane."""
        from repro.obs import ObsConfig

        summaries = {}
        for backend in ("vectorized", "fused"):
            sim = FleetSimulator(
                _rack(),
                dt_s=_DT,
                record_decimation=5,
                backend=backend,
                obs=ObsConfig(trace=False),
            )
            result = sim.run(60.0)
            summaries[backend] = result.extras["obs"]["counters"]
        vec, fus = summaries["vectorized"], summaries["fused"]
        assert vec["server_steps"] == fus["server_steps"]
        assert vec.get("control_steps") == fus.get("control_steps")

    def test_single_step_windows_still_work(self):
        """dt equal to the control period forces w=1 windows - the fused
        kernel degenerates to the per-dt lane and must still agree."""
        results = {}
        for backend in ("vectorized", "fused"):
            rack = build_fleet_scenario(
                "homogeneous",
                n_servers=3,
                duration_s=30.0,
                seed=3,
                fleet=FleetConfig(n_servers=3, recirc_fraction=0.2),
            )
            sim = FleetSimulator(
                rack, dt_s=1.0, record_decimation=1, backend=backend
            )
            results[backend] = sim.run(30.0)
        rv, rf = results["vectorized"], results["fused"]
        for i in range(rv.n_servers):
            sv, sf = rv.server(i), rf.server(i)
            for name in ("tmeas", "fan_speed", "cpu_cap"):
                assert np.array_equal(
                    sv.channels[name], sf.channels[name]
                ), f"server {i} {name}"
            for name in ("junction", "heatsink"):
                assert np.max(
                    np.abs(sv.channels[name] - sf.channels[name])
                ) < 1e-9
