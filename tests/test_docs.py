"""Docs sanity: the tree exists and intra-repo links resolve.

CI has a dedicated docs job running ``tools/check_links.py``; this test
runs the same checker in tier 1 so broken links fail locally too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_tree_exists():
    for name in ("architecture.md", "backends.md", "api.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"


def test_intra_repo_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_links.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"link checker failed:\n{proc.stdout}"
