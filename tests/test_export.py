"""OpenMetrics export, live endpoints, and streaming campaign folds.

Three contracts pin the export layer:

1. **Exposition validity** - everything ``/metrics`` serves passes the
   pure-python OpenMetrics lint (:func:`repro.obs.export.lint_openmetrics`),
   scraped from a *live* server mid-run and after, not just rendered
   from a summary in-process.
2. **Non-perturbation** - attaching a live endpoint and scraping it
   changes nothing: the instrumented+scraped run stays bit-for-bit
   identical to a bare run (``repro.obs.diff`` finds zero divergences).
3. **Streamed == post-hoc** - the parent's incremental fold of
   queue-shipped task finals is byte-identical (canonical JSON) to
   merging the same campaign's result summaries after the fact, for
   serial and process-pool execution alike.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.errors import ObsError
from repro.fleet import FleetSimulator, homogeneous_rack
from repro.fleet.campaign import (
    CampaignRunner,
    CampaignTask,
    merge_campaign_obs,
)
from repro.obs import (
    CampaignStream,
    Histogram,
    LiveObsServer,
    ObsCollector,
    ObsConfig,
    QueueSink,
    lint_openmetrics,
    quantiles_from_hist,
    render_openmetrics,
)
from repro.obs.diff import diff_fleet_results
from repro.obs.export import escape_label_value, metric_name
from repro.obs.report import main as report_main
from repro.obs.report import merge_traces, read_jsonl


def _rack_sim(obs=None, n_servers=4, duration_s=20.0):
    rack = homogeneous_rack(
        n_servers=n_servers, duration_s=duration_s, seed=1
    )
    return FleetSimulator(
        rack,
        dt_s=0.1,
        record_decimation=10,
        backend="vectorized",
        obs=obs,
    )


def _campaign_tasks(obs=None):
    """Two chunk shapes so ``workers=2`` genuinely uses the pool."""
    return [
        CampaignTask(
            scenario="homogeneous",
            n_servers=n,
            seed=seed,
            duration_s=15.0,
            dt_s=0.1,
            record_decimation=10,
            obs=obs,
        )
        for n in (3, 4)
        for seed in (0, 1)
    ]


def _scrape(url):
    with urllib.request.urlopen(url) as response:
        return response.status, response.read().decode()


class TestExportHelpers:
    def test_metric_name_sanitizes(self):
        assert metric_name("server_steps") == "server_steps"
        assert metric_name("per-window cost!") == "per_window_cost_"
        assert metric_name("9lives") == "_9lives"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_quantiles_interpolate_within_bucket(self):
        hist = Histogram()
        for value in (0.5, 1.5, 2.5, 3.5):
            hist.observe(value)
        quantiles = quantiles_from_hist(hist.as_dict())
        assert set(quantiles) == {0.5, 0.95, 0.99}
        # All mass sits in known power-of-two buckets; every estimate
        # must stay within the observed range.
        assert 0.5 <= quantiles[0.5] <= 3.5
        assert quantiles[0.5] <= quantiles[0.95] <= quantiles[0.99] <= 3.5

    def test_quantiles_empty_hist(self):
        assert all(
            value is None
            for value in quantiles_from_hist(Histogram().as_dict()).values()
        )

    def test_quantiles_overflow_bucket_clamps_to_max(self):
        hist = Histogram(bounds=(1.0, math.inf))
        hist.observe(250.0)
        hist.observe(300.0)
        quantiles = quantiles_from_hist(hist.as_dict())
        # Overflow-bucket mass has no upper bound to interpolate toward;
        # the recorded max caps the estimate instead of +inf.
        assert quantiles[0.99] <= 300.0


class TestRenderAndLint:
    def test_rendered_summary_passes_lint(self):
        obs = ObsCollector(ObsConfig())
        obs.count("server_steps", 42)
        obs.gauge("sim_speedup", 11.5)
        obs.phase("plant", 0.0, 0.25)
        obs.observe("step_s", 1e-4)
        text = render_openmetrics(obs.summary())
        assert lint_openmetrics(text) == []
        assert text.endswith("# EOF\n")
        assert 'repro_server_steps_total{run="run"} 42' in text
        assert "repro_step_s_bucket" in text
        assert 'repro_step_s_quantile{run="run",quantile="0.5"}' in text

    def test_incident_series_always_declared(self):
        # CI gates on repro_incidents_total existing; the family must be
        # declared even for a run with zero incidents.
        text = render_openmetrics(ObsCollector(ObsConfig()).summary())
        assert "# TYPE repro_incidents_total counter" in text
        assert "# TYPE repro_incidents_active gauge" in text

    def test_incident_tallies_labelled(self):
        summary = ObsCollector(ObsConfig()).summary()
        summary["incidents"] = [
            {"detector": "stuck_sensor", "severity": "warning",
             "scope": "s0", "onset_s": 1.0, "clear_s": 5.0},
            {"detector": "stuck_sensor", "severity": "warning",
             "scope": "s1", "onset_s": 2.0, "clear_s": None},
            {"detector": "thermal_runaway", "severity": "critical",
             "scope": "rack", "onset_s": 3.0, "clear_s": None},
        ]
        text = render_openmetrics(summary)
        assert lint_openmetrics(text) == []
        assert (
            'repro_incidents_total{run="run",detector="stuck_sensor",'
            'severity="warning"} 2' in text
        )
        assert (
            'repro_incidents_active{run="run",detector="thermal_runaway",'
            'severity="critical"} 1' in text
        )

    def test_extra_labels_everywhere(self):
        obs = ObsCollector(ObsConfig())
        obs.count("server_steps", 7)
        text = render_openmetrics(obs.summary(), labels={"rack": "r0"})
        assert lint_openmetrics(text) == []
        assert 'rack="r0"' in text

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("repro_x_total 1\n# EOF\n", "no preceding TYPE"),
            (
                "# TYPE repro_x_total counter\nrepro_x_total -1\n# EOF\n",
                "non-monotone",
            ),
            (
                "# TYPE repro_x gauge\nrepro_x 1\n",
                "# EOF",
            ),
            (
                "# TYPE repro_x counter\nrepro_x 1\n# EOF\n",
                "_total",
            ),
        ],
    )
    def test_lint_catches_violations(self, bad, fragment):
        errors = lint_openmetrics(bad)
        assert errors, f"lint accepted: {bad!r}"
        assert any(fragment in error for error in errors), errors

    def test_lint_catches_non_cumulative_buckets(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 4.0\n"
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("cumulative" in e for e in lint_openmetrics(bad))


class TestLiveServer:
    def test_live_scrape_during_and_after_run(self):
        sim = _rack_sim(obs=ObsConfig())
        with LiveObsServer(sim) as live:
            status, body = _scrape(live.url + "/metrics")
            assert status == 200
            assert lint_openmetrics(body) == [], lint_openmetrics(body)
            result = sim.run(20.0, label="live")
            status, body = _scrape(live.url + "/metrics")
            assert status == 200
            assert lint_openmetrics(body) == [], lint_openmetrics(body)
            # Counters, gauges, histogram quantiles, incident series.
            assert 'repro_server_steps_total{run="live"} 800' in body
            assert "# TYPE repro_incidents_total counter" in body
            assert "_bucket{" in body
            assert "_quantile{" in body
            status, health = _scrape(live.url + "/healthz")
            assert status == 200
            assert json.loads(health)["status"] == "ok"
            status, incidents = _scrape(live.url + "/incidents")
            assert status == 200
            assert json.loads(incidents) == []
        assert result.extras["obs"]["counters"]["server_steps"] == 800

    def test_live_server_does_not_perturb(self):
        sim = _rack_sim(obs=ObsConfig())
        with LiveObsServer(sim) as live:
            instrumented = sim.run(20.0)
            _scrape(live.url + "/metrics")
        bare = _rack_sim().run(20.0)
        assert not diff_fleet_results(instrumented, bare)

    def test_unknown_route_404(self):
        sim = _rack_sim(obs=ObsConfig())
        with LiveObsServer(sim) as live:
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(live.url + "/nope")
            assert err.value.code == 404

    def test_healthz_reflects_active_incidents(self):
        obs = ObsCollector(ObsConfig())
        obs.count("server_steps", 1)
        summary = obs.summary()
        summary["incidents"] = [
            {"detector": "thermal_runaway", "severity": "critical",
             "scope": "s0", "onset_s": 1.0, "clear_s": None},
        ]
        with LiveObsServer(lambda: summary) as live:
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(live.url + "/healthz")
            assert err.value.code == 503
            assert json.loads(err.value.read())["status"] == "critical"
            _, incidents = _scrape(live.url + "/incidents")
            assert len(json.loads(incidents)) == 1

    def test_server_stops_cleanly(self):
        sim = _rack_sim(obs=ObsConfig())
        live = LiveObsServer(sim)
        live.start()
        url = live.url
        _scrape(url + "/metrics")
        live.stop()
        assert not live.running
        with pytest.raises(OSError):
            _scrape(url + "/metrics")

    def test_rejects_source_without_summary(self):
        with pytest.raises(ObsError):
            LiveObsServer(object())


class TestQueueSink:
    def test_emit_forwards_records(self):
        import queue

        local: queue.SimpleQueue = queue.SimpleQueue()
        sink = QueueSink(local)
        sink.emit({"type": "metrics", "label": "t"})
        assert local.get()["type"] == "metrics"
        assert sink.dropped == 0

    def test_full_queue_drops_and_counts(self):
        import queue

        bounded: queue.Queue = queue.Queue(maxsize=1)
        sink = QueueSink(bounded)
        sink.emit({"type": "metrics", "n": 1})
        sink.emit({"type": "metrics", "n": 2})
        assert sink.dropped == 1
        assert bounded.get()["n"] == 1


class TestCampaignStream:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_streamed_fold_matches_posthoc_merge(self, workers):
        stream = CampaignStream()
        results = CampaignRunner(workers=workers).run(
            _campaign_tasks(obs=ObsConfig(emit_every_s=5.0)), stream=stream
        )
        streamed = json.dumps(stream.merged(), sort_keys=True)
        posthoc = json.dumps(merge_campaign_obs(results), sort_keys=True)
        assert streamed == posthoc
        progress = stream.progress()
        assert progress["tasks_done"] == progress["n_tasks"] == 4
        assert progress["server_steps"] == sum(
            r.extras["obs"]["counters"]["server_steps"] for r in results
        )

    def test_streamed_campaign_does_not_perturb(self):
        stream = CampaignStream()
        streamed = CampaignRunner(workers=2).run(
            _campaign_tasks(obs=ObsConfig(emit_every_s=5.0)), stream=stream
        )
        bare = CampaignRunner(workers=2).run(_campaign_tasks())
        for a, b in zip(streamed, bare):
            assert not diff_fleet_results(a, b)

    def test_serial_equals_parallel_deterministic_fields(self):
        serial_stream = CampaignStream()
        CampaignRunner(workers=1).run(
            _campaign_tasks(obs=ObsConfig()), stream=serial_stream
        )
        pool_stream = CampaignStream()
        CampaignRunner(workers=2).run(
            _campaign_tasks(obs=ObsConfig()), stream=pool_stream
        )
        serial, pool = serial_stream.merged(), pool_stream.merged()
        # Wall-clock fields are inherently run-specific; every
        # deterministic field of the fold must agree bit-for-bit.
        assert serial["counters"] == pool["counters"]
        assert serial["runs"] == pool["runs"]
        assert serial["incidents"] == pool["incidents"]
        assert {
            name: entry["count"] for name, entry in serial["phases"].items()
        } == {
            name: entry["count"] for name, entry in pool["phases"].items()
        }
        assert {
            name: hist["count"] for name, hist in serial["hists"].items()
        } == {
            name: hist["count"] for name, hist in pool["hists"].items()
        }

    def test_live_summary_served_mid_campaign(self):
        stream = CampaignStream()
        with LiveObsServer(stream) as live:
            CampaignRunner(workers=1).run(
                _campaign_tasks(obs=ObsConfig()), stream=stream
            )
            status, body = _scrape(live.url + "/metrics")
        assert status == 200
        assert lint_openmetrics(body) == []
        assert "repro_server_steps_total" in body

    def test_begin_required_before_records(self):
        stream = CampaignStream()
        with pytest.raises(ObsError):
            stream.add_record({"type": "task_final", "index": 0})


class TestMergedTrace:
    def _trace_files(self, tmp_path, workers):
        obs = ObsConfig(
            emit_every_s=5.0, trace=True, trace_export=str(tmp_path)
        )
        stream = CampaignStream(obs=ObsCollector(ObsConfig(trace=True)))
        CampaignRunner(workers=workers).run(
            _campaign_tasks(obs=obs), stream=stream
        )
        parent = tmp_path / "parent.jsonl"
        stream.obs.export_trace_jsonl(parent)
        return sorted(str(p) for p in tmp_path.glob("*.jsonl"))

    def test_worker_traces_carry_pid_and_label(self, tmp_path):
        files = self._trace_files(tmp_path, workers=1)
        assert len(files) == 5  # 4 tasks + the parent
        for path in files:
            for record in read_jsonl(path):
                assert isinstance(record["pid"], int)
                assert "label" in record

    def test_merge_traces_lanes_and_origin(self, tmp_path):
        files = self._trace_files(tmp_path, workers=1)
        doc = merge_traces([(f, read_jsonl(f)) for f in files])
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] in ("X", "i")]
        metas = [e for e in events if e["ph"] == "M"]
        assert spans and metas
        assert min(e["ts"] for e in spans) == 0.0
        assert all(e["name"] == "process_name" for e in metas)
        # One metadata lane per pid present in the span events.
        assert {e["pid"] for e in metas} == {e["pid"] for e in spans}
        # The campaign macro span and the per-task completion marks.
        names = {e["name"] for e in events}
        assert "campaign" in names
        assert any(name.startswith("task:") for name in names)
        assert any(e["ph"] == "i" for e in events)

    def test_merged_trace_cli(self, tmp_path):
        files = self._trace_files(tmp_path, workers=1)
        out = tmp_path / "merged.json"
        assert (
            report_main(["--merged-trace", *files, "--out", str(out)]) == 0
        )
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["metadata"]["sources"] == files

    def test_merged_trace_rejects_metrics_files(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(json.dumps({"type": "metrics", "label": "x"}) + "\n")
        assert report_main(["--merged-trace", str(path)]) == 1


class TestReportFormats:
    def _metrics_file(self, tmp_path):
        sim = _rack_sim(obs=ObsConfig())
        result = sim.run(20.0, label="fmt")
        path = tmp_path / "final.jsonl"
        record = dict(result.extras["obs"])
        record["label"] = "fmt"
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_format_json_runs(self, tmp_path, capsys):
        path = self._metrics_file(tmp_path)
        assert report_main([str(path), "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["run"] == "fmt"
        assert rows[0]["server_steps"] == 800

    def test_hists_table_has_quantile_columns(self, tmp_path, capsys):
        path = self._metrics_file(tmp_path)
        assert report_main([str(path), "--hists"]) == 0
        out = capsys.readouterr().out
        for column in ("p50", "p95", "p99", "mean", "count"):
            assert column in out
        assert "plant_seconds" in out

    def test_hists_json_quantiles_match_export(self, tmp_path, capsys):
        path = self._metrics_file(tmp_path)
        assert report_main([str(path), "--hists", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["hist"]: row for row in rows}
        summary = read_jsonl(path)[0]
        for name, hist in summary["hists"].items():
            expected = quantiles_from_hist(hist)
            assert by_name[name]["p50"] == expected[0.5]
            assert by_name[name]["p99"] == expected[0.99]
