"""Public API surface and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj in (
                    errors.ReproError,
                )

    def test_value_error_compatibility(self):
        """Config/units errors also behave as ValueError for callers."""
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.UnitsError, ValueError)
        assert issubclass(errors.WorkloadError, ValueError)

    def test_tuning_error_is_control_error(self):
        assert issubclass(errors.TuningError, errors.ControlError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SensorError("boom")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_scheme_names_exported(self):
        assert "rcoord_atref_ssfan" in repro.SCHEME_NAMES

    def test_key_classes_importable_from_top_level(self):
        assert repro.ServerConfig
        assert repro.AdaptivePIDFanController
        assert repro.GlobalController
        assert repro.Simulator

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.power
        import repro.sensing
        import repro.sim
        import repro.thermal
        import repro.workload

        for module in (
            repro.analysis,
            repro.core,
            repro.power,
            repro.sensing,
            repro.sim,
            repro.thermal,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
