"""Room subsystem: sparse coupling, topology, CRAC, stacked execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CRACConfig, FleetConfig, RoomConfig
from repro.errors import RoomError, SimulationError
from repro.fleet import FleetSimulator, RecirculationMatrix, homogeneous_rack
from repro.fleet.coupling import CouplingOperator
from repro.room import (
    CRACUnit,
    Room,
    RoomSimulator,
    RoomTopology,
    SparseCoupling,
    build_room_scenario,
    run_stacked_racks,
    stacked_unsupported_reason,
    uniform_room,
)
from repro.room.scenarios import (
    ROOM_SCENARIOS,
    failed_crac_room,
    hot_spot_rack_room,
    mixed_aisles_room,
)


def _chain_blocks(n_racks, servers, fraction=0.25):
    return [
        RecirculationMatrix.chain(servers, fraction).matrix
        for _ in range(n_racks)
    ]


def _assert_results_equal(a, b):
    """Two FleetResults hold bit-for-bit identical runs."""
    assert a.mean_inlet_c == b.mean_inlet_c
    for ra, rb in zip(a.server_results, b.server_results):
        for name, channel in ra.channels.items():
            assert np.array_equal(channel, rb.channels[name]), name
        assert ra.energy == rb.energy
        assert ra.performance == rb.performance


class TestSparseCoupling:
    def test_block_diagonal_matches_dense(self):
        blocks = _chain_blocks(3, 4)
        sparse = SparseCoupling.block_diagonal(blocks)
        dense = sparse.to_dense()
        rises = np.linspace(0.5, 3.0, 12)
        # Block-diagonal apply runs the same per-rack gemvs as the dense
        # racks would, so this holds exactly, not just to tolerance.
        per_rack = np.concatenate(
            [block @ rises[4 * r : 4 * (r + 1)] for r, block in enumerate(blocks)]
        )
        assert np.array_equal(sparse.apply(rises), per_rack)
        assert np.allclose(sparse.apply(rises), dense @ rises)

    def test_cross_and_feedback_match_dense_to_tolerance(self):
        blocks = _chain_blocks(2, 3)
        cross = {(0, 1): 0.05 * np.eye(3), (1, 0): 0.02 * np.ones((3, 3))}
        gain = 0.3 * np.ones(6)
        mix = np.full(6, 0.7 / 6)
        sparse = SparseCoupling(
            blocks, cross=cross, feedback_gain=gain, feedback_mix=mix
        )
        rises = np.array([1.0, 2.0, 0.5, 3.0, 0.25, 1.5])
        dense = sparse.to_dense()
        assert np.allclose(sparse.apply(rises), dense @ rises, rtol=1e-12)
        assert sparse.feedback_rank == 1

    def test_csr_arrays_reconstruct_sparsity(self):
        blocks = _chain_blocks(2, 3)
        cross = {(1, 0): 0.05 * np.eye(3)}
        sparse = SparseCoupling(blocks, cross=cross)
        indptr, indices, data = sparse.csr_arrays()
        dense = np.zeros((6, 6))
        for i in range(6):
            for k in range(indptr[i], indptr[i + 1]):
                dense[i, indices[k]] = data[k]
        assert np.array_equal(dense, sparse.to_dense())
        assert indptr[-1] == sparse.nnz
        assert 0.0 < sparse.density < 1.0

    def test_is_decoupled(self):
        zero = SparseCoupling.block_diagonal([np.zeros((2, 2))] * 2)
        assert zero.is_decoupled
        assert not SparseCoupling.block_diagonal(_chain_blocks(1, 2)).is_decoupled
        # A nonzero low-rank term couples even over zero blocks.
        fed = SparseCoupling(
            [np.zeros((2, 2))],
            feedback_gain=np.ones(2),
            feedback_mix=np.ones(2),
        )
        assert not fed.is_decoupled

    def test_is_a_coupling_operator(self):
        from repro.errors import FleetError

        sparse = SparseCoupling.block_diagonal(_chain_blocks(2, 2))
        assert isinstance(sparse, CouplingOperator)
        with pytest.raises(FleetError):
            sparse.inlet_offsets_c(np.zeros(3))

    def test_to_recirculation_matrix_round_trips(self):
        sparse = SparseCoupling(
            _chain_blocks(2, 2), cross={(0, 1): 0.1 * np.eye(2)}
        )
        dense = sparse.to_recirculation_matrix()
        rises = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(dense.apply(rises), sparse.apply(rises))

    def test_validation(self):
        with pytest.raises(RoomError):
            SparseCoupling([])
        with pytest.raises(RoomError):
            SparseCoupling([np.ones((2, 3))])  # not square
        with pytest.raises(RoomError):
            SparseCoupling([np.eye(2)])  # nonzero diagonal
        with pytest.raises(RoomError):
            SparseCoupling([-np.ones((2, 2)) + np.eye(2)])  # negative
        blocks = _chain_blocks(2, 2)
        with pytest.raises(RoomError):
            SparseCoupling(blocks, cross={(0, 0): np.zeros((2, 2))})
        with pytest.raises(RoomError):
            SparseCoupling(blocks, cross={(0, 2): np.zeros((2, 2))})
        with pytest.raises(RoomError):
            SparseCoupling(blocks, cross={(0, 1): np.zeros((3, 2))})
        with pytest.raises(RoomError):
            SparseCoupling(blocks, feedback_gain=np.ones(4))  # missing mix
        with pytest.raises(RoomError):
            SparseCoupling(
                blocks,
                feedback_gain=np.ones(3),
                feedback_mix=np.ones(4),
            )


class TestRoomTopology:
    def test_grid_positions_and_rows(self):
        topo = RoomTopology(2, 3)
        assert topo.n_racks == 6
        assert topo.position(4) == (1, 1)
        assert topo.racks_in_row(1) == (3, 4, 5)
        assert topo.row_of(5) == 1

    def test_neighbors_stay_in_row(self):
        topo = RoomTopology(2, 3)
        assert topo.neighbors(0) == (1,)
        assert topo.neighbors(1) == (0, 2)
        # Rack 2 ends row 0; rack 3 starts row 1 - not neighbours.
        assert topo.neighbors(2) == (1,)
        assert topo.neighbors(3) == (4,)
        pairs = topo.aisle_pairs()
        assert (2, 3) not in pairs and (3, 2) not in pairs

    def test_containment_orders_factors(self):
        none = RoomTopology(1, 2, containment="none")
        cold = RoomTopology(1, 2, containment="cold_aisle")
        hot = RoomTopology(1, 2, containment="hot_aisle")
        assert none.inter_rack_factor > cold.inter_rack_factor > hot.inter_rack_factor
        assert none.return_mix_factor > cold.return_mix_factor > hot.return_mix_factor

    def test_validation(self):
        with pytest.raises(RoomError):
            RoomTopology(0, 2)
        with pytest.raises(RoomError):
            RoomTopology(1, 2, containment="open_plan")
        with pytest.raises(RoomError):
            RoomTopology(1, 2).position(2)


class TestCRACUnit:
    def test_failed_unit_supply_and_energy(self):
        cfg = CRACConfig(supply_setpoint_c=22.0, failure_supply_rise_c=6.0)
        healthy = CRACUnit(cfg, racks=(0,))
        failed = CRACUnit(cfg, racks=(1,), failed=True)
        assert healthy.supply_temperature_c == 22.0
        assert failed.supply_temperature_c == 28.0
        assert healthy.energy_j(700.0) == pytest.approx(700.0 / cfg.cop)
        assert failed.energy_j(700.0) == 0.0

    def test_feedback_rows(self):
        crac = CRACUnit(CRACConfig(return_sensitivity_k_per_k=0.4), racks=(0,))
        mask = np.array([True, True, False, False])
        gain, mix = crac.feedback_rows(mask, return_mix_factor=0.5)
        assert np.array_equal(gain, [0.4, 0.4, 0.0, 0.0])
        assert np.array_equal(mix, [0.25, 0.25, 0.0, 0.0])
        # Failed units sever the loop.
        dead = CRACUnit(CRACConfig(), racks=(0,), failed=True)
        gain, mix = dead.feedback_rows(mask, 0.5)
        assert not gain.any() and not mix.any()

    def test_validation(self):
        with pytest.raises(RoomError):
            CRACUnit(racks=(0, 0))
        with pytest.raises(RoomError):
            CRACUnit(racks=(-1,))
        with pytest.raises(RoomError):
            CRACUnit().energy_j(-1.0)


class TestRoomComposition:
    def test_crac_partition_validated(self):
        racks = [homogeneous_rack(n_servers=2, duration_s=30.0) for _ in range(2)]
        with pytest.raises(RoomError):
            Room(racks, cracs=(CRACUnit(racks=(0,)),))  # rack 1 unfed
        with pytest.raises(RoomError):
            Room(
                racks,
                cracs=(CRACUnit(racks=(0, 1)), CRACUnit(racks=(1,))),
            )  # rack 1 fed twice

    def test_coupling_block_sizes_validated(self):
        racks = [homogeneous_rack(n_servers=2, duration_s=30.0) for _ in range(2)]
        with pytest.raises(RoomError):
            Room(racks, coupling=SparseCoupling.block_diagonal(_chain_blocks(2, 3)))

    def test_defaults_are_block_diagonal_one_crac(self):
        racks = [homogeneous_rack(n_servers=2, duration_s=30.0) for _ in range(3)]
        room = Room(racks)
        assert room.n_servers == 6
        assert room.coupling.n_racks == 3
        assert room.coupling.feedback_rank == 0
        assert room.crac_of(2) is room.cracs[0]
        assert room.rack_slice(1) == slice(2, 4)


class TestStackedEquivalence:
    """The acceptance-criteria equivalences, all bit-for-bit."""

    def test_stacked_racks_match_per_rack_runs(self):
        """run_stacked_racks == FleetSimulator per rack, bit-for-bit."""
        def build(seed):
            return homogeneous_rack(
                n_servers=3,
                duration_s=40.0,
                seed=seed,
                fleet=FleetConfig(n_servers=3, recirc_fraction=0.25),
            )

        stacked = run_stacked_racks(
            [build(0), build(7)], duration_s=40.0, dt_s=0.5, record_decimation=2
        )
        for seed, stacked_result in zip((0, 7), stacked):
            solo = FleetSimulator(
                build(seed), dt_s=0.5, record_decimation=2, backend="vectorized"
            ).run(40.0, label=stacked_result.label)
            _assert_results_equal(stacked_result, solo)
            assert stacked_result.extras["backend"] == "vectorized"
            assert stacked_result.extras["stacked"]["n_racks"] == 2
            assert stacked_result.extras["stacked"]["width"] == 6

    def test_zero_inter_rack_room_matches_independent_racks(self):
        """A room with no inter-rack terms == independent per-rack runs."""
        cfg = RoomConfig(
            n_rows=1,
            racks_per_row=3,
            servers_per_rack=4,
            inter_rack_fraction=0.0,
            crac=CRACConfig(return_sensitivity_k_per_k=0.0),
        )
        room = uniform_room(cfg, duration_s=40.0, seed=3)
        assert room.coupling.feedback_rank == 0
        assert not room.coupling.cross_blocks
        result = RoomSimulator(room, dt_s=0.5, record_decimation=2).run(40.0)
        assert result.extras["backend"] == "vectorized"

        from repro.room.scenarios import _rack_seed

        for r in range(3):
            solo_rack = homogeneous_rack(
                n_servers=4,
                duration_s=40.0,
                seed=_rack_seed(3, r),
                fleet=cfg.fleet_config(),
            )
            solo = FleetSimulator(
                solo_rack, dt_s=0.5, record_decimation=2, backend="vectorized"
            ).run(40.0, label=result.rack_results[r].label)
            _assert_results_equal(result.rack_results[r], solo)

    def test_sparse_matches_equivalent_dense_matrix(self):
        """Sparse room coupling == one dense RecirculationMatrix rack."""
        cfg = RoomConfig(
            n_rows=1,
            racks_per_row=2,
            servers_per_rack=2,
            inter_rack_fraction=0.1,
            crac=CRACConfig(return_sensitivity_k_per_k=0.0),
        )
        sparse_room = uniform_room(cfg, duration_s=40.0, seed=5)
        dense_room = uniform_room(cfg, duration_s=40.0, seed=5)
        dense = dense_room.coupling.to_recirculation_matrix()
        # One 4-server "rack" spanning the room, coupled by the dense
        # equivalent matrix - same physics, different mat-vec.
        from repro.fleet.rack import Rack

        flat = Rack(
            dense_room.slots, coupling=dense, exhaust=dense_room.exhaust
        )
        dense_result = FleetSimulator(
            flat, dt_s=0.5, record_decimation=2, backend="vectorized"
        ).run(40.0)
        sparse_result = RoomSimulator(
            sparse_room, dt_s=0.5, record_decimation=2, backend="vectorized"
        ).run(40.0)
        sparse_servers = [
            s for rack in sparse_result.rack_results for s in rack.server_results
        ]
        for sparse_server, dense_server in zip(
            sparse_servers, dense_result.server_results
        ):
            for name, channel in sparse_server.channels.items():
                assert np.allclose(
                    channel,
                    dense_server.channels[name],
                    rtol=1e-10,
                    atol=1e-9,
                ), name

    def test_scalar_room_backend_matches_vectorized(self):
        cfg = RoomConfig(n_rows=2, racks_per_row=2, servers_per_rack=2)
        scalar = RoomSimulator(
            uniform_room(cfg, duration_s=30.0, seed=1),
            dt_s=0.5,
            record_decimation=2,
            backend="scalar",
        ).run(30.0)
        vectorized = RoomSimulator(
            uniform_room(cfg, duration_s=30.0, seed=1),
            dt_s=0.5,
            record_decimation=2,
            backend="vectorized",
        ).run(30.0)
        assert scalar.extras["backend"] == "scalar"
        assert vectorized.extras["backend"] == "vectorized"
        for rack_s, rack_v in zip(scalar.rack_results, vectorized.rack_results):
            _assert_results_equal(rack_s, rack_v)
        assert scalar.summary() == vectorized.summary()

    def test_stacked_rejects_mismatched_exhaust(self):
        a = homogeneous_rack(n_servers=2, duration_s=30.0)
        b = homogeneous_rack(
            n_servers=2,
            duration_s=30.0,
            fleet=FleetConfig(n_servers=2, exhaust_conductance_w_per_k=80.0),
        )
        assert stacked_unsupported_reason([a, b]) is not None
        with pytest.raises(SimulationError):
            run_stacked_racks([a, b], duration_s=30.0, dt_s=0.5)


class TestRoomScenariosAndResult:
    def test_registry_builds_and_runs_vectorized(self):
        cfg = RoomConfig(n_rows=2, racks_per_row=2, servers_per_rack=2)
        for name in sorted(ROOM_SCENARIOS):
            room = build_room_scenario(name, cfg, duration_s=20.0, seed=2)
            assert room.n_racks == 4
            result = RoomSimulator(room, dt_s=0.5, record_decimation=5).run(20.0)
            assert result.extras["backend"] == "vectorized"
            assert result.extras["controller_backend"] == "vectorized"
            summary = result.summary()
            assert all(np.isfinite(v) for v in summary.values()), name

    def test_failed_crac_heats_its_group(self):
        cfg = RoomConfig(n_rows=2, racks_per_row=2, servers_per_rack=2)
        room = failed_crac_room(cfg, duration_s=20.0, seed=2, failed_unit=0)
        supplies = room.supply_temperatures_c()
        rise = room.cracs[0].config.failure_supply_rise_c
        setpoint = room.cracs[0].config.supply_setpoint_c
        assert supplies[0] == supplies[1] == setpoint + rise
        assert supplies[2] == supplies[3] == setpoint

    def test_hot_spot_rack_spreads_inlets(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=3, servers_per_rack=2)
        hot = hot_spot_rack_room(cfg, duration_s=60.0, seed=1, hot_rack=0)
        result = RoomSimulator(hot, dt_s=0.5, record_decimation=5).run(60.0)
        per_rack = result.metrics.per_rack_mean_inlet_c
        # The hot rack's neighbours breathe its exhaust; rack 2 is fed
        # only through the (weaker) CRAC loop, so inlets fall with
        # distance from the hot rack.
        assert per_rack[1] > per_rack[2]
        assert result.metrics.inlet_spread_c > 0.0

    def test_mixed_aisles_alternates_schemes(self):
        cfg = RoomConfig(n_rows=2, racks_per_row=2, servers_per_rack=2)
        room = mixed_aisles_room(
            cfg, duration_s=20.0, seed=1, schemes=("rcoord", "uncoordinated")
        )
        from repro.core.rules import RuleBasedCoordinator
        from repro.core.uncoordinated import UncoordinatedCoordinator

        row0 = room.racks[0].slots[0].controller.coordinator
        row1 = room.racks[2].slots[0].controller.coordinator
        assert isinstance(row0, RuleBasedCoordinator)
        assert isinstance(row1, UncoordinatedCoordinator)

    def test_containment_reduces_coupling(self):
        def spread(containment):
            cfg = RoomConfig(
                n_rows=1,
                racks_per_row=3,
                servers_per_rack=2,
                containment=containment,
            )
            room = hot_spot_rack_room(cfg, duration_s=60.0, seed=1)
            result = RoomSimulator(room, dt_s=0.5, record_decimation=5).run(60.0)
            return result.metrics.per_rack_mean_inlet_c[1]

        assert spread("none") > spread("hot_aisle")

    def test_room_result_metrics_and_crac_energy(self):
        cfg = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        room = uniform_room(cfg, duration_s=20.0, seed=1)
        result = RoomSimulator(room, dt_s=0.5, record_decimation=5).run(20.0)
        metrics = result.metrics
        it_energy = sum(r.metrics.total_energy_j for r in result.rack_results)
        assert metrics.crac_energy_j == pytest.approx(
            it_energy / cfg.crac.cop
        )
        assert metrics.room_energy_j == pytest.approx(
            it_energy + metrics.crac_energy_j
        )
        assert result.n_servers == 4
        assert len(result.server_results) == 4
        assert result.times.size == result.rack(0).times.size

    def test_inlet_limit_flows_from_config_to_metric(self):
        cfg_a = RoomConfig(n_rows=1, racks_per_row=2, servers_per_rack=2)
        cfg_b = RoomConfig(
            n_rows=1, racks_per_row=2, servers_per_rack=2, inlet_limit_c=30.0
        )
        result_a = RoomSimulator(
            uniform_room(cfg_a, duration_s=20.0, seed=1),
            dt_s=0.5,
            record_decimation=5,
        ).run(20.0)
        result_b = RoomSimulator(
            uniform_room(cfg_b, duration_s=20.0, seed=1),
            dt_s=0.5,
            record_decimation=5,
        ).run(20.0)
        # Same physics, tighter limit: the margin shifts by exactly the
        # limit difference.
        assert result_b.metrics.supply_margin_c == pytest.approx(
            result_a.metrics.supply_margin_c - 5.0
        )
        # An explicit simulator override still wins over the room's limit.
        result_c = RoomSimulator(
            uniform_room(cfg_b, duration_s=20.0, seed=1),
            dt_s=0.5,
            record_decimation=5,
            inlet_limit_c=40.0,
        ).run(20.0)
        assert result_c.inlet_limit_c == 40.0

    def test_unknown_scenario_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            build_room_scenario("warehouse")
