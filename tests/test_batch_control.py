"""Vectorized controller backend: equivalence, sync-back, and fallback.

The :class:`~repro.sim.batch_control.BatchGlobalController` contract is
bit-for-bit agreement with the scalar controller objects for every stock
DTM composition - all five Table III schemes, SSfan and E-coord
included - *including* the state it writes back after a run: a scalar
run resumed from a vectorized run must continue the exact trajectory.
Compositions it cannot represent (custom subclasses, non-stock models)
must demote only their own server to the scalar objects, with the
reason recorded in ``result.extras``.
"""

from __future__ import annotations

import numpy as np
import pytest

from dataclasses import replace

from repro.config import ControlConfig, FleetConfig, ServerConfig
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.ecoord import EnergyAwareCoordinator
from repro.core.global_controller import GlobalController
from repro.core.rules import RuleBasedCoordinator
from repro.fleet import FleetSimulator, Rack, build_fleet_scenario
from repro.fleet.rack import ServerSlot
from repro.sim import (
    BatchRunSpec,
    ParameterSweep,
    Simulator,
    batch_controller_unsupported_reason,
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
    run_batch,
)
from repro.workload.synthetic import NoisyWorkload, SquareWaveWorkload

_N = 4
_DUR = 90.0
_DT = 0.1
_DEC = 3

#: All Table III schemes vectorize (SSfan and E-coord included).
VECTORIZED_SCHEMES = (
    "uncoordinated",
    "ecoord",
    "rcoord",
    "rcoord_atref",
    "rcoord_atref_ssfan",
)


def _rack(scheme: str, seed: int = 11, n: int = _N):
    return build_fleet_scenario(
        "homogeneous",
        n_servers=n,
        duration_s=_DUR,
        seed=seed,
        fleet=FleetConfig(n_servers=n, recirc_fraction=0.3),
        scheme=scheme,
    )


def _assert_results_identical(a, b):
    assert a.n_servers == b.n_servers
    for i in range(a.n_servers):
        ra, rb = a.server(i), b.server(i)
        for name, channel in ra.channels.items():
            assert np.array_equal(channel, rb.channels[name]), (
                f"server {i} channel {name} diverged"
            )
        assert ra.performance == rb.performance, f"server {i} performance"
        assert ra.energy == rb.energy, f"server {i} energy"
    assert a.mean_inlet_c == b.mean_inlet_c


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme", VECTORIZED_SCHEMES)
    def test_vectorized_controller_bit_for_bit(self, scheme):
        scalar = FleetSimulator(
            _rack(scheme), dt_s=_DT, record_decimation=_DEC, backend="scalar"
        ).run(_DUR)
        vectorized = FleetSimulator(
            _rack(scheme), dt_s=_DT, record_decimation=_DEC,
            backend="vectorized",
        ).run(_DUR)
        assert vectorized.extras["controller_backend"] == "vectorized"
        assert "controller_fallbacks" not in vectorized.extras
        _assert_results_identical(scalar, vectorized)

    def test_no_scheme_falls_back(self):
        """All five Table III schemes run on the array lane (the fused
        backend's throughput targets assume zero controller fallbacks)."""
        for scheme in VECTORIZED_SCHEMES:
            result = FleetSimulator(
                _rack(scheme), dt_s=_DT, record_decimation=_DEC,
                backend="vectorized",
            ).run(_DUR)
            assert result.extras["controller_backend"] == "vectorized"
            assert "controller_fallbacks" not in result.extras


class TestMixedRack:
    def _mixed_rack(self, seed: int = 5):
        """One slot's controller is a custom subclass (cannot batch)."""
        rack = _rack("rcoord", seed=seed)
        victim = rack.slots[1]

        class TracingController(GlobalController):
            pass

        cfg = victim.plant.config
        odd = TracingController(
            control=cfg.control,
            fan_controller=victim.controller.fan_controller,
            coordinator=victim.controller.coordinator,
            cpu_capper=victim.controller.cpu_capper,
            initial_state=victim.controller.state,
        )
        slots = list(rack.slots)
        slots[1] = ServerSlot(
            name=victim.name,
            plant=victim.plant,
            sensor=victim.sensor,
            workload=victim.workload,
            controller=odd,
            inlet=victim.inlet,
        )
        return Rack(slots, coupling=rack.coupling, exhaust=rack.exhaust)

    def _mixed_rack_scalar_twin(self, seed: int = 5):
        """The same composition but with the stock class (for reference)."""
        return _rack("rcoord", seed=seed)

    def test_per_server_fallback_is_recorded_and_exact(self):
        vec = FleetSimulator(
            self._mixed_rack(), dt_s=_DT, record_decimation=_DEC,
            backend="vectorized",
        ).run(_DUR)
        assert vec.extras["backend"] == "vectorized"
        assert vec.extras["controller_backend"] == "mixed"
        fallbacks = vec.extras["controller_fallbacks"]
        assert list(fallbacks) == ["srv01"]
        assert "TracingController" in fallbacks["srv01"]

        scalar = FleetSimulator(
            self._mixed_rack(), dt_s=_DT, record_decimation=_DEC,
            backend="scalar",
        ).run(_DUR)
        _assert_results_identical(scalar, vec)

    def test_subclass_behaves_like_stock_here(self):
        """Sanity for the fixture: the pass-through subclass changes
        nothing, so the mixed rack matches the all-stock rack too."""
        vec = FleetSimulator(
            self._mixed_rack(), dt_s=_DT, record_decimation=_DEC,
            backend="vectorized",
        ).run(_DUR)
        stock = FleetSimulator(
            self._mixed_rack_scalar_twin(), dt_s=_DT, record_decimation=_DEC,
            backend="vectorized",
        ).run(_DUR)
        assert stock.extras["controller_backend"] == "vectorized"
        _assert_results_identical(stock, vec)


class TestControllerSyncBack:
    @pytest.mark.parametrize("scheme", VECTORIZED_SCHEMES)
    def test_controller_state_matches_scalar_twin(self, scheme):
        """Every piece of observable controller state written back after
        a vectorized run equals the state a scalar run leaves behind."""
        rack_s, rack_v = _rack(scheme), _rack(scheme)
        FleetSimulator(rack_s, dt_s=_DT, backend="scalar").run(_DUR)
        FleetSimulator(rack_v, dt_s=_DT, backend="vectorized").run(_DUR)
        for slot_s, slot_v in zip(rack_s, rack_v):
            cs, cv = slot_s.controller, slot_v.controller
            assert cs.state == cv.state
            assert cs.t_ref_c == cv.t_ref_c
            assert cs.next_fan_decision_s == cv.next_fan_decision_s
            assert cs.last_proposals == cv.last_proposals
            fs, fv = cs.fan_controller, cv.fan_controller
            assert fs.applied_speed_rpm == fv.applied_speed_rpm
            assert fs.region_index == fv.region_index
            assert fs.pid.gains == fv.pid.gains
            assert fs.pid.setpoint == fv.pid.setpoint
            assert fs.pid.output_offset == fv.pid.output_offset
            assert fs.pid.integral == fv.pid.integral
            assert fs.pid.prev_error == fv.pid.prev_error
            assert fs.pid.last_output == fv.pid.last_output
            gs, gv = fs.quantization_guard, fv.quantization_guard
            if gs is not None:
                assert gs.hold_count == gv.hold_count
            if isinstance(
                cs.coordinator, (RuleBasedCoordinator, EnergyAwareCoordinator)
            ):
                assert cs.coordinator.last_action == cv.coordinator.last_action
                assert (
                    cs.coordinator.action_counts == cv.coordinator.action_counts
                )
            if cs.single_step is not None:
                ss, sv = cs.single_step, cv.single_step
                assert ss.phase == sv.phase
                assert ss.periods_in_phase == sv.periods_in_phase
                assert ss.boost_count == sv.boost_count
            if cs.setpoint is not None:
                ps, pv = cs.setpoint.prediction_filter, cv.setpoint.prediction_filter
                assert ps.samples == pv.samples
                assert ps.running_sum == pv.running_sum

    def test_tracker_state_synced_back(self):
        rack_s, rack_v = _rack("rcoord"), _rack("rcoord")
        sim_s = FleetSimulator(rack_s, dt_s=_DT, backend="scalar")
        sim_v = FleetSimulator(rack_v, dt_s=_DT, backend="vectorized")
        res_s = sim_s.run(_DUR)
        res_v = sim_v.run(_DUR)
        for i in range(rack_s.n_servers):
            assert res_s.server(i).performance == res_v.server(i).performance

    @pytest.mark.parametrize("scheme", VECTORIZED_SCHEMES)
    def test_scalar_resume_after_vectorized_run(self, scheme):
        """A scalar run resumed from a vectorized run's synced-back state
        must produce the same trajectory as scalar-after-scalar."""
        rack_s, rack_v = _rack(scheme), _rack(scheme)
        FleetSimulator(rack_s, dt_s=_DT, backend="scalar").run(_DUR)
        FleetSimulator(rack_v, dt_s=_DT, backend="vectorized").run(_DUR)
        resumed_s = FleetSimulator(
            rack_s, dt_s=_DT, record_decimation=_DEC, backend="scalar"
        ).run(_DUR)
        resumed_v = FleetSimulator(
            rack_v, dt_s=_DT, record_decimation=_DEC, backend="scalar"
        ).run(_DUR)
        _assert_results_identical(resumed_s, resumed_v)


def _scheme_sweep_spec(scheme: str) -> BatchRunSpec:
    cfg = ServerConfig()
    return BatchRunSpec(
        plant=build_plant(cfg),
        sensor=build_sensor(cfg, seed=7),
        workload=paper_workload(_DUR, seed=7),
        controller=build_global_controller(scheme, cfg),
        duration_s=_DUR,
        dt_s=_DT,
        record_decimation=_DEC,
        label=scheme,
    )


class TestSeededSweep:
    def test_scheme_grid_matches_scalar(self):
        """A sweep across all five schemes in one batch equals the
        scalar runner path."""
        values = list(VECTORIZED_SCHEMES)
        vectorized = ParameterSweep(spec_builder=_scheme_sweep_spec).run(
            values, backend="vectorized"
        )
        scalar = ParameterSweep(spec_builder=_scheme_sweep_spec).run(
            values, backend="scalar"
        )
        for ps, pv in zip(scalar, vectorized):
            assert ps.value == pv.value
            for name, channel in ps.result.channels.items():
                assert np.array_equal(channel, pv.result.channels[name]), (
                    f"scheme {ps.value} channel {name} diverged"
                )
            assert ps.result.performance == pv.result.performance
            assert ps.result.energy == pv.result.energy


def _interval_pieces(cpu_interval_s: float):
    """One server whose CPU period differs from its batch peers'."""
    cfg = replace(
        ServerConfig(),
        control=ControlConfig(cpu_interval_s=cpu_interval_s, fan_interval_s=3.0),
    )
    workload = NoisyWorkload(
        SquareWaveWorkload(low=0.1, high=0.7, half_period_s=15.0),
        std=0.04,
        seed=5,
    )
    return (
        build_plant(cfg),
        build_sensor(cfg, seed=5),
        workload,
        build_global_controller("rcoord", cfg),
    )


class TestHeterogeneousCpuPeriods:
    def test_subset_control_steps_bit_for_bit(self):
        """Mixed CPU periods make fan decisions land on steps where only
        a strict subset of the batch is due; those subset steps must
        apply fan changes to the plant exactly like the scalar engine
        (regression: the whole-rack lane once aliased its fan mirror to
        the controller arrays, defeating the changed-fan detection)."""
        intervals = (1.0, 2.0)

        def spec(cpu_interval_s: float) -> BatchRunSpec:
            plant, sensor, workload, controller = _interval_pieces(
                cpu_interval_s
            )
            return BatchRunSpec(
                plant=plant,
                sensor=sensor,
                workload=workload,
                controller=controller,
                duration_s=120.0,
                dt_s=_DT,
                record_decimation=_DEC,
                label=f"cpu={cpu_interval_s:g}",
            )

        vectorized = run_batch([spec(ci) for ci in intervals])
        for i, cpu_interval_s in enumerate(intervals):
            plant, sensor, workload, controller = _interval_pieces(
                cpu_interval_s
            )
            scalar = Simulator(
                plant, sensor, workload, controller,
                dt_s=_DT, record_decimation=_DEC,
            ).run(120.0)
            for name, channel in scalar.channels.items():
                assert np.array_equal(channel, vectorized[i].channels[name]), (
                    f"cpu_interval {cpu_interval_s} channel {name} diverged"
                )
            assert scalar.performance == vectorized[i].performance
            assert scalar.energy == vectorized[i].energy


class TestUnsupportedReasons:
    def test_stock_compositions_supported(self):
        for scheme in VECTORIZED_SCHEMES:
            controller = build_global_controller(scheme, ServerConfig())
            assert batch_controller_unsupported_reason(controller) is None

    def test_non_stock_models_unsupported(self):
        """SSfan/E-coord vectorize only with the stock steady-state
        model whose closed forms the array lane replays."""
        from repro.core.single_step import SingleStepFanScaling
        from repro.thermal.steady_state import SteadyStateServerModel

        class OddModel(SteadyStateServerModel):
            pass

        cfg = ServerConfig()
        base = build_global_controller("rcoord_atref_ssfan", cfg)
        odd = GlobalController(
            control=cfg.control,
            fan_controller=base.fan_controller,
            coordinator=base.coordinator,
            cpu_capper=base.cpu_capper,
            setpoint=base.setpoint,
            single_step=SingleStepFanScaling(OddModel(cfg)),
        )
        reason = batch_controller_unsupported_reason(odd)
        assert reason is not None and "SSfan model" in reason

        eco = GlobalController(
            control=cfg.control,
            fan_controller=base.fan_controller,
            coordinator=EnergyAwareCoordinator(OddModel(cfg)),
            cpu_capper=base.cpu_capper,
        )
        reason = batch_controller_unsupported_reason(eco)
        assert reason is not None and "E-coord model" in reason

    def test_subclasses_unsupported(self):
        cfg = ServerConfig()
        base = build_global_controller("rcoord", cfg)

        class OddController(GlobalController):
            pass

        odd = OddController(
            control=cfg.control,
            fan_controller=base.fan_controller,
            coordinator=base.coordinator,
        )
        reason = batch_controller_unsupported_reason(odd)
        assert reason is not None and "OddController" in reason

        class OddCapper(DeadzoneCpuCapper):
            pass

        capped = GlobalController(
            control=cfg.control,
            fan_controller=base.fan_controller,
            coordinator=base.coordinator,
            cpu_capper=OddCapper(t_low_c=76.0, t_high_c=80.0),
        )
        reason = batch_controller_unsupported_reason(capped)
        assert reason is not None and "OddCapper" in reason

    def test_fan_only_composition_supported(self):
        """No capper (Figs 3/4 wiring) still vectorizes."""
        from repro.sim.scenarios import build_fan_controller

        cfg = ServerConfig()
        controller = GlobalController(
            control=cfg.control,
            fan_controller=build_fan_controller(cfg),
        )
        assert batch_controller_unsupported_reason(controller) is None
