"""Unit tests for the benchmark record flush guards.

A committed ``BENCH_*.json`` baseline was once clobbered by a *subset*
benchmark run (the room rows vanished because only the obs/fleet
modules ran) whose session had also tripped a perf gate - and
``tools/bench_diff.py`` diffs the intersection of names, so the loss
was silent.  ``write_records`` now refuses to flush a failing session
and merges passing subset runs over the existing same-mode file.  The
benchmarks directory is not a package, so the module is loaded off its
file path.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "benchmarks")
)

import bench_report  # noqa: E402


@pytest.fixture
def bench_env(tmp_path, monkeypatch):
    """Fresh record store writing into a temp dir, full (non-smoke) mode."""
    monkeypatch.setattr(bench_report, "_RECORDS", {})
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_OVERWRITE", raising=False)
    return tmp_path


def _write_baseline(tmp_path, *, smoke: bool, benchmarks: dict) -> Path:
    path = tmp_path / "BENCH_fleet.json"
    payload = {
        "meta": {"machine": "x", "python": "3", "smoke": smoke, "unix_time": 1},
        "benchmarks": benchmarks,
    }
    path.write_text(json.dumps(payload))
    return path


def _read(path: Path) -> dict:
    return json.loads(path.read_text())


class TestFailingSessionGuard:
    def test_nonzero_exitstatus_does_not_flush(self, bench_env, capsys):
        baseline = _write_baseline(
            bench_env, smoke=False, benchmarks={"old": {"steps_per_sec": 1.0}}
        )
        before = baseline.read_text()
        bench_report.bench_record("fleet", "new", steps_per_sec=2.0)
        bench_report.write_records(exitstatus=1)
        assert baseline.read_text() == before
        assert "not flushing" in capsys.readouterr().err

    def test_zero_exitstatus_flushes(self, bench_env):
        bench_report.bench_record("fleet", "new", steps_per_sec=2.0)
        bench_report.write_records(exitstatus=0)
        payload = _read(bench_env / "BENCH_fleet.json")
        assert payload["benchmarks"] == {"new": {"steps_per_sec": 2.0}}
        assert payload["meta"]["smoke"] is False


class TestSubsetMerge:
    def test_subset_run_preserves_missing_same_mode_rows(self, bench_env):
        _write_baseline(
            bench_env,
            smoke=False,
            benchmarks={
                "room4x16_stacked": {"server_steps_per_sec": 100.0},
                "monitor_overhead": {"monitor_overhead_ratio": 1.03},
            },
        )
        bench_report.bench_record(
            "fleet", "monitor_overhead", monitor_overhead_ratio=1.02
        )
        bench_report.write_records()
        benchmarks = _read(bench_env / "BENCH_fleet.json")["benchmarks"]
        # The collected row wins; the row the session never ran survives.
        assert benchmarks["monitor_overhead"] == {
            "monitor_overhead_ratio": 1.02
        }
        assert benchmarks["room4x16_stacked"] == {
            "server_steps_per_sec": 100.0
        }

    def test_other_mode_baseline_is_replaced_not_merged(
        self, bench_env, monkeypatch
    ):
        # A CI smoke run over a checkout with committed full-mode files
        # must not inherit full-mode rows (and vice versa).
        _write_baseline(
            bench_env,
            smoke=False,
            benchmarks={"room4x16_stacked": {"server_steps_per_sec": 100.0}},
        )
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        bench_report.bench_record("fleet", "monitor_overhead", ratio=1.0)
        bench_report.write_records()
        payload = _read(bench_env / "BENCH_fleet.json")
        assert payload["meta"]["smoke"] is True
        assert payload["benchmarks"] == {"monitor_overhead": {"ratio": 1.0}}

    def test_overwrite_env_replaces_wholesale(self, bench_env, monkeypatch):
        _write_baseline(
            bench_env,
            smoke=False,
            benchmarks={"renamed_away": {"steps_per_sec": 1.0}},
        )
        monkeypatch.setenv("REPRO_BENCH_OVERWRITE", "1")
        bench_report.bench_record("fleet", "fresh", steps_per_sec=2.0)
        bench_report.write_records()
        benchmarks = _read(bench_env / "BENCH_fleet.json")["benchmarks"]
        assert benchmarks == {"fresh": {"steps_per_sec": 2.0}}

    def test_corrupt_baseline_is_ignored(self, bench_env):
        (bench_env / "BENCH_fleet.json").write_text("{not json")
        bench_report.bench_record("fleet", "fresh", steps_per_sec=2.0)
        bench_report.write_records()
        benchmarks = _read(bench_env / "BENCH_fleet.json")["benchmarks"]
        assert benchmarks == {"fresh": {"steps_per_sec": 2.0}}
