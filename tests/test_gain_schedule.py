"""Gain schedule: Eqns 8-9 interpolation and region segmentation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gain_schedule import GainRegion, GainSchedule
from repro.core.pid import PIDGains
from repro.errors import ControlError


@pytest.fixture()
def schedule() -> GainSchedule:
    return GainSchedule(
        [
            GainRegion(2000.0, PIDGains(kp=100.0, ki=10.0, kd=1.0)),
            GainRegion(6000.0, PIDGains(kp=900.0, ki=90.0, kd=9.0)),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ControlError):
            GainSchedule([])

    def test_duplicate_speeds_rejected(self):
        region = GainRegion(2000.0, PIDGains(1.0))
        with pytest.raises(ControlError):
            GainSchedule([region, GainRegion(2000.0, PIDGains(2.0))])

    def test_regions_sorted(self):
        sched = GainSchedule(
            [
                GainRegion(6000.0, PIDGains(9.0)),
                GainRegion(2000.0, PIDGains(1.0)),
            ]
        )
        assert [r.ref_speed_rpm for r in sched.regions] == [2000.0, 6000.0]

    def test_len(self, schedule):
        assert len(schedule) == 2

    def test_fixed_factory(self):
        sched = GainSchedule.fixed(PIDGains(kp=5.0))
        assert len(sched) == 1
        assert sched.gains_at(123456.0).kp == 5.0


class TestInterpolation:
    def test_exact_region_speeds(self, schedule):
        assert schedule.gains_at(2000.0).kp == 100.0
        assert schedule.gains_at(6000.0).kp == 900.0

    def test_midpoint_blend(self, schedule):
        # Eqns 8-9: alpha = (4000 - 2000) / (6000 - 2000) = 0.5
        gains = schedule.gains_at(4000.0)
        assert gains.kp == pytest.approx(500.0)
        assert gains.ki == pytest.approx(50.0)
        assert gains.kd == pytest.approx(5.0)

    def test_quarter_blend(self, schedule):
        gains = schedule.gains_at(3000.0)
        assert gains.kp == pytest.approx(100.0 + 0.25 * 800.0)

    def test_clamped_below(self, schedule):
        assert schedule.gains_at(1000.0).kp == 100.0

    def test_clamped_above(self, schedule):
        assert schedule.gains_at(8500.0).kp == 900.0

    def test_bracket_weights(self, schedule):
        i, j, alpha = schedule.bracket(5000.0)
        assert (i, j) == (0, 1)
        assert alpha == pytest.approx(0.75)

    def test_bracket_outside(self, schedule):
        assert schedule.bracket(500.0) == (0, 0, 0.0)
        assert schedule.bracket(9000.0) == (1, 1, 0.0)

    @settings(max_examples=50)
    @given(st.floats(0.0, 10000.0))
    def test_gains_bounded_by_regions_property(self, speed):
        schedule = GainSchedule(
            [
                GainRegion(2000.0, PIDGains(kp=100.0, ki=10.0, kd=1.0)),
                GainRegion(6000.0, PIDGains(kp=900.0, ki=90.0, kd=9.0)),
            ]
        )
        gains = schedule.gains_at(speed)
        assert 100.0 <= gains.kp <= 900.0
        assert 10.0 <= gains.ki <= 90.0

    @settings(max_examples=25)
    @given(st.floats(2000.0, 6000.0), st.floats(2000.0, 6000.0))
    def test_monotone_between_regions_property(self, a, b):
        schedule = GainSchedule(
            [
                GainRegion(2000.0, PIDGains(kp=100.0)),
                GainRegion(6000.0, PIDGains(kp=900.0)),
            ]
        )
        if a <= b:
            assert schedule.gains_at(a).kp <= schedule.gains_at(b).kp + 1e-9


class TestSegmentation:
    def test_segment_index(self, schedule):
        assert schedule.segment_index(1000.0) == 0
        assert schedule.segment_index(3000.0) == 0
        assert schedule.segment_index(6000.0) == 1
        assert schedule.segment_index(8000.0) == 1

    def test_single_region_always_zero(self):
        sched = GainSchedule.fixed(PIDGains(1.0))
        assert sched.segment_index(0.0) == 0
        assert sched.segment_index(99999.0) == 0

    def test_three_regions(self):
        sched = GainSchedule(
            [
                GainRegion(2000.0, PIDGains(1.0)),
                GainRegion(4000.0, PIDGains(2.0)),
                GainRegion(6000.0, PIDGains(3.0)),
            ]
        )
        assert sched.segment_index(3000.0) == 0
        assert sched.segment_index(5000.0) == 1
        assert sched.segment_index(7000.0) == 2
        assert sched.gains_at(5000.0).kp == pytest.approx(2.5)
