"""Quantization guard: Eqn 10 hold and deadband error shaping."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantization import QuantizationGuard


class TestHold:
    def test_holds_inside_deadband(self):
        guard = QuantizationGuard(1.0)
        assert guard.should_hold(75.0, 75.0)
        assert guard.should_hold(75.0, 75.5)
        assert guard.should_hold(75.0, 74.5)

    def test_acts_at_full_step(self):
        # Eqn 10 uses a strict inequality: |e| == |T_Q| acts.
        guard = QuantizationGuard(1.0)
        assert not guard.should_hold(75.0, 76.0)
        assert not guard.should_hold(75.0, 74.0)

    def test_disabled_with_zero_step(self):
        guard = QuantizationGuard(0.0)
        assert not guard.should_hold(75.0, 75.0)

    def test_margin_widens_deadband(self):
        guard = QuantizationGuard(1.0, margin=1.5)
        assert guard.should_hold(75.0, 76.0)
        assert not guard.should_hold(75.0, 76.5)

    def test_hold_count(self):
        guard = QuantizationGuard(1.0)
        guard.should_hold(75.0, 75.0)
        guard.should_hold(75.0, 80.0)
        guard.should_hold(75.0, 75.2)
        assert guard.hold_count == 2

    def test_threshold_property(self):
        assert QuantizationGuard(1.0, margin=2.0).threshold_c == 2.0


class TestErrorShaping:
    def test_inside_deadband_maps_to_zero(self):
        guard = QuantizationGuard(1.0)
        assert guard.shape_error(0.5) == 0.0
        assert guard.shape_error(-0.99) == 0.0
        assert guard.shape_error(1.0) == 0.0

    def test_subtracts_step(self):
        guard = QuantizationGuard(1.0)
        assert guard.shape_error(2.0) == 1.0
        assert guard.shape_error(-3.0) == -2.0

    def test_zero_step_passthrough(self):
        guard = QuantizationGuard(0.0)
        assert guard.shape_error(2.345) == 2.345

    @settings(max_examples=50)
    @given(st.floats(-20.0, 20.0))
    def test_shaping_shrinks_magnitude_property(self, error):
        guard = QuantizationGuard(1.0)
        shaped = guard.shape_error(error)
        assert abs(shaped) <= abs(error)
        # Sign is preserved (or zeroed).
        assert shaped == 0.0 or (shaped > 0) == (error > 0)

    @settings(max_examples=50)
    @given(st.floats(-20.0, 20.0), st.floats(-20.0, 20.0))
    def test_shaping_monotone_property(self, a, b):
        guard = QuantizationGuard(1.0)
        if a <= b:
            assert guard.shape_error(a) <= guard.shape_error(b)
