"""Room campaign tasks: pickling, registry validation, determinism.

The contract mirrors the fleet campaign's: a :class:`RoomTask` is pure
data, a worker rebuilds the identical room (and fault schedule) from it,
and serial vs process-pool execution produce value-identical results -
including for mixed rack/room campaigns and fault scenarios.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import FleetError
from repro.faults import FaultEvent, FaultSchedule
from repro.fleet import CampaignRunner, CampaignTask
from repro.room import RoomResult, RoomTask, room_campaign_grid, run_room_task


def _tasks():
    schedule = FaultSchedule(
        events=(FaultEvent("dropout", server=0, start_s=20.0, duration_s=25.0),),
        seed=3,
        label="dropout0",
    )
    return [
        CampaignTask(
            scenario="homogeneous", n_servers=2, seed=0, duration_s=60.0, dt_s=0.5
        ),
        RoomTask(
            scenario="uniform",
            racks_per_row=2,
            servers_per_rack=2,
            seed=1,
            duration_s=60.0,
            dt_s=0.5,
        ),
        RoomTask(
            scenario="uniform",
            racks_per_row=2,
            servers_per_rack=2,
            seed=1,
            duration_s=60.0,
            dt_s=0.5,
            faults=schedule,
        ),
        RoomTask(
            scenario="crac_brownout",
            racks_per_row=2,
            servers_per_rack=2,
            seed=2,
            duration_s=60.0,
            dt_s=0.5,
        ),
    ]


def _assert_equal(a, b):
    assert type(a) is type(b)
    assert a.label == b.label
    for ra, rb in zip(a.server_results, b.server_results):
        for name, chan in ra.channels.items():
            assert np.array_equal(chan, rb.channels[name], equal_nan=True)


class TestRoomTask:
    def test_validation(self):
        with pytest.raises(FleetError):
            RoomTask(scenario="no_such_room")
        with pytest.raises(FleetError):
            # Fault scenarios bring their own schedule.
            RoomTask(
                scenario="crac_brownout",
                faults=FaultSchedule(
                    events=(FaultEvent("stuck", server=0),)
                ),
            )

    def test_picklable_with_fault_schedule(self):
        task = _tasks()[2]
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.faults.events == task.faults.events

    def test_label_and_grid(self):
        grid = room_campaign_grid(
            ["uniform", "failed_crac"],
            seeds=[0, 1],
            containments=["none", "cold_aisle"],
            racks_per_row=2,
            servers_per_rack=2,
            duration_s=30.0,
        )
        assert len(grid) == 8
        assert len({task.label for task in grid}) == 8

    def test_run_room_task_attaches_task_and_faults(self):
        result = run_room_task(_tasks()[2])
        assert isinstance(result, RoomResult)
        assert result.extras["task"].seed == 1
        assert result.extras["faults"]["n_fired"] == 1

    def test_fault_scenario_task_builds_own_schedule(self):
        result = run_room_task(_tasks()[3])
        assert result.extras["faults"]["schedule"]["label"] == "crac_brownout"

    def test_explicit_crac_brownout_schedule_on_plain_scenario(self):
        """Room scenarios compose with CRAC faults: the worker derives
        the dynamic supply rows from the schedule's targeted units."""
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    "crac_brownout",
                    server=0,
                    start_s=15.0,
                    duration_s=20.0,
                    magnitude=5.0,
                ),
            )
        )
        task = RoomTask(
            scenario="hot_spot_rack",
            racks_per_row=2,
            servers_per_rack=2,
            seed=4,
            duration_s=60.0,
            dt_s=0.5,
            faults=schedule,
            crac_tau_s=30.0,
        )
        result = run_room_task(task)
        assert result.extras["faults"]["n_fired"] == 1


class TestMixedCampaignDeterminism:
    def test_serial_equals_parallel(self):
        tasks = _tasks()
        serial = CampaignRunner(workers=None).run(tasks)
        parallel = CampaignRunner(workers=2).run(tasks)
        assert len(serial) == len(parallel) == len(tasks)
        for a, b in zip(serial, parallel):
            _assert_equal(a, b)

    def test_results_come_back_in_task_order(self):
        tasks = _tasks()
        results = CampaignRunner(workers=2).run(tasks)
        for task, result in zip(tasks, results):
            assert result.extras["task"] == task

    def test_mixed_chunk_rejected(self):
        from repro.fleet import run_campaign_chunk

        tasks = _tasks()
        with pytest.raises(FleetError):
            run_campaign_chunk([tasks[1], tasks[0]])
        with pytest.raises(FleetError):
            run_campaign_chunk([tasks[0], tasks[1]])

    def test_faulted_rack_tasks_do_not_stack(self):
        schedule = FaultSchedule(
            events=(FaultEvent("stuck", server=0, start_s=10.0, duration_s=20.0),)
        )
        tasks = [
            CampaignTask(
                scenario="homogeneous",
                n_servers=2,
                seed=seed,
                duration_s=40.0,
                dt_s=0.5,
                faults=schedule,
            )
            for seed in (0, 1)
        ]
        results = CampaignRunner(workers=None, chunk_size=4).run(tasks)
        for result in results:
            assert "chunk" not in result.extras
            assert result.extras["faults"]["n_fired"] == 1

    def test_faulted_rack_task_matches_direct_run(self):
        from repro.fleet import FleetSimulator, homogeneous_rack
        from repro.config import FleetConfig

        schedule = FaultSchedule(
            events=(
                FaultEvent("dropout", server=1, start_s=15.0, duration_s=20.0),
            )
        )
        task = CampaignTask(
            scenario="homogeneous",
            n_servers=2,
            seed=7,
            duration_s=60.0,
            dt_s=0.5,
            record_decimation=1,
            faults=schedule,
        )
        [via_campaign] = CampaignRunner(workers=None).run([task])
        rack = homogeneous_rack(
            n_servers=2,
            duration_s=60.0,
            seed=7,
            fleet=FleetConfig(n_servers=2, recirc_fraction=0.25),
        )
        direct = FleetSimulator(
            rack, dt_s=0.5, record_decimation=1, faults=schedule
        ).run(60.0)
        for ra, rb in zip(via_campaign.server_results, direct.server_results):
            for name, chan in ra.channels.items():
                assert np.array_equal(
                    chan, rb.channels[name], equal_nan=True
                )
