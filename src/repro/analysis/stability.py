"""Stability metrics for control traces.

Quantifies what the paper's figures show visually: Fig. 3's convergence
time and instability, Fig. 4's sustained oscillation, Fig. 5's stable
tracking.  All functions operate on plain (times, values) arrays from
:class:`~repro.sim.result.SimulationResult` channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import find_peaks

from repro.errors import AnalysisError


@dataclass(frozen=True)
class StabilityReport:
    """Summary of a signal's steady-state behaviour."""

    oscillatory: bool
    amplitude: float
    period_s: float
    n_cycles: int
    final_value: float


def _validate(times, values) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.ndim != 1 or v.ndim != 1 or t.size != v.size:
        raise AnalysisError("times and values must be 1-D arrays of equal length")
    if t.size < 3:
        raise AnalysisError("need at least 3 samples for stability analysis")
    return t, v


def oscillation_amplitude(
    values, tail_fraction: float = 0.5
) -> float:
    """Peak-to-peak amplitude over the trailing part of the signal.

    A converged loop has near-zero trailing amplitude; a sustained
    oscillation keeps a large one.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise AnalysisError("empty signal")
    tail = v[int(v.size * (1.0 - tail_fraction)):]
    return float(np.max(tail) - np.min(tail))


def is_oscillatory(
    times,
    values,
    min_amplitude: float,
    min_cycles: int = 3,
    tail_fraction: float = 0.5,
) -> bool:
    """Whether the trailing signal sustains >= ``min_cycles`` swings.

    A swing is a peak with prominence of at least ``min_amplitude / 2``.
    """
    t, v = _validate(times, values)
    start = int(v.size * (1.0 - tail_fraction))
    tail = v[start:]
    if oscillation_amplitude(v, tail_fraction) < min_amplitude:
        return False
    peaks, _ = find_peaks(tail, prominence=min_amplitude / 2.0)
    return len(peaks) >= min_cycles


def analyze_stability(
    times,
    values,
    min_amplitude: float = 1.0,
    tail_fraction: float = 0.5,
) -> StabilityReport:
    """Full stability report for a signal's trailing window."""
    t, v = _validate(times, values)
    start = int(v.size * (1.0 - tail_fraction))
    tail_t, tail_v = t[start:], v[start:]
    amplitude = float(np.max(tail_v) - np.min(tail_v))
    peaks, _ = find_peaks(tail_v, prominence=min_amplitude / 2.0)
    oscillatory = amplitude >= min_amplitude and len(peaks) >= 3
    period = (
        float(np.mean(np.diff(tail_t[peaks]))) if len(peaks) >= 2 else 0.0
    )
    return StabilityReport(
        oscillatory=oscillatory,
        amplitude=amplitude,
        period_s=period,
        n_cycles=len(peaks),
        final_value=float(v[-1]),
    )


def settling_time_s(
    times,
    values,
    final_value: float | None = None,
    tolerance: float = 0.05,
    min_hold_fraction: float = 0.02,
) -> float:
    """Time to enter (and stay within) a band around the final value.

    The band half-width is ``tolerance * max(|final|, peak deviation)``.
    Returns ``inf`` when the signal never settles (e.g. an unstable loop):
    the in-band trailing segment must span at least ``min_hold_fraction``
    of the observation window, so a sine that happens to end near the
    target does not count as settled.
    """
    t, v = _validate(times, values)
    final = float(v[-1]) if final_value is None else float(final_value)
    deviation = np.abs(v - final)
    scale = max(abs(final), float(np.max(deviation)))
    if scale == 0.0:
        return float(t[0])
    band = tolerance * scale
    outside = deviation > band
    if not np.any(outside):
        return float(t[0])
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside == t.size - 1:
        return float("inf")
    settled_at = float(t[last_outside + 1])
    span = float(t[-1] - t[0])
    if span > 0.0 and (float(t[-1]) - settled_at) < min_hold_fraction * span:
        return float("inf")
    return settled_at


def overshoot_percent(
    values, initial_value: float, final_value: float
) -> float:
    """Classic step-response overshoot in percent.

    Measures how far the signal exceeds the final value relative to the
    step size; 0 when it never crosses the final value.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise AnalysisError("empty signal")
    step = final_value - initial_value
    if step == 0.0:
        raise AnalysisError("zero step: overshoot undefined")
    if step > 0:
        exceed = float(np.max(v)) - final_value
    else:
        exceed = final_value - float(np.min(v))
    return max(0.0, 100.0 * exceed / abs(step))
