"""Table III metrics: deadline violations and normalized fan energy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class SchemeComparison:
    """One Table III row: a scheme scored against the baseline."""

    label: str
    violation_percent: float
    normalized_fan_energy: float
    fan_energy_j: float
    max_junction_c: float


def scheme_row(
    result: SimulationResult, baseline: SimulationResult, label: str | None = None
) -> SchemeComparison:
    """Score one run against the uncoordinated baseline."""
    return SchemeComparison(
        label=label or result.label,
        violation_percent=result.violation_percent,
        normalized_fan_energy=result.normalized_fan_energy(baseline),
        fan_energy_j=result.fan_energy_j,
        max_junction_c=result.max_junction_c,
    )


def compare_schemes(
    results: dict[str, SimulationResult], baseline_key: str = "uncoordinated"
) -> list[SchemeComparison]:
    """Build the full Table III from a dict of scheme runs.

    Rows keep the input dict's insertion order; energies are normalized to
    ``results[baseline_key]``.
    """
    if baseline_key not in results:
        raise AnalysisError(
            f"baseline {baseline_key!r} missing from results: {sorted(results)}"
        )
    baseline = results[baseline_key]
    return [
        scheme_row(result, baseline, label=name)
        for name, result in results.items()
    ]
