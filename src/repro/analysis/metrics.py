"""Table III metrics plus rack/fleet-, room-, and fault-level aggregates.

Single-server scoring (:func:`scheme_row`, :func:`compare_schemes`)
reproduces Table III; :func:`fleet_summary` rolls a set of lockstep
per-server runs up into the fleet-level figures the rack simulation
reports (total energy, worst-case junction, violation counts,
inter-server temperature spread); :func:`room_summary` rolls per-rack
fleet results up one more level into the room figures (per-rack inlet
spread, supply-temperature margin, fan + CRAC energy).

Fault-injected runs (:mod:`repro.faults`) add a third axis - how badly
degradation hurt and how well the failsafe contained it:
:func:`overheat_exposure_c_s` integrates junction excursions above the
safe limit (degC-seconds, the thermal-damage proxy), and
:func:`fault_impact` reduces a run's ``extras["faults"]`` record to
detection latency, failsafe dwell time, and the fan-energy penalty the
forced-max-fan response cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class SchemeComparison:
    """One Table III row: a scheme scored against the baseline."""

    label: str
    violation_percent: float
    normalized_fan_energy: float
    fan_energy_j: float
    max_junction_c: float


def scheme_row(
    result: SimulationResult, baseline: SimulationResult, label: str | None = None
) -> SchemeComparison:
    """Score one run against the uncoordinated baseline."""
    return SchemeComparison(
        label=label or result.label,
        violation_percent=result.violation_percent,
        normalized_fan_energy=result.normalized_fan_energy(baseline),
        fan_energy_j=result.fan_energy_j,
        max_junction_c=result.max_junction_c,
    )


def compare_schemes(
    results: dict[str, SimulationResult], baseline_key: str = "uncoordinated"
) -> list[SchemeComparison]:
    """Build the full Table III from a dict of scheme runs.

    Rows keep the input dict's insertion order; energies are normalized to
    ``results[baseline_key]``.
    """
    if baseline_key not in results:
        raise AnalysisError(
            f"baseline {baseline_key!r} missing from results: {sorted(results)}"
        )
    baseline = results[baseline_key]
    return [
        scheme_row(result, baseline, label=name)
        for name, result in results.items()
    ]


@dataclass(frozen=True)
class FleetSummary:
    """Fleet-level aggregates over one rack run.

    The spread figures quantify how unevenly the rack heats: at every
    recorded instant the junction spread is ``max - min`` across
    servers, and we report its time mean and peak.  Recirculation drives
    the spread up; a perfectly decoupled homogeneous rack keeps it near
    zero.
    """

    n_servers: int
    total_energy_j: float
    fan_energy_j: float
    cpu_energy_j: float
    worst_max_junction_c: float
    total_violations: int
    total_periods: int
    mean_junction_spread_c: float
    peak_junction_spread_c: float

    @property
    def violation_percent(self) -> float:
        """Fleet-wide deadline violation percentage."""
        if self.total_periods == 0:
            return 0.0
        return 100.0 * self.total_violations / self.total_periods

    def as_dict(self) -> dict[str, float]:
        """Headline figures as a flat dict (for tables and campaigns)."""
        return {
            "n_servers": float(self.n_servers),
            "total_energy_j": self.total_energy_j,
            "fan_energy_j": self.fan_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "worst_max_junction_c": self.worst_max_junction_c,
            "violation_percent": self.violation_percent,
            "mean_junction_spread_c": self.mean_junction_spread_c,
            "peak_junction_spread_c": self.peak_junction_spread_c,
        }


def fleet_summary(results: Sequence[SimulationResult]) -> FleetSummary:
    """Aggregate lockstep per-server runs into fleet-level metrics.

    All results must share the same telemetry length (the fleet
    simulator steps servers in lockstep, so they do by construction).
    """
    if not results:
        raise AnalysisError("fleet summary needs at least one server result")
    lengths = {r.times.size for r in results}
    if len(lengths) != 1:
        raise AnalysisError(
            f"server telemetry lengths differ ({sorted(lengths)}); "
            "fleet metrics need lockstep runs"
        )
    junctions = np.stack([r.junction_c for r in results])
    spread = junctions.max(axis=0) - junctions.min(axis=0)
    return FleetSummary(
        n_servers=len(results),
        total_energy_j=sum(r.energy.total_j for r in results),
        fan_energy_j=sum(r.fan_energy_j for r in results),
        cpu_energy_j=sum(r.cpu_energy_j for r in results),
        worst_max_junction_c=max(r.max_junction_c for r in results),
        total_violations=sum(r.performance.violations for r in results),
        total_periods=sum(r.performance.periods for r in results),
        mean_junction_spread_c=float(spread.mean()) if spread.size else 0.0,
        peak_junction_spread_c=float(spread.max()) if spread.size else 0.0,
    )


@dataclass(frozen=True)
class RoomSummary:
    """Room-level aggregates over one multi-rack run.

    Inlet figures work on each server's *mean* inlet temperature over
    the run (what :class:`~repro.fleet.result.FleetResult` carries):
    ``inlet_spread_c`` is the hottest minus the coldest mean inlet in
    the room - how unevenly the floor breathes - and
    ``worst_rack_inlet_spread_c`` the largest such spread inside any one
    rack.  ``supply_margin_c`` is the headroom between the allowable
    rack-inlet temperature and the hottest mean inlet; negative margin
    means some server's intake air exceeded the limit on average.
    """

    n_racks: int
    n_servers: int
    total_energy_j: float
    fan_energy_j: float
    cpu_energy_j: float
    crac_energy_j: float
    worst_max_junction_c: float
    total_violations: int
    total_periods: int
    per_rack_mean_inlet_c: tuple[float, ...]
    inlet_spread_c: float
    worst_rack_inlet_spread_c: float
    supply_margin_c: float

    @property
    def room_energy_j(self) -> float:
        """IT (CPU + fan) plus CRAC energy for the whole room."""
        return self.total_energy_j + self.crac_energy_j

    @property
    def violation_percent(self) -> float:
        """Room-wide deadline violation percentage."""
        if self.total_periods == 0:
            return 0.0
        return 100.0 * self.total_violations / self.total_periods

    def as_dict(self) -> dict[str, float]:
        """Headline figures as a flat dict (for tables and campaigns)."""
        return {
            "n_racks": float(self.n_racks),
            "n_servers": float(self.n_servers),
            "total_energy_j": self.total_energy_j,
            "fan_energy_j": self.fan_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "crac_energy_j": self.crac_energy_j,
            "room_energy_j": self.room_energy_j,
            "worst_max_junction_c": self.worst_max_junction_c,
            "violation_percent": self.violation_percent,
            "inlet_spread_c": self.inlet_spread_c,
            "worst_rack_inlet_spread_c": self.worst_rack_inlet_spread_c,
            "supply_margin_c": self.supply_margin_c,
        }


def room_summary(
    rack_results: Sequence,
    crac_energy_j: float = 0.0,
    inlet_limit_c: float = 35.0,
) -> RoomSummary:
    """Aggregate per-rack :class:`~repro.fleet.result.FleetResult`\\ s.

    All racks must hold lockstep runs of the same telemetry length (the
    room simulator guarantees this by construction).
    """
    if not rack_results:
        raise AnalysisError("room summary needs at least one rack result")
    lengths = {r.times.size for r in rack_results}
    if len(lengths) != 1:
        raise AnalysisError(
            f"rack telemetry lengths differ ({sorted(lengths)}); "
            "room metrics need lockstep runs"
        )
    fleet = [r.metrics for r in rack_results]
    all_inlets = np.concatenate([r.mean_inlet_c for r in rack_results])
    rack_spreads = [
        max(r.mean_inlet_c) - min(r.mean_inlet_c) for r in rack_results
    ]
    return RoomSummary(
        n_racks=len(rack_results),
        n_servers=int(sum(f.n_servers for f in fleet)),
        total_energy_j=sum(f.total_energy_j for f in fleet),
        fan_energy_j=sum(f.fan_energy_j for f in fleet),
        cpu_energy_j=sum(f.cpu_energy_j for f in fleet),
        crac_energy_j=crac_energy_j,
        worst_max_junction_c=max(f.worst_max_junction_c for f in fleet),
        total_violations=sum(f.total_violations for f in fleet),
        total_periods=sum(f.total_periods for f in fleet),
        per_rack_mean_inlet_c=tuple(
            float(np.mean(r.mean_inlet_c)) for r in rack_results
        ),
        inlet_spread_c=float(all_inlets.max() - all_inlets.min()),
        worst_rack_inlet_spread_c=float(max(rack_spreads)),
        supply_margin_c=float(inlet_limit_c - all_inlets.max()),
    )


# ----------------------------------------------------------------------
# Fault-injection metrics (repro.faults)


def overheat_exposure_c_s(
    result: SimulationResult, limit_c: float | None = None
) -> float:
    """Integrated junction excursion above the safe limit, in degC-seconds.

    The thermal-damage proxy for degraded runs: ``integral of
    max(0, Tj - limit) dt`` over the recorded trace (trapezoidal on the
    telemetry grid, so decimated runs stay consistent).  ``limit_c``
    defaults to the run's configured critical temperature.
    """
    if limit_c is None:
        limit_c = result.config.control.t_critical_c
    times = result.times
    if times.size < 2:
        return 0.0
    excess = np.maximum(0.0, result.junction_c - limit_c)
    return float(np.sum(0.5 * (excess[1:] + excess[:-1]) * np.diff(times)))


def fleet_overheat_exposure_c_s(
    results: Sequence[SimulationResult], limit_c: float | None = None
) -> float:
    """Summed :func:`overheat_exposure_c_s` over lockstep server runs."""
    return float(
        sum(overheat_exposure_c_s(result, limit_c) for result in results)
    )


@dataclass(frozen=True)
class FaultImpact:
    """How a run's faults played out, reduced from ``extras["faults"]``.

    * ``n_events`` / ``n_fired`` - scheduled events vs events whose
      window intersected the run.
    * ``failsafe_engagements`` / ``failsafe_time_s`` - how often and how
      long the telemetry watchdog overrode the DTM.
    * ``mean_detection_latency_s`` / ``max_detection_latency_s`` - time
      from dropout onset to failsafe engagement (dominated by the
      sensing transport delay); NaN when no dropout was detected.
    * ``failsafe_energy_penalty_j`` - extra fan energy the forced-max
      response spent versus holding each server's prior command, the
      price of flying blind.
    """

    n_events: int
    n_fired: int
    failsafe_engagements: int
    failsafe_time_s: float
    mean_detection_latency_s: float
    max_detection_latency_s: float
    failsafe_energy_penalty_j: float

    def as_dict(self) -> dict[str, float]:
        """Headline figures as a flat dict (for tables and campaigns)."""
        return {
            "n_events": float(self.n_events),
            "n_fired": float(self.n_fired),
            "failsafe_engagements": float(self.failsafe_engagements),
            "failsafe_time_s": self.failsafe_time_s,
            "mean_detection_latency_s": self.mean_detection_latency_s,
            "max_detection_latency_s": self.max_detection_latency_s,
            "failsafe_energy_penalty_j": self.failsafe_energy_penalty_j,
        }


def fault_impact(faults_extras: Mapping[str, Any]) -> FaultImpact:
    """Reduce a run's ``extras["faults"]`` record to a :class:`FaultImpact`.

    Works on the dict any fault-injected run attaches to its result
    (:class:`~repro.fleet.result.FleetResult` and
    :class:`~repro.room.result.RoomResult` alike); raises
    :class:`~repro.errors.AnalysisError` when handed something else.
    """
    try:
        windows = faults_extras["failsafe"]["windows"]
        n_events = len(faults_extras["events"])
        n_fired = int(faults_extras["n_fired"])
        latencies = list(faults_extras["detection_latency_s"].values())
    except (KeyError, TypeError) as exc:
        raise AnalysisError(
            "fault_impact needs a run's extras['faults'] record"
        ) from exc
    dwell = 0.0
    penalty = 0.0
    for window in windows:
        if window["released_s"] is None:
            raise AnalysisError(
                f"failsafe window for server {window['server']} was never "
                "closed; pass a finalized fault summary"
            )
        dwell += window["released_s"] - window["engaged_s"]
        # Integrated at window close across actuator-fault regime
        # changes (a seize ending mid-engagement starts costing then).
        penalty += window["penalty_j"]
    return FaultImpact(
        n_events=n_events,
        n_fired=n_fired,
        failsafe_engagements=len(windows),
        failsafe_time_s=dwell,
        mean_detection_latency_s=(
            float(np.mean(latencies)) if latencies else math.nan
        ),
        max_detection_latency_s=(
            float(np.max(latencies)) if latencies else math.nan
        ),
        failsafe_energy_penalty_j=penalty,
    )
