"""Table III metrics plus rack/fleet-level aggregates.

Single-server scoring (:func:`scheme_row`, :func:`compare_schemes`)
reproduces Table III; :func:`fleet_summary` rolls a set of lockstep
per-server runs up into the fleet-level figures the rack simulation
reports (total energy, worst-case junction, violation counts,
inter-server temperature spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class SchemeComparison:
    """One Table III row: a scheme scored against the baseline."""

    label: str
    violation_percent: float
    normalized_fan_energy: float
    fan_energy_j: float
    max_junction_c: float


def scheme_row(
    result: SimulationResult, baseline: SimulationResult, label: str | None = None
) -> SchemeComparison:
    """Score one run against the uncoordinated baseline."""
    return SchemeComparison(
        label=label or result.label,
        violation_percent=result.violation_percent,
        normalized_fan_energy=result.normalized_fan_energy(baseline),
        fan_energy_j=result.fan_energy_j,
        max_junction_c=result.max_junction_c,
    )


def compare_schemes(
    results: dict[str, SimulationResult], baseline_key: str = "uncoordinated"
) -> list[SchemeComparison]:
    """Build the full Table III from a dict of scheme runs.

    Rows keep the input dict's insertion order; energies are normalized to
    ``results[baseline_key]``.
    """
    if baseline_key not in results:
        raise AnalysisError(
            f"baseline {baseline_key!r} missing from results: {sorted(results)}"
        )
    baseline = results[baseline_key]
    return [
        scheme_row(result, baseline, label=name)
        for name, result in results.items()
    ]


@dataclass(frozen=True)
class FleetSummary:
    """Fleet-level aggregates over one rack run.

    The spread figures quantify how unevenly the rack heats: at every
    recorded instant the junction spread is ``max - min`` across
    servers, and we report its time mean and peak.  Recirculation drives
    the spread up; a perfectly decoupled homogeneous rack keeps it near
    zero.
    """

    n_servers: int
    total_energy_j: float
    fan_energy_j: float
    cpu_energy_j: float
    worst_max_junction_c: float
    total_violations: int
    total_periods: int
    mean_junction_spread_c: float
    peak_junction_spread_c: float

    @property
    def violation_percent(self) -> float:
        """Fleet-wide deadline violation percentage."""
        if self.total_periods == 0:
            return 0.0
        return 100.0 * self.total_violations / self.total_periods

    def as_dict(self) -> dict[str, float]:
        """Headline figures as a flat dict (for tables and campaigns)."""
        return {
            "n_servers": float(self.n_servers),
            "total_energy_j": self.total_energy_j,
            "fan_energy_j": self.fan_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "worst_max_junction_c": self.worst_max_junction_c,
            "violation_percent": self.violation_percent,
            "mean_junction_spread_c": self.mean_junction_spread_c,
            "peak_junction_spread_c": self.peak_junction_spread_c,
        }


def fleet_summary(results: Sequence[SimulationResult]) -> FleetSummary:
    """Aggregate lockstep per-server runs into fleet-level metrics.

    All results must share the same telemetry length (the fleet
    simulator steps servers in lockstep, so they do by construction).
    """
    if not results:
        raise AnalysisError("fleet summary needs at least one server result")
    lengths = {r.times.size for r in results}
    if len(lengths) != 1:
        raise AnalysisError(
            f"server telemetry lengths differ ({sorted(lengths)}); "
            "fleet metrics need lockstep runs"
        )
    junctions = np.stack([r.junction_c for r in results])
    spread = junctions.max(axis=0) - junctions.min(axis=0)
    return FleetSummary(
        n_servers=len(results),
        total_energy_j=sum(r.energy.total_j for r in results),
        fan_energy_j=sum(r.fan_energy_j for r in results),
        cpu_energy_j=sum(r.cpu_energy_j for r in results),
        worst_max_junction_c=max(r.max_junction_c for r in results),
        total_violations=sum(r.performance.violations for r in results),
        total_periods=sum(r.performance.periods for r in results),
        mean_junction_spread_c=float(spread.mean()) if spread.size else 0.0,
        peak_junction_spread_c=float(spread.max()) if spread.size else 0.0,
    )
