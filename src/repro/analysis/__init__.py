"""Analysis utilities: stability metrics, Table III metrics, linearization.

* :mod:`repro.analysis.stability` - oscillation detection, settling time,
  overshoot (used to score Figs 3-5 quantitatively).
* :mod:`repro.analysis.metrics` - deadline-violation and normalized-energy
  comparisons (Table III).
* :mod:`repro.analysis.linearize` - piecewise linearization of the
  temperature/fan-speed relation and region-count selection (Section IV-B).
* :mod:`repro.analysis.report` - plain-text tables and sparklines for the
  experiment scripts.
"""

from repro.analysis.linearize import (
    LinearizationFit,
    linearization_error,
    linearize_plant,
    suggest_regions,
)
from repro.analysis.metrics import (
    FaultImpact,
    FleetSummary,
    RoomSummary,
    SchemeComparison,
    compare_schemes,
    fault_impact,
    fleet_overheat_exposure_c_s,
    fleet_summary,
    overheat_exposure_c_s,
    room_summary,
    scheme_row,
)
from repro.analysis.stability import (
    StabilityReport,
    analyze_stability,
    is_oscillatory,
    oscillation_amplitude,
    overshoot_percent,
    settling_time_s,
)
from repro.analysis.report import format_table, sparkline

__all__ = [
    "FaultImpact",
    "FleetSummary",
    "LinearizationFit",
    "RoomSummary",
    "SchemeComparison",
    "StabilityReport",
    "analyze_stability",
    "compare_schemes",
    "fault_impact",
    "fleet_overheat_exposure_c_s",
    "fleet_summary",
    "overheat_exposure_c_s",
    "format_table",
    "is_oscillatory",
    "linearization_error",
    "linearize_plant",
    "oscillation_amplitude",
    "overshoot_percent",
    "room_summary",
    "scheme_row",
    "settling_time_s",
    "sparkline",
    "suggest_regions",
]
