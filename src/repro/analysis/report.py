"""Plain-text reporting helpers for the experiment scripts.

The paper's artefacts are tables and trace figures; in a terminal-only
environment we render tables with aligned columns and traces as unicode
sparklines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Every row must match the header width.
    """
    if not headers:
        raise AnalysisError("table needs at least one column")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """Downsample a signal to ``width`` buckets of unicode block levels."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise AnalysisError("cannot sparkline an empty signal")
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1, dtype=int)
        v = np.array([v[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(np.min(v)), float(np.max(v))
    if hi == lo:
        return _SPARK_LEVELS[0] * v.size
    scaled = (v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)
