"""Piecewise linearization of the temperature/fan-speed relation.

Section IV-B: "the number of regions depends on the error of the piecewise
linearization.  In our work, two regions, i.e., 2000 and 6000 rpm, are
enough to linearize the relationship within 5% error."  This module
reproduces that analysis: fit piecewise-linear segments to the
steady-state ``Tj(V)`` curve and measure the worst relative error, then
search for the smallest region count meeting a target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.thermal.steady_state import SteadyStateServerModel
from repro.units import check_fraction, check_utilization


@dataclass(frozen=True)
class LinearizationFit:
    """A piecewise-linear fit of Tj(V) and its worst-case relative error."""

    knot_speeds_rpm: tuple[float, ...]
    knot_temps_c: tuple[float, ...]
    max_relative_error: float

    @property
    def n_regions(self) -> int:
        """Number of linear segments."""
        return len(self.knot_speeds_rpm) - 1

    def evaluate(self, speed_rpm: float) -> float:
        """Interpolated temperature at a fan speed inside the knot range."""
        return float(
            np.interp(speed_rpm, self.knot_speeds_rpm, self.knot_temps_c)
        )


def linearize_plant(
    model: SteadyStateServerModel,
    utilization: float = 0.4,
    knots_rpm: tuple[float, ...] | None = None,
    n_samples: int = 200,
    error_metric: str = "rise",
) -> LinearizationFit:
    """Fit a piecewise-linear curve through the given knots.

    ``error_metric`` selects the normalization of the worst deviation:

    * ``"rise"`` - relative to the temperature rise above ambient
      (origin-independent; the stricter engineering metric);
    * ``"celsius"`` - relative to the absolute Celsius reading, which is
      how the paper's "within 5% error" claim reads (Section IV-B).
    """
    check_utilization(utilization, "utilization")
    fan = model.config.fan
    if knots_rpm is None:
        knots_rpm = (fan.min_speed_rpm, 2000.0, 6000.0, fan.max_speed_rpm)
    knots = tuple(sorted(knots_rpm))
    if len(knots) < 2:
        raise AnalysisError("need at least 2 knots for a linearization")
    if knots[0] < fan.min_speed_rpm - 1e-9 or knots[-1] > fan.max_speed_rpm + 1e-9:
        raise AnalysisError(
            f"knots {knots} outside fan range "
            f"[{fan.min_speed_rpm}, {fan.max_speed_rpm}]"
        )
    knot_temps = tuple(model.junction_c(utilization, v) for v in knots)

    ambient = model.config.ambient_c
    speeds = np.linspace(knots[0], knots[-1], n_samples)
    truth = np.array([model.junction_c(utilization, v) for v in speeds])
    approx = np.interp(speeds, knots, knot_temps)
    if error_metric == "rise":
        denominator = truth - ambient
    elif error_metric == "celsius":
        denominator = truth
    else:
        raise AnalysisError(f"unknown error metric: {error_metric!r}")
    if np.any(denominator <= 0.0):
        raise AnalysisError("non-positive normalization; check the model")
    max_rel = float(np.max(np.abs(approx - truth) / denominator))
    return LinearizationFit(
        knot_speeds_rpm=knots,
        knot_temps_c=knot_temps,
        max_relative_error=max_rel,
    )


def linearization_error(
    model: SteadyStateServerModel,
    region_speeds_rpm: tuple[float, ...],
    utilization: float = 0.4,
    error_metric: str = "celsius",
) -> float:
    """Worst relative error using the given tuning speeds as interior knots.

    Defaults to the paper's error reading (relative to the Celsius value),
    under which the 2000/6000 rpm pair meets the stated 5% bound.
    """
    fan = model.config.fan
    knots = tuple(
        sorted({fan.min_speed_rpm, *region_speeds_rpm, fan.max_speed_rpm})
    )
    return linearize_plant(
        model, utilization, knots, error_metric=error_metric
    ).max_relative_error


def suggest_regions(
    model: SteadyStateServerModel,
    target_error: float = 0.05,
    utilization: float = 0.4,
    max_regions: int = 8,
) -> LinearizationFit:
    """Smallest equally-log-spaced knot set meeting the error target.

    Reproduces the paper's claim that two interior regions suffice for 5%:
    the returned fit's interior knots are candidate tuning speeds.
    """
    check_fraction(target_error, "target_error")
    fan = model.config.fan
    for n_interior in range(0, max_regions + 1):
        knots = np.geomspace(
            fan.min_speed_rpm, fan.max_speed_rpm, n_interior + 2
        )
        fit = linearize_plant(model, utilization, tuple(knots))
        if fit.max_relative_error <= target_error:
            return fit
    raise AnalysisError(
        f"no knot set up to {max_regions} interior regions reaches "
        f"{target_error:.1%} error"
    )
