"""Canned scenario builders for every paper experiment.

Centralizes the wiring choices (reference temperatures, workloads, scheme
composition) so tests, benchmarks, examples, and the experiment scripts
all run the exact same configurations.

Scheme names follow Table III:

===========================  ================================================
name                         composition
===========================  ================================================
``uncoordinated``            adaptive PID fan + deadzone capper, no
                             coordination (the normalization baseline)
``ecoord``                   same locals, E-coord arbitration [6]
``rcoord``                   same locals, Table II rules, fixed T_ref = 75
``rcoord_atref``             + predictive T_ref adaptation (70-80 degC)
``rcoord_atref_ssfan``       + single-step fan scaling
===========================  ================================================

All schemes share the same adaptive-PID fan controller (the paper: "for
fair comparison, we use the proposed fan speed control scheme in all
solutions") and the same deadzone CPU capper.
"""

from __future__ import annotations

from repro.config import ServerConfig
from repro.core.base import ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.ecoord import EnergyAwareCoordinator
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainSchedule
from repro.core.global_controller import GlobalController
from repro.core.quantization import QuantizationGuard
from repro.core.rules import RuleBasedCoordinator
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling
from repro.core.tuning import default_gain_schedule
from repro.core.uncoordinated import UncoordinatedCoordinator
from repro.errors import ExperimentError
from repro.sensing.sensor import TemperatureSensor
from repro.sim.batch import BatchRunSpec
from repro.sim.engine import Simulator
from repro.sim.result import SimulationResult
from repro.thermal.server import ServerThermalModel
from repro.thermal.steady_state import SteadyStateServerModel
from repro.workload.base import Workload
from repro.workload.spikes import SpikeProcess
from repro.workload.synthetic import (
    CompositeWorkload,
    NoisyWorkload,
    SquareWaveWorkload,
)

#: Table III scheme names, in the paper's row order.
SCHEME_NAMES = (
    "uncoordinated",
    "ecoord",
    "rcoord",
    "rcoord_atref",
    "rcoord_atref_ssfan",
)

#: Human-readable labels matching the paper's rows.
SCHEME_LABELS = {
    "uncoordinated": "w/o coordination (baseline)",
    "ecoord": "E-coord [6]",
    "rcoord": "R-coord(@ Tref = 75C)",
    "rcoord_atref": "R-coord+A-Tref",
    "rcoord_atref_ssfan": "R-coord+A-Tref+SSfan",
}


def build_plant(
    config: ServerConfig | None = None,
    initial_utilization: float = 0.1,
    t_ref_c: float | None = None,
) -> ServerThermalModel:
    """Plant settled at the quiescent point of the given load and T_ref."""
    cfg = config or ServerConfig()
    if t_ref_c is None:
        t_ref_c = cfg.control.t_ref_fan_c
    steady = SteadyStateServerModel(cfg)
    speed = steady.required_fan_speed_rpm(initial_utilization, t_ref_c)
    plant = ServerThermalModel(
        cfg,
        initial_utilization=initial_utilization,
        initial_fan_speed_rpm=speed,
    )
    return plant


def build_sensor(
    config: ServerConfig | None = None, seed: int | None = None
) -> TemperatureSensor:
    """Sensing pipeline from the config (lag, LSB, optional noise)."""
    cfg = config or ServerConfig()
    return TemperatureSensor(cfg.sensing, seed=seed)


def paper_workload(
    duration_s: float,
    seed: int = 0,
    include_spikes: bool = True,
    low: float = 0.1,
    high: float = 0.7,
    half_period_s: float = 300.0,
    noise_std: float = 0.04,
    spike_rate_per_s: float = 1.0 / 180.0,
) -> Workload:
    """The Section VI-A synthetic workload.

    Alternates between ``low`` and ``high`` with Gaussian noise; optional
    Poisson spikes (Section V-C's abrupt load surges) ride on top.
    """
    base: Workload = SquareWaveWorkload(
        low=low, high=high, half_period_s=half_period_s
    )
    if include_spikes:
        spikes = SpikeProcess(
            horizon_s=duration_s,
            rate_per_s=spike_rate_per_s,
            height_range=(0.2, 0.3),
            duration_range_s=(10.0, 30.0),
            seed=seed + 1,
        )
        base = CompositeWorkload([base, spikes])
    if noise_std > 0.0:
        base = NoisyWorkload(base, std=noise_std, seed=seed)
    return base


#: Default per-decision fan slew limit used by the paper scenarios.  Real
#: fan firmware ramps the fan across several decision periods (this is the
#: N_trans transient that motivates single-step scaling, Section V-C).
DEFAULT_SLEW_LIMIT_RPM = 1500.0


def build_fan_controller(
    config: ServerConfig,
    schedule: GainSchedule | None = None,
    t_ref_c: float | None = None,
    initial_speed_rpm: float | None = None,
    with_guard: bool = True,
    slew_limit_rpm: float | None = DEFAULT_SLEW_LIMIT_RPM,
) -> AdaptivePIDFanController:
    """The Section IV adaptive PID fan controller, paper-configured."""
    if schedule is None:
        schedule = default_gain_schedule(config)
    if t_ref_c is None:
        t_ref_c = config.control.t_ref_fan_c
    guard = (
        QuantizationGuard(config.sensing.quantization_step_c) if with_guard else None
    )
    return AdaptivePIDFanController(
        schedule=schedule,
        t_ref_c=t_ref_c,
        fan_limits_rpm=(config.fan.min_speed_rpm, config.fan.max_speed_rpm),
        interval_s=config.control.fan_interval_s,
        initial_speed_rpm=initial_speed_rpm,
        quantization_guard=guard,
        slew_limit_rpm=slew_limit_rpm,
    )


def build_global_controller(
    scheme: str,
    config: ServerConfig | None = None,
    schedule: GainSchedule | None = None,
    initial_utilization: float = 0.1,
) -> GlobalController:
    """Assemble one of the Table III schemes."""
    if scheme not in SCHEME_NAMES:
        raise ExperimentError(
            f"unknown scheme {scheme!r}; choose from {SCHEME_NAMES}"
        )
    cfg = config or ServerConfig()
    control = cfg.control
    steady = SteadyStateServerModel(cfg)
    t_ref = control.t_ref_fan_c
    initial_speed = steady.required_fan_speed_rpm(initial_utilization, t_ref)
    fan_controller = build_fan_controller(
        cfg, schedule=schedule, t_ref_c=t_ref, initial_speed_rpm=initial_speed
    )
    capper = DeadzoneCpuCapper(
        t_low_c=control.t_low_c,
        t_high_c=control.t_high_c,
        step=control.cap_step,
        cap_min=control.cap_min,
    )

    setpoint = None
    single_step = None
    if scheme == "uncoordinated":
        coordinator = UncoordinatedCoordinator()
    elif scheme == "ecoord":
        coordinator = EnergyAwareCoordinator(
            steady,
            t_emergency_c=control.t_critical_c,
            t_comfort_c=control.t_low_c,
        )
    else:
        coordinator = RuleBasedCoordinator()
        if scheme in ("rcoord_atref", "rcoord_atref_ssfan"):
            setpoint = AdaptiveSetpoint(t_min_c=70.0, t_max_c=80.0)
        if scheme == "rcoord_atref_ssfan":
            single_step = SingleStepFanScaling(steady)

    return GlobalController(
        control=control,
        fan_controller=fan_controller,
        coordinator=coordinator,
        cpu_capper=capper,
        setpoint=setpoint,
        single_step=single_step,
        initial_state=ControlState(fan_speed_rpm=initial_speed, cpu_cap=1.0),
    )


def scheme_spec(
    scheme: str,
    duration_s: float = 3600.0,
    seed: int = 0,
    config: ServerConfig | None = None,
    schedule: GainSchedule | None = None,
    include_spikes: bool = True,
    dt_s: float = 0.1,
    record_decimation: int = 10,
    label: str | None = None,
) -> BatchRunSpec:
    """One Table III scheme run as a batchable spec.

    The spec wires exactly what :func:`run_scheme` wires, so running it
    through :func:`~repro.sim.batch.run_batch` (alone or inside a grid)
    or a scalar :class:`~repro.sim.engine.Simulator` gives identical
    results.
    """
    cfg = config or ServerConfig()
    return BatchRunSpec(
        plant=build_plant(cfg),
        sensor=build_sensor(cfg, seed=seed),
        workload=paper_workload(
            duration_s, seed=seed, include_spikes=include_spikes
        ),
        controller=build_global_controller(scheme, cfg, schedule),
        duration_s=duration_s,
        dt_s=dt_s,
        record_decimation=record_decimation,
        label=scheme if label is None else label,
    )


def run_scheme(
    scheme: str,
    duration_s: float = 3600.0,
    seed: int = 0,
    config: ServerConfig | None = None,
    schedule: GainSchedule | None = None,
    include_spikes: bool = True,
    dt_s: float = 0.1,
    record_decimation: int = 10,
) -> SimulationResult:
    """Run one Table III scheme on the paper workload."""
    spec = scheme_spec(
        scheme,
        duration_s=duration_s,
        seed=seed,
        config=config,
        schedule=schedule,
        include_spikes=include_spikes,
        dt_s=dt_s,
        record_decimation=record_decimation,
    )
    sim = Simulator(
        spec.plant,
        spec.sensor,
        spec.workload,
        spec.controller,
        dt_s=spec.dt_s,
        record_decimation=spec.record_decimation,
    )
    return sim.run(spec.duration_s, label=spec.label)


def fan_only_spec(
    fan_controller,
    workload: Workload,
    duration_s: float,
    config: ServerConfig | None = None,
    seed: int | None = None,
    initial_utilization: float = 0.1,
    dt_s: float = 0.1,
    record_decimation: int = 10,
    label: str = "fan-only",
) -> BatchRunSpec:
    """A bare fan-controller run (no CPU capper) as a batchable spec.

    The Figs 3 and 4 setup of :func:`run_fan_only`, expressed so ablation
    grids can run on the vectorized backend.
    """
    cfg = config or ServerConfig()
    controller = GlobalController(
        control=cfg.control,
        fan_controller=fan_controller,
        coordinator=UncoordinatedCoordinator(),
        cpu_capper=None,
        initial_state=ControlState(
            fan_speed_rpm=getattr(
                fan_controller,
                "applied_speed_rpm",
                getattr(fan_controller, "speed_rpm", 4000.0),
            ),
            cpu_cap=1.0,
        ),
    )
    return BatchRunSpec(
        plant=build_plant(cfg, initial_utilization=initial_utilization),
        sensor=build_sensor(cfg, seed=seed),
        workload=workload,
        controller=controller,
        duration_s=duration_s,
        dt_s=dt_s,
        record_decimation=record_decimation,
        label=label,
    )


def run_fan_only(
    fan_controller,
    workload: Workload,
    duration_s: float,
    config: ServerConfig | None = None,
    seed: int | None = None,
    initial_utilization: float = 0.1,
    dt_s: float = 0.1,
    record_decimation: int = 10,
    label: str = "fan-only",
) -> SimulationResult:
    """Run a bare fan controller (no CPU capper) - Figs 3 and 4 setups."""
    spec = fan_only_spec(
        fan_controller,
        workload,
        duration_s,
        config=config,
        seed=seed,
        initial_utilization=initial_utilization,
        dt_s=dt_s,
        record_decimation=record_decimation,
        label=label,
    )
    sim = Simulator(
        spec.plant,
        spec.sensor,
        spec.workload,
        spec.controller,
        dt_s=spec.dt_s,
        record_decimation=spec.record_decimation,
    )
    return sim.run(spec.duration_s, label=spec.label)
