"""Vectorized batch execution backend: B servers per ``dt`` as array ops.

The scalar engine advances one server per Python call chain
(:class:`~repro.sim.engine.ServerStepper` -> plant -> two RC nodes ->
sensing -> controller).  That is the right shape for one server, but a
rack or a sweep grid pays the whole interpreter overhead B times per
``dt``.  This module advances all B servers at once:

* :class:`BatchThermalPlant` - die/heat-sink temperatures, powers, and
  fan-curve coefficients as ``(B,)`` arrays with vectorized
  exact-exponential updates.  Decay coefficients and fan-law resistances
  depend only on ``(dt, fan speed)``; the controller toggles among a few
  discrete fan levels, so they are computed once per level with *scalar*
  ``math`` calls (bit-identical to the scalar plant) and cached.
* :class:`BatchSensorBank` - the noise -> ADC -> transport-delay pipeline
  over arrays, with noise drawn from each server's own seeded generator
  in the same order as the scalar path, so runs stay reproducible.
* :class:`BatchStepper` - the lockstep loop: demand traces are evaluated
  up front (:meth:`~repro.workload.base.Workload.demand_array`), the
  per-``dt`` plant/sensing/energy/telemetry work is array math, and the
  control decisions - which fire once per CPU period, not per ``dt`` -
  run through the vectorized
  :class:`~repro.sim.batch_control.BatchGlobalController` for every
  server whose DTM is a stock composition (adaptive-PID fan + deadzone
  capper + rule-based/E-coord/uncoordinated coordination + optional
  A-Tref + optional SSfan - every Table III scheme), with a per-server
  fallback to the scalar controller objects for anything else
  (subclasses, non-stock models).  Equivalence with the scalar engine
  is structural either way, not approximate: the same floating-point
  operations run in the same order, just element-wise.

Heterogeneous *parameters* (per-server sensing quality, workloads,
power envelopes) batch fine; heterogeneous *structure* (time-varying
ambient profiles, custom plant or sensor subclasses, pre-used sensors)
does not, and :func:`batch_unsupported_reason` reports why so callers
can fall back to the scalar path.  Controller compositions are softer:
an unsupported controller only demotes *its own server's* control step
to the scalar objects (see :attr:`BatchStepper.controller_fallbacks`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.base import ControlInputs
from repro.errors import SimulationError, ThermalModelError
from repro.sim.batch_control import (
    BatchGlobalController,
    BatchTrackerBank,
    batch_controller_unsupported_reason,
)
from repro.power.energy import EnergyBreakdown
from repro.sensing.noise import GaussianNoise, NoNoise, UniformNoise
from repro.sensing.sensor import TemperatureSensor
from repro.sim.engine import TELEMETRY_CHANNELS, _validate_timing
from repro.sim.result import SimulationResult
from repro.thermal.ambient import ConstantAmbient, CoupledInlet
from repro.thermal.server import ServerState, ServerThermalModel
from repro.workload.base import Workload
from repro.workload.performance import DeadlineTracker

#: Demand traces are evaluated this many steps at a time, bounding the
#: precompute buffer at ``B * _CHUNK_STEPS`` floats for long horizons.
_CHUNK_STEPS = 4096


def batch_unsupported_reason(
    plants: Sequence[Any], sensors: Sequence[Any], coupled: bool = False
) -> str | None:
    """Why these servers cannot run on the batch backend (None = they can).

    The batch backend reimplements the plant and sensing hot paths with
    array math, so it only accepts the exact library classes whose
    behaviour it mirrors; subclasses, time-varying ambient profiles, and
    sensors that already hold state fall back to the scalar engine.
    ``coupled`` additionally requires every plant to breathe from a
    :class:`~repro.thermal.ambient.CoupledInlet` (rack recirculation
    drives inlet offsets through it).
    """
    if not plants:
        return "no servers"
    for i, plant in enumerate(plants):
        if type(plant) is not ServerThermalModel:
            return (
                f"server {i}: plant {type(plant).__name__} is not the "
                "stock ServerThermalModel"
            )
        ambient = plant.ambient
        if type(ambient) is CoupledInlet:
            if type(ambient.base) is not ConstantAmbient:
                return (
                    f"server {i}: coupled inlet wraps a time-varying "
                    f"{type(ambient.base).__name__} profile"
                )
        elif coupled:
            return (
                f"server {i}: coupled run needs a CoupledInlet ambient, "
                f"got {type(ambient).__name__}"
            )
        elif type(ambient) is not ConstantAmbient:
            return (
                f"server {i}: ambient {type(ambient).__name__} is not "
                "constant"
            )
    start = plants[0].time_s
    if any(plant.time_s != start for plant in plants):
        return "servers start at different simulation times"
    for i, sensor in enumerate(sensors):
        if type(sensor) is not TemperatureSensor:
            return (
                f"server {i}: sensor {type(sensor).__name__} is not the "
                "stock TemperatureSensor"
            )
        if sensor.is_primed:
            return f"server {i}: sensor already primed by a previous run"
    return None


class BatchSensorBank:
    """The sensing pipeline of B servers as array state.

    Mirrors :class:`~repro.sensing.sensor.TemperatureSensor` exactly:
    per-server sampling cadence, additive noise (drawn from each
    sensor's own model so the RNG streams match the scalar path),
    mid-tread ADC quantization, and a transport-delay FIFO implemented
    as per-server ring buffers.
    """

    def __init__(
        self,
        sensors: Sequence[TemperatureSensor],
        fault_states: Sequence[Any] | None = None,
    ) -> None:
        n = len(sensors)
        configs = [sensor.config for sensor in sensors]
        # Per-server sensing-fault pipelines (repro.faults): the same
        # scalar transform objects the scalar sensor calls, applied to
        # the same sampled values at the same instants, so fault-injected
        # runs stay bit-for-bit equal across backends.  Fault-free
        # servers never enter the loop.
        if fault_states is None:
            self._fault_rows: list[int] = []
            self._fault_states: list[Any] = []
        else:
            self._fault_rows = [
                i for i, state in enumerate(fault_states) if state is not None
            ]
            self._fault_states = list(fault_states)
        self._n = n
        self._rows = np.arange(n)
        self._lag = np.array([cfg.lag_s for cfg in configs])
        self._interval = np.array([cfg.sample_interval_s for cfg in configs])
        self._q_step = np.array([s.adc.step for s in sensors])
        self._q_min = np.array([s.adc.minimum for s in sensors])
        self._max_code = np.array(
            [float(2**s.adc.bits - 1) for s in sensors]
        )
        # Divisor-safe copy of the LSB (0 = pass-through is handled by a
        # where() on the real step array).
        self._q_div = np.where(self._q_step == 0.0, 1.0, self._q_step)
        self._noise = [sensor.noise for sensor in sensors]
        self._noisy_rows = [
            i
            for i, model in enumerate(self._noise)
            if not (
                isinstance(model, NoNoise)
                or (isinstance(model, GaussianNoise) and model.std == 0.0)
                or (
                    isinstance(model, UniformNoise) and model.half_width == 0.0
                )
            )
        ]
        self._next_sample = np.zeros(n)
        self._current = np.zeros(n)
        # Scalar lower bounds on the next sample/arrival instants, so the
        # per-dt observe/pop calls reduce to one float comparison on the
        # (majority of) steps where nothing is due anywhere in the batch.
        self._next_due = -np.inf
        self._next_arrival = np.inf
        # Uniform-pipeline fast lane: with one shared cadence and no
        # noise/fault hooks, every sample step is all-servers-at-once and
        # the ring pointers stay lockstep, so observe/pop can use scalar
        # pointers and whole-column FIFO ops.  Same float operations on
        # the same values - the lane is bit-for-bit, not a tolerance.
        self._uniform_cadence = (
            not self._fault_rows
            and not self._noisy_rows
            and bool(np.all(self._interval == self._interval[0]))
            and bool(np.all(self._lag == self._lag[0]))
        )
        self._interval_u = float(self._interval[0])
        self._lag_u = float(self._lag[0])
        # Scalar ADC parameters when every server shares the same ADC.
        self._uniform_adc = (
            bool(np.all(self._q_step == self._q_step[0]))
            and bool(np.all(self._q_min == self._q_min[0]))
            and bool(np.all(self._max_code == self._max_code[0]))
        )
        self._q_step_u = float(self._q_step[0])
        self._q_min_u = float(self._q_min[0])
        self._q_div_u = float(self._q_div[0])
        self._max_code_u = float(self._max_code[0])
        # Transport-delay FIFOs: ring buffers sized to the worst-case
        # number of in-flight samples (lag / sample interval), grown on
        # demand if a pathological cadence ever overflows them.
        in_flight = [
            int(math.ceil(cfg.lag_s / cfg.sample_interval_s)) for cfg in configs
        ]
        self._capacity = max(4, max(in_flight) + 4)
        self._fifo_t = np.full((n, self._capacity), np.inf)
        self._fifo_v = np.zeros((n, self._capacity))
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)

    @property
    def current(self) -> np.ndarray:
        """Firmware-visible reading per server (after :meth:`pop_until`)."""
        return self._current

    def _sample_noise(
        self, measured: np.ndarray, positions: dict[int, int]
    ) -> None:
        """Add one noise draw per sampled server, in server order."""
        for i in self._noisy_rows:
            j = positions.get(i)
            if j is not None:
                measured[j] += self._noise[i].sample()

    def _apply_pre_adc_faults(
        self, time_s: float, measured: np.ndarray, positions: dict[int, int]
    ) -> None:
        """Analog-domain fault corruption, per faulted server in order."""
        for i in self._fault_rows:
            j = positions.get(i)
            if j is not None:
                measured[j] = self._fault_states[i].pre_adc(
                    time_s, float(measured[j])
                )

    def _apply_post_adc_faults(
        self, time_s: float, quantized: np.ndarray, positions: dict[int, int]
    ) -> None:
        """Digital-domain fault corruption (stuck register, dropout)."""
        for i in self._fault_rows:
            j = positions.get(i)
            if j is not None:
                quantized[j] = self._fault_states[i].post_adc(
                    time_s, float(quantized[j])
                )

    def _positions(self, idx: np.ndarray) -> dict[int, int] | None:
        """One shared {server -> sample position} map per sample step.

        ``None`` when neither noise nor faults need per-server lookups.
        """
        if not (self._noisy_rows or self._fault_rows):
            return None
        return {int(i): j for j, i in enumerate(idx)}

    def _quantize(self, measured: np.ndarray, idx: np.ndarray) -> np.ndarray:
        step = self._q_step[idx]
        minimum = self._q_min[idx]
        code = np.clip(
            np.rint((measured - minimum) / self._q_div[idx]),
            0.0,
            self._max_code[idx],
        )
        return np.where(step == 0.0, measured, minimum + code * step)

    def _quantize_uniform(self, measured: np.ndarray) -> np.ndarray:
        """:meth:`_quantize` with one shared ADC as scalar operands.

        Scalar-vs-array broadcasting is elementwise-identical IEEE
        arithmetic, so the codes match :meth:`_quantize` bit for bit.
        """
        if self._q_step_u == 0.0:
            return measured.copy()
        code = np.clip(
            np.rint((measured - self._q_min_u) / self._q_div_u),
            0.0,
            self._max_code_u,
        )
        code *= self._q_step_u
        code += self._q_min_u
        return code

    def _push(self, idx: np.ndarray, time_s: float, values: np.ndarray) -> None:
        if np.any(self._count[idx] >= self._capacity):
            self._grow()
        tail = (self._head[idx] + self._count[idx]) % self._capacity
        arrivals = time_s + self._lag[idx]
        self._fifo_t[idx, tail] = arrivals
        self._fifo_v[idx, tail] = values
        self._count[idx] += 1
        self._next_arrival = min(self._next_arrival, float(arrivals.min()))

    def _push_uniform(self, time_s: float, values: np.ndarray) -> None:
        """All-servers push with lockstep ring pointers (column write)."""
        count = int(self._count[0])
        if count >= self._capacity:
            self._grow()
        tail = (int(self._head[0]) + count) % self._capacity
        arrival = time_s + self._lag_u
        self._fifo_t[:, tail] = arrival
        self._fifo_v[:, tail] = values
        self._count += 1
        if arrival < self._next_arrival:
            self._next_arrival = arrival

    def _grow(self) -> None:
        old = self._capacity
        self._capacity = old * 2
        fifo_t = np.full((self._n, self._capacity), np.inf)
        fifo_v = np.zeros((self._n, self._capacity))
        for i in range(self._n):
            count = int(self._count[i])
            if count:
                slots = (int(self._head[i]) + np.arange(count)) % old
                fifo_t[i, :count] = self._fifo_t[i, slots]
                fifo_v[i, :count] = self._fifo_v[i, slots]
        self._fifo_t = fifo_t
        self._fifo_v = fifo_v
        self._head[:] = 0

    def prime(self, time_s: float, true_temps: np.ndarray) -> None:
        """First observation: sets the power-on reading for every server."""
        measured = true_temps.copy()
        positions = self._positions(self._rows)
        if self._noisy_rows:
            self._sample_noise(measured, positions)
        if self._fault_rows:
            self._apply_pre_adc_faults(time_s, measured, positions)
        quantized = self._quantize(measured, self._rows)
        if self._fault_rows:
            self._apply_post_adc_faults(time_s, quantized, positions)
        self._current = quantized.copy()
        self._push(self._rows, time_s, quantized)
        self._next_sample = time_s + self._interval
        self._next_due = float(self._next_sample.min())

    def observe(
        self, time_s: float, time_plus: float, true_temps: np.ndarray
    ) -> None:
        """Feed the physical temperatures; samples at each server's cadence."""
        if self._next_due > time_plus:
            return
        if self._uniform_cadence:
            # Shared cadence: the bound above *is* every server's due
            # check, so all sample now and the ring stays lockstep.
            if self._uniform_adc:
                quantized = self._quantize_uniform(true_temps)
            else:
                quantized = self._quantize(true_temps.copy(), self._rows)
            self._push_uniform(time_s, quantized)
            # Same chained float adds as the general while-advance (one
            # per late period), applied to the shared scalar bound.
            nxt = self._next_due + self._interval_u
            while nxt <= time_plus:
                nxt += self._interval_u
            self._next_sample[:] = nxt
            self._next_due = nxt
            return
        due = self._next_sample <= time_plus
        idx = np.nonzero(due)[0]
        measured = true_temps[idx].copy()
        positions = self._positions(idx)
        if self._noisy_rows:
            self._sample_noise(measured, positions)
        if self._fault_rows:
            self._apply_pre_adc_faults(time_s, measured, positions)
        quantized = self._quantize(measured, idx)
        if self._fault_rows:
            self._apply_post_adc_faults(time_s, quantized, positions)
        self._push(idx, time_s, quantized)
        next_sample = self._next_sample[idx]
        interval = self._interval[idx]
        while True:
            late = next_sample <= time_plus
            if not late.any():
                break
            next_sample = np.where(late, next_sample + interval, next_sample)
        self._next_sample[idx] = next_sample
        self._next_due = float(self._next_sample.min())

    def state_of(self, i: int) -> tuple[float, list[tuple[float, float]], float]:
        """One server's pipeline state: (current, in-flight, next sample).

        In-flight samples are ``(arrival_time, value)`` pairs in arrival
        order, ready for
        :meth:`~repro.sensing.sensor.TemperatureSensor.restore_pipeline`.
        """
        count = int(self._count[i])
        slots = (int(self._head[i]) + np.arange(count)) % self._capacity
        pending = [
            (float(self._fifo_t[i, s]), float(self._fifo_v[i, s]))
            for s in slots
        ]
        return float(self._current[i]), pending, float(self._next_sample[i])

    def pop_until(self, time_s: float) -> None:
        """Promote every sample whose arrival time has passed (ZOH read)."""
        if self._next_arrival > time_s:
            return
        if self._uniform_cadence:
            head = int(self._head[0])
            count = int(self._count[0])
            while count > 0 and self._fifo_t[0, head] <= time_s:
                self._current[:] = self._fifo_v[:, head]
                head = (head + 1) % self._capacity
                count -= 1
            self._head[:] = head
            self._count[:] = count
            self._next_arrival = (
                float(self._fifo_t[0, head]) if count > 0 else np.inf
            )
            return
        while True:
            arrivals = self._fifo_t[self._rows, self._head]
            ready = (self._count > 0) & (arrivals <= time_s)
            if not ready.any():
                break
            idx = np.nonzero(ready)[0]
            self._current[idx] = self._fifo_v[idx, self._head[idx]]
            self._head[idx] = (self._head[idx] + 1) % self._capacity
            self._count[idx] -= 1
        # Stale slots behind the tail keep old timestamps, so only rows
        # with samples in flight may contribute to the new bound.
        arrivals = self._fifo_t[self._rows, self._head]
        self._next_arrival = float(
            np.where(self._count > 0, arrivals, np.inf).min()
        )


class BatchThermalPlant:
    """Die + heat sink of B servers as ``(B,)`` arrays.

    Per-level coefficients (heat-sink resistance, exponential decay
    factor, fan power) are computed with scalar ``math`` calls - the
    same expressions the scalar :class:`~repro.thermal.heatsink.HeatSink`
    and :class:`~repro.power.fan.FanPowerModel` evaluate - and cached
    per ``(server, fan speed)``, so the array update is bit-identical to
    B scalar plants while paying the transcendental cost only when a
    controller actually changes a fan level.
    """

    def __init__(self, plants: Sequence[ServerThermalModel], dt_s: float) -> None:
        self._dt = dt_s
        n = len(plants)
        self.hs_temp = np.array([p.heatsink.temperature_c for p in plants])
        self.die_temp = np.array([p.die.temperature_c for p in plants])
        configs = [p.config for p in plants]
        self.p_static = np.array([c.cpu.p_static_w for c in configs])
        self.p_dynamic = np.array([c.cpu.p_dynamic_w for c in configs])
        self.n_sockets = np.array([float(c.n_sockets) for c in configs])
        self.r_die = np.array([c.die.r_die_k_per_w for c in configs])
        # Die decay: reproduce CpuDie's derived capacitance (tau / R) so
        # R*C matches the scalar node to the last ulp.
        self.die_decay = np.array(
            [
                math.exp(
                    -dt_s
                    / (
                        c.die.r_die_k_per_w
                        * (c.die.time_constant_s / c.die.r_die_k_per_w)
                    )
                )
                for c in configs
            ]
        )
        self._n_sockets_f = [float(c.n_sockets) for c in configs]
        self._hs_capacitance = [
            float(p.heatsink.capacitance_j_per_k) for p in plants
        ]
        self._r_base = [c.heatsink.r_base_k_per_w for c in configs]
        self._r_coeff = [c.heatsink.r_coeff for c in configs]
        self._r_exp = [c.heatsink.r_exponent for c in configs]
        self._fan_p = [c.fan.power_per_socket_w for c in configs]
        self._v_min = [c.fan.min_speed_rpm for c in configs]
        self._v_max = [c.fan.max_speed_rpm for c in configs]
        # Heat-sink fouling (fault injection): extra base resistance per
        # server, folded into the cached level coefficients with the same
        # float expression HeatSink.resistance_at evaluates.  Seeded from
        # the plants so residual fouling from an earlier run carries over.
        self._fouling = [p.heatsink.fouling_k_per_w for p in plants]
        self._level_cache: list[dict[float, tuple[float, float, float]]] = [
            {} for _ in range(n)
        ]
        self.r_hs = np.zeros(n)
        self.hs_decay = np.zeros(n)
        self.fan_w = np.zeros(n)
        self.clamped_speed = np.zeros(n)
        # Monotonic coefficient-change counter.  The coefficient arrays
        # are mutated *in place* (array identity never changes), so any
        # cache derived from them - the fused backend's window power
        # matrices in particular - must key on this counter, not on
        # id(hs_decay).  Bumped by every apply_fan_speed/set_fouling.
        self.version = 0

    def apply_fan_speed(self, i: int, speed_rpm: float) -> None:
        """Clamp and apply one server's commanded fan speed.

        Resolves the fan-level coefficients through the per-server cache;
        scalar ``math`` keeps the values bit-identical to
        ``HeatSink.resistance_at`` / ``RCNode.advance`` /
        ``FanPowerModel.power_w``.
        """
        speed = float(speed_rpm)
        clamped = min(max(speed, self._v_min[i]), self._v_max[i])
        entry = self._level_cache[i].get(clamped)
        if entry is None:
            if clamped <= 0.0:
                raise ThermalModelError(
                    "heat sink resistance is undefined at zero fan speed"
                )
            resistance = (
                self._r_base[i] + self._fouling[i]
            ) + self._r_coeff[i] / clamped ** self._r_exp[i]
            decay = math.exp(-self._dt / (resistance * self._hs_capacitance[i]))
            fan_power = self._fan_p[i] * (clamped / self._v_max[i]) ** 3
            entry = (resistance, decay, fan_power)
            self._level_cache[i][clamped] = entry
        self.r_hs[i] = entry[0]
        self.hs_decay[i] = entry[1]
        self.fan_w[i] = entry[2] * self._n_sockets_f[i]
        self.clamped_speed[i] = clamped
        self.version += 1

    @property
    def fouling_k_per_w(self) -> list[float]:
        """Per-server fouling resistance currently in force."""
        return list(self._fouling)

    def set_fouling(self, i: int, extra_k_per_w: float) -> None:
        """Set one server's fouling resistance, invalidating its cache.

        Mirrors :meth:`repro.thermal.heatsink.HeatSink.set_fouling_k_per_w`
        with the identical float expression in :meth:`apply_fan_speed`,
        so fouled batch servers match fouled scalar plants bit for bit.
        The caller re-applies the current fan speed afterwards to refresh
        the in-force coefficient arrays.
        """
        if extra_k_per_w != self._fouling[i]:
            self._fouling[i] = extra_k_per_w
            self._level_cache[i] = {}
            self.version += 1

    def snapshot_fan_state(self) -> None:
        """Detach the fan-level arrays before a round of speed changes.

        Copy-on-write: the stepper holds references to ``fan_w`` and
        ``clamped_speed`` for energy/coupling accounting of the *current*
        step; replacing the arrays (instead of mutating them) keeps those
        references at their pre-decision values.  Call once per control
        step before the first :meth:`apply_fan_speed`.
        """
        self.fan_w = self.fan_w.copy()
        self.clamped_speed = self.clamped_speed.copy()

    def advance(
        self, ambient_c: np.ndarray, applied_util: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One exact-exponential step for all servers.

        Returns ``(junction, heatsink, cpu_power)`` arrays; fan power is
        exposed as :attr:`fan_w` (it only changes with the fan level).
        """
        socket_power = self.p_static + self.p_dynamic * applied_util
        hs_ss = ambient_c + self.r_hs * socket_power
        hs = hs_ss + (self.hs_temp - hs_ss) * self.hs_decay
        die_ss = hs + self.r_die * socket_power
        die = die_ss + (self.die_temp - die_ss) * self.die_decay
        self.hs_temp = hs
        self.die_temp = die
        return die, hs, socket_power * self.n_sockets

    def check_finite(self) -> None:
        """Raise if the thermal state has diverged.

        sum() is non-finite iff any element is (NaN propagates, inf
        saturates or cancels to NaN) - one cheap reduction.  NaN/inf
        contamination is permanent once present, so the stepper probes
        periodically instead of after every ``advance``.
        """
        if not math.isfinite(float(self.die_temp.sum())):
            raise ThermalModelError("batch thermal state diverged")


class BatchStepper:
    """Lockstep closed-loop driver for B servers on the batch backend.

    Parameters mirror B parallel :class:`~repro.sim.engine.ServerStepper`
    instances; ``coupling``/``exhaust`` (duck-typed to avoid importing
    the fleet package) switch on rack recirculation, in which case every
    plant must breathe from a
    :class:`~repro.thermal.ambient.CoupledInlet`.
    """

    def __init__(
        self,
        plants: Sequence[ServerThermalModel],
        sensors: Sequence[TemperatureSensor],
        workloads: Sequence[Workload],
        controllers: Sequence[Any],
        n_steps: int,
        dt_s: float = 0.1,
        record_decimation: int = 1,
        trackers: Sequence[DeadlineTracker] | None = None,
        coupling: Any | None = None,
        exhaust: Any | None = None,
        injector: Any | None = None,
        obs: Any | None = None,
    ) -> None:
        n = len(plants)
        if not (n == len(sensors) == len(workloads) == len(controllers)):
            raise SimulationError("batch inputs must have one entry per server")
        reason = batch_unsupported_reason(
            plants, sensors, coupled=coupling is not None
        )
        if reason is not None:
            raise SimulationError(f"batch backend unsupported: {reason}")
        if n_steps < 1:
            raise SimulationError(f"n_steps must be >= 1, got {n_steps}")
        for controller in controllers:
            dt_s = _validate_timing(
                dt_s, controller.control.cpu_interval_s, record_decimation
            )
        self._n = n
        self._all_idx = np.arange(n)
        self._plants = list(plants)
        self._sensors = list(sensors)
        self._workloads = list(workloads)
        self._controllers = list(controllers)
        self._trackers = (
            list(trackers)
            if trackers is not None
            else [DeadlineTracker() for _ in range(n)]
        )
        if len(self._trackers) != n:
            raise SimulationError("need one tracker per server")
        self._dt = dt_s
        self._n_steps = n_steps
        self._decimation = record_decimation
        self._k = 0
        self._start = plants[0].time_s
        # Observability (repro.obs): a live ObsCollector or None.  Hooks
        # below only read wall clocks and write collector-owned buffers,
        # so instrumented batches stay bit-for-bit identical.
        self._obs = obs
        # Health monitoring: armed on the collector by the simulator
        # before stepper construction.  ingest_batch casts array entries
        # to python floats and runs the scalar detector code, so the
        # incident list is identical to the scalar lane's.
        self._monitor = None if obs is None else getattr(obs, "monitor", None)

        self._coupled = coupling is not None
        if self._coupled:
            if exhaust is None:
                raise SimulationError("coupled batch run needs an exhaust model")
            inlets = []
            for plant in plants:
                if type(plant.ambient) is not CoupledInlet:
                    raise SimulationError(
                        "coupled batch run needs CoupledInlet ambients"
                    )
                inlets.append(plant.ambient)
            self._inlets = inlets
            self._room = np.array(
                [inlet.base.temperature_c(self._start) for inlet in inlets]
            )
            self._coupling = coupling
            self._decoupled = bool(coupling.is_decoupled)
            self._g_max = float(exhaust.conductance_at_max_w_per_k)
            self._g_floor = float(exhaust.conductance_floor_w_per_k)
            self._v_max_exh = float(exhaust.max_speed_rpm)
            self._inlet_sums = np.zeros(n)
            self._zero_offsets = np.zeros(n)
            self._last_offsets = self._zero_offsets
            # Hot-path handle on the CouplingOperator: dense racks run one
            # gemv, room-scale operators a block-sparse mat-vec.
            self._coupling_apply = coupling.apply
            # Exhaust conductance depends only on the fan-speed array,
            # which is replaced (never mutated) on fan changes, so cache
            # it keyed on array identity.
            self._conductance: np.ndarray | None = None
            self._conductance_for: np.ndarray | None = None
        else:
            self._ambient_const = np.array(
                [plant.ambient.temperature_c(self._start) for plant in plants]
            )

        # Fault-injection hooks (repro.faults).  All transforms are the
        # same scalar-math state objects the scalar engine drives, so
        # fault-injected batches stay bit-for-bit equal to scalar runs;
        # with no injector (or a clean schedule) every per-dt guard below
        # reduces to one attribute/float check.
        self._injector = injector
        self._next_plant_change = math.inf
        self._next_crac_change = math.inf
        if injector is None:
            self._watchdog = None
            self._may_dropout = False
            self._fan_fault_states: list[Any] = []
            self._fan_fault_rows: tuple[int, ...] = ()
            sensor_fault_states = None
        else:
            if injector.n_servers != n:
                raise SimulationError(
                    f"fault injector is bound to {injector.n_servers} "
                    f"servers, batch has {n}"
                )
            self._watchdog = injector.watchdog
            self._may_dropout = injector.may_dropout
            self._fan_fault_states = injector.fan_states
            self._fan_fault_rows = injector.fan_fault_servers
            sensor_fault_states = (
                injector.sensor_states if injector.has_sensor_faults else None
            )
            self._next_plant_change = injector.next_plant_change_s
            self._next_crac_change = injector.next_crac_change_s

        self._plant = BatchThermalPlant(plants, dt_s)
        if injector is not None:
            # Fouling schedules are absolute: a faulted server's level is
            # what the schedule says from the run's start (the scalar
            # stepper applies the same baseline in its constructor).
            for i in range(n):
                fouling = injector.fouling_state(i)
                if fouling is not None:
                    self._plant.set_fouling(i, fouling.level(self._start))
        # Applied knob state from the controllers (what the scalar
        # ServerStepper carries in _fan_speed/_cap).
        self._fan_cmd = np.zeros(n)
        self._cap = np.zeros(n)
        self._t_ref = np.zeros(n)
        self._cpu_interval = np.array(
            [float(c.control.cpu_interval_s) for c in controllers]
        )
        self._next_control = self._start + self._cpu_interval
        self._next_control_min = float(self._next_control.min())
        for i, controller in enumerate(controllers):
            state = controller.state
            self._fan_cmd[i] = state.fan_speed_rpm
            self._cap[i] = state.cpu_cap
            self._t_ref[i] = controller.t_ref_c
            self._plant.apply_fan_speed(i, state.fan_speed_rpm)

        # Partition the DTMs: common compositions advance through the
        # vectorized BatchGlobalController, the rest step their scalar
        # objects per server (per-server fallback, not per-rack).
        reasons = [
            batch_controller_unsupported_reason(c) for c in controllers
        ]
        vec = [i for i, reason in enumerate(reasons) if reason is None]
        self._controller_fallbacks = {
            i: reason for i, reason in enumerate(reasons) if reason is not None
        }
        self._vec_controllers = np.zeros(n, dtype=bool)
        self._vec_controllers[vec] = True
        self._vec_pos = np.full(n, -1, dtype=np.int64)
        self._vec_pos[vec] = np.arange(len(vec))
        self._batch_ctrl = (
            BatchGlobalController([controllers[i] for i in vec]) if vec else None
        )
        # SSfan servers read the tracker bank's recent-degradation signal
        # each period; the bank only maintains it when asked.
        self._needs_deg = (
            self._batch_ctrl.needs_degradation
            if self._batch_ctrl is not None
            else False
        )
        self._batch_trackers = (
            BatchTrackerBank(
                [self._trackers[i] for i in vec], track_recent=self._needs_deg
            )
            if vec
            else None
        )
        # Uniform control fast lane: one shared CPU period, every DTM
        # vectorized, and no dropout-capable faults means control steps
        # are always whole-rack and the knob mirrors can alias the
        # controller arrays (the all-servers step rebinds rather than
        # mutates them), skipping three copies per decision.
        self._ctrl_uniform = (
            not self._controller_fallbacks
            and not self._may_dropout
            and bool(np.all(self._cpu_interval == self._cpu_interval[0]))
        )

        # Plant-state mirrors used by the coupling (exhaust of step k
        # feeds inlets at step k+1, so these lag the knob arrays).
        self._state_fan_speed = np.array(
            [p.state.fan_speed_rpm for p in plants]
        )
        self._state_cpu_w = np.array([p.state.cpu_power_w for p in plants])
        self._state_fan_w = np.array([p.state.fan_power_w for p in plants])
        self._last_applied = np.array([p.state.utilization for p in plants])
        self._last_ambient = np.array([p.state.ambient_c for p in plants])

        # Energy accounting (trapezoidal, same recurrence as
        # EnergyAccountant but element-wise).
        self._cpu_j = np.zeros(n)
        self._fan_j = np.zeros(n)
        self._energy_last_cpu = self._state_cpu_w
        self._energy_last_fan = self._state_fan_w
        self._energy_last_t = self._start

        self._sensing = BatchSensorBank(sensors, sensor_fault_states)
        self._sensing.prime(self._start, self._plant.die_temp)

        n_records = (n_steps + record_decimation - 1) // record_decimation
        self._channels = {
            name: np.empty((n, n_records)) for name in TELEMETRY_CHANNELS
        }
        self._record_idx = 0

    @property
    def steps_taken(self) -> int:
        """Number of completed steps."""
        return self._k

    @property
    def done(self) -> bool:
        """True once all steps have been taken."""
        return self._k >= self._n_steps

    @property
    def n_servers(self) -> int:
        """Batch width B."""
        return self._n

    @property
    def controller_fallbacks(self) -> dict[int, str]:
        """Servers whose DTM steps scalar objects: index -> reason.

        Empty when every controller runs through the vectorized
        :class:`~repro.sim.batch_control.BatchGlobalController`.
        """
        return dict(self._controller_fallbacks)

    @property
    def n_vectorized_controllers(self) -> int:
        """How many servers' controllers advance as array ops."""
        return self._n - len(self._controller_fallbacks)

    def run(self) -> None:
        """Advance all servers to the end of the horizon."""
        while self._k < self._n_steps:
            self._run_chunk(min(_CHUNK_STEPS, self._n_steps - self._k))

    def _run_chunk(self, m: int) -> None:
        # Phase timing (repro.obs): adjacent phases share boundary
        # timestamps, so each phase costs one clock read per dt.  Phase
        # time accumulates in chunk-local floats and flushes once per
        # chunk via phase_add - per-dt collector calls would cost more
        # than the array work they time.  The demand precompute is a
        # per-chunk "workload" phase; the scalar engine, which samples
        # demand inline, folds it into "plant".
        obs = self._obs
        if obs is not None:
            _pc = time.perf_counter
            t_prev = _pc()
        start, dt, k0 = self._start, self._dt, self._k
        times = [start + (k + 1) * dt for k in range(k0, k0 + m)]
        times_arr = np.array(times)
        demands = np.empty((self._n, m))
        for i, workload in enumerate(self._workloads):
            demands[i] = workload.demand_array(times_arr)
        if obs is not None:
            obs.phase("workload", t_prev, _pc())
            acc_faults = acc_coupling = acc_plant = 0.0
            acc_sensing = acc_control = acc_monitor = acc_record = 0.0
            n_control = n_monitor = n_record = ctl_due = 0

        plant = self._plant
        sensing = self._sensing
        observe = sensing.observe
        pop_until = sensing.pop_until
        advance = plant.advance
        decimation = self._decimation
        channels = self._channels
        coupled = self._coupled
        decoupled = coupled and self._decoupled
        if coupled:
            coupling_apply = None if decoupled else self._coupling_apply
            room = self._room
        else:
            ambient = self._ambient_const
        # The divergence guard costs one reduction per call; NaN/inf
        # contamination persists once it appears, so probing every 32nd
        # step (plus once at chunk end) detects it all the same.
        injector = self._injector
        monitor = self._monitor
        for j in range(m):
            t = times[j]
            t_plus = t + 1e-9
            if obs is not None:
                t_prev = _pc()

            if injector is not None:
                # Refresh cached plant coefficients when a fan/fouling
                # transform steps to a new level, and advance any CRAC
                # brownout forcing; both guards are one float compare
                # against locally cached bounds on the (overwhelming
                # majority of) steps with nothing due.
                if t_plus >= self._next_plant_change:
                    self._refresh_faulted_plants(
                        injector.pop_plant_changes(t), t
                    )
                    self._next_plant_change = injector.next_plant_change_s
                if t_plus >= self._next_crac_change:
                    injector.poll_crac(t)
                    self._next_crac_change = injector.next_crac_change_s
                if obs is not None:
                    t_now = _pc()
                    acc_faults += t_now - t_prev
                    t_prev = t_now

            if coupled:
                if decoupled:
                    offsets = self._zero_offsets
                else:
                    speeds = self._state_fan_speed
                    if self._conductance_for is not speeds:
                        self._conductance = np.maximum(
                            self._g_floor,
                            self._g_max * speeds / self._v_max_exh,
                        )
                        self._conductance_for = speeds
                    rises = (
                        self._state_cpu_w + self._state_fan_w
                    ) / self._conductance
                    offsets = coupling_apply(rises)
                self._last_offsets = offsets
                ambient = room + offsets
                if obs is not None:
                    t_now = _pc()
                    acc_coupling += t_now - t_prev
                    t_prev = t_now

            demand = demands[:, j]
            applied = np.minimum(demand, self._cap)
            die, hs, cpu_w = advance(ambient, applied)
            if not (j & 31):
                plant.check_finite()
            # No copies: apply_fan_speed detaches these arrays before
            # mutating them (BatchThermalPlant.snapshot_fan_state).
            fan_w = plant.fan_w
            self._state_fan_speed = plant.clamped_speed
            self._state_cpu_w = cpu_w
            self._state_fan_w = fan_w
            self._last_applied = applied
            self._last_ambient = ambient

            dt_energy = t - self._energy_last_t
            self._cpu_j += 0.5 * (self._energy_last_cpu + cpu_w) * dt_energy
            self._fan_j += 0.5 * (self._energy_last_fan + fan_w) * dt_energy
            self._energy_last_cpu = cpu_w
            self._energy_last_fan = fan_w
            self._energy_last_t = t
            if obs is not None:
                t_now = _pc()
                acc_plant += t_now - t_prev
                t_prev = t_now

            observe(t, t_plus, die)
            pop_until(t)

            if coupled:
                self._inlet_sums += ambient
            if obs is not None:
                t_now = _pc()
                acc_sensing += t_now - t_prev
                t_prev = t_now

            if self._next_control_min <= t_plus:
                due = self._next_control <= t_plus
                due_idx = np.nonzero(due)[0]
                self._control_step(due_idx, t, t_plus, demand, applied)
                self._next_control_min = float(self._next_control.min())
                if obs is not None:
                    t_now = _pc()
                    acc_control += t_now - t_prev
                    t_prev = t_now
                    n_control += 1
                    ctl_due += due_idx.size

            # Health monitoring: same due test as the scalar lane
            # (identical floats: t comes from the same start+(k+1)*dt
            # product), sampling the post-control decision channels.
            if monitor is not None and t_plus >= monitor.next_due_s:
                monitor.ingest_batch(t, sensing.current, self._fan_cmd, applied)
                t_now = _pc()
                acc_monitor += t_now - t_prev
                t_prev = t_now
                n_monitor += 1

            k = k0 + j
            if k % decimation == 0:
                r = self._record_idx
                channels["time"][:, r] = t
                channels["junction"][:, r] = die
                channels["heatsink"][:, r] = hs
                channels["tmeas"][:, r] = sensing.current
                channels["fan_speed"][:, r] = self._fan_cmd
                if self._fan_fault_rows:
                    # Telemetry shows the tachometer's view of the speed
                    # the fan actually runs at (same transforms, same t,
                    # as the scalar engine's record path).
                    for i in self._fan_fault_rows:
                        state = self._fan_fault_states[i]
                        channels["fan_speed"][i, r] = state.reported(
                            t, state.actual(t, float(self._fan_cmd[i]))
                        )
                channels["cpu_cap"][:, r] = self._cap
                channels["demand"][:, r] = demand
                channels["applied"][:, r] = applied
                channels["t_ref"][:, r] = self._t_ref
                self._record_idx = r + 1
                if obs is not None:
                    acc_record += _pc() - t_prev
                    n_record += 1
            if obs is not None:
                obs.tick(t, self._n)
        if obs is not None:
            if injector is not None:
                obs.phase_add("faults", acc_faults, m)
            if coupled:
                obs.phase_add("coupling", acc_coupling, m)
            obs.phase_add("plant", acc_plant, m)
            obs.phase_add("sensing", acc_sensing, m)
            if n_control:
                obs.phase_add("control", acc_control, n_control)
                obs.count("control_steps", ctl_due)
            if n_monitor:
                obs.phase_add("monitor", acc_monitor, n_monitor)
            if n_record:
                obs.phase_add("record", acc_record, n_record)
        plant.check_finite()
        self._k = k0 + m

    def _refresh_faulted_plants(self, servers: Sequence[int], t: float) -> None:
        """Re-derive plant coefficients for servers whose faults stepped.

        Fault transforms are piecewise constant between their change
        instants, so re-applying the *current* command through the same
        transform the scalar engine evaluates per step lands on the same
        coefficients at the same steps.
        """
        if not servers:
            return
        plant = self._plant
        plant.snapshot_fan_state()
        injector = self._injector
        for i in servers:
            fouling = injector.fouling_state(i)
            if fouling is not None:
                plant.set_fouling(i, fouling.level(t))
            speed = float(self._fan_cmd[i])
            fan_state = self._fan_fault_states[i] if self._fan_fault_states else None
            if fan_state is not None:
                speed = fan_state.actual(t, speed)
            plant.apply_fan_speed(i, speed)

    def _failsafe_control_step(
        self,
        fs_idx: np.ndarray,
        t: float,
        t_plus: float,
        demand: np.ndarray,
    ) -> None:
        """Watchdog override for due servers with invalid telemetry.

        Mirrors the scalar engine's failsafe branch exactly: the period
        is still scored by the deadline tracker, the fan command is
        forced to the server's maximum, and the DTM is bypassed (its
        state untouched) until readings recover.
        """
        vec_mask = self._vec_controllers[fs_idx]
        vec_due = fs_idx[vec_mask]
        if vec_due.size:
            self._batch_trackers.record(
                self._vec_pos[vec_due], demand[vec_due], self._cap[vec_due]
            )
        for i in fs_idx[~vec_mask]:
            i = int(i)
            self._trackers[i].record(float(demand[i]), float(self._cap[i]))

        watchdog = self._watchdog
        changed: list[int] = []
        forced_speeds: list[float] = []
        for i in fs_idx:
            i = int(i)
            if not watchdog.engaged(i):
                watchdog.engage(i, t, float(self._fan_cmd[i]))
            forced = watchdog.forced_rpm(i)
            if forced != self._fan_cmd[i]:
                changed.append(i)
                forced_speeds.append(forced)
        if changed:
            self._apply_fan_changes(
                np.asarray(changed, dtype=np.int64),
                np.asarray(forced_speeds),
                t,
            )
            self._fan_cmd[changed] = forced_speeds

        next_control = self._next_control[fs_idx]
        interval = self._cpu_interval[fs_idx]
        while True:
            late = next_control <= t_plus
            if not late.any():
                break
            next_control = np.where(late, next_control + interval, next_control)
        self._next_control[fs_idx] = next_control

    def _control_step(
        self,
        due_idx: np.ndarray,
        t: float,
        t_plus: float,
        demand: np.ndarray,
        applied: np.ndarray,
    ) -> None:
        """Run the DTM decision for every server whose period is due.

        Servers with a common controller composition advance together
        through the vectorized :class:`BatchGlobalController`; the rest
        step their scalar controller objects, with values crossing the
        array/scalar boundary as python floats so those controllers see
        exactly the types (and therefore the arithmetic) of the scalar
        engine.  When a fault schedule can produce invalid readings, the
        telemetry watchdog intercepts those servers first (failsafe) and
        releases them once readings recover.
        """
        if self._may_dropout:
            finite = np.isfinite(self._sensing.current[due_idx])
            if not finite.all():
                self._failsafe_control_step(
                    due_idx[~finite], t, t_plus, demand
                )
                due_idx = due_idx[finite]
                if not due_idx.size:
                    return
            if self._watchdog.any_engaged:
                engaged = [
                    int(i) for i in due_idx if self._watchdog.engaged(int(i))
                ]
                for i in engaged:
                    self._watchdog.release(i, t)
        if not self._controller_fallbacks:
            self._vec_control_step(due_idx, t, t_plus, demand, applied)
            return
        if self._batch_ctrl is None:
            self._scalar_control_step(due_idx, t, t_plus, demand, applied)
            return
        vec_mask = self._vec_controllers[due_idx]
        vec_due = due_idx[vec_mask]
        if vec_due.size:
            self._vec_control_step(vec_due, t, t_plus, demand, applied)
        scalar_due = due_idx[~vec_mask]
        if scalar_due.size:
            self._scalar_control_step(scalar_due, t, t_plus, demand, applied)

    def _vec_control_step(
        self,
        idx: np.ndarray,
        t: float,
        t_plus: float,
        demand: np.ndarray,
        applied: np.ndarray,
    ) -> None:
        """Vectorized-controller servers: one array op chain per period."""
        ctrl = self._batch_ctrl
        if idx.size == self._n:
            # Whole-rack fast lane: no index gathers.  The knob mirrors
            # are *copied* out of the controller: _step_subset (mixed
            # CPU periods) mutates the controller arrays in place, and an
            # aliased _fan_cmd would defeat the changed-fan detection
            # below on those later subset steps.
            self._batch_trackers.record_all(demand, self._cap)
            if self._needs_deg:
                ctrl.step_due(
                    self._all_idx,
                    t,
                    self._sensing.current,
                    applied,
                    demand,
                    self._batch_trackers.recent_degradation_all(),
                )
            else:
                ctrl.step_due(self._all_idx, t, self._sensing.current, applied)
            new_fan = ctrl.fan_speed_rpm
            if new_fan is not self._fan_cmd:
                changed = np.nonzero(new_fan != self._fan_cmd)[0]
                if changed.size:
                    self._apply_fan_changes(changed, new_fan[changed], t)
            if self._ctrl_uniform:
                # Subset steps never happen on this lane, so the
                # controller arrays are only ever rebound (never written
                # in place) and the mirrors may alias them directly.
                self._fan_cmd = new_fan
                self._cap = ctrl.cpu_cap
                self._t_ref = ctrl.t_ref_c
            else:
                self._fan_cmd = new_fan.copy()
                self._cap = ctrl.cpu_cap.copy()
                self._t_ref = ctrl.t_ref_c.copy()
            next_control = self._next_control
            interval = self._cpu_interval
        else:
            local = self._vec_pos[idx]
            self._batch_trackers.record(local, demand[idx], self._cap[idx])
            if self._needs_deg:
                ctrl.step_due(
                    local,
                    t,
                    self._sensing.current[idx],
                    applied[idx],
                    demand[idx],
                    self._batch_trackers.recent_degradation(local),
                )
            else:
                ctrl.step_due(
                    local, t, self._sensing.current[idx], applied[idx]
                )
            new_fan = ctrl.fan_speed_rpm[local]
            changed = np.nonzero(new_fan != self._fan_cmd[idx])[0]
            if changed.size:
                self._apply_fan_changes(idx[changed], new_fan[changed], t)
            self._fan_cmd[idx] = new_fan
            self._cap[idx] = ctrl.cpu_cap[local]
            self._t_ref[idx] = ctrl.t_ref_c[local]
            next_control = self._next_control[idx]
            interval = self._cpu_interval[idx]
        while True:
            late = next_control <= t_plus
            if not late.any():
                break
            next_control = np.where(late, next_control + interval, next_control)
        if idx.size == self._n:
            self._next_control = next_control
        else:
            self._next_control[idx] = next_control

    def _apply_fan_changes(
        self, idx: np.ndarray, speeds: np.ndarray, t: float
    ) -> None:
        """Apply new fan commands (copy-on-write on the plant arrays).

        Commands pass through each server's actuator-fault transform (a
        seized fan ignores them, a worn bearing caps them) before
        reaching the plant, exactly as the scalar engine applies
        ``FanFaultState.actual`` per step.
        """
        plant = self._plant
        plant.snapshot_fan_state()
        if not self._fan_fault_rows:
            for k in range(idx.size):
                plant.apply_fan_speed(int(idx[k]), float(speeds[k]))
            return
        states = self._fan_fault_states
        for k in range(idx.size):
            i = int(idx[k])
            speed = float(speeds[k])
            state = states[i]
            if state is not None:
                speed = state.actual(t, speed)
            plant.apply_fan_speed(i, speed)

    def _scalar_control_step(
        self,
        due_idx: np.ndarray,
        t: float,
        t_plus: float,
        demand: np.ndarray,
        applied: np.ndarray,
    ) -> None:
        """Fallback servers: drive the scalar controller objects."""
        current = self._sensing.current
        snapshotted = False
        for i in due_idx:
            i = int(i)
            tracker = self._trackers[i]
            demand_i = float(demand[i])
            tracker.record(demand_i, float(self._cap[i]))
            inputs = ControlInputs(
                time_s=t,
                tmeas_c=float(current[i]),
                measured_util=float(applied[i]),
                recent_degradation=tracker.recent_degradation,
                demand_estimate=demand_i,
            )
            state = self._controllers[i].step(inputs)
            fan = float(state.fan_speed_rpm)
            if fan != self._fan_cmd[i]:
                if not snapshotted:
                    self._plant.snapshot_fan_state()
                    snapshotted = True
                applied_fan = fan
                if self._fan_fault_rows:
                    fault_state = self._fan_fault_states[i]
                    if fault_state is not None:
                        applied_fan = fault_state.actual(t, fan)
                self._plant.apply_fan_speed(i, applied_fan)
            self._fan_cmd[i] = fan
            self._cap[i] = float(state.cpu_cap)
            self._t_ref[i] = self._controllers[i].t_ref_c
            next_control = float(self._next_control[i])
            interval = float(self._cpu_interval[i])
            while next_control <= t_plus:
                next_control += interval
            self._next_control[i] = next_control

    def mean_inlet_c(self) -> tuple[float, ...]:
        """Per-server mean inlet temperature over the steps taken so far."""
        if not self._coupled:
            raise SimulationError("mean inlets are only tracked for coupled runs")
        steps = max(1, self._k)
        return tuple(float(v) for v in self._inlet_sums / steps)

    def finish(self, labels: Sequence[str]) -> list[SimulationResult]:
        """Package per-server results and sync state back to the objects.

        Plants, sensors, controllers, trackers, and (for coupled runs)
        inlet offsets are restored to the final batch state so mixed
        scalar/batch workflows keep working on the same objects:
        scalar-fallback controllers advanced in place, vectorized ones
        are written back here.
        """
        if len(labels) != self._n:
            raise SimulationError("need one label per server")
        if self._batch_ctrl is not None:
            self._batch_ctrl.sync_back()
            self._batch_trackers.sync_back()
        # The scalar plant clock accumulates `+= dt` once per step; replay
        # that exact float accumulation so restored plants match it.
        t_final = self._start
        for _ in range(self._k):
            t_final += self._dt
        plant = self._plant
        fouling = plant.fouling_k_per_w
        results = []
        for i, server_plant in enumerate(self._plants):
            if fouling[i] != server_plant.heatsink.fouling_k_per_w:
                # Fouling persists on the plant (like temperatures), so
                # scalar runs after a faulted batch see the same sink.
                server_plant.heatsink.set_fouling_k_per_w(fouling[i])
            state = ServerState(
                time_s=t_final,
                junction_c=float(plant.die_temp[i]),
                heatsink_c=float(plant.hs_temp[i]),
                ambient_c=float(self._last_ambient[i]),
                cpu_power_w=float(self._state_cpu_w[i]),
                fan_power_w=float(self._state_fan_w[i]),
                utilization=float(self._last_applied[i]),
                fan_speed_rpm=float(self._state_fan_speed[i]),
            )
            server_plant.restore(state)
            self._sensors[i].restore_pipeline(*self._sensing.state_of(i))
            if self._coupled:
                self._inlets[i].set_offset_c(float(self._last_offsets[i]))
            results.append(
                SimulationResult(
                    channels={
                        name: array[i, : self._record_idx].copy()
                        for name, array in self._channels.items()
                    },
                    performance=self._trackers[i].summary,
                    energy=EnergyBreakdown(
                        cpu_j=float(self._cpu_j[i]),
                        fan_j=float(self._fan_j[i]),
                    ),
                    config=server_plant.config,
                    dt_s=self._dt,
                    label=labels[i],
                )
            )
        return results


@dataclass(frozen=True)
class BatchRunSpec:
    """One independent closed-loop run for :func:`run_batch`.

    Field defaults match :class:`~repro.sim.engine.Simulator`, so a spec
    and a Simulator built from the same pieces produce identical results.
    """

    plant: ServerThermalModel
    sensor: TemperatureSensor
    workload: Workload
    controller: Any
    duration_s: float
    dt_s: float = 0.1
    record_decimation: int = 1
    violation_tolerance: float = 0.01
    degradation_window: int = 10
    label: str = "run"


def run_batch(
    specs: Sequence[BatchRunSpec], backend: str = "vectorized"
) -> list[SimulationResult]:
    """Run independent (uncoupled) closed loops as one batch.

    All specs must share ``duration_s``, ``dt_s``, and
    ``record_decimation`` (one time grid).  ``backend`` picks the batch
    stepper lane (``"vectorized"`` or any name registered in
    :mod:`repro.sim.backends`, e.g. ``"fused"``).  Raises
    :class:`~repro.errors.SimulationError` when the servers cannot batch;
    callers wanting a silent fallback should check
    :func:`batch_unsupported_reason` first or catch the error.
    """
    if not specs:
        raise SimulationError("run_batch needs at least one spec")
    first = specs[0]
    for spec in specs:
        if (
            spec.duration_s != first.duration_s
            or spec.dt_s != first.dt_s
            or spec.record_decimation != first.record_decimation
        ):
            raise SimulationError(
                "batch specs must share duration_s, dt_s, and record_decimation"
            )
    n_steps = int(round(first.duration_s / first.dt_s))
    if n_steps < 1:
        raise SimulationError(
            f"duration {first.duration_s} shorter than one step"
        )
    if backend == "vectorized":
        stepper_cls = BatchStepper
    else:
        from repro.sim.backends import stepper_backend

        stepper_cls = stepper_backend(backend)
    stepper = stepper_cls(
        plants=[spec.plant for spec in specs],
        sensors=[spec.sensor for spec in specs],
        workloads=[spec.workload for spec in specs],
        controllers=[spec.controller for spec in specs],
        n_steps=n_steps,
        dt_s=first.dt_s,
        record_decimation=first.record_decimation,
        trackers=[
            DeadlineTracker(
                tolerance=spec.violation_tolerance, window=spec.degradation_window
            )
            for spec in specs
        ],
    )
    stepper.run()
    return stepper.finish([spec.label for spec in specs])
