"""The closed-loop discrete-time simulation engine.

One :class:`Simulator` wires together the four layers of Fig. 2:

* a **workload** producing demanded utilization,
* the **plant** (:class:`~repro.thermal.server.ServerThermalModel`),
* the **sensing pipeline** degrading the junction temperature before any
  controller sees it, and
* the **DTM** (:class:`~repro.core.global_controller.GlobalController`)
  deciding fan speed and CPU cap.

Loop order per step of ``dt_s``: demand is sampled, capped, applied to
the plant; the sensor observes the new junction temperature; at each CPU
control period boundary the deadline tracker scores the period and the
DTM takes its decision from the *measured* temperature.

The loop body lives in :class:`ServerStepper`, a single-step primitive
that owns the per-run state (applied knob settings, control schedule,
energy accounting, telemetry buffers).  :class:`Simulator` drives one
stepper to completion; :class:`~repro.fleet.simulator.FleetSimulator`
interleaves many steppers in lockstep so coupled servers advance
together.

This scalar loop is the **reference semantics** of the backend
contract (``docs/backends.md``): :class:`~repro.sim.batch.BatchStepper`
re-executes it element-wise across a rack (tier A, bit-for-bit), and
:class:`~repro.sim.fused.FusedStepper` fuses the spans between control
decisions into closed-form window kernels (tier B, exact decisions,
tolerance-bounded thermals).  Behaviour questions are settled here
first; the array lanes follow.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.base import ControlInputs
from repro.core.global_controller import GlobalController
from repro.errors import SimulationError
from repro.power.energy import EnergyAccountant
from repro.sensing.sensor import TemperatureSensor
from repro.sim.result import SimulationResult
from repro.thermal.server import ServerState, ServerThermalModel
from repro.units import check_duration
from repro.workload.base import Workload
from repro.workload.performance import DeadlineTracker

#: Telemetry channels recorded by every run, in recording order.
TELEMETRY_CHANNELS = (
    "time",
    "junction",
    "heatsink",
    "tmeas",
    "fan_speed",
    "cpu_cap",
    "demand",
    "applied",
    "t_ref",
)


def _validate_timing(
    dt_s: float, cpu_interval_s: float, record_decimation: int
) -> float:
    """Shared constructor validation for Simulator and ServerStepper."""
    dt = check_duration(dt_s, "dt_s")
    if cpu_interval_s + 1e-12 < dt:
        raise SimulationError(
            f"dt_s ({dt_s}) must not exceed the CPU control interval "
            f"({cpu_interval_s})"
        )
    if record_decimation < 1:
        raise SimulationError(
            f"record_decimation must be >= 1, got {record_decimation}"
        )
    return dt


class ServerStepper:
    """Single-step primitive of the closed loop: one server, one ``dt`` per call.

    Construction primes the loop from the plant's and controller's current
    state (the sensor sees the starting junction temperature, the energy
    accountant records the starting powers) and allocates telemetry buffers
    for ``n_steps`` steps.  Each :meth:`step` then advances the full
    workload -> plant -> sensing -> DTM chain by one ``dt`` and returns the
    new plant state, so a fleet driver can read exhaust conditions between
    steps.  :meth:`finish` packages the telemetry into a
    :class:`~repro.sim.result.SimulationResult`.
    """

    def __init__(
        self,
        plant: ServerThermalModel,
        sensor: TemperatureSensor,
        workload: Workload,
        controller: GlobalController,
        n_steps: int,
        dt_s: float = 0.1,
        record_decimation: int = 1,
        tracker: DeadlineTracker | None = None,
        injector=None,
        server_index: int = 0,
        obs=None,
        monitor_commit: bool = True,
    ) -> None:
        self._plant = plant
        self._sensor = sensor
        self._workload = workload
        self._controller = controller
        self._dt = _validate_timing(
            dt_s, controller.control.cpu_interval_s, record_decimation
        )
        if n_steps < 1:
            raise SimulationError(f"n_steps must be >= 1, got {n_steps}")
        self._n_steps = n_steps
        self._decimation = record_decimation
        self._tracker = tracker or DeadlineTracker()
        self._cpu_interval = controller.control.cpu_interval_s
        # Observability (repro.obs): a live ObsCollector or None.  The
        # collector only reads wall clocks and writes its own buffers,
        # so instrumented runs stay bit-for-bit identical; with no
        # collector each hook below is a single ``is not None`` check.
        self._obs = obs
        # Health monitoring (repro.obs.monitor): the simulator arms the
        # monitor on the collector *before* building steppers.  In
        # multi-stepper lanes every stepper samples its own server at a
        # due instant, but only the last stepper commits the sample
        # (monitor_commit), so rack-scope checks and the cadence advance
        # run exactly once per step - the same order the batch lanes
        # produce.  Monitors only read already-computed channel values;
        # monitored runs stay bit-for-bit identical to bare runs.
        self._monitor = None if obs is None else getattr(obs, "monitor", None)
        self._monitor_commit = monitor_commit
        # dt is validated once here, so the stock plant can skip per-step
        # re-validation; subclasses keep their step() override in charge.
        self._plant_step = (
            plant.step_fast
            if type(plant) is ServerThermalModel
            else plant.step
        )

        # Fault-injection hooks (repro.faults): per-server transforms and
        # the telemetry watchdog.  With no injector every hook is None and
        # the loop body is exactly the fault-free one.
        self._server_index = server_index
        if injector is None:
            self._watchdog = None
            self._fault_fan = None
            self._fault_fouling = None
            # A sensor reused from an earlier faulted run must not keep
            # its stale per-run fault pipeline.
            if getattr(sensor, "fault_state", None) is not None:
                sensor.set_fault_state(None)
        else:
            self._watchdog = injector.watchdog
            self._fault_fan = injector.fan_state(server_index)
            self._fault_fouling = injector.fouling_state(server_index)
            sensor.set_fault_state(injector.sensor_state(server_index))
        self._fouling_level = 0.0
        if self._fault_fouling is not None:
            # Fouling schedules are absolute from the run's start; the
            # batch backend seeds its coefficient cache the same way.
            self._fouling_level = self._fault_fouling.level(plant.time_s)
            plant.heatsink.set_fouling_k_per_w(self._fouling_level)

        state = controller.state
        self._fan_speed = state.fan_speed_rpm
        self._cap = state.cpu_cap
        self._energy = EnergyAccountant()
        self._start_time = plant.time_s
        self._sensor.observe(self._start_time, plant.junction_c)
        self._energy.record(
            self._start_time,
            plant.state.cpu_power_w,
            plant.state.fan_power_w,
        )
        self._next_control = self._start_time + self._cpu_interval

        n_records = (n_steps + record_decimation - 1) // record_decimation
        self._channels = {
            name: np.empty(n_records) for name in TELEMETRY_CHANNELS
        }
        self._record_idx = 0
        self._k = 0

    @property
    def plant(self) -> ServerThermalModel:
        """The thermal plant being stepped."""
        return self._plant

    @property
    def controller(self) -> GlobalController:
        """The DTM taking decisions for this server."""
        return self._controller

    @property
    def tracker(self) -> DeadlineTracker:
        """The deadline/performance tracker."""
        return self._tracker

    @property
    def steps_taken(self) -> int:
        """Number of :meth:`step` calls so far."""
        return self._k

    @property
    def done(self) -> bool:
        """True once all ``n_steps`` steps have been taken."""
        return self._k >= self._n_steps

    def step(self) -> ServerState:
        """Advance the closed loop by one ``dt`` and return the plant state."""
        if self.done:
            raise SimulationError(
                f"stepper already completed its {self._n_steps} steps"
            )
        # Phase timing (repro.obs): adjacent phases share boundary
        # timestamps, so each phase costs one clock read.  The workload
        # sample and fault transforms ride in the "plant" phase here;
        # the batch backend, which hoists demand evaluation out of the
        # loop, reports them as a separate "workload" phase.
        obs = self._obs
        if obs is not None:
            _pc = time.perf_counter
            t_prev = _pc()
        k = self._k
        t = self._start_time + (k + 1) * self._dt
        demand = self._workload.demand(t)
        applied = min(demand, self._cap)
        if self._fault_fouling is not None:
            extra = self._fault_fouling.level(t)
            if extra != self._fouling_level:
                self._plant.heatsink.set_fouling_k_per_w(extra)
                self._fouling_level = extra
        if self._fault_fan is None:
            fan_actual = self._fan_speed
        else:
            # The fan achieves what the fault allows, not what the DTM
            # commanded; the batch backend applies the same transform at
            # its cached-coefficient refresh points.
            fan_actual = self._fault_fan.actual(t, self._fan_speed)
        plant_state = self._plant_step(self._dt, applied, fan_actual)
        if obs is not None:
            t_now = _pc()
            obs.phase("plant", t_prev, t_now)
            t_prev = t_now
        self._sensor.observe(t, plant_state.junction_c)
        self._energy.record(t, plant_state.cpu_power_w, plant_state.fan_power_w)

        # One sensor read per step, shared by the controller and telemetry,
        # so both consumers see the same value and sensing work isn't done
        # twice on recorded control steps.
        reading = None
        if obs is not None:
            t_now = _pc()
            obs.phase("sensing", t_prev, t_now)
            t_prev = t_now
        if t + 1e-9 >= self._next_control:
            self._tracker.record(demand, self._cap)
            reading = self._sensor.read(t)
            if self._watchdog is not None and not math.isfinite(
                reading.value_c
            ):
                # Failsafe: invalid telemetry forces max fan this period,
                # bypassing (not reprogramming) the DTM - its state stays
                # untouched until readings recover.
                i = self._server_index
                if not self._watchdog.engaged(i):
                    self._watchdog.engage(i, t, self._fan_speed)
                self._fan_speed = self._watchdog.forced_rpm(i)
            else:
                if self._watchdog is not None and self._watchdog.engaged(
                    self._server_index
                ):
                    self._watchdog.release(self._server_index, t)
                inputs = ControlInputs(
                    time_s=t,
                    tmeas_c=reading.value_c,
                    measured_util=applied,
                    recent_degradation=self._tracker.recent_degradation,
                    demand_estimate=demand,
                )
                new_state = self._controller.step(inputs)
                self._fan_speed = new_state.fan_speed_rpm
                self._cap = new_state.cpu_cap
            while self._next_control <= t + 1e-9:
                self._next_control += self._cpu_interval
            if obs is not None:
                t_now = _pc()
                obs.phase("control", t_prev, t_now)
                t_prev = t_now
                obs.count("control_steps")

        monitor = self._monitor
        if monitor is not None and t + 1e-9 >= monitor.next_due_s:
            if reading is None:
                reading = self._sensor.read(t)
            monitor.sample_server(
                t, self._server_index, reading.value_c, self._fan_speed, applied
            )
            if self._monitor_commit:
                monitor.commit(t)
            t_now = _pc()
            obs.phase("monitor", t_prev, t_now)
            t_prev = t_now

        if k % self._decimation == 0:
            if reading is None:
                reading = self._sensor.read(t)
            idx = self._record_idx
            channels = self._channels
            channels["time"][idx] = t
            channels["junction"][idx] = plant_state.junction_c
            channels["heatsink"][idx] = plant_state.heatsink_c
            channels["tmeas"][idx] = reading.value_c
            if self._fault_fan is None:
                channels["fan_speed"][idx] = self._fan_speed
            else:
                # Telemetry shows what the tachometer reports for the
                # speed the fan actually runs at, not the DTM's command.
                channels["fan_speed"][idx] = self._fault_fan.reported(
                    t, self._fault_fan.actual(t, self._fan_speed)
                )
            channels["cpu_cap"][idx] = self._cap
            channels["demand"][idx] = demand
            channels["applied"][idx] = applied
            channels["t_ref"][idx] = self._controller.t_ref_c
            self._record_idx = idx + 1
            if obs is not None:
                obs.phase("record", t_prev, _pc())

        self._k = k + 1
        if obs is not None:
            obs.tick(t, 1)
        return plant_state

    def finish(self, label: str = "run") -> SimulationResult:
        """Package the telemetry recorded so far into a result."""
        trimmed = {
            name: arr[: self._record_idx] for name, arr in self._channels.items()
        }
        return SimulationResult(
            channels=trimmed,
            performance=self._tracker.summary,
            energy=self._energy.breakdown,
            config=self._plant.config,
            dt_s=self._dt,
            label=label,
        )


class Simulator:
    """Closed-loop simulation of plant + sensing + DTM.

    Parameters
    ----------
    plant, sensor, workload, controller:
        The four layers; see module docstring.
    dt_s:
        Integration step (default 0.1 s - well below every control period
        and exact for the stiff die node thanks to the exponential
        integrator).
    record_decimation:
        Record telemetry every N-th step (1 = every step).
    violation_tolerance:
        Utilization deficit above which a CPU period counts as a deadline
        violation (see :class:`~repro.workload.performance.DeadlineTracker`).
    faults:
        Optional :class:`~repro.faults.events.FaultSchedule`; installs
        the fault-injection hooks and the telemetry watchdog for the run
        (see :mod:`repro.faults`).  :attr:`fault_summary` reports what
        fired afterwards.
    obs:
        Optional :class:`~repro.obs.ObsCollector` or
        :class:`~repro.obs.ObsConfig`; instruments the run with phase
        timing and streaming metrics (see :mod:`repro.obs`) and attaches
        the profile to ``result.extras["obs"]``.  Observation never
        perturbs the simulation: instrumented runs are bit-for-bit
        identical to uninstrumented ones.
    """

    def __init__(
        self,
        plant: ServerThermalModel,
        sensor: TemperatureSensor,
        workload: Workload,
        controller: GlobalController,
        dt_s: float = 0.1,
        record_decimation: int = 1,
        violation_tolerance: float = 0.01,
        degradation_window: int = 10,
        faults=None,
        obs=None,
    ) -> None:
        self._plant = plant
        self._sensor = sensor
        self._workload = workload
        self._controller = controller
        self._dt = _validate_timing(
            dt_s, controller.control.cpu_interval_s, record_decimation
        )
        self._decimation = record_decimation
        self._tracker = DeadlineTracker(
            tolerance=violation_tolerance, window=degradation_window
        )
        self._faults = faults
        self._fault_summary: dict | None = None
        from repro.obs.collector import resolve_obs

        self._obs = resolve_obs(obs)

    @property
    def plant(self) -> ServerThermalModel:
        """The thermal plant."""
        return self._plant

    @property
    def controller(self) -> GlobalController:
        """The DTM under test."""
        return self._controller

    @property
    def tracker(self) -> DeadlineTracker:
        """The deadline/performance tracker."""
        return self._tracker

    @property
    def fault_summary(self) -> dict | None:
        """What the fault schedule did during the most recent run.

        ``None`` until a run with ``faults`` completes; fleet and room
        simulators surface the same dict as ``extras["faults"]``.
        """
        return self._fault_summary

    @property
    def obs(self):
        """The run's resolved collector (None when uninstrumented).

        A :class:`~repro.obs.live.LiveObsServer` attaches here to serve
        ``/metrics`` while the run executes.
        """
        return self._obs

    def run(self, duration_s: float, label: str = "run") -> SimulationResult:
        """Simulate for ``duration_s`` seconds and collect the result."""
        check_duration(duration_s, "duration_s")
        n_steps = int(round(duration_s / self._dt))
        if n_steps < 1:
            raise SimulationError(f"duration {duration_s} shorter than one step")
        injector = None
        if self._faults is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(self._faults, [self._plant])
            injector.require_no_room_faults()
        obs = self._obs
        if obs is not None:
            from repro.obs.monitor import arm_run_monitor

            obs.label = label
            obs.arm_stream(self._plant.time_s)
            if injector is not None:
                injector.bind_obs(obs)
            arm_run_monitor(
                obs,
                plants=[self._plant],
                controllers=[self._controller],
                start_s=self._plant.time_s,
                label=label,
                sensors=[self._sensor],
                schedule=self._faults,
            )
        stepper = ServerStepper(
            self._plant,
            self._sensor,
            self._workload,
            self._controller,
            n_steps=n_steps,
            dt_s=self._dt,
            record_decimation=self._decimation,
            tracker=self._tracker,
            injector=injector,
            obs=obs,
        )
        if obs is not None:
            with obs.span("run"):
                while not stepper.done:
                    stepper.step()
        else:
            while not stepper.done:
                stepper.step()
        if injector is not None:
            # The simulated horizon (n_steps * dt) can differ from the
            # requested duration by up to half a step after rounding;
            # summarize over what actually ran, like the fleet lanes.
            self._fault_summary = injector.summary(n_steps * self._dt)
        result = stepper.finish(label)
        if obs is not None:
            obs.finish_run(self._plant.time_s)
            result.extras["obs"] = obs.summary()
        return result
