"""The closed-loop discrete-time simulation engine.

One :class:`Simulator` wires together the four layers of Fig. 2:

* a **workload** producing demanded utilization,
* the **plant** (:class:`~repro.thermal.server.ServerThermalModel`),
* the **sensing pipeline** degrading the junction temperature before any
  controller sees it, and
* the **DTM** (:class:`~repro.core.global_controller.GlobalController`)
  deciding fan speed and CPU cap.

Loop order per step of ``dt_s``: demand is sampled, capped, applied to
the plant; the sensor observes the new junction temperature; at each CPU
control period boundary the deadline tracker scores the period and the
DTM takes its decision from the *measured* temperature.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ControlInputs
from repro.core.global_controller import GlobalController
from repro.errors import SimulationError
from repro.power.energy import EnergyAccountant
from repro.sensing.sensor import TemperatureSensor
from repro.sim.result import SimulationResult
from repro.thermal.server import ServerThermalModel
from repro.units import check_duration
from repro.workload.base import Workload
from repro.workload.performance import DeadlineTracker


class Simulator:
    """Closed-loop simulation of plant + sensing + DTM.

    Parameters
    ----------
    plant, sensor, workload, controller:
        The four layers; see module docstring.
    dt_s:
        Integration step (default 0.1 s - well below every control period
        and exact for the stiff die node thanks to the exponential
        integrator).
    record_decimation:
        Record telemetry every N-th step (1 = every step).
    violation_tolerance:
        Utilization deficit above which a CPU period counts as a deadline
        violation (see :class:`~repro.workload.performance.DeadlineTracker`).
    """

    def __init__(
        self,
        plant: ServerThermalModel,
        sensor: TemperatureSensor,
        workload: Workload,
        controller: GlobalController,
        dt_s: float = 0.1,
        record_decimation: int = 1,
        violation_tolerance: float = 0.01,
        degradation_window: int = 10,
    ) -> None:
        self._plant = plant
        self._sensor = sensor
        self._workload = workload
        self._controller = controller
        self._dt = check_duration(dt_s, "dt_s")
        cpu_interval = controller.control.cpu_interval_s
        if cpu_interval + 1e-12 < self._dt:
            raise SimulationError(
                f"dt_s ({dt_s}) must not exceed the CPU control interval "
                f"({cpu_interval})"
            )
        if record_decimation < 1:
            raise SimulationError(
                f"record_decimation must be >= 1, got {record_decimation}"
            )
        self._decimation = record_decimation
        self._tracker = DeadlineTracker(
            tolerance=violation_tolerance, window=degradation_window
        )

    @property
    def plant(self) -> ServerThermalModel:
        """The thermal plant."""
        return self._plant

    @property
    def controller(self) -> GlobalController:
        """The DTM under test."""
        return self._controller

    @property
    def tracker(self) -> DeadlineTracker:
        """The deadline/performance tracker."""
        return self._tracker

    def run(self, duration_s: float, label: str = "run") -> SimulationResult:
        """Simulate for ``duration_s`` seconds and collect the result."""
        check_duration(duration_s, "duration_s")
        n_steps = int(round(duration_s / self._dt))
        if n_steps < 1:
            raise SimulationError(f"duration {duration_s} shorter than one step")

        cpu_interval = self._controller.control.cpu_interval_s
        state = self._controller.state
        fan_speed = state.fan_speed_rpm
        cap = state.cpu_cap

        energy = EnergyAccountant()
        start_time = self._plant.time_s
        self._sensor.observe(start_time, self._plant.junction_c)
        energy.record(
            start_time,
            self._plant.state.cpu_power_w,
            self._plant.state.fan_power_w,
        )
        next_control = start_time + cpu_interval

        n_records = (n_steps + self._decimation - 1) // self._decimation
        channels = {
            name: np.empty(n_records)
            for name in (
                "time",
                "junction",
                "heatsink",
                "tmeas",
                "fan_speed",
                "cpu_cap",
                "demand",
                "applied",
                "t_ref",
            )
        }
        record_idx = 0

        for k in range(n_steps):
            t = start_time + (k + 1) * self._dt
            demand = self._workload.demand(t)
            applied = min(demand, cap)
            plant_state = self._plant.step(self._dt, applied, fan_speed)
            self._sensor.observe(t, plant_state.junction_c)
            energy.record(t, plant_state.cpu_power_w, plant_state.fan_power_w)

            if t + 1e-9 >= next_control:
                self._tracker.record(demand, cap)
                reading = self._sensor.read(t)
                inputs = ControlInputs(
                    time_s=t,
                    tmeas_c=reading.value_c,
                    measured_util=applied,
                    recent_degradation=self._tracker.recent_degradation,
                    demand_estimate=demand,
                )
                new_state = self._controller.step(inputs)
                fan_speed = new_state.fan_speed_rpm
                cap = new_state.cpu_cap
                while next_control <= t + 1e-9:
                    next_control += cpu_interval

            if k % self._decimation == 0:
                reading = self._sensor.read(t)
                channels["time"][record_idx] = t
                channels["junction"][record_idx] = plant_state.junction_c
                channels["heatsink"][record_idx] = plant_state.heatsink_c
                channels["tmeas"][record_idx] = reading.value_c
                channels["fan_speed"][record_idx] = fan_speed
                channels["cpu_cap"][record_idx] = cap
                channels["demand"][record_idx] = demand
                channels["applied"][record_idx] = applied
                channels["t_ref"][record_idx] = self._controller.t_ref_c
                record_idx += 1

        trimmed = {name: arr[:record_idx] for name, arr in channels.items()}
        return SimulationResult(
            channels=trimmed,
            performance=self._tracker.summary,
            energy=energy.breakdown,
            config=self._plant.config,
            dt_s=self._dt,
            label=label,
        )
