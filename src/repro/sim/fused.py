"""Fused per-step batch backend: window-at-a-time array execution.

The vectorized backend (:mod:`repro.sim.batch`) advances all B servers
per ``dt`` but still pays ~30 small array ops of Python dispatch per
step.  Between control decisions, however, the closed loop is *open*:
fan levels, CPU caps, exhaust conductances, and plant coefficients are
all frozen, demand is precomputed, and ``applied = min(demand, cap)``
makes the plant forcing feed-forward.  :class:`FusedStepper` exploits
that: it slices the horizon into **windows** - maximal step runs ending
at (and including) the next control-due step and broken before any
fault-transform change instant - and advances each window as a handful
of ``(B, w)`` matrix ops:

* the whole window's applied utilization, socket power, and CPU power
  as three broadcasts,
* exhaust rises as one matrix (column 0 carries the one-step-lagged
  plant-state mirrors, exactly like the per-dt lanes) pushed through
  :meth:`~repro.fleet.coupling.CouplingOperator.apply_window` - for
  multi-rack rooms one stacked ``(R, B, B) @ (R, B, w)`` matmul instead
  of a per-rack Python gemv loop per step,
* heat-sink and die trajectories via an exponential scan - the
  numba-jitted exact recurrence when importable, a cumulative-sum
  closed form otherwise (:mod:`repro.sim.backends`),
* trapezoidal energy as one pair-average mat-vec per window.

Sensing keeps its exact per-step cadence through a cheap inner loop
(two float compares per step against the sensor bank's due/arrival
bounds), and control decisions run the inherited vectorized controller
at their exact instants, so decision *sequences* are the vectorized
lane's own.

Equivalence is **tier B** (docs/backends.md): the scans and window
reductions reorder floating-point arithmetic, so thermal trajectories
and energy totals match the per-dt lanes within per-channel tolerances
rather than bit for bit.  Because measurements re-quantize through the
sensor ADC, rounding-scale die-temperature differences essentially
never flip a code: fan levels, caps, inlet channels, and synced-back
controller state are identical in practice, with only temperatures and
energies drifting at rounding scale.  With numba available the scan is
the per-step recurrence itself and even the thermal trajectories match
the vectorized lane term for term.
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from repro.sim.backends import SPAN_TARGET_LOG, exp_scan_jit, exp_scan_numpy
from repro.sim.batch import BatchStepper


class FusedStepper(BatchStepper):
    """Batch stepper that advances one control window per iteration.

    A drop-in :class:`~repro.sim.batch.BatchStepper` subclass (same
    constructor, same ``run``/``finish`` surface, same controller
    partition and fault hooks); only :meth:`_run_chunk` is replaced by
    the window-fused kernel.  Select it with ``backend="fused"`` on the
    fleet/room simulators or via
    :func:`repro.sim.backends.stepper_backend`.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._jit = exp_scan_jit()
        #: Which scan kernel this stepper runs: "numba" or "numpy".
        self.scan_impl = "numba" if self._jit is not None else "numpy"
        # Closed-form scan coefficients, keyed (node, window width), and
        # the plant-coefficient column views; both invalidated whenever
        # a control/fault action changes plant coefficients
        # (BatchThermalPlant.version bumps on fan/fouling changes).
        self._coeff_cache: dict[tuple[str, int], tuple] = {}
        self._coeff_version = -1
        self._cols: tuple | None = None
        if self._coupled:
            # poll_crac mutates the room array in place, so the column
            # view tracks brownouts automatically.
            self._room_col = self._room[:, None]
        if self._coupled and not self._decoupled:
            window = getattr(self._coupling, "apply_window", None)
            if window is None:
                # Duck-typed operator without the batched method: apply
                # per column, same floats in the same order.
                apply = self._coupling_apply

                def window(rises: np.ndarray, _apply=apply) -> np.ndarray:
                    out = np.empty(rises.shape)
                    for c in range(rises.shape[1]):
                        out[:, c] = _apply(rises[:, c])
                    return out

            self._coupling_window = window

    # ------------------------------------------------------------------
    # Scan kernels

    def _coeffs(self, kind: str, decay: np.ndarray, w: int) -> tuple:
        key = (kind, w)
        entry = self._coeff_cache.get(key)
        if entry is None:
            # Span: how many steps one closed-form block may cover
            # before decay**-j exceeds the precision target (the scan
            # restarts from carried state past it).
            a_min = float(decay.min())
            if a_min >= 1.0:
                full = 1 << 30
            elif a_min <= 0.0:
                full = 1
            else:
                full = max(1, int(SPAN_TARGET_LOG / -math.log(a_min)))
            span = min(w, full)
            n = decay.shape[0]
            powers = np.empty((n, span + 1))
            powers[:, 0] = 1.0
            powers[:, 1:] = np.cumprod(
                np.broadcast_to(decay[:, None], (n, span)), axis=1
            )
            entry = (
                powers,
                (1.0 - decay)[:, None] / powers[:, :span],
                span,
            )
            self._coeff_cache[key] = entry
        return entry

    def _scan(
        self, x0: np.ndarray, decay: np.ndarray, forcing: np.ndarray, kind: str
    ) -> np.ndarray:
        """Window trajectories of ``x <- s_j + (x - s_j) * a``."""
        jit = self._jit
        if jit is not None:
            out = np.empty_like(forcing)
            jit(x0, decay, forcing, out)
            return out
        powers, geom, span = self._coeffs(kind, decay, forcing.shape[1])
        return exp_scan_numpy(x0, forcing, powers, geom, span)

    # ------------------------------------------------------------------
    # The fused kernel

    def _run_chunk(self, m: int) -> None:
        # Same phase accounting as the parent (chunk-local accumulators
        # flushed once via phase_add); "plant" times the feed-forward
        # power/thermal matrix work, "sensing" the per-step inner loop.
        obs = self._obs
        if obs is not None:
            _pc = time.perf_counter
            t_prev = _pc()
        start, dt, k0 = self._start, self._dt, self._k
        times = [start + (k + 1) * dt for k in range(k0, k0 + m)]
        times_arr = np.array(times)
        n = self._n
        demands = np.empty((n, m))
        for i, workload in enumerate(self._workloads):
            demands[i] = workload.demand_array(times_arr)
        if obs is not None:
            obs.phase("workload", t_prev, _pc())
            acc_faults = acc_coupling = acc_plant = 0.0
            acc_sensing = acc_control = acc_monitor = acc_record = 0.0
            n_control = n_monitor = n_record = ctl_due = 0

        plant = self._plant
        sensing = self._sensing
        observe = sensing.observe
        pop_until = sensing.pop_until
        decimation = self._decimation
        channels = self._channels
        coupled = self._coupled
        decoupled = coupled and self._decoupled
        injector = self._injector
        fan_fault_rows = self._fan_fault_rows
        monitor = self._monitor

        j = 0
        while j < m:
            if obs is not None:
                t_prev = _pc()
            if injector is not None:
                t0 = times[j]
                t0_plus = t0 + 1e-9
                if t0_plus >= self._next_plant_change:
                    self._refresh_faulted_plants(
                        injector.pop_plant_changes(t0), t0
                    )
                    self._next_plant_change = injector.next_plant_change_s
                if t0_plus >= self._next_crac_change:
                    injector.poll_crac(t0)
                    self._next_crac_change = injector.next_crac_change_s
                if obs is not None:
                    t_now = _pc()
                    acc_faults += t_now - t_prev
                    t_prev = t_now

            # Window discovery: the longest step run with the loop held
            # open.  Ends *at* the first control-due step (the decision
            # runs after that step's physics, as on the per-dt lanes)
            # and *before* any step with a fault change due, so the
            # transforms refresh at their exact instants.
            next_change = min(self._next_plant_change, self._next_crac_change)
            ctl_bound = self._next_control_min
            ctl = False
            e = j
            while True:
                t_i_plus = times[e] + 1e-9
                if e > j and t_i_plus >= next_change:
                    break
                ctl = ctl_bound <= t_i_plus
                e += 1
                if ctl or e >= m:
                    break
            w = e - j

            # Feed-forward trajectories: cap and fan are frozen, so the
            # whole window's power profile is three broadcasts.  The
            # plant-coefficient column views are cached per plant
            # version (fan/fouling changes rebuild them).
            if self._coeff_version != plant.version:
                self._coeff_version = plant.version
                self._coeff_cache.clear()
                self._cols = (
                    plant.p_static[:, None],
                    plant.p_dynamic[:, None],
                    plant.n_sockets[:, None],
                    plant.r_hs[:, None],
                    plant.r_die[:, None],
                )
            p_static_c, p_dynamic_c, n_sockets_c, r_hs_c, r_die_c = self._cols
            dem = demands[:, j:e]
            applied = np.minimum(dem, self._cap[:, None])
            socket_p = p_static_c + p_dynamic_c * applied
            cpu_w = socket_p * n_sockets_c
            if obs is not None:
                t_now = _pc()
                acc_plant += t_now - t_prev
                t_prev = t_now

            # Inlet ambients for the window.  Column 0 reads the lagged
            # plant-state mirrors (exhaust of step k feeds inlets at
            # step k+1); later columns the now-frozen fan power and the
            # feed-forward CPU powers - the same values the per-dt
            # mirror updates would have produced.
            if coupled:
                if decoupled:
                    self._last_offsets = self._zero_offsets
                    ambient = np.broadcast_to(self._room_col, (n, w))
                else:
                    speeds_old = self._state_fan_speed
                    if self._conductance_for is not speeds_old:
                        self._conductance = np.maximum(
                            self._g_floor,
                            self._g_max * speeds_old / self._v_max_exh,
                        )
                        self._conductance_for = speeds_old
                    g_old = self._conductance
                    speeds_new = plant.clamped_speed
                    if speeds_new is speeds_old:
                        g_new = g_old
                    else:
                        g_new = np.maximum(
                            self._g_floor,
                            self._g_max * speeds_new / self._v_max_exh,
                        )
                        self._conductance = g_new
                        self._conductance_for = speeds_new
                    rises = np.empty((n, w))
                    np.divide(
                        self._state_cpu_w + self._state_fan_w,
                        g_old,
                        out=rises[:, 0],
                    )
                    if w > 1:
                        np.divide(
                            cpu_w[:, :-1] + plant.fan_w[:, None],
                            g_new[:, None],
                            out=rises[:, 1:],
                        )
                    offsets = self._coupling_window(rises)
                    self._last_offsets = offsets[:, -1].copy()
                    ambient = offsets
                    ambient += self._room_col
                self._inlet_sums += ambient.sum(axis=1)
                if obs is not None:
                    t_now = _pc()
                    acc_coupling += t_now - t_prev
                    t_prev = t_now
            else:
                ambient = self._ambient_const[:, None]

            # Thermal scans: heat sink first (its forcing is closed
            # over ambient + socket power), then the die riding on it.
            hs_ss = r_hs_c * socket_p
            hs_ss += ambient
            hs_out = self._scan(plant.hs_temp, plant.hs_decay, hs_ss, "hs")
            die_ss = r_die_c * socket_p
            die_ss += hs_out
            die_out = self._scan(plant.die_temp, plant.die_decay, die_ss, "die")
            plant.hs_temp = hs_out[:, -1]
            plant.die_temp = die_out[:, -1]
            plant.check_finite()

            # Mirror + energy updates once per window; the mirrors hold
            # column views (their window buffers are never written
            # again).  fan_w/clamped references detach on the next fan
            # change (copy-on-write in the plant), exactly as in the
            # per-dt loop.
            fan_w = plant.fan_w
            last_cpu = cpu_w[:, -1]
            self._state_fan_speed = plant.clamped_speed
            self._state_cpu_w = last_cpu
            self._state_fan_w = fan_w
            self._last_applied = applied[:, -1]
            if coupled:
                # Decoupled ambient is a broadcast view of the (CRAC-
                # mutable) room array, so snapshot it by value.
                self._last_ambient = (
                    self._room.copy() if decoupled else ambient[:, -1]
                )
            else:
                self._last_ambient = self._ambient_const

            t_end = times[e - 1]
            dt0 = times[j] - self._energy_last_t
            dts = np.empty(w)
            dts[0] = dt0
            if w > 1:
                np.subtract(
                    times_arr[j + 1 : e], times_arr[j : e - 1], out=dts[1:]
                )
            prev_cpu = np.empty((n, w))
            prev_cpu[:, 0] = self._energy_last_cpu
            if w > 1:
                prev_cpu[:, 1:] = cpu_w[:, :-1]
            prev_cpu += cpu_w
            self._cpu_j += prev_cpu @ (0.5 * dts)
            self._fan_j += (
                0.5 * dt0
            ) * (self._energy_last_fan + fan_w) + (t_end - times[j]) * fan_w
            self._energy_last_cpu = last_cpu
            self._energy_last_fan = fan_w
            self._energy_last_t = t_end
            if obs is not None:
                t_now = _pc()
                acc_plant += t_now - t_prev
                t_prev = t_now

            # Per-step tail: sensing cadence, the window-ending control
            # decision, and telemetry records.  The compares mirror the
            # early-return bounds inside observe/pop_until, so state
            # evolves exactly as if both ran every step.
            for c in range(w):
                kk = j + c
                t = times[kk]
                t_plus = t + 1e-9
                if sensing._next_due <= t_plus:
                    observe(t, t_plus, die_out[:, c])
                if sensing._next_arrival <= t:
                    pop_until(t)
                if ctl and c == w - 1:
                    if obs is not None:
                        t_now = _pc()
                        acc_sensing += t_now - t_prev
                        t_prev = t_now
                    if self._ctrl_uniform:
                        # One shared period: due is always whole-rack.
                        due_idx = self._all_idx
                    else:
                        due = self._next_control <= t_plus
                        due_idx = np.nonzero(due)[0]
                    self._control_step(due_idx, t, t_plus, dem[:, c], applied[:, c])
                    self._next_control_min = float(self._next_control.min())
                    if obs is not None:
                        t_now = _pc()
                        acc_control += t_now - t_prev
                        t_prev = t_now
                        n_control += 1
                        ctl_due += due_idx.size
                # Health monitoring: per-step like the per-dt lanes
                # (mid-window fan/cap are frozen there too, so the
                # sampled decision channels match bitwise).  A non-None
                # monitor implies a live collector.
                if monitor is not None and t_plus >= monitor.next_due_s:
                    t_now = _pc()
                    acc_sensing += t_now - t_prev
                    t_prev = t_now
                    monitor.ingest_batch(
                        t, sensing.current, self._fan_cmd, applied[:, c]
                    )
                    t_now = _pc()
                    acc_monitor += t_now - t_prev
                    t_prev = t_now
                    n_monitor += 1
                k = k0 + kk
                if k % decimation == 0:
                    if obs is not None:
                        t_now = _pc()
                        acc_sensing += t_now - t_prev
                        t_prev = t_now
                    r = self._record_idx
                    channels["time"][:, r] = t
                    channels["junction"][:, r] = die_out[:, c]
                    channels["heatsink"][:, r] = hs_out[:, c]
                    channels["tmeas"][:, r] = sensing.current
                    channels["fan_speed"][:, r] = self._fan_cmd
                    if fan_fault_rows:
                        for i in fan_fault_rows:
                            state = self._fan_fault_states[i]
                            channels["fan_speed"][i, r] = state.reported(
                                t, state.actual(t, float(self._fan_cmd[i]))
                            )
                    channels["cpu_cap"][:, r] = self._cap
                    channels["demand"][:, r] = dem[:, c]
                    channels["applied"][:, r] = applied[:, c]
                    channels["t_ref"][:, r] = self._t_ref
                    self._record_idx = r + 1
                    if obs is not None:
                        t_now = _pc()
                        acc_record += t_now - t_prev
                        t_prev = t_now
                        n_record += 1
            if obs is not None:
                acc_sensing += _pc() - t_prev
                obs.tick(times[e - 1], n * w)
            j = e

        if obs is not None:
            if injector is not None:
                obs.phase_add("faults", acc_faults, m)
            if coupled:
                obs.phase_add("coupling", acc_coupling, m)
            obs.phase_add("plant", acc_plant, m)
            obs.phase_add("sensing", acc_sensing, m)
            if n_control:
                obs.phase_add("control", acc_control, n_control)
                obs.count("control_steps", ctl_due)
            if n_monitor:
                obs.phase_add("monitor", acc_monitor, n_monitor)
            if n_record:
                obs.phase_add("record", acc_record, n_record)
        plant.check_finite()
        self._k = k0 + m
