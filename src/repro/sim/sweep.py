"""Parameter-sweep harness used by the ablation benchmarks and experiments.

Two execution paths:

* the original **runner** path - a callable maps each parameter value to
  a finished :class:`~repro.sim.result.SimulationResult` (optionally
  across a process pool via ``workers=``), and
* a **spec** path - a ``spec_builder`` maps each value to a
  :class:`~repro.sim.batch.BatchRunSpec`, letting the whole grid run on
  the vectorized batch backend as one ``(B,)`` array simulation
  (``backend="vectorized"``), or serially through
  :class:`~repro.sim.engine.Simulator` (``backend="scalar"``), with
  identical results either way.

Prefer the spec path for new sweeps: it gets both the array plant and
(for common DTM compositions) the array controller backend for free,
and degrades to exact per-spec scalar simulation when a grid cannot
batch.  Canned spec builders live in :mod:`repro.sim.scenarios`
(:func:`~repro.sim.scenarios.scheme_spec`,
:func:`~repro.sim.scenarios.fan_only_spec`).  Metric extractors run in
the parent process either way, so they may be lambdas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.batch import BatchRunSpec, run_batch
from repro.sim.parallel import parallel_map
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the parameter value and the run it produced."""

    value: Any
    result: SimulationResult
    metrics: dict[str, float] = field(default_factory=dict)


class ParameterSweep:
    """Run a factory across a list of parameter values and collect metrics.

    Parameters
    ----------
    runner:
        Callable mapping one parameter value to a
        :class:`~repro.sim.result.SimulationResult`.  Required for the
        default (``backend="scalar"``) runner path.
    metric_fns:
        Optional named metric extractors evaluated on each result.
    spec_builder:
        Callable mapping one parameter value to a
        :class:`~repro.sim.batch.BatchRunSpec`; enables
        ``backend="vectorized"``.
    """

    def __init__(
        self,
        runner: Callable[[Any], SimulationResult] | None = None,
        metric_fns: dict[str, Callable[[SimulationResult], float]] | None = None,
        spec_builder: Callable[[Any], BatchRunSpec] | None = None,
    ) -> None:
        if runner is None and spec_builder is None:
            raise SimulationError(
                "ParameterSweep needs a runner, a spec_builder, or both"
            )
        self._runner = runner
        self._metric_fns = metric_fns or {}
        self._spec_builder = spec_builder

    def run(
        self,
        values: list[Any],
        workers: int | None = None,
        backend: str = "scalar",
    ) -> list[SweepPoint]:
        """Execute the sweep; raises on an empty value list.

        ``backend="scalar"`` (default) uses the runner path; ``workers``
        > 1 then runs the sweep points across a process pool (the runner
        must be picklable, e.g. a module-level function).
        ``backend="vectorized"`` builds every point's spec and runs the
        whole grid through the batch backend in-process (``workers`` is
        ignored); grids the batch backend cannot represent fall back to
        per-spec scalar simulation with identical results.  Point order
        always matches ``values``, and metric extractors run in the
        parent process so they may be lambdas either way.
        """
        if not values:
            raise SimulationError("sweep needs at least one parameter value")
        if backend in ("vectorized", "fused"):
            results = self._run_specs(values, batch_backend=backend)
        elif backend == "scalar":
            if self._runner is not None:
                results = parallel_map(self._runner, values, workers=workers)
            else:
                results = self._run_specs(values, force_scalar=True)
        else:
            raise SimulationError(
                f"unknown backend {backend!r}; choose 'scalar', 'vectorized',"
                " or 'fused'"
            )
        points = []
        for value, result in zip(values, results):
            metrics = {
                name: fn(result) for name, fn in self._metric_fns.items()
            }
            points.append(SweepPoint(value=value, result=result, metrics=metrics))
        return points

    def _run_specs(
        self,
        values: list[Any],
        force_scalar: bool = False,
        batch_backend: str = "vectorized",
    ) -> list[SimulationResult]:
        if self._spec_builder is None:
            raise SimulationError(
                "batch backends need a spec_builder mapping each "
                "value to a BatchRunSpec"
            )
        specs = [self._spec_builder(value) for value in values]
        if not force_scalar:
            try:
                return run_batch(specs, backend=batch_backend)
            except SimulationError:
                # Heterogeneous-structure grid: fall back to the scalar
                # engine, which accepts anything the specs describe.
                pass
        return [self._run_spec_scalar(spec) for spec in specs]

    @staticmethod
    def _run_spec_scalar(spec: BatchRunSpec) -> SimulationResult:
        from repro.sim.engine import Simulator

        sim = Simulator(
            spec.plant,
            spec.sensor,
            spec.workload,
            spec.controller,
            dt_s=spec.dt_s,
            record_decimation=spec.record_decimation,
            violation_tolerance=spec.violation_tolerance,
            degradation_window=spec.degradation_window,
        )
        return sim.run(spec.duration_s, label=spec.label)

    @staticmethod
    def table(points: list[SweepPoint], metric: str) -> list[tuple[Any, float]]:
        """(value, metric) pairs for one metric across the sweep."""
        return [(p.value, p.metrics[metric]) for p in points]
