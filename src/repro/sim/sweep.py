"""Small parameter-sweep harness used by the ablation benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.parallel import parallel_map
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the parameter value and the run it produced."""

    value: Any
    result: SimulationResult
    metrics: dict[str, float] = field(default_factory=dict)


class ParameterSweep:
    """Run a factory across a list of parameter values and collect metrics.

    Parameters
    ----------
    runner:
        Callable mapping one parameter value to a
        :class:`~repro.sim.result.SimulationResult`.
    metric_fns:
        Optional named metric extractors evaluated on each result.
    """

    def __init__(
        self,
        runner: Callable[[Any], SimulationResult],
        metric_fns: dict[str, Callable[[SimulationResult], float]] | None = None,
    ) -> None:
        self._runner = runner
        self._metric_fns = metric_fns or {}

    def run(self, values: list[Any], workers: int | None = None) -> list[SweepPoint]:
        """Execute the sweep; raises on an empty value list.

        ``workers`` > 1 runs the sweep points across a process pool (the
        runner must then be picklable, e.g. a module-level function);
        the default remains sequential.  Point order always matches
        ``values``, and metric extractors run in the parent process so
        they may be lambdas either way.
        """
        if not values:
            raise SimulationError("sweep needs at least one parameter value")
        results = parallel_map(self._runner, values, workers=workers)
        points = []
        for value, result in zip(values, results):
            metrics = {
                name: fn(result) for name, fn in self._metric_fns.items()
            }
            points.append(SweepPoint(value=value, result=result, metrics=metrics))
        return points

    @staticmethod
    def table(points: list[SweepPoint], metric: str) -> list[tuple[Any, float]]:
        """(value, metric) pairs for one metric across the sweep."""
        return [(p.value, p.metrics[metric]) for p in points]
