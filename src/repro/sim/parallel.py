"""Order-preserving serial/parallel map shared by sweeps and campaigns.

Both :class:`~repro.sim.sweep.ParameterSweep` and
:class:`~repro.fleet.campaign.CampaignRunner` fan independent work items
out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The policy
lives here so they behave identically: results come back in input order,
``workers`` of ``None``/``0``/``1`` means run serially in-process, and
the work function plus items must be picklable once a pool is involved
(module-level functions and frozen dataclasses qualify; lambdas do not).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import SimulationError


def resolve_workers(workers: int | None, n_items: int) -> int:
    """Effective pool size: 1 means serial, never more workers than items."""
    if workers is None:
        return 1
    if workers < 0:
        raise SimulationError(f"workers must be >= 0, got {workers}")
    return max(1, min(workers, n_items))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: int | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items``, serially or across a process pool.

    Results are returned in the order of ``items`` regardless of which
    worker finished first, so parallel and serial execution produce the
    same list.  Any exception raised by ``fn`` propagates to the caller
    (the pool is torn down first).
    """
    work: Sequence[Any] = list(items)
    n_workers = resolve_workers(workers, len(work))
    if n_workers <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, work))
