"""Simulation engine: discrete-time closed-loop server simulation.

* :class:`~repro.sim.engine.Simulator` - the time loop wiring workload,
  plant, sensing pipeline, and DTM controller together.
* :class:`~repro.sim.engine.ServerStepper` - the single-step loop
  primitive shared with the fleet simulator.
* :class:`~repro.sim.result.SimulationResult` - telemetry + metrics.
* :mod:`repro.sim.scenarios` - canned builders for every paper experiment
  (the five Table III schemes, the Fig. 3/4 fan-only setups, workloads).
* :class:`~repro.sim.sweep.ParameterSweep` - sweep harness (optionally
  parallel via :func:`~repro.sim.parallel.parallel_map`).
* :mod:`repro.sim.batch` - the vectorized batch backend
  (:class:`~repro.sim.batch.BatchStepper`,
  :func:`~repro.sim.batch.run_batch`): whole racks and sweep grids as
  ``(B,)`` array ops per ``dt``, bit-for-bit with the scalar engine.
* :mod:`repro.sim.batch_control` - the vectorized controller backend
  (:class:`~repro.sim.batch_control.BatchGlobalController`): the common
  DTM composition advanced for all servers as array ops at CPU-period
  boundaries, with per-server scalar fallback for the rest.
"""

from repro.sim.batch import (
    BatchRunSpec,
    BatchStepper,
    batch_unsupported_reason,
    run_batch,
)
from repro.sim.batch_control import (
    BatchGlobalController,
    batch_controller_unsupported_reason,
)
from repro.sim.engine import ServerStepper, Simulator
from repro.sim.parallel import parallel_map
from repro.sim.result import SimulationResult
from repro.sim.scenarios import (
    SCHEME_NAMES,
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
    run_fan_only,
    run_scheme,
)
from repro.sim.sweep import ParameterSweep, SweepPoint

__all__ = [
    "BatchGlobalController",
    "BatchRunSpec",
    "BatchStepper",
    "ParameterSweep",
    "SCHEME_NAMES",
    "ServerStepper",
    "SimulationResult",
    "Simulator",
    "SweepPoint",
    "batch_controller_unsupported_reason",
    "batch_unsupported_reason",
    "build_global_controller",
    "build_plant",
    "build_sensor",
    "paper_workload",
    "parallel_map",
    "run_batch",
    "run_fan_only",
    "run_scheme",
]
