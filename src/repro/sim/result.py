"""Simulation results: telemetry arrays plus the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import ServerConfig
from repro.errors import AnalysisError
from repro.power.energy import EnergyBreakdown
from repro.workload.performance import PerformanceSummary


@dataclass(frozen=True)
class SimulationResult:
    """Everything a closed-loop run produced.

    Telemetry channels (one row per recorded step):

    ========== ==========================================================
    channel     meaning
    ========== ==========================================================
    time        simulation time [s]
    junction    true junction temperature [degC]
    heatsink    true heat sink temperature [degC]
    tmeas       firmware-visible (lagged, quantized) temperature [degC]
    fan_speed   applied fan speed [rpm]
    cpu_cap     applied CPU cap [0, 1]
    demand      demanded utilization [0, 1]
    applied     applied utilization = min(demand, cap)
    t_ref       fan reference temperature in force [degC]
    ========== ==========================================================
    """

    channels: dict[str, np.ndarray]
    performance: PerformanceSummary
    energy: EnergyBreakdown
    config: ServerConfig
    dt_s: float
    label: str = "run"
    extras: dict[str, Any] = field(default_factory=dict)

    def channel(self, name: str) -> np.ndarray:
        """One telemetry channel by name."""
        if name not in self.channels:
            raise AnalysisError(
                f"unknown channel {name!r}; have {sorted(self.channels)}"
            )
        return self.channels[name]

    @property
    def times(self) -> np.ndarray:
        """Time axis in seconds."""
        return self.channel("time")

    @property
    def junction_c(self) -> np.ndarray:
        """True junction temperature trace."""
        return self.channel("junction")

    @property
    def tmeas_c(self) -> np.ndarray:
        """Firmware-visible temperature trace."""
        return self.channel("tmeas")

    @property
    def fan_speed_rpm(self) -> np.ndarray:
        """Applied fan speed trace."""
        return self.channel("fan_speed")

    @property
    def cpu_cap(self) -> np.ndarray:
        """Applied CPU cap trace."""
        return self.channel("cpu_cap")

    @property
    def demand(self) -> np.ndarray:
        """Demanded utilization trace."""
        return self.channel("demand")

    @property
    def applied_util(self) -> np.ndarray:
        """Applied utilization trace."""
        return self.channel("applied")

    @property
    def violation_percent(self) -> float:
        """Deadline violation percentage (Table III column 2)."""
        return self.performance.violation_percent

    @property
    def fan_energy_j(self) -> float:
        """Fan energy in joules (numerator of Table III column 3)."""
        return self.energy.fan_j

    @property
    def cpu_energy_j(self) -> float:
        """CPU energy in joules."""
        return self.energy.cpu_j

    @property
    def max_junction_c(self) -> float:
        """Hottest true junction temperature reached."""
        return float(np.max(self.junction_c))

    def normalized_fan_energy(self, baseline: "SimulationResult") -> float:
        """Fan energy relative to a baseline run (Table III column 3)."""
        if baseline.fan_energy_j <= 0.0:
            raise AnalysisError("baseline fan energy is zero; cannot normalize")
        return self.fan_energy_j / baseline.fan_energy_j

    def summary(self) -> dict[str, float]:
        """Headline metrics as a flat dict."""
        return {
            "duration_s": float(self.times[-1]) if self.times.size else 0.0,
            "violation_percent": self.violation_percent,
            "fan_energy_j": self.fan_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "max_junction_c": self.max_junction_c,
            "mean_fan_speed_rpm": float(np.mean(self.fan_speed_rpm)),
        }
