"""Execution-backend registry and the fused lane's scan kernels.

Simulation drivers (:class:`~repro.fleet.simulator.FleetSimulator`,
:class:`~repro.room.simulator.RoomSimulator`, :func:`~repro.sim.batch.
run_batch`, campaigns) accept a backend *name*; this module maps batch
backend names to stepper classes without importing them eagerly, so the
fused backend (and anything registered later) never creates an import
cycle with :mod:`repro.sim.batch`.

It also owns the **exponential-scan** kernels the fused backend uses to
advance a whole control window of first-order RC steps at once:

* :func:`exp_scan_jit` - a numba-compiled version of the *exact*
  per-step recurrence ``x <- ss + (x - ss) * decay`` (the same float
  expression :meth:`repro.sim.batch.BatchThermalPlant.advance`
  evaluates), used when numba is importable and not disabled via
  ``REPRO_DISABLE_NUMBA``;
* :func:`exp_scan_numpy` - the pure-NumPy fallback, a cumulative-sum
  closed form that reorders the arithmetic and is therefore covered by
  the tier-B tolerances of ``docs/backends.md`` rather than bit-for-bit
  equality.

Either way the fused backend stays within its equivalence tier; the
kernels only trade Python dispatch for throughput.
"""

from __future__ import annotations

import importlib
import importlib.util
import math
import os
from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError

#: Precision budget for one closed-form scan block: ``decay**-j`` may
#: grow to at most this factor before the scan restarts from carried
#: state (bounds the cumulative sum's relative error near 1e-10).
SPAN_TARGET_LOG = math.log(1e6)

#: Set (to anything but "" or "0") to force the pure-NumPy scan even
#: when numba is importable.  CI runs the backend-conformance suite in
#: both configurations.
DISABLE_NUMBA_ENV = "REPRO_DISABLE_NUMBA"

#: Batch-backend name -> "module:class" for lazy resolution.  "scalar"
#: is deliberately absent: it is not a batch stepper but the per-server
#: reference loop the drivers implement themselves.
_BUILTIN_STEPPERS: dict[str, tuple[str, str]] = {
    "vectorized": ("repro.sim.batch", "BatchStepper"),
    "fused": ("repro.sim.fused", "FusedStepper"),
}

_RESOLVED: dict[str, Any] = {}


def stepper_backend(name: str) -> Any:
    """The stepper class registered under ``name`` (lazily imported)."""
    cls = _RESOLVED.get(name)
    if cls is not None:
        return cls
    spec = _BUILTIN_STEPPERS.get(name)
    if spec is None:
        raise SimulationError(
            f"unknown batch backend {name!r}; choose from "
            f"{tuple(sorted(_BUILTIN_STEPPERS))}"
        )
    module, attr = spec
    cls = getattr(importlib.import_module(module), attr)
    _RESOLVED[name] = cls
    return cls


def register_stepper_backend(name: str, module: str, attr: str) -> None:
    """Register (or override) a batch backend by dotted location."""
    _BUILTIN_STEPPERS[name] = (module, attr)
    _RESOLVED.pop(name, None)


def batch_backend_names() -> tuple[str, ...]:
    """Registered batch-backend names, sorted."""
    return tuple(sorted(_BUILTIN_STEPPERS))


# ----------------------------------------------------------------------
# Optional numba acceleration

_numba_checked = False
_numba_importable = False
_jit_scan: Callable | None = None


def numba_disabled() -> bool:
    """Whether the environment forces the NumPy fallback."""
    return os.environ.get(DISABLE_NUMBA_ENV, "") not in ("", "0")


def numba_available() -> bool:
    """Whether the optional numba JIT may be used (import + env gate)."""
    global _numba_checked, _numba_importable
    if numba_disabled():
        return False
    if not _numba_checked:
        _numba_importable = importlib.util.find_spec("numba") is not None
        _numba_checked = True
    return _numba_importable


def fused_scan_impl() -> str:
    """Which scan kernel the fused backend will pick: "numba" or "numpy"."""
    return "numba" if numba_available() else "numpy"


def exp_scan_jit() -> Callable | None:
    """The numba-compiled exponential-scan kernel, or ``None``.

    Signature: ``scan(x0, decay, forcing, out)`` with ``x0``/``decay``
    of shape ``(n,)`` and ``forcing``/``out`` of shape ``(n, w)``; the
    kernel fills ``out[:, j]`` with the state *after* step ``j`` of the
    recurrence ``x <- s_j + (x - s_j) * a`` - the identical float
    expression the vectorized plant steps, so the jitted fused lane
    reproduces the vectorized trajectories term for term.
    """
    global _jit_scan
    if not numba_available():
        return None
    if _jit_scan is None:
        import numba

        @numba.njit(cache=True)
        def _scan(x0, decay, forcing, out):  # pragma: no cover - jitted
            n, w = forcing.shape
            for i in range(n):
                x = x0[i]
                a = decay[i]
                for j in range(w):
                    s = forcing[i, j]
                    x = s + (x - s) * a
                    out[i, j] = x

        _jit_scan = _scan
    return _jit_scan


def exp_scan_numpy(
    x0: np.ndarray,
    forcing: np.ndarray,
    powers: np.ndarray,
    geom: np.ndarray,
    span: int,
) -> np.ndarray:
    """Exponential-recurrence trajectories via a cumulative closed form.

    Solves ``x_J = a^J x_0 + sum_{i<J} a^(J-1-i) (1-a) s_i`` for
    ``J = 1..w`` (the recurrence ``x <- s + (x - s) a``) as one
    cumulative sum per block::

        C_J = sum_{i<J} s_i * geom_i      (cumsum along the window)
        x_J = a^J x_0 + a^(J-1) C_J

    ``powers[:, j] = a^j`` and ``geom[:, j] = (1 - a) a^-j`` come
    precomputed (the fused backend caches them per plant version).
    ``span`` bounds how many steps one scan covers before ``a^-j``
    erodes float precision; past it the scan restarts from the carried
    state.  All forcing terms are nonnegative for this plant (steady
    states are temperatures), so the cumulative sum never cancels.
    """
    n, w = forcing.shape
    if w <= span:
        # Single block (the per-control-window common case).
        c = np.cumsum(forcing * geom[:, :w], axis=1)
        np.multiply(powers[:, :w], c, out=c)
        c += powers[:, 1 : w + 1] * x0[:, None]
        return c
    out = np.empty((n, w))
    lo = 0
    x = x0
    while lo < w:
        hi = min(w, lo + span)
        wb = hi - lo
        c = np.cumsum(forcing[:, lo:hi] * geom[:, :wb], axis=1)
        block = out[:, lo:hi]
        np.multiply(powers[:, :wb], c, out=block)
        block += powers[:, 1 : wb + 1] * x[:, None]
        x = out[:, hi - 1]
        lo = hi
    return out
