"""Vectorized DTM backend: B controllers advanced as ``(B,)`` array ops.

PR 2 vectorized the plant and sensing layers but left control scalar, so
at ``dt = 0.1 s`` the per-server :class:`~repro.core.global_controller.
GlobalController.step` loop dominated vectorized wall time.  This module
advances the *common* controller composition for all B servers at once:

* :class:`~repro.core.fan_controller.AdaptivePIDFanController` (gain
  schedule + Eqn 10 quantization guard + slew limit),
* :class:`~repro.core.cpu_capper.DeadzoneCpuCapper` (or no capper),
* :class:`~repro.core.rules.RuleBasedCoordinator` (Table II) or the
  uncoordinated baseline, and
* the optional :class:`~repro.core.setpoint.AdaptiveSetpoint` (A-Tref).

Equivalence with the scalar objects is *structural*: every branch of the
scalar decision sequence is replayed element-wise with the same
floating-point operations in the same order, so results agree
bit-for-bit.  Table II decisions are carried as int8 action codes
(:data:`ACTION_CODES`), deadzone/guard hold behaviour as boolean masks,
and the per-server PID/filter state as ``(B,)`` arrays lifted out of the
scalar objects at construction and written back by :meth:`
BatchGlobalController.sync_back`, so a scalar run can resume from a
vectorized one with identical trajectories.

Compositions the backend cannot represent - SSfan (Section V-C), the
E-coord baseline, custom controller/fan/coordinator subclasses - are
reported by :func:`batch_controller_unsupported_reason`; the
:class:`~repro.sim.batch.BatchStepper` then drives those servers'
scalar objects individually while the rest of the rack stays vectorized.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.base import ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainSchedule
from repro.core.global_controller import GlobalController
from repro.core.pid import PIDController, PIDGains
from repro.core.quantization import QuantizationGuard
from repro.core.rules import CoordinationAction, RuleBasedCoordinator
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.uncoordinated import UncoordinatedCoordinator
from repro.errors import SimulationError
from repro.workload.filters import MovingAverageFilter
from repro.workload.performance import DeadlineTracker

#: Table II actions as int codes (the order of
#: :class:`~repro.core.rules.CoordinationAction` members).
ACTION_CODES: dict[CoordinationAction, int] = {
    action: code for code, action in enumerate(CoordinationAction)
}

#: Inverse of :data:`ACTION_CODES`.
CODE_TO_ACTION: tuple[CoordinationAction, ...] = tuple(CoordinationAction)

_NONE = ACTION_CODES[CoordinationAction.NONE]
_FAN_UP = ACTION_CODES[CoordinationAction.FAN_UP]
_FAN_DOWN = ACTION_CODES[CoordinationAction.FAN_DOWN]
_CAP_UP = ACTION_CODES[CoordinationAction.CAP_UP]
_CAP_DOWN = ACTION_CODES[CoordinationAction.CAP_DOWN]

#: classify() tolerance (must match repro.core.rules.classify).
_SIGN_TOL = 1e-9


def batch_controller_unsupported_reason(controller: Any) -> str | None:
    """Why this controller cannot run vectorized (None = it can).

    The batch controller replays the exact scalar decision sequence, so
    it only accepts the stock library classes whose branches it mirrors.
    Anything else - SSfan, E-coord, subclasses - falls back to stepping
    the scalar object (per server, inside an otherwise batched run).
    """
    if type(controller) is not GlobalController:
        return f"controller {type(controller).__name__} is not the stock GlobalController"
    fan = controller.fan_controller
    if type(fan) is not AdaptivePIDFanController:
        return f"fan controller {type(fan).__name__} is not the stock AdaptivePIDFanController"
    if type(fan.schedule) is not GainSchedule:
        return f"gain schedule {type(fan.schedule).__name__} is not the stock GainSchedule"
    if type(fan.pid) is not PIDController:
        return f"PID {type(fan.pid).__name__} is not the stock PIDController"
    guard = fan.quantization_guard
    if guard is not None and type(guard) is not QuantizationGuard:
        return f"guard {type(guard).__name__} is not the stock QuantizationGuard"
    capper = controller.cpu_capper
    if capper is not None and type(capper) is not DeadzoneCpuCapper:
        return f"capper {type(capper).__name__} is not the stock DeadzoneCpuCapper"
    coordinator = controller.coordinator
    if type(coordinator) not in (RuleBasedCoordinator, UncoordinatedCoordinator):
        return (
            f"coordinator {type(coordinator).__name__} is not rule-based "
            "or uncoordinated"
        )
    setpoint = controller.setpoint
    if setpoint is not None:
        if type(setpoint) is not AdaptiveSetpoint:
            return f"setpoint {type(setpoint).__name__} is not the stock AdaptiveSetpoint"
        if type(setpoint.prediction_filter) is not MovingAverageFilter:
            return (
                f"setpoint filter {type(setpoint.prediction_filter).__name__} "
                "is not the stock MovingAverageFilter"
            )
    if controller.single_step is not None:
        return "single-step fan scaling (SSfan) is stateful per spike history"
    return None


class BatchTrackerBank:
    """Deadline accounting for B servers as array accumulators.

    Mirrors :class:`~repro.workload.performance.DeadlineTracker.record`
    element-wise (same max/compare/add sequence) and restores the scalar
    tracker objects afterwards, sliding window included.
    """

    def __init__(self, trackers: Sequence[DeadlineTracker]) -> None:
        n = len(trackers)
        self._trackers = list(trackers)
        self._rows = np.arange(n)
        self._tol = np.array([t.tolerance for t in trackers])
        self._window = np.array([t.window for t in trackers], dtype=np.int64)
        w_max = int(self._window.max()) if n else 1
        self._ring = np.zeros((n, w_max))
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)
        self._periods = np.zeros(n, dtype=np.int64)
        self._violations = np.zeros(n, dtype=np.int64)
        self._lost = np.zeros(n)
        self._demanded = np.zeros(n)
        for i, tracker in enumerate(trackers):
            summary = tracker.summary
            self._periods[i] = summary.periods
            self._violations[i] = summary.violations
            self._lost[i] = summary.lost_utilization
            self._demanded[i] = summary.demanded_utilization
            gaps = tracker.recent_gaps
            if gaps:
                self._ring[i, : len(gaps)] = gaps
                self._count[i] = len(gaps)

    def record(
        self, idx: np.ndarray, demanded: np.ndarray, applied: np.ndarray
    ) -> None:
        """One control period for the servers in ``idx``."""
        if idx.size == len(self._trackers):
            self.record_all(demanded, applied)
            return
        gap = np.maximum(0.0, demanded - applied)
        self._periods[idx] += 1
        self._violations[idx] += gap > self._tol[idx]
        self._lost[idx] += gap
        self._demanded[idx] += demanded
        window = self._window[idx]
        count = self._count[idx]
        head = self._head[idx]
        full = count == window
        slot = np.where(full, head, (head + count) % window)
        self._ring[idx, slot] = gap
        self._head[idx] = np.where(full, (head + 1) % window, head)
        self._count[idx] = np.where(full, count, count + 1)

    def record_all(self, demanded: np.ndarray, applied: np.ndarray) -> None:
        """One control period for every server (gather-free fast lane)."""
        gap = np.maximum(0.0, demanded - applied)
        self._periods += 1
        self._violations += gap > self._tol
        self._lost += gap
        self._demanded += demanded
        window = self._window
        count = self._count
        head = self._head
        full = count == window
        slot = np.where(full, head, (head + count) % window)
        self._ring[self._rows, slot] = gap
        self._head = np.where(full, (head + 1) % window, head)
        self._count = np.where(full, count, count + 1)

    def sync_back(self) -> None:
        """Restore every tracker object to the accumulated state."""
        for i, tracker in enumerate(self._trackers):
            count = int(self._count[i])
            order = (int(self._head[i]) + np.arange(count)) % int(self._window[i])
            tracker.restore(
                periods=int(self._periods[i]),
                violations=int(self._violations[i]),
                lost_utilization=float(self._lost[i]),
                demanded_utilization=float(self._demanded[i]),
                recent_gaps=tuple(float(g) for g in self._ring[i, order]),
            )


class BatchGlobalController:
    """B stock DTM stacks advanced together at CPU-period boundaries.

    Construction lifts coefficients and mutable state out of the scalar
    objects; :meth:`step_due` advances any due subset;
    :meth:`sync_back` writes the final state into the objects so mixed
    vectorized/scalar workflows keep working on the same controllers.

    Every controller must pass
    :func:`batch_controller_unsupported_reason` - the caller is expected
    to have partitioned unsupported ones onto the scalar path already.
    """

    def __init__(self, controllers: Sequence[GlobalController]) -> None:
        n = len(controllers)
        if n == 0:
            raise SimulationError("batch controller needs at least one server")
        for i, controller in enumerate(controllers):
            reason = batch_controller_unsupported_reason(controller)
            if reason is not None:
                raise SimulationError(
                    f"server {i}: controller cannot batch: {reason}"
                )
        self._n = n
        self._controllers = list(controllers)
        fans = [c.fan_controller for c in controllers]
        pids = [fan.pid for fan in fans]

        # --- applied knob state (GlobalController._state) ---
        self.fan_speed_rpm = np.array([c.state.fan_speed_rpm for c in controllers])
        self.cpu_cap = np.array([c.state.cpu_cap for c in controllers])
        self.t_ref_c = np.array([c.t_ref_c for c in controllers])

        # --- fan decision schedule ---
        self._next_fan = np.array([c.next_fan_decision_s for c in controllers])
        self._fan_interval = np.array(
            [c.control.fan_interval_s for c in controllers]
        )

        # --- fan controller state/coefficients ---
        self._applied = np.array([fan.applied_speed_rpm for fan in fans])
        self._region_index = np.array(
            [fan.region_index for fan in fans], dtype=np.int64
        )
        self._v_min = np.array([fan.fan_limits_rpm[0] for fan in fans])
        self._v_max = np.array([fan.fan_limits_rpm[1] for fan in fans])
        self._slew = np.array(
            [
                np.inf if fan.slew_limit_rpm is None else fan.slew_limit_rpm
                for fan in fans
            ]
        )

        # Gain schedules, padded to the widest region count (+inf speeds
        # never win a <= comparison; padded gains are never gathered).
        n_regions = [len(fan.schedule) for fan in fans]
        r_max = max(n_regions)
        self._n_regions = np.array(n_regions, dtype=np.int64)
        self._region_speeds = np.full((n, r_max), np.inf)
        self._region_kp = np.zeros((n, r_max))
        self._region_ki = np.zeros((n, r_max))
        self._region_kd = np.zeros((n, r_max))
        for i, fan in enumerate(fans):
            for r, region in enumerate(fan.schedule.regions):
                self._region_speeds[i, r] = region.ref_speed_rpm
                self._region_kp[i, r] = region.gains.kp
                self._region_ki[i, r] = region.gains.ki
                self._region_kd[i, r] = region.gains.kd

        # --- quantization guard (Eqn 10) ---
        guards = [fan.quantization_guard for fan in fans]
        self._has_guard = np.array([g is not None for g in guards])
        self._g_step = np.array([0.0 if g is None else g.step_c for g in guards])
        self._g_threshold = np.array(
            [0.0 if g is None else g.threshold_c for g in guards]
        )
        self._hold_count = np.array(
            [0 if g is None else g.hold_count for g in guards], dtype=np.int64
        )

        # --- PID state ---
        self._pid_dt = np.array([pid.sample_time_s for pid in pids])
        self._pid_setpoint = np.array([pid.setpoint for pid in pids])
        self._pid_offset = np.array([pid.output_offset for pid in pids])
        self._pid_integral = np.array([pid.integral for pid in pids])
        self._pid_kp = np.array([pid.gains.kp for pid in pids])
        self._pid_ki = np.array([pid.gains.ki for pid in pids])
        self._pid_kd = np.array([pid.gains.kd for pid in pids])
        self._pid_has_prev = np.array([pid.prev_error is not None for pid in pids])
        self._pid_prev = np.array(
            [0.0 if pid.prev_error is None else pid.prev_error for pid in pids]
        )
        self._pid_has_out = np.array([pid.last_output is not None for pid in pids])
        self._pid_last_out = np.array(
            [0.0 if pid.last_output is None else pid.last_output for pid in pids]
        )

        # --- deadzone capper ---
        cappers = [c.cpu_capper for c in controllers]
        self._has_capper = np.array([cap is not None for cap in cappers])
        self._cap_low = np.array(
            [-np.inf if cap is None else cap.deadzone_c[0] for cap in cappers]
        )
        self._cap_high = np.array(
            [np.inf if cap is None else cap.deadzone_c[1] for cap in cappers]
        )
        self._cap_step = np.array(
            [0.0 if cap is None else cap.step for cap in cappers]
        )
        self._cap_min = np.array(
            [0.0 if cap is None else cap.cap_range[0] for cap in cappers]
        )
        self._cap_max = np.array(
            [1.0 if cap is None else cap.cap_range[1] for cap in cappers]
        )

        # --- coordinator (Table II codes / uncoordinated) ---
        self._is_rule = np.array(
            [type(c.coordinator) is RuleBasedCoordinator for c in controllers]
        )
        self._last_action = np.full(n, _NONE, dtype=np.int8)
        self._action_counts = np.zeros((n, len(CODE_TO_ACTION)), dtype=np.int64)
        for i, controller in enumerate(controllers):
            coordinator = controller.coordinator
            if type(coordinator) is RuleBasedCoordinator:
                self._last_action[i] = ACTION_CODES[coordinator.last_action]
                for action, count in coordinator.action_counts.items():
                    self._action_counts[i, ACTION_CODES[action]] = count

        # --- adaptive set-point (A-Tref) ---
        setpoints = [c.setpoint for c in controllers]
        self._has_sp = np.array([sp is not None for sp in setpoints])
        self._sp_t_min = np.array(
            [0.0 if sp is None else sp.range_c[0] for sp in setpoints]
        )
        self._sp_t_span = np.array(
            [0.0 if sp is None else sp.range_c[1] - sp.range_c[0] for sp in setpoints]
        )
        self._sp_u_low = np.array(
            [0.0 if sp is None else sp.util_range[0] for sp in setpoints]
        )
        self._sp_u_span = np.array(
            [
                1.0
                if sp is None
                else sp.util_range[1] - sp.util_range[0]
                for sp in setpoints
            ]
        )
        windows = [
            1 if sp is None else sp.prediction_filter.window for sp in setpoints
        ]
        w_max = max(windows)
        self._sp_window = np.array(windows, dtype=np.int64)
        self._sp_ring = np.zeros((n, w_max))
        self._sp_head = np.zeros(n, dtype=np.int64)
        self._sp_count = np.zeros(n, dtype=np.int64)
        self._sp_sum = np.zeros(n)
        for i, sp in enumerate(setpoints):
            if sp is None:
                continue
            samples = sp.prediction_filter.samples
            if samples:
                self._sp_ring[i, : len(samples)] = samples
                self._sp_count[i] = len(samples)
            self._sp_sum[i] = sp.prediction_filter.running_sum

        # --- last proposals (scalar parity for sync-back) ---
        self._last_fan_prop = np.zeros(n)
        self._last_fan_none = np.ones(n, dtype=bool)
        self._last_cap_prop = np.zeros(n)
        self._last_cap_none = np.ones(n, dtype=bool)
        for i, controller in enumerate(controllers):
            fan_prop, cap_prop = controller.last_proposals
            if fan_prop is not None:
                self._last_fan_prop[i] = fan_prop
                self._last_fan_none[i] = False
            if cap_prop is not None:
                self._last_cap_prop[i] = cap_prop
                self._last_cap_none[i] = False

        # --- fast-path precomputes (the full-batch lane skips gathers and
        # whole op groups based on these) ---
        self._all_idx = np.arange(n)
        self._sp_idx = np.nonzero(self._has_sp)[0]
        self._any_sp = bool(self._has_sp.any())
        self._all_sp = bool(self._has_sp.all())
        self._any_capper = bool(self._has_capper.any())
        self._all_capper = bool(self._has_capper.all())
        self._rule_idx = np.nonzero(self._is_rule)[0]
        self._any_rule = bool(self._is_rule.any())
        self._all_rule = bool(self._is_rule.all())
        self._zero_sign = np.zeros(n, dtype=np.int64)
        self._next_fan_min = float(self._next_fan.min())

    @property
    def n_servers(self) -> int:
        """Batch width B."""
        return self._n

    def _update_setpoints(self, idx: np.ndarray, util: np.ndarray) -> None:
        """A-Tref: moving-average predictor -> linear T_ref schedule."""
        window = self._sp_window[idx]
        count = self._sp_count[idx]
        head = self._sp_head[idx]
        full = count == window
        # The scalar filter subtracts the evicted sample before adding the
        # new one; replay both float ops in that order.
        total = np.where(
            full, self._sp_sum[idx] - self._sp_ring[idx, head], self._sp_sum[idx]
        )
        slot = np.where(full, head, (head + count) % window)
        self._sp_ring[idx, slot] = util
        self._sp_head[idx] = np.where(full, (head + 1) % window, head)
        count = np.where(full, count, count + 1)
        self._sp_count[idx] = count
        total = total + util
        self._sp_sum[idx] = total
        predicted = total / count
        fraction = (predicted - self._sp_u_low[idx]) / self._sp_u_span[idx]
        fraction = np.minimum(np.maximum(fraction, 0.0), 1.0)
        t_ref = self._sp_t_min[idx] + fraction * self._sp_t_span[idx]
        self.t_ref_c[idx] = t_ref
        self._pid_setpoint[idx] = t_ref

    def _fan_proposals(
        self, idx: np.ndarray, tmeas: np.ndarray
    ) -> np.ndarray:
        """One fan decision per server in ``idx`` (Eqn 4 with Eqns 8-10)."""
        applied = self._applied[idx]
        setpoint = self._pid_setpoint[idx]
        g_step = self._g_step[idx]

        # Eqn 10: inside the quantization deadband, freeze everything.
        held = (
            self._has_guard[idx]
            & (g_step != 0.0)
            & (np.abs(setpoint - tmeas) < self._g_threshold[idx])
        )
        self._hold_count[idx] += held
        proposals = applied.copy()
        if held.all():
            return proposals

        live = idx[~held]
        applied = applied[~held]
        setpoint = setpoint[~held]
        g_step = g_step[~held]
        tmeas = tmeas[~held]

        # Eqns 8-9: gains follow the *applied* operating speed.
        speeds = self._region_speeds[live]
        last = self._n_regions[live] - 1
        below = (speeds <= applied[:, None]).sum(axis=1)
        region = np.clip(below - 1, 0, last)
        changed = region != self._region_index[live]
        self._region_index[live] = region
        # Region change: re-base the offset and clear the error sum.
        offset = np.where(changed, applied, self._pid_offset[live])
        integral = np.where(changed, 0.0, self._pid_integral[live])
        self._pid_offset[live] = offset

        rows = np.arange(live.size)
        low_end = applied <= speeds[rows, 0]
        high_end = applied >= speeds[rows, last]
        i = np.where(low_end, 0, np.where(high_end, last, below - 1))
        j = np.where(low_end | high_end | (last == 0), i, i + 1)
        s_i = speeds[rows, i]
        denom = np.where(i == j, 1.0, speeds[rows, j] - s_i)
        alpha = np.where(i == j, 0.0, (applied - s_i) / denom)
        one_minus = 1.0 - alpha
        kp = one_minus * self._region_kp[live, i] + alpha * self._region_kp[live, j]
        ki = one_minus * self._region_ki[live, i] + alpha * self._region_ki[live, j]
        kd = one_minus * self._region_kd[live, i] + alpha * self._region_kd[live, j]
        self._pid_kp[live] = kp
        self._pid_ki[live] = ki
        self._pid_kd[live] = kd

        # Deadband error shaping: act only on the part of the error that
        # exceeds one LSB (guard servers only).
        error = tmeas - setpoint
        magnitude = np.abs(error) - g_step
        shaped = np.where(
            g_step == 0.0,
            error,
            np.where(
                magnitude <= 0.0, 0.0, np.where(error > 0.0, magnitude, -magnitude)
            ),
        )
        measurement = np.where(self._has_guard[live], setpoint + shaped, tmeas)

        # PID update (position form, back-calculation anti-windup).
        dt = self._pid_dt[live]
        err = measurement - setpoint
        candidate = integral + err * dt
        prev = self._pid_prev[live]
        derivative = np.where(
            self._pid_has_prev[live], (err - prev) / dt, 0.0
        )
        output = offset + kp * err + ki * candidate + kd * derivative
        high = self._v_max[live]
        low = self._v_min[live]
        saturated = (output > high) | (output < low)
        clamped = np.where(output > high, high, low)
        back_calc = (clamped - offset - kp * err - kd * derivative) / np.where(
            ki > 0.0, ki, 1.0
        )
        integral = np.where(saturated & (ki > 0.0), back_calc, candidate)
        output = np.where(saturated, clamped, output)
        self._pid_integral[live] = integral
        self._pid_prev[live] = err
        self._pid_has_prev[live] = True
        self._pid_last_out[live] = output
        self._pid_has_out[live] = True

        # Direction sanity: a measurably hot reading must never produce a
        # speed decrease (mirrors AdaptivePIDFanController.propose).
        proposal = np.where(
            err > 0.0,
            np.maximum(output, applied),
            np.where(err < 0.0, np.minimum(output, applied), output),
        )
        slew = self._slew[live]
        proposal = np.minimum(
            np.maximum(proposal, applied - slew), applied + slew
        )
        proposals[~held] = proposal
        return proposals

    def step_due(
        self, idx: np.ndarray, t: float, tmeas: np.ndarray, util: np.ndarray
    ) -> None:
        """One CPU control period for the servers in ``idx``.

        ``tmeas`` and ``util`` are aligned with ``idx``.  Updated knob
        settings land in :attr:`fan_speed_rpm` / :attr:`cpu_cap`.
        """
        if idx.size == self._n:
            self._step_all(t, tmeas, util)
        else:
            self._step_subset(idx, t, tmeas, util)

    def _step_all(self, t: float, tmeas: np.ndarray, util: np.ndarray) -> None:
        """All servers due at once (the common case: shared CPU period).

        Same decision sequence as :meth:`_step_subset`, minus the
        index gathers, and with whole op groups skipped when no server
        needs them (no fan period due, no capper, no set-point).
        """
        # Section V-B: predictive T_ref adjustment, every CPU period.
        if self._any_sp:
            if self._all_sp:
                self._update_setpoints(self._all_idx, util)
            else:
                self._update_setpoints(self._sp_idx, util[self._has_sp])

        # Deadzone cap proposals.
        cap = self.cpu_cap
        if self._any_capper:
            proposed = np.where(
                tmeas > self._cap_high,
                cap - self._cap_step,
                np.where(tmeas < self._cap_low, cap + self._cap_step, cap),
            )
            cap_prop = np.minimum(
                np.maximum(proposed, self._cap_min), self._cap_max
            )
            self._last_cap_prop = cap_prop
            self._last_cap_none = ~self._has_capper
            d_cap = cap_prop - cap
            du = np.where(
                d_cap > _SIGN_TOL, 1, np.where(d_cap < -_SIGN_TOL, -1, 0)
            )
            if not self._all_capper:
                du = np.where(self._has_capper, du, 0)
        else:
            cap_prop = cap
            self._last_cap_none.fill(True)
            du = self._zero_sign

        # Fan proposals, only when some server's fan period is due.
        t_plus = t + 1e-9
        any_fan = self._next_fan_min <= t_plus
        if any_fan:
            fan_due = self._next_fan <= t_plus
            due = np.nonzero(fan_due)[0]
            if due.size == self._n:
                fan_prop = self._fan_proposals(self._all_idx, tmeas)
            else:
                fan_prop = np.zeros(self._n)
                fan_prop[fan_due] = self._fan_proposals(due, tmeas[fan_due])
            nxt = self._next_fan[due]
            interval = self._fan_interval[due]
            while True:
                late = nxt <= t_plus
                if not late.any():
                    break
                nxt = np.where(late, nxt + interval, nxt)
            self._next_fan[due] = nxt
            self._next_fan_min = float(self._next_fan.min())
            self._last_fan_prop = fan_prop
            self._last_fan_none = ~fan_due
        else:
            self._last_fan_none.fill(True)

        # Global coordination (Table II codes / apply-all).
        cur_fan = self.fan_speed_rpm
        if any_fan:
            d_fan = fan_prop - cur_fan
            ds = np.where(
                fan_due,
                np.where(
                    d_fan > _SIGN_TOL, 1, np.where(d_fan < -_SIGN_TOL, -1, 0)
                ),
                0,
            )
            action = np.where(
                ds > 0,
                _FAN_UP,
                np.where(
                    ds < 0,
                    np.where(du > 0, _CAP_UP, _FAN_DOWN),
                    np.where(du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)),
                ),
            ).astype(np.int8)
        else:
            # ds == 0 everywhere: only the cap column of Table II remains.
            action = np.where(
                du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)
            ).astype(np.int8)

        if self._all_rule:
            take_cap = (action == _CAP_UP) | (action == _CAP_DOWN)
        elif self._any_rule:
            take_cap = np.where(
                self._is_rule,
                (action == _CAP_UP) | (action == _CAP_DOWN),
                self._has_capper,
            )
        else:
            take_cap = self._has_capper
        self.cpu_cap = np.where(take_cap, cap_prop, cap)

        if any_fan:
            if self._all_rule:
                take_fan = (action == _FAN_UP) | (action == _FAN_DOWN)
            elif self._any_rule:
                take_fan = np.where(
                    self._is_rule,
                    (action == _FAN_UP) | (action == _FAN_DOWN),
                    fan_due,
                )
            else:
                take_fan = fan_due
            new_fan = np.where(take_fan, fan_prop, cur_fan)
            self.fan_speed_rpm = new_fan
            # notify_applied: clamp into the physical limits.
            self._applied = np.minimum(
                np.maximum(new_fan, self._v_min), self._v_max
            )

        # Row indices are distinct (one action per server), so the
        # buffered fancy-index add is exact and cheaper than np.add.at.
        if self._all_rule:
            self._last_action = action
            self._action_counts[self._all_idx, action] += 1
        elif self._any_rule:
            rule_idx = self._rule_idx
            rule_action = action[rule_idx]
            self._last_action[rule_idx] = rule_action
            self._action_counts[rule_idx, rule_action] += 1

    def _step_subset(
        self, idx: np.ndarray, t: float, tmeas: np.ndarray, util: np.ndarray
    ) -> None:
        """General path for a strict due subset (mixed CPU periods)."""
        # Section V-B: predictive T_ref adjustment, every CPU period.
        has_sp = self._has_sp[idx]
        if has_sp.any():
            self._update_setpoints(idx[has_sp], util[has_sp])

        # Deadzone cap proposals (dummy coefficients make the no-capper
        # rows a no-op; they are masked out of the coordination below).
        cap = self.cpu_cap[idx]
        proposed = np.where(
            tmeas > self._cap_high[idx],
            cap - self._cap_step[idx],
            np.where(tmeas < self._cap_low[idx], cap + self._cap_step[idx], cap),
        )
        cap_prop = np.minimum(
            np.maximum(proposed, self._cap_min[idx]), self._cap_max[idx]
        )

        # Fan proposals for servers whose fan period is due.
        t_plus = t + 1e-9
        fan_due = self._next_fan[idx] <= t_plus
        fan_prop = np.zeros(idx.size)
        if fan_due.any():
            due = idx[fan_due]
            fan_prop[fan_due] = self._fan_proposals(due, tmeas[fan_due])
            nxt = self._next_fan[due]
            interval = self._fan_interval[due]
            while True:
                late = nxt <= t_plus
                if not late.any():
                    break
                nxt = np.where(late, nxt + interval, nxt)
            self._next_fan[due] = nxt
            self._next_fan_min = float(self._next_fan.min())

        self._last_fan_prop[idx] = fan_prop
        self._last_fan_none[idx] = ~fan_due
        has_capper = self._has_capper[idx]
        self._last_cap_prop[idx] = cap_prop
        self._last_cap_none[idx] = ~has_capper

        # Global coordination: Table II for rule-based servers, apply-all
        # for the uncoordinated baseline.
        cur_fan = self.fan_speed_rpm[idx]
        d_fan = fan_prop - cur_fan
        ds = np.where(
            fan_due,
            np.where(d_fan > _SIGN_TOL, 1, np.where(d_fan < -_SIGN_TOL, -1, 0)),
            0,
        )
        d_cap = cap_prop - cap
        du = np.where(
            has_capper,
            np.where(d_cap > _SIGN_TOL, 1, np.where(d_cap < -_SIGN_TOL, -1, 0)),
            0,
        )
        action = np.where(
            ds > 0,
            _FAN_UP,
            np.where(
                ds < 0,
                np.where(du > 0, _CAP_UP, _FAN_DOWN),
                np.where(du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)),
            ),
        ).astype(np.int8)
        rule = self._is_rule[idx]
        take_fan = np.where(
            rule, (action == _FAN_UP) | (action == _FAN_DOWN), fan_due
        )
        take_cap = np.where(
            rule, (action == _CAP_UP) | (action == _CAP_DOWN), has_capper
        )
        new_fan = np.where(take_fan, fan_prop, cur_fan)
        new_cap = np.where(take_cap, cap_prop, cap)
        if rule.any():
            rule_idx = idx[rule]
            rule_action = action[rule]
            self._last_action[rule_idx] = rule_action
            self._action_counts[rule_idx, rule_action] += 1

        self.fan_speed_rpm[idx] = new_fan
        self.cpu_cap[idx] = new_cap
        # notify_applied: clamp into the physical limits.
        self._applied[idx] = np.minimum(
            np.maximum(new_fan, self._v_min[idx]), self._v_max[idx]
        )

    def sync_back(self) -> None:
        """Write the final batch state into the scalar controller objects.

        After this, stepping a controller the scalar way continues the
        trajectory exactly where the vectorized run left it.
        """
        for i, controller in enumerate(self._controllers):
            fan = controller.fan_controller
            fan.restore_state(
                applied_speed_rpm=float(self._applied[i]),
                region_index=int(self._region_index[i]),
            )
            pid = fan.pid
            pid.gains = PIDGains(
                kp=float(self._pid_kp[i]),
                ki=float(self._pid_ki[i]),
                kd=float(self._pid_kd[i]),
            )
            pid.setpoint = float(self._pid_setpoint[i])
            pid.output_offset = float(self._pid_offset[i])
            pid.restore_state(
                integral=float(self._pid_integral[i]),
                prev_error=(
                    float(self._pid_prev[i]) if self._pid_has_prev[i] else None
                ),
                last_output=(
                    float(self._pid_last_out[i]) if self._pid_has_out[i] else None
                ),
            )
            guard = fan.quantization_guard
            if guard is not None:
                guard.restore_hold_count(int(self._hold_count[i]))
            coordinator = controller.coordinator
            if type(coordinator) is RuleBasedCoordinator:
                coordinator.restore_trace(
                    last_action=CODE_TO_ACTION[int(self._last_action[i])],
                    action_counts={
                        action: int(self._action_counts[i, code])
                        for code, action in enumerate(CODE_TO_ACTION)
                    },
                )
            setpoint = controller.setpoint
            if setpoint is not None:
                count = int(self._sp_count[i])
                order = (int(self._sp_head[i]) + np.arange(count)) % int(
                    self._sp_window[i]
                )
                setpoint.prediction_filter.restore(
                    samples=tuple(float(s) for s in self._sp_ring[i, order]),
                    total=float(self._sp_sum[i]),
                )
            controller.restore_decision_state(
                state=ControlState(
                    fan_speed_rpm=float(self.fan_speed_rpm[i]),
                    cpu_cap=float(self.cpu_cap[i]),
                ),
                t_ref_c=float(self.t_ref_c[i]),
                next_fan_decision_s=float(self._next_fan[i]),
                last_fan_proposal=(
                    None if self._last_fan_none[i] else float(self._last_fan_prop[i])
                ),
                last_cap_proposal=(
                    None if self._last_cap_none[i] else float(self._last_cap_prop[i])
                ),
            )
