"""Vectorized DTM backend: B controllers advanced as ``(B,)`` array ops.

PR 2 vectorized the plant and sensing layers but left control scalar, so
at ``dt = 0.1 s`` the per-server :class:`~repro.core.global_controller.
GlobalController.step` loop dominated vectorized wall time.  This module
advances the *common* controller composition for all B servers at once:

* :class:`~repro.core.fan_controller.AdaptivePIDFanController` (gain
  schedule + Eqn 10 quantization guard + slew limit),
* :class:`~repro.core.cpu_capper.DeadzoneCpuCapper` (or no capper),
* :class:`~repro.core.rules.RuleBasedCoordinator` (Table II), the
  :class:`~repro.core.ecoord.EnergyAwareCoordinator` baseline [6], or
  the uncoordinated baseline,
* the optional :class:`~repro.core.setpoint.AdaptiveSetpoint` (A-Tref),
  and
* the optional :class:`~repro.core.single_step.SingleStepFanScaling`
  override (Section V-C), carried as int8 phase codes with masked
  transitions.

Equivalence with the scalar objects is *structural*: every branch of the
scalar decision sequence is replayed element-wise with the same
floating-point operations in the same order, so results agree
bit-for-bit.  Table II decisions are carried as int8 action codes
(:data:`ACTION_CODES`), deadzone/guard hold behaviour as boolean masks,
and the per-server PID/filter state as ``(B,)`` arrays lifted out of the
scalar objects at construction and written back by :meth:`
BatchGlobalController.sync_back`, so a scalar run can resume from a
vectorized one with identical trajectories.

With SSfan and E-coord on the array lane, every Table III scheme runs
vectorized.  Compositions the backend cannot represent - custom
controller/fan/coordinator subclasses, non-stock models - are reported
by :func:`batch_controller_unsupported_reason`; the
:class:`~repro.sim.batch.BatchStepper` then drives those servers'
scalar objects individually while the rest of the rack stays vectorized.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.base import ControlState
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.ecoord import EnergyAwareCoordinator
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainSchedule
from repro.core.global_controller import GlobalController
from repro.core.pid import PIDController, PIDGains
from repro.core.quantization import QuantizationGuard
from repro.core.rules import CoordinationAction, RuleBasedCoordinator
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling, SingleStepPhase
from repro.core.uncoordinated import UncoordinatedCoordinator
from repro.errors import SimulationError
from repro.thermal.steady_state import SteadyStateServerModel
from repro.workload.filters import MovingAverageFilter
from repro.workload.performance import DeadlineTracker

#: Table II actions as int codes (the order of
#: :class:`~repro.core.rules.CoordinationAction` members).
ACTION_CODES: dict[CoordinationAction, int] = {
    action: code for code, action in enumerate(CoordinationAction)
}

#: Inverse of :data:`ACTION_CODES`.
CODE_TO_ACTION: tuple[CoordinationAction, ...] = tuple(CoordinationAction)

_NONE = ACTION_CODES[CoordinationAction.NONE]
_FAN_UP = ACTION_CODES[CoordinationAction.FAN_UP]
_FAN_DOWN = ACTION_CODES[CoordinationAction.FAN_DOWN]
_CAP_UP = ACTION_CODES[CoordinationAction.CAP_UP]
_CAP_DOWN = ACTION_CODES[CoordinationAction.CAP_DOWN]

#: classify() tolerance (must match repro.core.rules.classify).
_SIGN_TOL = 1e-9

#: SSfan phases as int8 codes (order of SingleStepPhase members).
SS_PHASE_CODES: dict[SingleStepPhase, int] = {
    phase: code for code, phase in enumerate(SingleStepPhase)
}

#: Inverse of :data:`SS_PHASE_CODES`.
CODE_TO_SS_PHASE: tuple[SingleStepPhase, ...] = tuple(SingleStepPhase)

_SS_INACTIVE = SS_PHASE_CODES[SingleStepPhase.INACTIVE]
_SS_BOOSTED = SS_PHASE_CODES[SingleStepPhase.BOOSTED]
_SS_REFRACTORY = SS_PHASE_CODES[SingleStepPhase.REFRACTORY]


def batch_controller_unsupported_reason(controller: Any) -> str | None:
    """Why this controller cannot run vectorized (None = it can).

    The batch controller replays the exact scalar decision sequence, so
    it only accepts the stock library classes whose branches it mirrors
    (every Table III scheme, SSfan and E-coord included).  Anything else
    - subclasses, non-stock models - falls back to stepping the scalar
    object (per server, inside an otherwise batched run).
    """
    if type(controller) is not GlobalController:
        return f"controller {type(controller).__name__} is not the stock GlobalController"
    fan = controller.fan_controller
    if type(fan) is not AdaptivePIDFanController:
        return f"fan controller {type(fan).__name__} is not the stock AdaptivePIDFanController"
    if type(fan.schedule) is not GainSchedule:
        return f"gain schedule {type(fan.schedule).__name__} is not the stock GainSchedule"
    if type(fan.pid) is not PIDController:
        return f"PID {type(fan.pid).__name__} is not the stock PIDController"
    guard = fan.quantization_guard
    if guard is not None and type(guard) is not QuantizationGuard:
        return f"guard {type(guard).__name__} is not the stock QuantizationGuard"
    capper = controller.cpu_capper
    if capper is not None and type(capper) is not DeadzoneCpuCapper:
        return f"capper {type(capper).__name__} is not the stock DeadzoneCpuCapper"
    coordinator = controller.coordinator
    if type(coordinator) is EnergyAwareCoordinator:
        if type(coordinator.model) is not SteadyStateServerModel:
            return (
                f"E-coord model {type(coordinator.model).__name__} is not "
                "the stock SteadyStateServerModel"
            )
    elif type(coordinator) not in (RuleBasedCoordinator, UncoordinatedCoordinator):
        return (
            f"coordinator {type(coordinator).__name__} is not rule-based, "
            "energy-aware, or uncoordinated"
        )
    setpoint = controller.setpoint
    if setpoint is not None:
        if type(setpoint) is not AdaptiveSetpoint:
            return f"setpoint {type(setpoint).__name__} is not the stock AdaptiveSetpoint"
        if type(setpoint.prediction_filter) is not MovingAverageFilter:
            return (
                f"setpoint filter {type(setpoint.prediction_filter).__name__} "
                "is not the stock MovingAverageFilter"
            )
    single_step = controller.single_step
    if single_step is not None:
        if type(single_step) is not SingleStepFanScaling:
            return (
                f"single-step override {type(single_step).__name__} is not "
                "the stock SingleStepFanScaling"
            )
        if type(single_step.model) is not SteadyStateServerModel:
            return (
                f"SSfan model {type(single_step.model).__name__} is not "
                "the stock SteadyStateServerModel"
            )
    return None


class BatchTrackerBank:
    """Deadline accounting for B servers as array accumulators.

    Mirrors :class:`~repro.workload.performance.DeadlineTracker.record`
    element-wise (same max/compare/add sequence) and restores the scalar
    tracker objects afterwards, sliding window included.

    With ``track_recent=True`` (needed when any vectorized controller
    carries SSfan) the bank additionally maintains an *append-ordered*
    gap buffer so :meth:`recent_degradation_all` can replay the scalar
    tracker's left-to-right ``sum(recent) / len(recent)`` exactly:
    NumPy's axis reductions use pairwise accumulation, which rounds
    differently, so the mean is instead built from sequential per-column
    adds over a right-aligned shift buffer.
    """

    def __init__(
        self, trackers: Sequence[DeadlineTracker], track_recent: bool = False
    ) -> None:
        n = len(trackers)
        self._n = n
        self._trackers = list(trackers)
        self._rows = np.arange(n)
        self._tol = np.array([t.tolerance for t in trackers])
        self._window = np.array([t.window for t in trackers], dtype=np.int64)
        w_max = int(self._window.max()) if n else 1
        self._ring = np.zeros((n, w_max))
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)
        self._periods = np.zeros(n, dtype=np.int64)
        self._violations = np.zeros(n, dtype=np.int64)
        self._lost = np.zeros(n)
        self._demanded = np.zeros(n)
        self._track_recent = track_recent
        if track_recent:
            # Right-aligned, newest in the last column.  Columns left of
            # a server's valid suffix are kept at exactly 0.0 so the
            # sequential sum below adds identity zeros before reaching
            # the window (x + 0.0 == x for the nonnegative gaps).
            self._gaps = np.zeros((n, w_max))
            # Servers with a window narrower than the buffer evict into
            # this column on every shift once their window is full.
            evict_col = w_max - self._window - 1
            self._evictable = evict_col >= 0
            self._evict_col = np.maximum(evict_col, 0)
            self._evict_rows = np.nonzero(self._evictable)[0]
        for i, tracker in enumerate(trackers):
            summary = tracker.summary
            self._periods[i] = summary.periods
            self._violations[i] = summary.violations
            self._lost[i] = summary.lost_utilization
            self._demanded[i] = summary.demanded_utilization
            gaps = tracker.recent_gaps
            if gaps:
                self._ring[i, : len(gaps)] = gaps
                self._count[i] = len(gaps)
                if track_recent:
                    self._gaps[i, w_max - len(gaps) :] = gaps

    def record(
        self, idx: np.ndarray, demanded: np.ndarray, applied: np.ndarray
    ) -> None:
        """One control period for the servers in ``idx``."""
        if idx.size == len(self._trackers):
            self.record_all(demanded, applied)
            return
        gap = np.maximum(0.0, demanded - applied)
        self._periods[idx] += 1
        self._violations[idx] += gap > self._tol[idx]
        self._lost[idx] += gap
        self._demanded[idx] += demanded
        window = self._window[idx]
        count = self._count[idx]
        head = self._head[idx]
        full = count == window
        slot = np.where(full, head, (head + count) % window)
        self._ring[idx, slot] = gap
        self._head[idx] = np.where(full, (head + 1) % window, head)
        self._count[idx] = np.where(full, count, count + 1)
        if self._track_recent:
            gaps = self._gaps
            gaps[idx, :-1] = gaps[idx, 1:]
            gaps[idx, -1] = gap
            evict = idx[self._evictable[idx]]
            if evict.size:
                gaps[evict, self._evict_col[evict]] = 0.0

    def record_all(self, demanded: np.ndarray, applied: np.ndarray) -> None:
        """One control period for every server (gather-free fast lane)."""
        gap = np.maximum(0.0, demanded - applied)
        self._periods += 1
        self._violations += gap > self._tol
        self._lost += gap
        self._demanded += demanded
        window = self._window
        count = self._count
        head = self._head
        full = count == window
        slot = np.where(full, head, (head + count) % window)
        self._ring[self._rows, slot] = gap
        self._head = np.where(full, (head + 1) % window, head)
        self._count = np.where(full, count, count + 1)
        if self._track_recent:
            gaps = self._gaps
            gaps[:, :-1] = gaps[:, 1:]
            gaps[:, -1] = gap
            evict = self._evict_rows
            if evict.size:
                gaps[evict, self._evict_col[evict]] = 0.0

    def recent_degradation_all(self) -> np.ndarray:
        """Per-server mean recent gap, bit-identical to the scalar mean.

        Requires ``track_recent=True``.  The sum is built left-to-right
        over the shift buffer's columns - the same association order as
        ``sum(self._recent)`` on the scalar tracker - with the leading
        zero columns acting as exact additive identities.
        """
        gaps = self._gaps
        acc = np.zeros(self._n)
        for j in range(gaps.shape[1]):
            acc = acc + gaps[:, j]
        return np.where(
            self._count > 0, acc / np.maximum(self._count, 1), 0.0
        )

    def recent_degradation(self, idx: np.ndarray) -> np.ndarray:
        """:meth:`recent_degradation_all` for a row subset."""
        gaps = self._gaps[idx]
        acc = np.zeros(idx.size)
        for j in range(gaps.shape[1]):
            acc = acc + gaps[:, j]
        count = self._count[idx]
        return np.where(count > 0, acc / np.maximum(count, 1), 0.0)

    def sync_back(self) -> None:
        """Restore every tracker object to the accumulated state."""
        for i, tracker in enumerate(self._trackers):
            count = int(self._count[i])
            order = (int(self._head[i]) + np.arange(count)) % int(self._window[i])
            tracker.restore(
                periods=int(self._periods[i]),
                violations=int(self._violations[i]),
                lost_utilization=float(self._lost[i]),
                demanded_utilization=float(self._demanded[i]),
                recent_gaps=tuple(float(g) for g in self._ring[i, order]),
            )


class BatchGlobalController:
    """B stock DTM stacks advanced together at CPU-period boundaries.

    Construction lifts coefficients and mutable state out of the scalar
    objects; :meth:`step_due` advances any due subset;
    :meth:`sync_back` writes the final state into the objects so mixed
    vectorized/scalar workflows keep working on the same controllers.

    Every controller must pass
    :func:`batch_controller_unsupported_reason` - the caller is expected
    to have partitioned unsupported ones onto the scalar path already.
    """

    def __init__(self, controllers: Sequence[GlobalController]) -> None:
        n = len(controllers)
        if n == 0:
            raise SimulationError("batch controller needs at least one server")
        for i, controller in enumerate(controllers):
            reason = batch_controller_unsupported_reason(controller)
            if reason is not None:
                raise SimulationError(
                    f"server {i}: controller cannot batch: {reason}"
                )
        self._n = n
        self._controllers = list(controllers)
        fans = [c.fan_controller for c in controllers]
        pids = [fan.pid for fan in fans]

        # --- applied knob state (GlobalController._state) ---
        self.fan_speed_rpm = np.array([c.state.fan_speed_rpm for c in controllers])
        self.cpu_cap = np.array([c.state.cpu_cap for c in controllers])
        self.t_ref_c = np.array([c.t_ref_c for c in controllers])

        # --- fan decision schedule ---
        self._next_fan = np.array([c.next_fan_decision_s for c in controllers])
        self._fan_interval = np.array(
            [c.control.fan_interval_s for c in controllers]
        )

        # --- fan controller state/coefficients ---
        self._applied = np.array([fan.applied_speed_rpm for fan in fans])
        self._region_index = np.array(
            [fan.region_index for fan in fans], dtype=np.int64
        )
        self._v_min = np.array([fan.fan_limits_rpm[0] for fan in fans])
        self._v_max = np.array([fan.fan_limits_rpm[1] for fan in fans])
        self._slew = np.array(
            [
                np.inf if fan.slew_limit_rpm is None else fan.slew_limit_rpm
                for fan in fans
            ]
        )

        # Gain schedules, padded to the widest region count (+inf speeds
        # never win a <= comparison; padded gains are never gathered).
        n_regions = [len(fan.schedule) for fan in fans]
        r_max = max(n_regions)
        self._n_regions = np.array(n_regions, dtype=np.int64)
        self._region_speeds = np.full((n, r_max), np.inf)
        self._region_kp = np.zeros((n, r_max))
        self._region_ki = np.zeros((n, r_max))
        self._region_kd = np.zeros((n, r_max))
        for i, fan in enumerate(fans):
            for r, region in enumerate(fan.schedule.regions):
                self._region_speeds[i, r] = region.ref_speed_rpm
                self._region_kp[i, r] = region.gains.kp
                self._region_ki[i, r] = region.gains.ki
                self._region_kd[i, r] = region.gains.kd

        # --- quantization guard (Eqn 10) ---
        guards = [fan.quantization_guard for fan in fans]
        self._has_guard = np.array([g is not None for g in guards])
        self._g_step = np.array([0.0 if g is None else g.step_c for g in guards])
        self._g_threshold = np.array(
            [0.0 if g is None else g.threshold_c for g in guards]
        )
        self._hold_count = np.array(
            [0 if g is None else g.hold_count for g in guards], dtype=np.int64
        )

        # --- PID state ---
        self._pid_dt = np.array([pid.sample_time_s for pid in pids])
        self._pid_setpoint = np.array([pid.setpoint for pid in pids])
        self._pid_offset = np.array([pid.output_offset for pid in pids])
        self._pid_integral = np.array([pid.integral for pid in pids])
        self._pid_kp = np.array([pid.gains.kp for pid in pids])
        self._pid_ki = np.array([pid.gains.ki for pid in pids])
        self._pid_kd = np.array([pid.gains.kd for pid in pids])
        self._pid_has_prev = np.array([pid.prev_error is not None for pid in pids])
        self._pid_prev = np.array(
            [0.0 if pid.prev_error is None else pid.prev_error for pid in pids]
        )
        self._pid_has_out = np.array([pid.last_output is not None for pid in pids])
        self._pid_last_out = np.array(
            [0.0 if pid.last_output is None else pid.last_output for pid in pids]
        )

        # --- deadzone capper ---
        cappers = [c.cpu_capper for c in controllers]
        self._has_capper = np.array([cap is not None for cap in cappers])
        self._cap_low = np.array(
            [-np.inf if cap is None else cap.deadzone_c[0] for cap in cappers]
        )
        self._cap_high = np.array(
            [np.inf if cap is None else cap.deadzone_c[1] for cap in cappers]
        )
        self._cap_step = np.array(
            [0.0 if cap is None else cap.step for cap in cappers]
        )
        self._cap_min = np.array(
            [0.0 if cap is None else cap.cap_range[0] for cap in cappers]
        )
        self._cap_max = np.array(
            [1.0 if cap is None else cap.cap_range[1] for cap in cappers]
        )

        # --- coordinator (Table II codes / E-coord / uncoordinated) ---
        self._is_rule = np.array(
            [type(c.coordinator) is RuleBasedCoordinator for c in controllers]
        )
        self._is_eco = np.array(
            [type(c.coordinator) is EnergyAwareCoordinator for c in controllers]
        )
        self._last_action = np.full(n, _NONE, dtype=np.int8)
        self._action_counts = np.zeros((n, len(CODE_TO_ACTION)), dtype=np.int64)
        for i, controller in enumerate(controllers):
            coordinator = controller.coordinator
            if type(coordinator) in (RuleBasedCoordinator, EnergyAwareCoordinator):
                self._last_action[i] = ACTION_CODES[coordinator.last_action]
                for action, count in coordinator.action_counts.items():
                    self._action_counts[i, ACTION_CODES[action]] = count

        # E-coord coefficients.  The fan-admission threshold replays the
        # scalar's per-call ``t_emergency_c - fan_admission_margin_c``
        # subtraction once (it is deterministic), and the marginal-power
        # terms come from the same FanPowerModel / CpuPowerModel
        # expressions the SteadyStateServerModel evaluates.
        self._eco_gate_c = np.zeros(n)
        self._eco_fan_pps = np.ones(n)
        self._eco_fan_vmax = np.ones(n)
        self._eco_neg_p_dyn = np.zeros(n)
        for i, controller in enumerate(controllers):
            coordinator = controller.coordinator
            if type(coordinator) is EnergyAwareCoordinator:
                cfg = coordinator.model.config
                self._eco_gate_c[i] = (
                    coordinator.t_emergency_c - coordinator.fan_admission_margin_c
                )
                self._eco_fan_pps[i] = cfg.fan.power_per_socket_w
                self._eco_fan_vmax[i] = cfg.fan.max_speed_rpm
                self._eco_neg_p_dyn[i] = -cfg.cpu.p_dynamic_w

        # --- adaptive set-point (A-Tref) ---
        setpoints = [c.setpoint for c in controllers]
        self._has_sp = np.array([sp is not None for sp in setpoints])
        self._sp_t_min = np.array(
            [0.0 if sp is None else sp.range_c[0] for sp in setpoints]
        )
        self._sp_t_span = np.array(
            [0.0 if sp is None else sp.range_c[1] - sp.range_c[0] for sp in setpoints]
        )
        self._sp_u_low = np.array(
            [0.0 if sp is None else sp.util_range[0] for sp in setpoints]
        )
        self._sp_u_span = np.array(
            [
                1.0
                if sp is None
                else sp.util_range[1] - sp.util_range[0]
                for sp in setpoints
            ]
        )
        windows = [
            1 if sp is None else sp.prediction_filter.window for sp in setpoints
        ]
        w_max = max(windows)
        self._sp_window = np.array(windows, dtype=np.int64)
        self._sp_ring = np.zeros((n, w_max))
        self._sp_head = np.zeros(n, dtype=np.int64)
        self._sp_count = np.zeros(n, dtype=np.int64)
        self._sp_sum = np.zeros(n)
        for i, sp in enumerate(setpoints):
            if sp is None:
                continue
            samples = sp.prediction_filter.samples
            if samples:
                self._sp_ring[i, : len(samples)] = samples
                self._sp_count[i] = len(samples)
            self._sp_sum[i] = sp.prediction_filter.running_sum
        # Freshest predictor output, consumed by the SSfan landing-speed
        # computation in the same step (the scalar path re-reads
        # ``setpoint.predicted_util`` from the identical sum/count).
        self._sp_predicted = np.zeros(n)

        # --- single-step fan scaling (Section V-C) ---
        single_steps = [c.single_step for c in controllers]
        self._has_ss = np.array([ss is not None for ss in single_steps])
        self._ss_phase = np.full(n, _SS_INACTIVE, dtype=np.int8)
        self._ss_periods = np.zeros(n, dtype=np.int64)
        self._ss_boosts = np.zeros(n, dtype=np.int64)
        self._ss_threshold = np.zeros(n)
        self._ss_max_boost = np.ones(n, dtype=np.int64)
        self._ss_refractory = np.zeros(n, dtype=np.int64)
        self._ss_headroom = np.zeros(n)
        self._ss_target_c = np.zeros(n)
        self._ss_ambient_c = np.zeros(n)
        self._ss_max_speed = np.ones(n)
        self._ss_min_speed = np.zeros(n)
        self._ss_p_static = np.zeros(n)
        self._ss_p_dynamic = np.zeros(n)
        self._ss_r_die = np.zeros(n)
        self._ss_r_base = np.zeros(n)
        self._ss_r_coeff = np.ones(n)
        self._ss_inv_r_exp = np.ones(n)
        for i, ss in enumerate(single_steps):
            if ss is None:
                continue
            cfg = ss.model.config
            self._ss_phase[i] = SS_PHASE_CODES[ss.phase]
            self._ss_periods[i] = ss.periods_in_phase
            self._ss_boosts[i] = ss.boost_count
            self._ss_threshold[i] = ss.degradation_threshold
            self._ss_max_boost[i] = ss.max_boost_periods
            self._ss_refractory[i] = ss.refractory_periods
            self._ss_headroom[i] = ss.headroom_util
            # The scalar recomputes this difference on every landing; the
            # operands never change, so hoisting it preserves the bits.
            self._ss_target_c[i] = (
                cfg.control.t_critical_c - ss.landing_margin_c
            )
            self._ss_ambient_c[i] = cfg.ambient_c
            self._ss_max_speed[i] = cfg.fan.max_speed_rpm
            self._ss_min_speed[i] = cfg.fan.min_speed_rpm
            self._ss_p_static[i] = cfg.cpu.p_static_w
            self._ss_p_dynamic[i] = cfg.cpu.p_dynamic_w
            self._ss_r_die[i] = cfg.die.r_die_k_per_w
            self._ss_r_base[i] = cfg.heatsink.r_base_k_per_w
            self._ss_r_coeff[i] = cfg.heatsink.r_coeff
            self._ss_inv_r_exp[i] = 1.0 / cfg.heatsink.r_exponent

        # --- last proposals (scalar parity for sync-back) ---
        self._last_fan_prop = np.zeros(n)
        self._last_fan_none = np.ones(n, dtype=bool)
        self._last_cap_prop = np.zeros(n)
        self._last_cap_none = np.ones(n, dtype=bool)
        for i, controller in enumerate(controllers):
            fan_prop, cap_prop = controller.last_proposals
            if fan_prop is not None:
                self._last_fan_prop[i] = fan_prop
                self._last_fan_none[i] = False
            if cap_prop is not None:
                self._last_cap_prop[i] = cap_prop
                self._last_cap_none[i] = False

        # --- fast-path precomputes (the full-batch lane skips gathers and
        # whole op groups based on these) ---
        self._all_idx = np.arange(n)
        self._sp_idx = np.nonzero(self._has_sp)[0]
        self._any_sp = bool(self._has_sp.any())
        self._all_sp = bool(self._has_sp.all())
        self._any_capper = bool(self._has_capper.any())
        self._all_capper = bool(self._has_capper.all())
        # Rule-based and E-coord servers both follow an *action*: only the
        # chosen knob moves.  The uncoordinated baseline applies every
        # proposal.  ``_is_coord`` collects the action-followers.
        self._is_coord = self._is_rule | self._is_eco
        self._coord_idx = np.nonzero(self._is_coord)[0]
        self._any_coord = bool(self._is_coord.any())
        self._all_coord = bool(self._is_coord.all())
        self._eco_idx = np.nonzero(self._is_eco)[0]
        self._any_eco = bool(self._is_eco.any())
        self._ss_idx = np.nonzero(self._has_ss)[0]
        self._any_ss = bool(self._has_ss.any())
        self._zero_sign = np.zeros(n, dtype=np.int64)
        self._next_fan_min = float(self._next_fan.min())

    @property
    def n_servers(self) -> int:
        """Batch width B."""
        return self._n

    @property
    def needs_degradation(self) -> bool:
        """Whether :meth:`step_due` needs the recent-degradation signal.

        True when any server carries the SSfan override; the caller then
        passes the tracker bank's :meth:`BatchTrackerBank.
        recent_degradation_all` (post-record, matching the scalar engine's
        record-then-read order).
        """
        return self._any_ss

    def _update_setpoints(self, idx: np.ndarray, util: np.ndarray) -> None:
        """A-Tref: moving-average predictor -> linear T_ref schedule."""
        window = self._sp_window[idx]
        count = self._sp_count[idx]
        head = self._sp_head[idx]
        full = count == window
        # The scalar filter subtracts the evicted sample before adding the
        # new one; replay both float ops in that order.
        total = np.where(
            full, self._sp_sum[idx] - self._sp_ring[idx, head], self._sp_sum[idx]
        )
        slot = np.where(full, head, (head + count) % window)
        self._sp_ring[idx, slot] = util
        self._sp_head[idx] = np.where(full, (head + 1) % window, head)
        count = np.where(full, count, count + 1)
        self._sp_count[idx] = count
        total = total + util
        self._sp_sum[idx] = total
        predicted = total / count
        self._sp_predicted[idx] = predicted
        fraction = (predicted - self._sp_u_low[idx]) / self._sp_u_span[idx]
        fraction = np.minimum(np.maximum(fraction, 0.0), 1.0)
        t_ref = self._sp_t_min[idx] + fraction * self._sp_t_span[idx]
        self.t_ref_c[idx] = t_ref
        self._pid_setpoint[idx] = t_ref

    def _update_setpoints_all(self, util: np.ndarray) -> None:
        """Gather-free :meth:`_update_setpoints` for the whole batch.

        Same float operations on the same values (scatters become
        rebinds), so the T_ref schedule matches the subset path bit for
        bit.  ``t_ref_c`` and ``_pid_setpoint`` may alias after this:
        the only in-place writers assign both the same values.
        """
        window = self._sp_window
        count = self._sp_count
        head = self._sp_head
        full = count == window
        total = np.where(
            full, self._sp_sum - self._sp_ring[self._all_idx, head], self._sp_sum
        )
        slot = np.where(full, head, (head + count) % window)
        self._sp_ring[self._all_idx, slot] = util
        self._sp_head = np.where(full, (head + 1) % window, head)
        count = np.where(full, count, count + 1)
        self._sp_count = count
        total = total + util
        self._sp_sum = total
        predicted = total / count
        self._sp_predicted = predicted
        fraction = (predicted - self._sp_u_low) / self._sp_u_span
        fraction = np.minimum(np.maximum(fraction, 0.0), 1.0)
        t_ref = self._sp_t_min + fraction * self._sp_t_span
        self.t_ref_c = t_ref
        self._pid_setpoint = t_ref

    def _fan_proposals(
        self, idx: np.ndarray, tmeas: np.ndarray
    ) -> np.ndarray:
        """One fan decision per server in ``idx`` (Eqn 4 with Eqns 8-10)."""
        applied = self._applied[idx]
        setpoint = self._pid_setpoint[idx]
        g_step = self._g_step[idx]

        # Eqn 10: inside the quantization deadband, freeze everything.
        held = (
            self._has_guard[idx]
            & (g_step != 0.0)
            & (np.abs(setpoint - tmeas) < self._g_threshold[idx])
        )
        self._hold_count[idx] += held
        proposals = applied.copy()
        if held.all():
            return proposals

        live = idx[~held]
        applied = applied[~held]
        setpoint = setpoint[~held]
        g_step = g_step[~held]
        tmeas = tmeas[~held]

        # Eqns 8-9: gains follow the *applied* operating speed.
        speeds = self._region_speeds[live]
        last = self._n_regions[live] - 1
        below = (speeds <= applied[:, None]).sum(axis=1)
        region = np.clip(below - 1, 0, last)
        changed = region != self._region_index[live]
        self._region_index[live] = region
        # Region change: re-base the offset and clear the error sum.
        offset = np.where(changed, applied, self._pid_offset[live])
        integral = np.where(changed, 0.0, self._pid_integral[live])
        self._pid_offset[live] = offset

        rows = np.arange(live.size)
        low_end = applied <= speeds[rows, 0]
        high_end = applied >= speeds[rows, last]
        i = np.where(low_end, 0, np.where(high_end, last, below - 1))
        j = np.where(low_end | high_end | (last == 0), i, i + 1)
        s_i = speeds[rows, i]
        denom = np.where(i == j, 1.0, speeds[rows, j] - s_i)
        alpha = np.where(i == j, 0.0, (applied - s_i) / denom)
        one_minus = 1.0 - alpha
        kp = one_minus * self._region_kp[live, i] + alpha * self._region_kp[live, j]
        ki = one_minus * self._region_ki[live, i] + alpha * self._region_ki[live, j]
        kd = one_minus * self._region_kd[live, i] + alpha * self._region_kd[live, j]
        self._pid_kp[live] = kp
        self._pid_ki[live] = ki
        self._pid_kd[live] = kd

        # Deadband error shaping: act only on the part of the error that
        # exceeds one LSB (guard servers only).
        error = tmeas - setpoint
        magnitude = np.abs(error) - g_step
        shaped = np.where(
            g_step == 0.0,
            error,
            np.where(
                magnitude <= 0.0, 0.0, np.where(error > 0.0, magnitude, -magnitude)
            ),
        )
        measurement = np.where(self._has_guard[live], setpoint + shaped, tmeas)

        # PID update (position form, back-calculation anti-windup).
        dt = self._pid_dt[live]
        err = measurement - setpoint
        candidate = integral + err * dt
        prev = self._pid_prev[live]
        derivative = np.where(
            self._pid_has_prev[live], (err - prev) / dt, 0.0
        )
        output = offset + kp * err + ki * candidate + kd * derivative
        high = self._v_max[live]
        low = self._v_min[live]
        saturated = (output > high) | (output < low)
        clamped = np.where(output > high, high, low)
        back_calc = (clamped - offset - kp * err - kd * derivative) / np.where(
            ki > 0.0, ki, 1.0
        )
        integral = np.where(saturated & (ki > 0.0), back_calc, candidate)
        output = np.where(saturated, clamped, output)
        self._pid_integral[live] = integral
        self._pid_prev[live] = err
        self._pid_has_prev[live] = True
        self._pid_last_out[live] = output
        self._pid_has_out[live] = True

        # Direction sanity: a measurably hot reading must never produce a
        # speed decrease (mirrors AdaptivePIDFanController.propose).
        proposal = np.where(
            err > 0.0,
            np.maximum(output, applied),
            np.where(err < 0.0, np.minimum(output, applied), output),
        )
        slew = self._slew[live]
        proposal = np.minimum(
            np.maximum(proposal, applied - slew), applied + slew
        )
        proposals[~held] = proposal
        return proposals

    def _eco_actions(
        self,
        rows: np.ndarray,
        tmeas: np.ndarray,
        ds: np.ndarray,
        du: np.ndarray,
        fan_prop: np.ndarray,
        cur_fan: np.ndarray,
    ) -> np.ndarray:
        """E-coord action codes for the servers in ``rows`` (all E-coord).

        Replays :meth:`~repro.core.ecoord.EnergyAwareCoordinator.
        coordinate` element-wise.  The candidate-list ``max`` reduces to
        masks: the gate ``emergency or fan_useful`` is just
        ``fan_useful`` (the margin is non-negative, so emergency implies
        fan-useful); in the cooling branch cap-down's efficiency is
        ``inf`` while fan-up's is finite unless its power increase is
        non-positive (then both are ``inf`` and the first-listed fan-up
        wins the tie); in the relaxing branch fan-down's saving is
        ``>= 0`` while cap-up's is ``<= 0``, so fan-down always wins when
        both are proposed (ties break to the first-listed fan-down).
        """
        fan_useful = tmeas >= self._eco_gate_c[rows]
        fanup = (ds > 0) & fan_useful
        capdown = du < 0
        take_cooling = (fanup | capdown) & fan_useful
        pps = self._eco_fan_pps[rows]
        v_max = self._eco_fan_vmax[rows]
        power_inc = (
            pps * (fan_prop / v_max) ** 3 - pps * (cur_fan / v_max) ** 3
        )
        fan_wins = fanup & (~capdown | (power_inc <= 0.0))
        cooling = np.where(fan_wins, _FAN_UP, _CAP_DOWN)
        relaxing = np.where(
            ds < 0, _FAN_DOWN, np.where(du > 0, _CAP_UP, _NONE)
        )
        return np.where(take_cooling, cooling, relaxing).astype(np.int8)

    def _ssfan_override(
        self,
        rows: np.ndarray,
        fan: np.ndarray,
        util: np.ndarray,
        demand: np.ndarray,
        degradation: np.ndarray,
    ) -> np.ndarray:
        """SSfan phase machine for the servers in ``rows`` (all SSfan).

        ``fan`` is the coordinated fan speed; the return value is the
        (possibly overridden) speed to apply.  Mirrors
        :meth:`~repro.core.single_step.SingleStepFanScaling.apply` with
        int8 phase codes and masked transitions.
        """
        phase = self._ss_phase[rows]
        thr = self._ss_threshold[rows]
        boosted = phase == _SS_BOOSTED
        refractory = phase == _SS_REFRACTORY
        inactive = phase == _SS_INACTIVE
        periods = self._ss_periods[rows] + (boosted | refractory)
        degraded = degradation > thr
        cont_boost = boosted & degraded & (periods < self._ss_max_boost[rows])
        end_boost = boosted & ~cont_boost
        refr_done = refractory & (periods >= self._ss_refractory[rows])
        refr_hold = refractory & ~refr_done
        trigger = inactive & (thr > 0.0) & degraded

        max_speed = self._ss_max_speed[rows]
        new_fan = np.where(cont_boost | trigger, max_speed, fan)

        # Landing speed ("lowest possible fan speed which enables to run
        # required CPU utilization"): the scalar closed form of
        # SteadyStateServerModel.required_fan_speed_rpm, with safe
        # denominators on the rows that take a different branch.  Only
        # rows ending a boost or holding refractory need it, and the
        # final exponentiation goes through CPython's ``**`` - NumPy's
        # SIMD pow loop can differ from libm pow by an ulp, which would
        # break tier-A bit-for-bit equality.
        need = np.nonzero(end_boost | refr_hold)[0]
        if need.size:
            sub = rows[need]
            predicted = np.where(
                self._has_sp[sub], self._sp_predicted[sub], util[need]
            )
            demand_eff = np.minimum(
                np.maximum(
                    np.maximum(demand[need], predicted)
                    + self._ss_headroom[sub],
                    0.0,
                ),
                1.0,
            )
            power = (
                self._ss_p_static[sub] + self._ss_p_dynamic[sub] * demand_eff
            )
            power_pos = power > 0.0
            r_hs = (
                self._ss_target_c[sub] - self._ss_ambient_c[sub]
            ) / np.where(power_pos, power, 1.0) - self._ss_r_die[sub]
            r_var = r_hs - self._ss_r_base[sub]
            var_pos = r_var > 0.0
            base = self._ss_r_coeff[sub] / np.where(var_pos, r_var, 1.0)
            speed = np.array(
                [
                    float(b) ** float(e)
                    for b, e in zip(base, self._ss_inv_r_exp[sub])
                ]
            )
            sub_max = max_speed[need]
            sub_min = self._ss_min_speed[sub]
            landing = np.where(
                power_pos,
                np.where(
                    var_pos,
                    np.minimum(np.maximum(speed, sub_min), sub_max),
                    sub_max,
                ),
                sub_min,
            )
            new_fan[need] = landing
        transition = end_boost | refr_done | trigger
        self._ss_phase[rows] = np.where(
            end_boost,
            _SS_REFRACTORY,
            np.where(refr_done, _SS_INACTIVE, np.where(trigger, _SS_BOOSTED, phase)),
        ).astype(np.int8)
        self._ss_periods[rows] = np.where(transition, 0, periods)
        self._ss_boosts[rows] += trigger
        return new_fan

    def step_due(
        self,
        idx: np.ndarray,
        t: float,
        tmeas: np.ndarray,
        util: np.ndarray,
        demand: np.ndarray | None = None,
        degradation: np.ndarray | None = None,
    ) -> None:
        """One CPU control period for the servers in ``idx``.

        ``tmeas``, ``util``, ``demand``, and ``degradation`` are aligned
        with ``idx``.  ``demand`` (OS demand estimate) and
        ``degradation`` (post-record recent mean deficit) are required
        when any server carries the SSfan override (see
        :attr:`needs_degradation`); without SSfan they are unused.
        Updated knob settings land in :attr:`fan_speed_rpm` /
        :attr:`cpu_cap`.
        """
        if self._any_ss and degradation is None:
            raise SimulationError(
                "SSfan servers need the degradation signal; pass "
                "demand/degradation to step_due"
            )
        if idx.size == self._n:
            self._step_all(t, tmeas, util, demand, degradation)
        else:
            self._step_subset(idx, t, tmeas, util, demand, degradation)

    def _step_all(
        self,
        t: float,
        tmeas: np.ndarray,
        util: np.ndarray,
        demand: np.ndarray | None = None,
        degradation: np.ndarray | None = None,
    ) -> None:
        """All servers due at once (the common case: shared CPU period).

        Same decision sequence as :meth:`_step_subset`, minus the
        index gathers, and with whole op groups skipped when no server
        needs them (no fan period due, no capper, no set-point).
        """
        # Section V-B: predictive T_ref adjustment, every CPU period.
        if self._any_sp:
            if self._all_sp:
                self._update_setpoints_all(util)
            else:
                self._update_setpoints(self._sp_idx, util[self._has_sp])

        # Deadzone cap proposals.
        cap = self.cpu_cap
        if self._any_capper:
            proposed = np.where(
                tmeas > self._cap_high,
                cap - self._cap_step,
                np.where(tmeas < self._cap_low, cap + self._cap_step, cap),
            )
            cap_prop = np.minimum(
                np.maximum(proposed, self._cap_min), self._cap_max
            )
            self._last_cap_prop = cap_prop
            self._last_cap_none = ~self._has_capper
            d_cap = cap_prop - cap
            du = np.where(
                d_cap > _SIGN_TOL, 1, np.where(d_cap < -_SIGN_TOL, -1, 0)
            )
            if not self._all_capper:
                du = np.where(self._has_capper, du, 0)
        else:
            cap_prop = cap
            self._last_cap_none.fill(True)
            du = self._zero_sign

        # Fan proposals, only when some server's fan period is due.
        t_plus = t + 1e-9
        any_fan = self._next_fan_min <= t_plus
        if any_fan:
            fan_due = self._next_fan <= t_plus
            due = np.nonzero(fan_due)[0]
            if due.size == self._n:
                fan_prop = self._fan_proposals(self._all_idx, tmeas)
            else:
                fan_prop = np.zeros(self._n)
                fan_prop[fan_due] = self._fan_proposals(due, tmeas[fan_due])
            nxt = self._next_fan[due]
            interval = self._fan_interval[due]
            while True:
                late = nxt <= t_plus
                if not late.any():
                    break
                nxt = np.where(late, nxt + interval, nxt)
            self._next_fan[due] = nxt
            self._next_fan_min = float(self._next_fan.min())
            self._last_fan_prop = fan_prop
            self._last_fan_none = ~fan_due
        else:
            self._last_fan_none.fill(True)

        # Global coordination (Table II codes / E-coord / apply-all).
        cur_fan = self.fan_speed_rpm
        if any_fan:
            d_fan = fan_prop - cur_fan
            ds = np.where(
                fan_due,
                np.where(
                    d_fan > _SIGN_TOL, 1, np.where(d_fan < -_SIGN_TOL, -1, 0)
                ),
                0,
            )
            action = np.where(
                ds > 0,
                _FAN_UP,
                np.where(
                    ds < 0,
                    np.where(du > 0, _CAP_UP, _FAN_DOWN),
                    np.where(du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)),
                ),
            ).astype(np.int8)
        else:
            # ds == 0 everywhere: only the cap column of Table II remains.
            action = np.where(
                du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)
            ).astype(np.int8)

        if self._any_eco:
            eco = self._eco_idx
            if any_fan:
                eco_ds = ds[eco]
                eco_prop = fan_prop[eco]
            else:
                eco_ds = self._zero_sign[eco]
                eco_prop = cur_fan[eco]
            action[eco] = self._eco_actions(
                eco, tmeas[eco], eco_ds, du[eco], eco_prop, cur_fan[eco]
            )

        if self._all_coord:
            take_cap = (action == _CAP_UP) | (action == _CAP_DOWN)
        elif self._any_coord:
            take_cap = np.where(
                self._is_coord,
                (action == _CAP_UP) | (action == _CAP_DOWN),
                self._has_capper,
            )
        else:
            take_cap = self._has_capper
        self.cpu_cap = np.where(take_cap, cap_prop, cap)

        if any_fan:
            if self._all_coord:
                take_fan = (action == _FAN_UP) | (action == _FAN_DOWN)
            elif self._any_coord:
                take_fan = np.where(
                    self._is_coord,
                    (action == _FAN_UP) | (action == _FAN_DOWN),
                    fan_due,
                )
            else:
                take_fan = fan_due
            new_fan = np.where(take_fan, fan_prop, cur_fan)
        else:
            new_fan = cur_fan

        # Section V-C: SSfan override after coordination.
        if self._any_ss:
            assert demand is not None and degradation is not None
            ss = self._ss_idx
            if ss.size == self._n:
                new_fan = self._ssfan_override(
                    ss, new_fan, util, demand, degradation
                )
            else:
                if new_fan is cur_fan:
                    new_fan = cur_fan.copy()
                new_fan[ss] = self._ssfan_override(
                    ss, new_fan[ss], util[ss], demand[ss], degradation[ss]
                )
            self.fan_speed_rpm = new_fan
            # notify_applied: clamp into the physical limits.
            self._applied = np.minimum(
                np.maximum(new_fan, self._v_min), self._v_max
            )
        elif any_fan:
            self.fan_speed_rpm = new_fan
            # notify_applied: clamp into the physical limits.
            self._applied = np.minimum(
                np.maximum(new_fan, self._v_min), self._v_max
            )

        # Row indices are distinct (one action per server), so the
        # buffered fancy-index add is exact and cheaper than np.add.at.
        if self._all_coord:
            self._last_action = action
            self._action_counts[self._all_idx, action] += 1
        elif self._any_coord:
            coord_idx = self._coord_idx
            coord_action = action[coord_idx]
            self._last_action[coord_idx] = coord_action
            self._action_counts[coord_idx, coord_action] += 1

    def _step_subset(
        self,
        idx: np.ndarray,
        t: float,
        tmeas: np.ndarray,
        util: np.ndarray,
        demand: np.ndarray | None = None,
        degradation: np.ndarray | None = None,
    ) -> None:
        """General path for a strict due subset (mixed CPU periods)."""
        # Section V-B: predictive T_ref adjustment, every CPU period.
        has_sp = self._has_sp[idx]
        if has_sp.any():
            self._update_setpoints(idx[has_sp], util[has_sp])

        # Deadzone cap proposals (dummy coefficients make the no-capper
        # rows a no-op; they are masked out of the coordination below).
        cap = self.cpu_cap[idx]
        proposed = np.where(
            tmeas > self._cap_high[idx],
            cap - self._cap_step[idx],
            np.where(tmeas < self._cap_low[idx], cap + self._cap_step[idx], cap),
        )
        cap_prop = np.minimum(
            np.maximum(proposed, self._cap_min[idx]), self._cap_max[idx]
        )

        # Fan proposals for servers whose fan period is due.
        t_plus = t + 1e-9
        fan_due = self._next_fan[idx] <= t_plus
        fan_prop = np.zeros(idx.size)
        if fan_due.any():
            due = idx[fan_due]
            fan_prop[fan_due] = self._fan_proposals(due, tmeas[fan_due])
            nxt = self._next_fan[due]
            interval = self._fan_interval[due]
            while True:
                late = nxt <= t_plus
                if not late.any():
                    break
                nxt = np.where(late, nxt + interval, nxt)
            self._next_fan[due] = nxt
            self._next_fan_min = float(self._next_fan.min())

        self._last_fan_prop[idx] = fan_prop
        self._last_fan_none[idx] = ~fan_due
        has_capper = self._has_capper[idx]
        self._last_cap_prop[idx] = cap_prop
        self._last_cap_none[idx] = ~has_capper

        # Global coordination: Table II for rule-based servers, apply-all
        # for the uncoordinated baseline.
        cur_fan = self.fan_speed_rpm[idx]
        d_fan = fan_prop - cur_fan
        ds = np.where(
            fan_due,
            np.where(d_fan > _SIGN_TOL, 1, np.where(d_fan < -_SIGN_TOL, -1, 0)),
            0,
        )
        d_cap = cap_prop - cap
        du = np.where(
            has_capper,
            np.where(d_cap > _SIGN_TOL, 1, np.where(d_cap < -_SIGN_TOL, -1, 0)),
            0,
        )
        action = np.where(
            ds > 0,
            _FAN_UP,
            np.where(
                ds < 0,
                np.where(du > 0, _CAP_UP, _FAN_DOWN),
                np.where(du > 0, _CAP_UP, np.where(du < 0, _CAP_DOWN, _NONE)),
            ),
        ).astype(np.int8)
        eco = self._is_eco[idx]
        if eco.any():
            action[eco] = self._eco_actions(
                idx[eco],
                tmeas[eco],
                ds[eco],
                du[eco],
                fan_prop[eco],
                cur_fan[eco],
            )
        coord = self._is_coord[idx]
        take_fan = np.where(
            coord, (action == _FAN_UP) | (action == _FAN_DOWN), fan_due
        )
        take_cap = np.where(
            coord, (action == _CAP_UP) | (action == _CAP_DOWN), has_capper
        )
        new_fan = np.where(take_fan, fan_prop, cur_fan)
        new_cap = np.where(take_cap, cap_prop, cap)
        if coord.any():
            coord_idx = idx[coord]
            coord_action = action[coord]
            self._last_action[coord_idx] = coord_action
            self._action_counts[coord_idx, coord_action] += 1

        # Section V-C: SSfan override after coordination.
        ss = self._has_ss[idx]
        if ss.any():
            assert demand is not None and degradation is not None
            new_fan[ss] = self._ssfan_override(
                idx[ss], new_fan[ss], util[ss], demand[ss], degradation[ss]
            )

        self.fan_speed_rpm[idx] = new_fan
        self.cpu_cap[idx] = new_cap
        # notify_applied: clamp into the physical limits.
        self._applied[idx] = np.minimum(
            np.maximum(new_fan, self._v_min[idx]), self._v_max[idx]
        )

    def sync_back(self) -> None:
        """Write the final batch state into the scalar controller objects.

        After this, stepping a controller the scalar way continues the
        trajectory exactly where the vectorized run left it.
        """
        for i, controller in enumerate(self._controllers):
            fan = controller.fan_controller
            fan.restore_state(
                applied_speed_rpm=float(self._applied[i]),
                region_index=int(self._region_index[i]),
            )
            pid = fan.pid
            pid.gains = PIDGains(
                kp=float(self._pid_kp[i]),
                ki=float(self._pid_ki[i]),
                kd=float(self._pid_kd[i]),
            )
            pid.setpoint = float(self._pid_setpoint[i])
            pid.output_offset = float(self._pid_offset[i])
            pid.restore_state(
                integral=float(self._pid_integral[i]),
                prev_error=(
                    float(self._pid_prev[i]) if self._pid_has_prev[i] else None
                ),
                last_output=(
                    float(self._pid_last_out[i]) if self._pid_has_out[i] else None
                ),
            )
            guard = fan.quantization_guard
            if guard is not None:
                guard.restore_hold_count(int(self._hold_count[i]))
            coordinator = controller.coordinator
            if type(coordinator) in (RuleBasedCoordinator, EnergyAwareCoordinator):
                coordinator.restore_trace(
                    last_action=CODE_TO_ACTION[int(self._last_action[i])],
                    action_counts={
                        action: int(self._action_counts[i, code])
                        for code, action in enumerate(CODE_TO_ACTION)
                    },
                )
            single_step = controller.single_step
            if single_step is not None:
                single_step.restore_state(
                    phase=CODE_TO_SS_PHASE[int(self._ss_phase[i])],
                    periods_in_phase=int(self._ss_periods[i]),
                    boost_count=int(self._ss_boosts[i]),
                )
            setpoint = controller.setpoint
            if setpoint is not None:
                count = int(self._sp_count[i])
                order = (int(self._sp_head[i]) + np.arange(count)) % int(
                    self._sp_window[i]
                )
                setpoint.prediction_filter.restore(
                    samples=tuple(float(s) for s in self._sp_ring[i, order]),
                    total=float(self._sp_sum[i]),
                )
            controller.restore_decision_state(
                state=ControlState(
                    fan_speed_rpm=float(self.fan_speed_rpm[i]),
                    cpu_cap=float(self.cpu_cap[i]),
                ),
                t_ref_c=float(self.t_ref_c[i]),
                next_fan_decision_s=float(self._next_fan[i]),
                last_fan_proposal=(
                    None if self._last_fan_none[i] else float(self._last_fan_prop[i])
                ),
                last_cap_proposal=(
                    None if self._last_cap_none[i] else float(self._last_cap_prop[i])
                ),
            )
