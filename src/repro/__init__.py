"""repro: reproduction of Kim et al., "Global Fan Speed Control Considering
Non-Ideal Temperature Measurements in Enterprise Servers" (DATE 2014).

The library models an enterprise server (CPU die + fan-cooled heat sink,
Table I parameters), its non-ideal temperature telemetry (10 s I2C lag,
1 degC ADC quantization), and the paper's dynamic thermal management
stack: an adaptive gain-scheduled PID fan controller robust to those
non-idealities, a deadzone CPU capper, and a rule-based global coordinator
with predictive set-point adaptation and single-step fan scaling.

Quickstart::

    from repro import run_scheme

    result = run_scheme("rcoord_atref_ssfan", duration_s=1800.0, seed=1)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.config import (
    ControlConfig,
    CpuPowerConfig,
    CRACConfig,
    DieConfig,
    FanConfig,
    FleetConfig,
    HeatSinkConfig,
    RoomConfig,
    SensingConfig,
    ServerConfig,
    default_server_config,
    ideal_sensing_config,
)
from repro.core import (
    AdaptivePIDFanController,
    AdaptiveSetpoint,
    ControlInputs,
    ControlState,
    DeadzoneCpuCapper,
    DeadzoneFanController,
    EnergyAwareCoordinator,
    GainRegion,
    GainSchedule,
    GlobalController,
    PIDController,
    PIDGains,
    QuantizationGuard,
    RuleBasedCoordinator,
    SingleStepFanScaling,
    SingleThresholdFanController,
    StaticFanController,
    UncoordinatedCoordinator,
    ZieglerNicholsRule,
    find_ultimate_gain,
    tune_region,
    ziegler_nichols_gains,
)
from repro.errors import ReproError
from repro.faults import (
    FAULT_SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    TelemetryWatchdog,
    build_fault_scenario,
)
from repro.fleet import (
    CampaignRunner,
    CampaignTask,
    FleetResult,
    FleetSimulator,
    Rack,
    RecirculationMatrix,
    ServerSlot,
    build_fleet_scenario,
    campaign_grid,
    merge_campaign_obs,
)
from repro.obs import (
    ObsCollector,
    ObsConfig,
    merge_summaries,
)
from repro.room import (
    CRACUnit,
    Room,
    RoomResult,
    RoomSimulator,
    RoomTask,
    RoomTopology,
    SparseCoupling,
    build_room_scenario,
    room_campaign_grid,
    run_stacked_racks,
    uniform_room,
)
from repro.sensing import TemperatureSensor
from repro.sim import (
    SCHEME_NAMES,
    BatchGlobalController,
    BatchRunSpec,
    ParameterSweep,
    ServerStepper,
    SimulationResult,
    Simulator,
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
    parallel_map,
    run_batch,
    run_fan_only,
    run_scheme,
)
from repro.thermal import ServerThermalModel, SteadyStateServerModel

__version__ = "1.0.0"

__all__ = [
    "AdaptivePIDFanController",
    "AdaptiveSetpoint",
    "BatchGlobalController",
    "BatchRunSpec",
    "CampaignRunner",
    "CampaignTask",
    "ControlConfig",
    "ControlInputs",
    "ControlState",
    "CpuPowerConfig",
    "CRACConfig",
    "CRACUnit",
    "DeadzoneCpuCapper",
    "DeadzoneFanController",
    "DieConfig",
    "EnergyAwareCoordinator",
    "FAULT_SCENARIOS",
    "FanConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "GainRegion",
    "GainSchedule",
    "GlobalController",
    "HeatSinkConfig",
    "ObsCollector",
    "ObsConfig",
    "PIDController",
    "ParameterSweep",
    "PIDGains",
    "QuantizationGuard",
    "Rack",
    "RecirculationMatrix",
    "ReproError",
    "Room",
    "RoomConfig",
    "RoomResult",
    "RoomSimulator",
    "RoomTask",
    "RoomTopology",
    "RuleBasedCoordinator",
    "SCHEME_NAMES",
    "SensingConfig",
    "ServerConfig",
    "ServerSlot",
    "ServerStepper",
    "ServerThermalModel",
    "SimulationResult",
    "Simulator",
    "SingleStepFanScaling",
    "SingleThresholdFanController",
    "SparseCoupling",
    "StaticFanController",
    "SteadyStateServerModel",
    "TelemetryWatchdog",
    "TemperatureSensor",
    "UncoordinatedCoordinator",
    "ZieglerNicholsRule",
    "build_fault_scenario",
    "build_fleet_scenario",
    "build_global_controller",
    "build_plant",
    "build_room_scenario",
    "build_sensor",
    "campaign_grid",
    "default_server_config",
    "find_ultimate_gain",
    "ideal_sensing_config",
    "merge_campaign_obs",
    "merge_summaries",
    "paper_workload",
    "parallel_map",
    "room_campaign_grid",
    "run_batch",
    "run_fan_only",
    "run_scheme",
    "run_stacked_racks",
    "tune_region",
    "uniform_room",
    "ziegler_nichols_gains",
    "__version__",
]
