"""Energy accounting over a simulation run.

Integrates CPU and fan power with the trapezoidal rule, producing the
energy figures that Table III normalizes ("Norm. Fan energy consumption").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.units import check_nonnegative


@dataclass(frozen=True)
class EnergyBreakdown:
    """Accumulated energies in joules."""

    cpu_j: float
    fan_j: float

    @property
    def total_j(self) -> float:
        """Total server energy (CPU + fans)."""
        return self.cpu_j + self.fan_j

    @property
    def fan_fraction(self) -> float:
        """Fraction of total energy consumed by fans."""
        if self.total_j == 0.0:
            return 0.0
        return self.fan_j / self.total_j


class EnergyAccountant:
    """Online trapezoidal integrator for CPU and fan power samples.

    Feed one sample per simulation step via :meth:`record`; timestamps must
    be non-decreasing.
    """

    def __init__(self) -> None:
        self._last_time_s: float | None = None
        self._last_cpu_w = 0.0
        self._last_fan_w = 0.0
        self._cpu_j = 0.0
        self._fan_j = 0.0

    def record(self, time_s: float, cpu_power_w: float, fan_power_w: float) -> None:
        """Add one power sample at ``time_s``."""
        check_nonnegative(cpu_power_w, "cpu_power_w")
        check_nonnegative(fan_power_w, "fan_power_w")
        if self._last_time_s is not None:
            dt = time_s - self._last_time_s
            if dt < 0.0:
                raise AnalysisError(
                    f"energy samples must be time-ordered; got {time_s} after "
                    f"{self._last_time_s}"
                )
            self._cpu_j += 0.5 * (self._last_cpu_w + cpu_power_w) * dt
            self._fan_j += 0.5 * (self._last_fan_w + fan_power_w) * dt
        self._last_time_s = time_s
        self._last_cpu_w = cpu_power_w
        self._last_fan_w = fan_power_w

    @property
    def breakdown(self) -> EnergyBreakdown:
        """The accumulated energy so far."""
        return EnergyBreakdown(cpu_j=self._cpu_j, fan_j=self._fan_j)

    def reset(self) -> None:
        """Clear all accumulated state."""
        self._last_time_s = None
        self._last_cpu_w = 0.0
        self._last_fan_w = 0.0
        self._cpu_j = 0.0
        self._fan_j = 0.0
