"""Fan power models.

The paper uses the classic fan affinity law ``P_fan ∝ s_fan**3`` anchored
at Table I's 29.4 W per socket at 8500 rpm.  :class:`FanPowerModel`
implements exactly that; :class:`FanCurve` generalizes to an arbitrary
exponent and an offset (some server fans draw measurable power even when
barely spinning) for sensitivity studies.
"""

from __future__ import annotations

from repro.config import FanConfig
from repro.units import check_fan_speed, check_nonnegative, check_positive


class FanPowerModel:
    """Cubic fan power law anchored at the configured maximum point."""

    def __init__(self, config: FanConfig | None = None) -> None:
        self._config = config or FanConfig()

    @property
    def config(self) -> FanConfig:
        """Fan subsystem parameters."""
        return self._config

    def power_w(self, speed_rpm: float) -> float:
        """Fan power in watts at a speed in rpm (cubic law)."""
        speed = check_fan_speed(speed_rpm, "speed_rpm")
        ratio = speed / self._config.max_speed_rpm
        return self._config.power_per_socket_w * ratio**3

    def marginal_power_w_per_rpm(self, speed_rpm: float) -> float:
        """``dP/ds = 3 * P_max * s**2 / s_max**3``.

        The steep marginal cost at high speeds is what makes E-coord
        prefer CPU capping over fan boosts (Section II discussion of [6]).
        """
        speed = check_fan_speed(speed_rpm, "speed_rpm")
        s_max = self._config.max_speed_rpm
        return 3.0 * self._config.power_per_socket_w * speed**2 / s_max**3

    def speed_for_power_rpm(self, power_w: float) -> float:
        """Invert the cubic law: speed drawing exactly ``power_w``."""
        power = check_nonnegative(power_w, "power_w")
        ratio = (power / self._config.power_per_socket_w) ** (1.0 / 3.0)
        return ratio * self._config.max_speed_rpm


class FanCurve:
    """Generalized fan power curve ``P(s) = offset + k * (s/s_ref)**exponent``.

    ``k`` is chosen so that ``P(s_ref) = offset + anchor_power_w``.
    With ``offset = 0`` and ``exponent = 3`` this reduces to
    :class:`FanPowerModel`.
    """

    def __init__(
        self,
        anchor_power_w: float,
        anchor_speed_rpm: float,
        exponent: float = 3.0,
        offset_w: float = 0.0,
    ) -> None:
        self._anchor_power_w = check_positive(anchor_power_w, "anchor_power_w")
        self._anchor_speed_rpm = check_positive(anchor_speed_rpm, "anchor_speed_rpm")
        self._exponent = check_positive(exponent, "exponent")
        self._offset_w = check_nonnegative(offset_w, "offset_w")

    @property
    def exponent(self) -> float:
        """Power-law exponent (3 for the ideal affinity law)."""
        return self._exponent

    def power_w(self, speed_rpm: float) -> float:
        """Fan power at ``speed_rpm``."""
        speed = check_fan_speed(speed_rpm, "speed_rpm")
        ratio = speed / self._anchor_speed_rpm
        return self._offset_w + self._anchor_power_w * ratio**self._exponent
