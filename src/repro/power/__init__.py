"""Power substrate: CPU power (Eqn 1), cubic fan law, and energy accounting."""

from repro.power.cpu import CpuPowerModel
from repro.power.energy import EnergyAccountant, EnergyBreakdown
from repro.power.fan import FanCurve, FanPowerModel

__all__ = [
    "CpuPowerModel",
    "EnergyAccountant",
    "EnergyBreakdown",
    "FanCurve",
    "FanPowerModel",
]
