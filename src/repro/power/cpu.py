"""CPU power model: Eqn (1) of the paper.

``P_cpu = P_static + P_dyn * u`` with ``u`` the CPU utilization in [0, 1],
following Economou et al. [16] and Pedram & Hwang [17].
"""

from __future__ import annotations

from repro.config import CpuPowerConfig
from repro.errors import UnitsError
from repro.units import check_utilization


class CpuPowerModel:
    """Linear-in-utilization CPU power model (Eqn 1)."""

    def __init__(self, config: CpuPowerConfig | None = None) -> None:
        self._config = config or CpuPowerConfig()

    @property
    def config(self) -> CpuPowerConfig:
        """The power-model parameters."""
        return self._config

    def power_w(self, utilization: float) -> float:
        """CPU power in watts at the given utilization."""
        util = check_utilization(utilization, "utilization")
        return self._config.p_static_w + self._config.p_dynamic_w * util

    def utilization_for_power(self, power_w: float) -> float:
        """Invert Eqn (1): utilization that draws exactly ``power_w``.

        Raises :class:`UnitsError` if the power lies outside
        ``[P_idle, P_max]`` (no utilization can produce it).
        """
        cfg = self._config
        if not cfg.p_idle_w <= power_w <= cfg.p_max_w:
            raise UnitsError(
                f"power {power_w} W outside [{cfg.p_idle_w}, {cfg.p_max_w}] W"
            )
        if cfg.p_dynamic_w == 0.0:
            return 0.0
        return (power_w - cfg.p_static_w) / cfg.p_dynamic_w

    def marginal_power_per_utilization_w(self) -> float:
        """``dP/du = P_dyn``; used by E-coord's efficiency ratios."""
        return self._config.p_dynamic_w
