"""Single-step fan speed scaling: SSfan (Section V-C).

Load spikes are faster than the fan loop's settling time
(``N_trans * t_interval``; Bhattacharya et al. [20]), so a spike can
throttle the CPU for minutes while the PID ramps the fan.  SSfan bounds
that loss: when the *measured performance degradation* exceeds a
threshold, the fan jumps straight to maximum speed in a single step.  As
soon as the degradation clears, the fan steps down to "the lowest
possible fan speed which enables to run required CPU utilization without
any temperature violation" - computed from the steady-state model and the
OS's (fresh) demand estimate - and normal PID control resumes from there.

The scheme is a momentary override, not a sustained boost: the max-speed
blast crushes the junction temperature so the capper can restore the cap,
and the computed landing speed is what actually serves the new demand.  A
refractory period prevents chattering re-triggers while the PID settles.
"""

from __future__ import annotations

import enum

from repro.core.base import ControlInputs, ControlState
from repro.errors import ControlError
from repro.thermal.steady_state import SteadyStateServerModel
from repro.units import check_nonnegative, check_utilization, clamp


class SingleStepPhase(enum.Enum):
    """Internal state of the SSfan override."""

    INACTIVE = "inactive"
    BOOSTED = "boosted"
    REFRACTORY = "refractory"


class SingleStepFanScaling:
    """Performance-triggered maximum-fan override.

    Parameters
    ----------
    model:
        Steady-state plant model for the step-down speed computation.
    degradation_threshold:
        Recent mean utilization deficit that triggers the boost
        (utilization units; e.g. 0.08 = 8% lost utilization).
    max_boost_periods:
        Upper bound on how many CPU control periods the max-speed blast
        may last before the landing step is forced.
    refractory_periods:
        Periods after landing during which no re-trigger is allowed
        (lets the cap recover and the degradation window flush).
    headroom_util:
        Extra utilization margin added to the demand estimate when
        computing the landing speed, to absorb the spike's remainder.
    landing_margin_c:
        Safety margin below the critical temperature used for the landing
        speed.  The paper's wording is "without any temperature
        violation", i.e. the landing targets the critical limit (not the
        energy-optimal T_ref) - the PID then trims back down once the
        spike passes.
    """

    def __init__(
        self,
        model: SteadyStateServerModel,
        degradation_threshold: float = 0.08,
        max_boost_periods: int = 5,
        refractory_periods: int = 30,
        headroom_util: float = 0.05,
        landing_margin_c: float = 2.0,
    ) -> None:
        self._model = model
        self._threshold = check_nonnegative(
            degradation_threshold, "degradation_threshold"
        )
        if max_boost_periods < 1:
            raise ControlError(
                f"max_boost_periods must be >= 1, got {max_boost_periods}"
            )
        if refractory_periods < 0:
            raise ControlError(
                f"refractory_periods must be >= 0, got {refractory_periods}"
            )
        self._max_boost = max_boost_periods
        self._refractory = refractory_periods
        self._headroom = check_nonnegative(headroom_util, "headroom_util")
        self._landing_margin_c = check_nonnegative(
            landing_margin_c, "landing_margin_c"
        )
        self._phase = SingleStepPhase.INACTIVE
        self._periods_in_phase = 0
        self._boost_count = 0

    @property
    def phase(self) -> SingleStepPhase:
        """Current override phase."""
        return self._phase

    @property
    def boost_count(self) -> int:
        """How many times the max-speed boost has engaged."""
        return self._boost_count

    @property
    def degradation_threshold(self) -> float:
        """The triggering degradation level."""
        return self._threshold

    @property
    def model(self) -> SteadyStateServerModel:
        """The steady-state plant model used for landing speeds."""
        return self._model

    @property
    def max_boost_periods(self) -> int:
        """Upper bound on consecutive max-speed boost periods."""
        return self._max_boost

    @property
    def refractory_periods(self) -> int:
        """Periods after landing during which no re-trigger is allowed."""
        return self._refractory

    @property
    def headroom_util(self) -> float:
        """Extra utilization margin for the landing-speed computation."""
        return self._headroom

    @property
    def landing_margin_c(self) -> float:
        """Safety margin below the critical temperature when landing."""
        return self._landing_margin_c

    @property
    def periods_in_phase(self) -> int:
        """CPU control periods spent in the current phase."""
        return self._periods_in_phase

    def restore_state(
        self,
        phase: SingleStepPhase,
        periods_in_phase: int,
        boost_count: int,
    ) -> None:
        """Overwrite the spike-history state (batch backend sync-back)."""
        self._phase = phase
        self._periods_in_phase = int(periods_in_phase)
        self._boost_count = int(boost_count)

    def _required_speed_rpm(
        self, inputs: ControlInputs, predicted_util: float
    ) -> float:
        """Lowest safe speed for the current demand estimate.

        "Safe" means the steady-state junction stays ``landing_margin_c``
        below the critical temperature at the estimated demand plus
        headroom.
        """
        demand_estimate = inputs.demand_estimate
        assert demand_estimate is not None  # defaulted in ControlInputs
        demand = clamp(
            max(demand_estimate, predicted_util) + self._headroom, 0.0, 1.0
        )
        target_c = (
            self._model.config.control.t_critical_c - self._landing_margin_c
        )
        return self._model.required_fan_speed_rpm(demand, target_c)

    def apply(
        self,
        state: ControlState,
        inputs: ControlInputs,
        t_ref_c: float,
        predicted_util: float,
    ) -> ControlState:
        """Post-process the coordinated state; may override the fan speed.

        Called after coordination each CPU control period.  Returns the
        (possibly overridden) state to apply.
        """
        check_utilization(predicted_util, "predicted_util")
        max_speed = self._model.config.fan.max_speed_rpm

        if self._phase is SingleStepPhase.BOOSTED:
            self._periods_in_phase += 1
            degraded = inputs.recent_degradation > self._threshold
            if degraded and self._periods_in_phase < self._max_boost:
                return state.with_fan(max_speed)
            self._phase = SingleStepPhase.REFRACTORY
            self._periods_in_phase = 0
            return state.with_fan(
                self._required_speed_rpm(inputs, predicted_util)
            )

        if self._phase is SingleStepPhase.REFRACTORY:
            self._periods_in_phase += 1
            if self._periods_in_phase >= self._refractory:
                self._phase = SingleStepPhase.INACTIVE
                self._periods_in_phase = 0
                return state
            # "We lower the fan speed to reach the lowest possible fan
            # speed which enables to run required CPU utilization": track
            # the spike's decay at the CPU control cadence instead of
            # waiting for the slow fan-period PID descent; hand control
            # back to the PID once the refractory window closes.
            return state.with_fan(
                self._required_speed_rpm(inputs, predicted_util)
            )

        # INACTIVE
        if self._threshold > 0.0 and inputs.recent_degradation > self._threshold:
            self._phase = SingleStepPhase.BOOSTED
            self._periods_in_phase = 0
            self._boost_count += 1
            return state.with_fan(max_speed)
        return state
