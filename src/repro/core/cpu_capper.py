"""Deadzone CPU cap controller (Section III-A).

The paper deliberately keeps the CPU-side local controller simple: a
deadzone scheme with two thresholds that nudges the maximum allowable
utilization (the "CPU cap") down when the measured temperature is above
the upper threshold and back up when it is below the lower one, holding
inside the zone.

Note: the paper's prose states the direction inverted ("u_cpu is only
increased when T_meas is higher than T_high_th"); taken literally that is
positive thermal feedback and diverges.  We implement the standard,
thermally stabilizing direction (documented in DESIGN.md).
"""

from __future__ import annotations

from repro.errors import ControlError
from repro.units import check_temperature, check_utilization, clamp


class DeadzoneCpuCapper:
    """Two-threshold CPU utilization capper.

    Parameters
    ----------
    t_low_c, t_high_c:
        The deadzone ``[T_low_th, T_high_th]``.
    step:
        Cap adjustment per decision (utilization units).
    cap_min, cap_max:
        Cap range; the cap never throttles below ``cap_min``.
    """

    def __init__(
        self,
        t_low_c: float,
        t_high_c: float,
        step: float = 0.05,
        cap_min: float = 0.1,
        cap_max: float = 1.0,
    ) -> None:
        self._t_low_c = check_temperature(t_low_c, "t_low_c")
        self._t_high_c = check_temperature(t_high_c, "t_high_c")
        if self._t_low_c > self._t_high_c:
            raise ControlError(
                f"t_low_c ({t_low_c}) must not exceed t_high_c ({t_high_c})"
            )
        check_utilization(cap_min, "cap_min")
        check_utilization(cap_max, "cap_max")
        if cap_min > cap_max:
            raise ControlError(f"cap_min ({cap_min}) must not exceed cap_max ({cap_max})")
        if not 0.0 < step <= 1.0:
            raise ControlError(f"step must be in (0, 1], got {step}")
        self._step = step
        self._cap_min = cap_min
        self._cap_max = cap_max

    @property
    def deadzone_c(self) -> tuple[float, float]:
        """The ``(T_low, T_high)`` thresholds."""
        return self._t_low_c, self._t_high_c

    @property
    def step(self) -> float:
        """Cap adjustment per decision."""
        return self._step

    @property
    def cap_range(self) -> tuple[float, float]:
        """The ``(cap_min, cap_max)`` clamp range."""
        return self._cap_min, self._cap_max

    def propose(self, time_s: float, tmeas_c: float, current_cap: float) -> float:
        """Proposed cap for the next CPU control period.

        Lowers the cap above the deadzone, raises it below, holds inside.
        """
        check_utilization(current_cap, "current_cap")
        if tmeas_c > self._t_high_c:
            proposed = current_cap - self._step
        elif tmeas_c < self._t_low_c:
            proposed = current_cap + self._step
        else:
            proposed = current_cap
        return clamp(proposed, self._cap_min, self._cap_max)
