"""E-coord: energy-aware coordination baseline (Ayoub et al. [6]).

Section II describes the scheme the paper compares against: when several
control actions could resolve a thermal state, take the one with the best
*efficiency* - the ratio of temperature reduction to energy increase -
without regard to performance impact.

Policy implemented here (and its reading of [6]):

* **Thermal emergency** (measurement at/above ``t_emergency_c``): both
  *cap down* and *fan up* would cool.  Capping sheds dynamic CPU power,
  so its energy delta is negative and its efficiency unbounded, while a
  fan boost pays the cubic fan law; the capper therefore wins whenever it
  still has range.  This is exactly why E-coord's deadline violations
  blow up in Table III.
* **Pre-emergency band** (within ``fan_admission_margin_c`` below the
  emergency threshold): a fan increase now has a genuine temperature-
  violation-avoidance benefit, so it is admitted.  Below that band a fan
  boost buys nothing [6] values - it only spends energy - so fan-up
  proposals are rejected.
* **Relaxation** (cooling unneeded): the most energy-saving action wins;
  lowering the fan saves energy while raising the cap costs energy, so
  fan-downs win at instants where both are proposed, and cap recovery
  proceeds on the CPU controller's own (more frequent) decisions.

Marginal temperature/energy figures come from the closed-form steady-state
model (:class:`~repro.thermal.steady_state.SteadyStateServerModel`), i.e.
the same plant knowledge [6] assumes.
"""

from __future__ import annotations

from repro.core.base import ControlInputs, ControlState, Coordinator
from repro.core.rules import CoordinationAction, classify
from repro.errors import ControlError
from repro.thermal.steady_state import SteadyStateServerModel
from repro.units import check_nonnegative, check_temperature


class EnergyAwareCoordinator(Coordinator):
    """Efficiency-ratio action selection in the style of [6].

    Parameters
    ----------
    model:
        Steady-state plant model used for marginal dT and dP estimates.
    t_emergency_c:
        Measured temperature at/above which cooling action is mandatory.
    t_comfort_c:
        Measured temperature below which relaxation actions are considered.
    fan_admission_margin_c:
        Width of the pre-emergency band in which a fan increase is deemed
        to have violation-avoidance value and is admitted.
    """

    def __init__(
        self,
        model: SteadyStateServerModel,
        t_emergency_c: float = 80.0,
        t_comfort_c: float = 76.0,
        fan_admission_margin_c: float = 1.0,
    ) -> None:
        self._model = model
        self._t_emergency_c = check_temperature(t_emergency_c, "t_emergency_c")
        self._t_comfort_c = check_temperature(t_comfort_c, "t_comfort_c")
        if self._t_comfort_c > self._t_emergency_c:
            raise ControlError(
                f"t_comfort_c ({t_comfort_c}) must not exceed "
                f"t_emergency_c ({t_emergency_c})"
            )
        self._fan_margin_c = check_nonnegative(
            fan_admission_margin_c, "fan_admission_margin_c"
        )
        self._last_action = CoordinationAction.NONE
        self._action_counts: dict[CoordinationAction, int] = {
            action: 0 for action in CoordinationAction
        }

    @property
    def last_action(self) -> CoordinationAction:
        """Action chosen at the most recent decision."""
        return self._last_action

    @property
    def action_counts(self) -> dict[CoordinationAction, int]:
        """Histogram of actions chosen so far."""
        return dict(self._action_counts)

    @property
    def model(self) -> SteadyStateServerModel:
        """The steady-state plant model used for marginal estimates."""
        return self._model

    @property
    def t_emergency_c(self) -> float:
        """Measured temperature at/above which cooling is mandatory."""
        return self._t_emergency_c

    @property
    def t_comfort_c(self) -> float:
        """Measured temperature below which relaxation is considered."""
        return self._t_comfort_c

    @property
    def fan_admission_margin_c(self) -> float:
        """Width of the pre-emergency fan-admission band."""
        return self._fan_margin_c

    def restore_trace(
        self,
        last_action: CoordinationAction,
        action_counts: dict[CoordinationAction, int],
    ) -> None:
        """Overwrite the decision trace (batch backend sync-back)."""
        self._last_action = last_action
        self._action_counts = {
            action: int(action_counts.get(action, 0))
            for action in CoordinationAction
        }

    def coordinate(
        self,
        current: ControlState,
        fan_proposal: float | None,
        cap_proposal: float | None,
        inputs: ControlInputs,
    ) -> ControlState:
        ds = 0 if fan_proposal is None else classify(
            fan_proposal - current.fan_speed_rpm
        )
        du = 0 if cap_proposal is None else classify(cap_proposal - current.cpu_cap)

        emergency = inputs.tmeas_c >= self._t_emergency_c
        fan_useful = inputs.tmeas_c >= self._t_emergency_c - self._fan_margin_c

        cooling: list[tuple[float, CoordinationAction, ControlState]] = []
        relaxing: list[tuple[float, CoordinationAction, ControlState]] = []

        if ds > 0 and fan_useful:
            assert fan_proposal is not None
            cooling.append(
                (
                    self._fan_up_efficiency(current, fan_proposal, inputs),
                    CoordinationAction.FAN_UP,
                    current.with_fan(fan_proposal),
                )
            )
        elif ds < 0:
            assert fan_proposal is not None
            relaxing.append(
                (
                    self._fan_down_saving_w(current, fan_proposal),
                    CoordinationAction.FAN_DOWN,
                    current.with_fan(fan_proposal),
                )
            )
        if du < 0:
            assert cap_proposal is not None
            # Shedding dynamic CPU power cools AND saves energy: the
            # efficiency ratio is unbounded, so it dominates any fan boost.
            cooling.append(
                (
                    float("inf"),
                    CoordinationAction.CAP_DOWN,
                    current.with_cap(cap_proposal),
                )
            )
        elif du > 0:
            assert cap_proposal is not None
            relaxing.append(
                (
                    self._cap_up_saving_w(current, cap_proposal),
                    CoordinationAction.CAP_UP,
                    current.with_cap(cap_proposal),
                )
            )

        if cooling and (emergency or fan_useful):
            _, action, state = max(cooling, key=lambda item: item[0])
        elif relaxing:
            _, action, state = max(relaxing, key=lambda item: item[0])
        else:
            action, state = CoordinationAction.NONE, current
        self._last_action = action
        self._action_counts[action] += 1
        return state

    def _fan_up_efficiency(
        self, current: ControlState, proposal: float, inputs: ControlInputs
    ) -> float:
        """Temperature reduction per watt for a fan speed increase."""
        delta_s = proposal - current.fan_speed_rpm
        slope = self._model.junction_slope_per_rpm(
            inputs.measured_util, current.fan_speed_rpm
        )
        temp_reduction = -slope * delta_s  # slope < 0, so this is positive
        power_increase = (
            self._model.fan_power_w(proposal)
            - self._model.fan_power_w(current.fan_speed_rpm)
        )
        if power_increase <= 0.0:
            return float("inf")
        return temp_reduction / power_increase

    def _fan_down_saving_w(self, current: ControlState, proposal: float) -> float:
        """Power saved by a fan decrease (always >= 0 for a real decrease)."""
        return self._model.fan_power_w(current.fan_speed_rpm) - self._model.fan_power_w(
            proposal
        )

    def _cap_up_saving_w(self, current: ControlState, proposal: float) -> float:
        """(Negative) power saving of a cap increase: it costs power."""
        delta_u = proposal - current.cpu_cap
        return -self._model.marginal_cpu_power_w_per_util() * delta_u
