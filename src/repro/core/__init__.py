"""The paper's contribution: robust fan control and global coordination.

Section IV (robust fan speed controller):

* :class:`~repro.core.pid.PIDController` - discrete PID with anti-windup.
* :mod:`repro.core.tuning` - Ziegler-Nichols closed-loop tuning (Eqns 5-7)
  run as an actual experiment on the simulated plant.
* :class:`~repro.core.gain_schedule.GainSchedule` - per-fan-speed-region
  parameter interpolation (Eqns 8-9).
* :class:`~repro.core.quantization.QuantizationGuard` - Eqn 10 deadband.
* :class:`~repro.core.fan_controller.AdaptivePIDFanController` - the
  composed robust controller.

Section V (global controller):

* :class:`~repro.core.rules.RuleBasedCoordinator` - Table II.
* :class:`~repro.core.setpoint.AdaptiveSetpoint` - predictive T_ref (V-B).
* :class:`~repro.core.single_step.SingleStepFanScaling` - SSfan (V-C).
* :class:`~repro.core.global_controller.GlobalController` - the assembled
  DTM unit of Fig. 2.

Baselines used in the evaluation:

* :mod:`repro.core.fan_baselines` - single-threshold / deadzone / static.
* :class:`~repro.core.ecoord.EnergyAwareCoordinator` - E-coord [6].
* :class:`~repro.core.uncoordinated.UncoordinatedCoordinator`.
"""

from repro.core.base import (
    ControlInputs,
    ControlState,
    Coordinator,
    FanController,
)
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.ecoord import EnergyAwareCoordinator
from repro.core.fan_baselines import (
    DeadzoneFanController,
    SingleThresholdFanController,
    StaticFanController,
)
from repro.core.fan_controller import AdaptivePIDFanController
from repro.core.gain_schedule import GainRegion, GainSchedule
from repro.core.global_controller import GlobalController
from repro.core.pid import PIDController, PIDGains
from repro.core.quantization import QuantizationGuard
from repro.core.rules import CoordinationAction, RuleBasedCoordinator
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling
from repro.core.tuning import (
    UltimateGain,
    ZieglerNicholsRule,
    find_ultimate_gain,
    tune_region,
    ziegler_nichols_gains,
)
from repro.core.uncoordinated import UncoordinatedCoordinator

__all__ = [
    "AdaptivePIDFanController",
    "AdaptiveSetpoint",
    "ControlInputs",
    "ControlState",
    "CoordinationAction",
    "Coordinator",
    "DeadzoneCpuCapper",
    "DeadzoneFanController",
    "EnergyAwareCoordinator",
    "FanController",
    "GainRegion",
    "GainSchedule",
    "GlobalController",
    "PIDController",
    "PIDGains",
    "QuantizationGuard",
    "RuleBasedCoordinator",
    "SingleStepFanScaling",
    "SingleThresholdFanController",
    "StaticFanController",
    "UltimateGain",
    "UncoordinatedCoordinator",
    "ZieglerNicholsRule",
    "find_ultimate_gain",
    "tune_region",
    "ziegler_nichols_gains",
]
