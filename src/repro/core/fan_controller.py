"""The robust adaptive PID fan speed controller (Section IV).

Composes the three Section IV mechanisms:

* PID control law (Eqn 4) with Ziegler-Nichols-derived gains,
* gain scheduling over fan-speed regions (Eqns 8-9), including the
  integral reset and offset re-basing on region change, and
* the quantization-error elimination deadband (Eqn 10).

The controller is *position-form*: each decision produces an absolute fan
speed ``s_ref + PID terms``.  On a region change the offset ``s_ref`` is
re-based to the currently applied speed and the integral cleared, which
keeps the transfer bumpless (the paper: "when the operating region is
changed, s_ref in Eqn (4) is updated and the error sum is set to zero").
"""

from __future__ import annotations

from repro.core.base import FanController
from repro.core.gain_schedule import GainSchedule
from repro.core.pid import PIDController
from repro.core.quantization import QuantizationGuard
from repro.errors import ControlError
from repro.units import check_duration, check_fan_speed, check_temperature


class AdaptivePIDFanController(FanController):
    """Gain-scheduled PID fan controller robust to lag and quantization.

    Parameters
    ----------
    schedule:
        Tuned gain regions; a single-region schedule reproduces the
        conventional fixed-gain PID baseline of Fig. 3.
    t_ref_c:
        Reference junction temperature to track (may be changed at runtime
        by the adaptive set-point scheme via :meth:`set_reference`).
    fan_limits_rpm:
        Physical ``(min, max)`` fan speed.
    interval_s:
        Fan decision period (Section VI-A: 30 s).
    initial_speed_rpm:
        Speed assumed applied before the first decision.
    quantization_guard:
        Eqn 10 deadband; ``None`` disables it (ablation studies).
    slew_limit_rpm:
        Maximum speed change per decision.  Server fan firmware ramps the
        fan over several decision periods rather than jumping (this is the
        ``N_trans * t_interval`` transient the paper's Section V-C builds
        on); ``None`` disables the limit.  Single-step scaling bypasses it
        by overriding *after* coordination.
    """

    def __init__(
        self,
        schedule: GainSchedule,
        t_ref_c: float,
        fan_limits_rpm: tuple[float, float],
        interval_s: float = 30.0,
        initial_speed_rpm: float | None = None,
        quantization_guard: QuantizationGuard | None = None,
        slew_limit_rpm: float | None = None,
    ) -> None:
        self._schedule = schedule
        low, high = fan_limits_rpm
        check_fan_speed(low, "fan_limits_rpm[0]")
        check_fan_speed(high, "fan_limits_rpm[1]")
        if low >= high:
            raise ControlError(f"fan limits must satisfy min < max: {fan_limits_rpm}")
        self._limits = (low, high)
        check_duration(interval_s, "interval_s")
        if initial_speed_rpm is None:
            initial_speed_rpm = 0.5 * (low + high)
        self._applied_speed = min(max(initial_speed_rpm, low), high)
        self._guard = quantization_guard
        if slew_limit_rpm is not None and slew_limit_rpm <= 0.0:
            raise ControlError(
                f"slew_limit_rpm must be positive or None, got {slew_limit_rpm}"
            )
        self._slew_limit = slew_limit_rpm
        self._region_index = schedule.segment_index(self._applied_speed)
        self._pid = PIDController(
            gains=schedule.gains_at(self._applied_speed),
            setpoint=check_temperature(t_ref_c, "t_ref_c"),
            sample_time_s=interval_s,
            output_offset=self._applied_speed,
            output_limits=self._limits,
        )

    @property
    def schedule(self) -> GainSchedule:
        """The gain schedule in use."""
        return self._schedule

    @property
    def t_ref_c(self) -> float:
        """Currently tracked reference temperature."""
        return self._pid.setpoint

    @property
    def applied_speed_rpm(self) -> float:
        """Fan speed the controller believes is currently applied."""
        return self._applied_speed

    @property
    def region_index(self) -> int:
        """Current operating-region segment index."""
        return self._region_index

    @property
    def pid(self) -> PIDController:
        """The underlying PID (exposed for inspection/tests)."""
        return self._pid

    @property
    def slew_limit_rpm(self) -> float | None:
        """Per-decision speed-change limit (None = unlimited)."""
        return self._slew_limit

    @property
    def fan_limits_rpm(self) -> tuple[float, float]:
        """Physical ``(min, max)`` fan speed."""
        return self._limits

    @property
    def quantization_guard(self) -> QuantizationGuard | None:
        """The Eqn 10 deadband guard (None when disabled)."""
        return self._guard

    def restore_state(self, applied_speed_rpm: float, region_index: int) -> None:
        """Overwrite the controller's own mutable state (batch sync-back).

        The embedded PID's state is restored separately through
        :meth:`~repro.core.pid.PIDController.restore_state` and the public
        ``gains``/``setpoint``/``output_offset`` setters; this method only
        covers the fields the fan controller itself owns.
        """
        low, high = self._limits
        self._applied_speed = min(max(float(applied_speed_rpm), low), high)
        self._region_index = int(region_index)

    def set_reference(self, t_ref_c: float) -> None:
        """Change the tracked reference temperature (A-Tref hook)."""
        self._pid.setpoint = check_temperature(t_ref_c, "t_ref_c")

    def notify_applied(self, fan_speed_rpm: float) -> None:
        """Record the speed the coordinator actually applied.

        Keeps the position-form controller anchored to reality when a
        proposal was rejected or overridden (rule-based coordination,
        single-step scaling).
        """
        low, high = self._limits
        self._applied_speed = min(max(fan_speed_rpm, low), high)

    def propose(self, time_s: float, tmeas_c: float) -> float:
        """One fan decision (Eqn 4 with Eqns 8-10 applied).

        Call once per fan decision period with the firmware-visible
        temperature.  Returns the proposed speed; it becomes binding only
        after the coordinator applies it and :meth:`notify_applied` runs.
        """
        # Eqn 10: inside the quantization deadband, freeze everything.
        if self._guard is not None and self._guard.should_hold(
            self._pid.setpoint, tmeas_c
        ):
            return self._applied_speed

        # Eqns 8-9: gains follow the *applied* operating speed.
        region = self._schedule.segment_index(self._applied_speed)
        if region != self._region_index:
            # Region change: re-base the offset and clear the error sum.
            self._region_index = region
            self._pid.output_offset = self._applied_speed
            self._pid.reset_integral()
        self._pid.gains = self._schedule.gains_at(self._applied_speed)

        # Deadband error shaping: act only on the part of the error that
        # exceeds one LSB, so the loop can settle into the Eqn 10 hold
        # window instead of repeatedly hopping across it.
        measurement = tmeas_c
        if self._guard is not None:
            error = tmeas_c - self._pid.setpoint
            measurement = self._pid.setpoint + self._guard.shape_error(error)

        proposal = self._pid.update(measurement)
        # Direction sanity: a measurably hot reading must never produce a
        # speed *decrease* (nor a cold reading an increase).  The position
        # form's integral lags workload phase changes by design; without
        # this guard its stale value can briefly dominate the fresh error
        # and invert the action - which the Table II rules would then
        # amplify by letting the inverted fan action pre-empt a cap cut.
        shaped_error = measurement - self._pid.setpoint
        if shaped_error > 0.0:
            proposal = max(proposal, self._applied_speed)
        elif shaped_error < 0.0:
            proposal = min(proposal, self._applied_speed)
        if self._slew_limit is not None:
            lo = self._applied_speed - self._slew_limit
            hi = self._applied_speed + self._slew_limit
            proposal = min(max(proposal, lo), hi)
        return proposal
