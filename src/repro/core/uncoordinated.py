"""The uncoordinated baseline (Table III: "w/o coordination").

Both local controllers act independently: every proposal is applied as-is,
conflicts and all.  This is the configuration whose joint dynamics the
paper argues are not guaranteed stable, and the normalization baseline for
Table III's energy column.
"""

from __future__ import annotations

from repro.core.base import ControlInputs, ControlState, Coordinator


class UncoordinatedCoordinator(Coordinator):
    """Applies every local proposal unconditionally."""

    def coordinate(
        self,
        current: ControlState,
        fan_proposal: float | None,
        cap_proposal: float | None,
        inputs: ControlInputs,
    ) -> ControlState:
        state = current
        if fan_proposal is not None:
            state = state.with_fan(fan_proposal)
        if cap_proposal is not None:
            state = state.with_cap(cap_proposal)
        return state
