"""Quantization-error elimination (Section IV-C, Eqn 10).

With a 1 degC LSB, a converged loop still sees the measurement toggle
between adjacent codes, and the PID chases that dither forever - the
fan-speed jitter of Fig. 4.  Eqn (10) freezes the fan speed whenever the
apparent error is smaller than the quantization step:

    s(k+1) = s(k)   when |T_ref - T_meas(k)| < |T_Q|

The guard here additionally freezes the *controller state* (no integral
accumulation while held), so the dither cannot wind the integral up.
"""

from __future__ import annotations

from repro.units import check_nonnegative


class QuantizationGuard:
    """Deadband comparator implementing Eqn (10).

    Parameters
    ----------
    quantization_step_c:
        The ``|T_Q|`` of Eqn (10); a value of 0 disables the guard.
    margin:
        Optional multiplicative margin on the step (1.0 = exactly Eqn 10).
        Values slightly above 1 add robustness when noise rides on top of
        quantization.
    """

    def __init__(self, quantization_step_c: float, margin: float = 1.0) -> None:
        self._step = check_nonnegative(quantization_step_c, "quantization_step_c")
        self._margin = check_nonnegative(margin, "margin")
        self._hold_count = 0

    @property
    def step_c(self) -> float:
        """The quantization step |T_Q|."""
        return self._step

    @property
    def threshold_c(self) -> float:
        """Effective deadband half-width (step * margin)."""
        return self._step * self._margin

    @property
    def hold_count(self) -> int:
        """How many decisions the guard has suppressed so far."""
        return self._hold_count

    def restore_hold_count(self, count: int) -> None:
        """Overwrite the hold counter (batch backend sync-back)."""
        self._hold_count = int(count)

    def should_hold(self, t_ref_c: float, tmeas_c: float) -> bool:
        """True when Eqn (10) says to keep the fan speed unchanged."""
        if self._step == 0.0:
            return False
        held = abs(t_ref_c - tmeas_c) < self.threshold_c
        if held:
            self._hold_count += 1
        return held

    def shape_error(self, error_c: float) -> float:
        """Deadband-shaped error: ``sign(e) * max(0, |e| - |T_Q|)``.

        A quantized reading one LSB away from the reference may correspond
        to a true error anywhere in ``(0, 2 * T_Q)``; acting on the full
        LSB systematically overreacts.  Subtracting the quantization step
        from the acted-on magnitude makes the controller respond to the
        part of the error that is guaranteed real - the natural companion
        of the Eqn 10 hold, and what lets the loop *settle into* the
        deadband instead of hopping across it.
        """
        if self._step == 0.0:
            return error_c
        magnitude = abs(error_c) - self._step
        if magnitude <= 0.0:
            return 0.0
        return magnitude if error_c > 0.0 else -magnitude
