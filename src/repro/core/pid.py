"""Discrete PID controller (Eqn 4) with anti-windup and output limits.

The paper's control law for the (k+1)-th fan decision is position-form::

    s(k+1) = s_ref + KP * dT(k) + KI * sum_i dT(i) + KD * (dT(k) - dT(k-1))

with ``dT = T_meas - T_ref``.  This module implements the textbook
discrete PID [9] with the sampling period handled explicitly:

    u(k) = offset + Kp * e(k) + Ki * I(k) + Kd * (e(k) - e(k-1)) / dt
    I(k) = I(k-1) + e(k) * dt

so that Ziegler-Nichols gains derived from continuous-time rules
(Eqns 5-7) can be used unchanged regardless of the decision period.

Anti-windup uses conditional integration: when the output saturates and
the error pushes further into saturation, the integral is not accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlError
from repro.units import check_duration, check_nonnegative


@dataclass(frozen=True)
class PIDGains:
    """Proportional/integral/derivative gains.

    For the fan controller the units are rpm/K (Kp), rpm/(K*s) (Ki) and
    rpm*s/K (Kd).
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative(self.kp, "kp")
        check_nonnegative(self.ki, "ki")
        check_nonnegative(self.kd, "kd")

    def scaled(self, factor: float) -> "PIDGains":
        """All three gains multiplied by ``factor`` (>= 0)."""
        check_nonnegative(factor, "factor")
        return PIDGains(self.kp * factor, self.ki * factor, self.kd * factor)

    def blend(self, other: "PIDGains", alpha: float) -> "PIDGains":
        """Weighted sum ``(1 - alpha) * self + alpha * other`` (Eqn 8)."""
        if not 0.0 <= alpha <= 1.0:
            raise ControlError(f"blend weight must be in [0, 1], got {alpha}")
        return PIDGains(
            kp=(1.0 - alpha) * self.kp + alpha * other.kp,
            ki=(1.0 - alpha) * self.ki + alpha * other.ki,
            kd=(1.0 - alpha) * self.kd + alpha * other.kd,
        )


class PIDController:
    """Position-form discrete PID with offset, clamping, and anti-windup.

    Parameters
    ----------
    gains:
        Controller gains (may be replaced at runtime via :attr:`gains` -
        the gain-scheduled fan controller does this every decision).
    setpoint:
        Reference value the measurement should track.
    sample_time_s:
        Decision period; integral and derivative terms are scaled by it.
    output_offset:
        The ``s_ref`` of Eqn (4): output when all error terms are zero.
        Mutable, to support bumpless transfer between operating regions.
    output_limits:
        Optional ``(low, high)`` saturation limits for the output.
    """

    def __init__(
        self,
        gains: PIDGains,
        setpoint: float,
        sample_time_s: float,
        output_offset: float = 0.0,
        output_limits: tuple[float, float] | None = None,
    ) -> None:
        self.gains = gains
        self._setpoint = float(setpoint)
        self._dt = check_duration(sample_time_s, "sample_time_s")
        self._offset = float(output_offset)
        if output_limits is not None:
            low, high = output_limits
            if low >= high:
                raise ControlError(f"output_limits must satisfy low < high: {output_limits}")
        self._limits = output_limits
        self._integral = 0.0
        self._prev_error: float | None = None
        self._last_output: float | None = None

    @property
    def setpoint(self) -> float:
        """Current reference value."""
        return self._setpoint

    @setpoint.setter
    def setpoint(self, value: float) -> None:
        self._setpoint = float(value)

    @property
    def output_offset(self) -> float:
        """The ``s_ref`` offset term."""
        return self._offset

    @output_offset.setter
    def output_offset(self, value: float) -> None:
        self._offset = float(value)

    @property
    def integral(self) -> float:
        """Accumulated integral term (error * time)."""
        return self._integral

    @property
    def sample_time_s(self) -> float:
        """Decision period in seconds."""
        return self._dt

    @property
    def last_output(self) -> float | None:
        """Most recent output (None before the first update)."""
        return self._last_output

    @property
    def prev_error(self) -> float | None:
        """Error of the previous update (None before the first update).

        Exposed so the batch controller backend can lift the derivative
        memory into arrays and restore it afterwards.
        """
        return self._prev_error

    def restore_state(
        self,
        integral: float,
        prev_error: float | None,
        last_output: float | None,
    ) -> None:
        """Overwrite the mutable loop state (batch backend sync-back).

        ``gains``, ``setpoint``, and ``output_offset`` already have public
        setters; this restores the remaining per-update memory.
        """
        self._integral = float(integral)
        self._prev_error = None if prev_error is None else float(prev_error)
        self._last_output = None if last_output is None else float(last_output)

    def reset_integral(self) -> None:
        """Zero the integral term (paper: on operating-region change)."""
        self._integral = 0.0

    def reset(self) -> None:
        """Full reset: integral, derivative memory, and last output."""
        self._integral = 0.0
        self._prev_error = None
        self._last_output = None

    def update(self, measurement: float) -> float:
        """Compute the next output from a new measurement.

        Implements Eqn (4) with dt-scaled integral/derivative terms,
        output clamping, and conditional-integration anti-windup.
        """
        error = measurement - self._setpoint
        candidate_integral = self._integral + error * self._dt
        if self._prev_error is None:
            derivative = 0.0
        else:
            derivative = (error - self._prev_error) / self._dt

        output = (
            self._offset
            + self.gains.kp * error
            + self.gains.ki * candidate_integral
            + self.gains.kd * derivative
        )

        self._integral = candidate_integral
        if self._limits is not None:
            low, high = self._limits
            if output > high or output < low:
                clamped = high if output > high else low
                # Back-calculation anti-windup: shrink the integral so the
                # unclamped output would sit exactly on the limit.  The
                # loop then reacts immediately when the error changes sign
                # instead of waiting for a large integral to unwind.
                if self.gains.ki > 0.0:
                    self._integral = (
                        clamped
                        - self._offset
                        - self.gains.kp * error
                        - self.gains.kd * derivative
                    ) / self.gains.ki
                output = clamped

        self._prev_error = error
        self._last_output = output
        return output
