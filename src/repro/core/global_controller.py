"""The assembled DTM unit of Fig. 2.

``GlobalController`` hosts the two local controllers (fan speed, CPU cap),
routes their proposals through a global coordinator, and applies the
optional Section V enhancements (adaptive set-point, single-step fan
scaling).  The simulation engine calls :meth:`GlobalController.step` once
per CPU control period (1 s); fan decisions run on their own slower
period (30 s) inside, scheduled by ``_next_fan_decision_s``.

Decision order within one step (this order is part of the engine
contract; the vectorized controller backend in
:mod:`repro.sim.batch_control` replays it element-wise):

1. adaptive set-point update (Section V-B), which may move ``T_ref``;
2. CPU cap proposal from the capper;
3. fan proposal from the fan controller, when a fan period is due;
4. global coordination picks what is applied;
5. single-step fan scaling may override the fan speed (Section V-C);
6. the fan controller is notified of the speed actually applied.

All constituent objects are exposed read-only (``fan_controller``,
``coordinator``, ``cpu_capper``, ``setpoint``, ``single_step``) so
execution backends can extract coefficients, and
:meth:`GlobalController.restore_decision_state` writes the scheduling
state back after a vectorized run.
"""

from __future__ import annotations

from repro.config import ControlConfig
from repro.core.base import ControlInputs, ControlState, Coordinator, FanController
from repro.core.cpu_capper import DeadzoneCpuCapper
from repro.core.setpoint import AdaptiveSetpoint
from repro.core.single_step import SingleStepFanScaling
from repro.core.uncoordinated import UncoordinatedCoordinator


class GlobalController:
    """Fan controller + CPU capper + global coordination (Fig. 2).

    Parameters
    ----------
    control:
        Timing/threshold configuration (decision periods, T_ref).
    fan_controller:
        Any :class:`~repro.core.base.FanController`.
    coordinator:
        Global arbitration scheme; defaults to uncoordinated (the paper's
        baseline).
    cpu_capper:
        Optional CPU cap controller; omit to run fan-only experiments
        (Figs 3 and 4).
    setpoint:
        Optional A-Tref adapter (Section V-B).
    single_step:
        Optional SSfan override (Section V-C).
    initial_state:
        Knob settings in force before the first decision.
    """

    def __init__(
        self,
        control: ControlConfig,
        fan_controller: FanController,
        coordinator: Coordinator | None = None,
        cpu_capper: DeadzoneCpuCapper | None = None,
        setpoint: AdaptiveSetpoint | None = None,
        single_step: SingleStepFanScaling | None = None,
        initial_state: ControlState | None = None,
    ) -> None:
        self._control = control
        self._fan = fan_controller
        self._coordinator = coordinator or UncoordinatedCoordinator()
        self._capper = cpu_capper
        self._setpoint = setpoint
        self._single_step = single_step
        if initial_state is None:
            initial_state = ControlState(
                fan_speed_rpm=getattr(fan_controller, "applied_speed_rpm", 4000.0),
                cpu_cap=1.0,
            )
        self._state = initial_state
        self._t_ref_c = getattr(fan_controller, "t_ref_c", control.t_ref_fan_c)
        self._next_fan_decision_s = control.fan_interval_s
        self._last_fan_proposal: float | None = None
        self._last_cap_proposal: float | None = None
        self._fan.notify_applied(self._state.fan_speed_rpm)

    @property
    def state(self) -> ControlState:
        """Knob settings currently applied."""
        return self._state

    @property
    def control(self) -> ControlConfig:
        """Timing/threshold configuration."""
        return self._control

    @property
    def t_ref_c(self) -> float:
        """Reference temperature currently tracked by the fan loop."""
        return self._t_ref_c

    @property
    def coordinator(self) -> Coordinator:
        """The coordination scheme in use."""
        return self._coordinator

    @property
    def fan_controller(self) -> FanController:
        """The local fan controller."""
        return self._fan

    @property
    def last_proposals(self) -> tuple[float | None, float | None]:
        """(fan, cap) proposals from the most recent step (None = not due)."""
        return self._last_fan_proposal, self._last_cap_proposal

    @property
    def cpu_capper(self) -> DeadzoneCpuCapper | None:
        """The local CPU cap controller (None = fan-only)."""
        return self._capper

    @property
    def setpoint(self) -> AdaptiveSetpoint | None:
        """The A-Tref adapter (None when disabled)."""
        return self._setpoint

    @property
    def single_step(self) -> SingleStepFanScaling | None:
        """The SSfan override (None when disabled)."""
        return self._single_step

    @property
    def next_fan_decision_s(self) -> float:
        """Simulation time of the next scheduled fan decision."""
        return self._next_fan_decision_s

    def restore_decision_state(
        self,
        state: ControlState,
        t_ref_c: float,
        next_fan_decision_s: float,
        last_fan_proposal: float | None,
        last_cap_proposal: float | None,
    ) -> None:
        """Overwrite the scheduling/knob state (batch backend sync-back).

        Unlike :meth:`step` this does not notify the fan controller: the
        batch backend restores the fan controller's applied speed through
        its own hook, carrying the exact value forward.
        """
        self._state = state
        self._t_ref_c = float(t_ref_c)
        self._next_fan_decision_s = float(next_fan_decision_s)
        self._last_fan_proposal = last_fan_proposal
        self._last_cap_proposal = last_cap_proposal

    def step(self, inputs: ControlInputs) -> ControlState:
        """One CPU control period: gather proposals, coordinate, apply."""
        # Section V-B: predictive T_ref adjustment, every CPU period.
        if self._setpoint is not None:
            self._t_ref_c = self._setpoint.update(inputs.measured_util)
            self._fan.set_reference(self._t_ref_c)

        cap_proposal = None
        if self._capper is not None:
            cap_proposal = self._capper.propose(
                inputs.time_s, inputs.tmeas_c, self._state.cpu_cap
            )

        fan_proposal = None
        if inputs.time_s + 1e-9 >= self._next_fan_decision_s:
            fan_proposal = self._fan.propose(inputs.time_s, inputs.tmeas_c)
            while self._next_fan_decision_s <= inputs.time_s + 1e-9:
                self._next_fan_decision_s += self._control.fan_interval_s

        self._last_fan_proposal = fan_proposal
        self._last_cap_proposal = cap_proposal
        state = self._coordinator.coordinate(
            self._state, fan_proposal, cap_proposal, inputs
        )

        # Section V-C: SSfan may override the fan speed after coordination.
        if self._single_step is not None:
            predicted = (
                self._setpoint.predicted_util
                if self._setpoint is not None
                else inputs.measured_util
            )
            state = self._single_step.apply(state, inputs, self._t_ref_c, predicted)

        self._fan.notify_applied(state.fan_speed_rpm)
        self._state = state
        return state
