"""Predictive fan set-point adaptation: A-Tref (Section V-B).

Observations from the paper:

* at *low* CPU utilization, attenuate ``T_ref`` (run the fan a little
  harder than strictly needed) so an abrupt load increase has thermal
  headroom and does not trigger capping;
* at *high* utilization, amplify ``T_ref`` (the fan's cubic power makes
  deep cooling expensive exactly when the CPU already runs hot).

``T_ref`` is scaled *linearly* with the predicted utilization, where the
prediction is a moving average of measured utilization to filter noise
(Coskun et al. [19]).  The evaluation sweeps T_ref over 70-80 degC.
"""

from __future__ import annotations

from repro.errors import ControlError
from repro.units import check_temperature, check_utilization, clamp
from repro.workload.filters import MovingAverageFilter


class AdaptiveSetpoint:
    """Linear T_ref schedule driven by predicted CPU utilization.

    Parameters
    ----------
    t_min_c, t_max_c:
        Reference temperature at the low/high end of the utilization range
        (paper: 70 and 80 degC).
    util_low, util_high:
        Utilization range mapped onto ``[t_min_c, t_max_c]``; predictions
        outside clamp to the ends.
    window:
        Moving-average window (in CPU control periods) for the predictor.
    """

    def __init__(
        self,
        t_min_c: float = 70.0,
        t_max_c: float = 80.0,
        util_low: float = 0.0,
        util_high: float = 1.0,
        window: int = 10,
    ) -> None:
        self._t_min_c = check_temperature(t_min_c, "t_min_c")
        self._t_max_c = check_temperature(t_max_c, "t_max_c")
        if self._t_min_c > self._t_max_c:
            raise ControlError(
                f"t_min_c ({t_min_c}) must not exceed t_max_c ({t_max_c})"
            )
        check_utilization(util_low, "util_low")
        check_utilization(util_high, "util_high")
        if util_low >= util_high:
            raise ControlError(
                f"util_low ({util_low}) must be below util_high ({util_high})"
            )
        self._util_low = util_low
        self._util_high = util_high
        self._filter = MovingAverageFilter(window=window)

    @property
    def range_c(self) -> tuple[float, float]:
        """The ``(t_min, t_max)`` reference range."""
        return self._t_min_c, self._t_max_c

    @property
    def util_range(self) -> tuple[float, float]:
        """The ``(util_low, util_high)`` mapping range."""
        return self._util_low, self._util_high

    @property
    def prediction_filter(self) -> MovingAverageFilter:
        """The moving-average utilization predictor (batch backend hook)."""
        return self._filter

    @property
    def predicted_util(self) -> float:
        """Current moving-average utilization prediction."""
        return self._filter.value

    def reference_for(self, predicted_util: float) -> float:
        """T_ref for a given predicted utilization (pure function)."""
        check_utilization(predicted_util, "predicted_util")
        fraction = (predicted_util - self._util_low) / (
            self._util_high - self._util_low
        )
        fraction = clamp(fraction, 0.0, 1.0)
        return self._t_min_c + fraction * (self._t_max_c - self._t_min_c)

    def update(self, measured_util: float) -> float:
        """Feed one utilization sample; returns the new T_ref."""
        predicted = self._filter.update(check_utilization(measured_util))
        return self.reference_for(predicted)
