"""Shared controller interfaces and value types (the Fig. 2 architecture).

The DTM unit hosts two *local* controllers - a fan speed controller and a
CPU cap controller - whose independent proposals flow into a *global*
coordinator that decides what is actually applied.  These types define the
contract between them and the simulation engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

from repro.units import check_fan_speed, check_nonnegative, check_utilization


@dataclass(frozen=True)
class ControlState:
    """The knob settings currently applied to the server."""

    fan_speed_rpm: float
    cpu_cap: float

    def __post_init__(self) -> None:
        check_fan_speed(self.fan_speed_rpm, "fan_speed_rpm")
        check_utilization(self.cpu_cap, "cpu_cap")

    def with_fan(self, speed_rpm: float) -> "ControlState":
        """Copy with a new fan speed."""
        return replace(self, fan_speed_rpm=speed_rpm)

    def with_cap(self, cap: float) -> "ControlState":
        """Copy with a new CPU cap."""
        return replace(self, cpu_cap=cap)


@dataclass(frozen=True)
class ControlInputs:
    """Telemetry available to the DTM at a decision instant.

    * ``tmeas_c`` - the *firmware-visible* (lagged, quantized) temperature.
    * ``measured_util`` - applied CPU utilization reported by the OS.
    * ``recent_degradation`` - sliding-window mean utilization deficit,
      the signal single-step fan scaling monitors (Section V-C).
    * ``demand_estimate`` - the OS's view of demanded (run-queue)
      utilization; unlike the temperature it does not cross the I2C path,
      so it is fresh.  Defaults to ``measured_util`` when not provided.
    """

    time_s: float
    tmeas_c: float
    measured_util: float
    recent_degradation: float = 0.0
    demand_estimate: float | None = None

    def __post_init__(self) -> None:
        check_nonnegative(self.time_s, "time_s")
        check_utilization(self.measured_util, "measured_util")
        check_nonnegative(self.recent_degradation, "recent_degradation")
        if self.demand_estimate is None:
            object.__setattr__(self, "demand_estimate", self.measured_util)
        else:
            check_utilization(self.demand_estimate, "demand_estimate")


class FanController(ABC):
    """A local fan speed controller.

    Controllers are *proposal makers*: :meth:`propose` returns the speed
    the controller wants, and the coordinator may reject it.  The engine
    reports what was actually applied via :meth:`notify_applied`, which
    position-form controllers use to stay anchored to reality.
    """

    @abstractmethod
    def propose(self, time_s: float, tmeas_c: float) -> float:
        """Proposed fan speed (rpm) for the next period."""

    def notify_applied(self, fan_speed_rpm: float) -> None:
        """Called with the speed the coordinator actually applied."""

    def set_reference(self, t_ref_c: float) -> None:
        """Update the tracked reference temperature (A-Tref hook).

        Controllers without a temperature reference ignore this.
        """


class Coordinator(ABC):
    """Global arbitration among local control proposals (Section V).

    ``fan_proposal`` / ``cap_proposal`` are ``None`` when the respective
    local controller had no decision due this period ("no change").
    """

    @abstractmethod
    def coordinate(
        self,
        current: ControlState,
        fan_proposal: float | None,
        cap_proposal: float | None,
        inputs: ControlInputs,
    ) -> ControlState:
        """Return the state to apply for the next period."""
