"""Ziegler-Nichols closed-loop tuning (Section IV-A, Eqns 5-7).

The paper tunes its PID with the classic closed-loop recipe [21]:

1. With proportional-only control, find the *ultimate gain* ``Ku`` - the
   gain at which the loop oscillates indefinitely at steady state.
2. Measure the *ultimate period* ``Pu`` of that oscillation.
3. Set ``KP = 0.6 Ku``, ``KI = KP * 2 / Pu``, ``KD = KP * Pu / 8``.

This module runs that procedure as an actual experiment on the simulated
server: a proportional-only loop is perturbed from equilibrium, the decay
ratio of the error oscillation is measured, and ``Ku`` is found by
bisection on the stable/unstable boundary.

The ultimate-gain search runs on the *lagged but unquantized* loop by
default (``quantized=False``): the 10 s transport delay is what truly
limits the achievable gain, and it preserves the ~8x sensitivity ratio
between the 2000 and 6000 rpm regions that drives the whole Section IV-B
adaptive story.  Searching on the quantized loop instead
(``quantized=True``) finds the quantization-induced limit cycle first,
which collapses the region ratio - useful as an ablation, not as the
default.

Because the LSB granularity is handled separately (Eqn 10 hold + deadband
error shaping in the fan controller), the shipped gain rule must satisfy
the capture bound ``KP * T_Q <= hold-window width in rpm``; the classic
0.6-Ku rule violates it ~3x on this plant, so :func:`tune_region`
defaults to the no-overshoot variant (``KP = 0.2 Ku``).  See DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.signal import find_peaks

from repro.config import ServerConfig
from repro.core.gain_schedule import GainRegion, GainSchedule
from repro.core.pid import PIDGains
from repro.errors import TuningError
from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.thermal.server import ServerThermalModel
from repro.units import check_duration, check_positive, check_utilization, clamp


@dataclass(frozen=True)
class UltimateGain:
    """Result of the ultimate-gain search."""

    ku: float
    pu_s: float

    def __post_init__(self) -> None:
        check_positive(self.ku, "ku")
        check_positive(self.pu_s, "pu_s")


@dataclass(frozen=True)
class OscillationMeasurement:
    """Decay ratio and period extracted from a closed-loop error trace."""

    decay_ratio: float
    period_s: float
    n_peaks: int


class ZieglerNicholsRule(enum.Enum):
    """Tuning-rule variants; CLASSIC_PID is the paper's Eqns 5-7."""

    P_ONLY = "p_only"
    CLASSIC_PI = "classic_pi"
    CLASSIC_PID = "classic_pid"
    PESSEN = "pessen"
    SOME_OVERSHOOT = "some_overshoot"
    NO_OVERSHOOT = "no_overshoot"


#: (kp_factor, Ti as fraction of Pu or None, Td as fraction of Pu or None)
_RULE_TABLE: dict[ZieglerNicholsRule, tuple[float, float | None, float | None]] = {
    ZieglerNicholsRule.P_ONLY: (0.5, None, None),
    ZieglerNicholsRule.CLASSIC_PI: (0.45, 1.0 / 1.2, None),
    ZieglerNicholsRule.CLASSIC_PID: (0.6, 0.5, 0.125),
    ZieglerNicholsRule.PESSEN: (0.7, 0.4, 0.15),
    ZieglerNicholsRule.SOME_OVERSHOOT: (0.33, 0.5, 1.0 / 3.0),
    ZieglerNicholsRule.NO_OVERSHOOT: (0.2, 0.5, 1.0 / 3.0),
}


def ziegler_nichols_gains(
    ku: float,
    pu_s: float,
    rule: ZieglerNicholsRule = ZieglerNicholsRule.CLASSIC_PID,
) -> PIDGains:
    """Map (Ku, Pu) to PID gains under the chosen rule.

    For CLASSIC_PID this is exactly Eqns (5)-(7): ``KP = 0.6 Ku``,
    ``KI = KP * 2 / Pu``, ``KD = KP * Pu / 8``.
    """
    check_positive(ku, "ku")
    check_duration(pu_s, "pu_s")
    kp_factor, ti_frac, td_frac = _RULE_TABLE[rule]
    kp = kp_factor * ku
    ki = 0.0 if ti_frac is None else kp / (ti_frac * pu_s)
    kd = 0.0 if td_frac is None else kp * (td_frac * pu_s)
    return PIDGains(kp=kp, ki=ki, kd=kd)


def simulate_p_only_loop(
    config: ServerConfig,
    kp: float,
    fan_speed_rpm: float,
    utilization: float = 0.4,
    duration_s: float = 2400.0,
    dt_s: float = 1.0,
    perturbation_c: float = 2.0,
    quantized: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-loop P-only experiment around one operating point.

    The plant is settled at ``(utilization, fan_speed_rpm)``, the setpoint
    is placed at the corresponding steady-state junction temperature, the
    heat sink is perturbed by ``perturbation_c``, and the loop

        s(k+1) = s_op + kp * (T_measured(k) - T_op)

    runs with fan decisions every ``control.fan_interval_s`` while the
    measurement passes through the configured lag and (when ``quantized``)
    the ADC quantizer.  Returns ``(times, errors)`` sampled every ``dt_s``.
    """
    check_utilization(utilization, "utilization")
    check_duration(duration_s, "duration_s")
    plant = ServerThermalModel(config)
    s_op = plant.clamp_fan_speed(fan_speed_rpm)
    plant.settle(utilization, s_op)
    t_op = plant.junction_c
    # Perturb the slow state so the loop has something to regulate away.
    plant.heatsink.reset(plant.state.heatsink_c + perturbation_c)
    plant.die.reset(plant.junction_c + perturbation_c)

    quantizer = AdcQuantizer.from_config(config.sensing) if quantized else None
    initial = quantizer.quantize(t_op) if quantizer is not None else t_op
    delay = DelayLine(config.sensing.lag_s, initial_value=initial)
    fan_interval = config.control.fan_interval_s
    fan = config.fan
    speed = s_op
    next_decision = fan_interval

    n_steps = int(round(duration_s / dt_s))
    times = np.empty(n_steps)
    errors = np.empty(n_steps)
    for k in range(n_steps):
        t = (k + 1) * dt_s
        state = plant.step(dt_s, utilization, speed)
        sample = state.junction_c
        if quantizer is not None:
            sample = quantizer.quantize(sample)
        delay.push(t, sample)
        error = delay.read(t) - t_op
        if t + 1e-9 >= next_decision:
            speed = clamp(s_op + kp * error, fan.min_speed_rpm, fan.max_speed_rpm)
            next_decision += fan_interval
        times[k] = t
        errors[k] = error
    return times, errors


def measure_oscillation(
    times: np.ndarray,
    errors: np.ndarray,
    settle_fraction: float = 0.2,
    min_prominence: float = 0.02,
) -> OscillationMeasurement:
    """Extract decay ratio and period from a closed-loop error trace.

    The first ``settle_fraction`` of the trace is discarded (initial
    transient), peaks of the error are located, and the decay ratio is the
    geometric mean of successive peak-amplitude ratios.  Fewer than three
    peaks means the response is overdamped: decay ratio 0.
    """
    start = int(len(errors) * settle_fraction)
    tail_t = np.asarray(times)[start:]
    tail_e = np.asarray(errors)[start:]
    peak_idx, _ = find_peaks(tail_e, prominence=min_prominence)
    if len(peak_idx) < 3:
        return OscillationMeasurement(decay_ratio=0.0, period_s=0.0, n_peaks=len(peak_idx))
    amplitudes = tail_e[peak_idx]
    positive = amplitudes > 0.0
    if np.count_nonzero(positive) < 3:
        return OscillationMeasurement(decay_ratio=0.0, period_s=0.0, n_peaks=len(peak_idx))
    amps = amplitudes[positive]
    peak_times = tail_t[peak_idx][positive]
    ratios = amps[1:] / amps[:-1]
    decay = float(np.exp(np.mean(np.log(ratios))))
    period = float(np.mean(np.diff(peak_times)))
    return OscillationMeasurement(
        decay_ratio=decay, period_s=period, n_peaks=int(np.count_nonzero(positive))
    )


def find_ultimate_gain(
    config: ServerConfig,
    fan_speed_rpm: float,
    utilization: float = 0.4,
    sustained_threshold: float = 0.97,
    max_doublings: int = 12,
    bisection_steps: int = 10,
    duration_s: float = 2400.0,
    quantized: bool = False,
) -> UltimateGain:
    """Search for (Ku, Pu) at one operating point by bisection.

    The initial proportional-gain guess targets unity static loop gain
    (``1 / |dTj/dV|``); it is doubled until the loop's decay ratio reaches
    ``sustained_threshold`` (unstable side), then bisected against the
    last stable gain.  ``Pu`` is measured at the found boundary gain.

    Raises :class:`TuningError` if no oscillation can be provoked (e.g.
    the fan saturates before the loop destabilizes).
    """
    plant = ServerThermalModel(config)
    slope = plant.steady_state.junction_slope_per_rpm(utilization, fan_speed_rpm)
    if slope == 0.0:
        raise TuningError("plant has zero sensitivity at this operating point")
    kp = 1.0 / abs(slope)

    def decay_at(gain: float) -> float:
        times, errors = simulate_p_only_loop(
            config,
            gain,
            fan_speed_rpm,
            utilization,
            duration_s=duration_s,
            quantized=quantized,
        )
        return measure_oscillation(times, errors).decay_ratio

    # Grow until unstable.
    kp_low = 0.0
    kp_high = None
    for _ in range(max_doublings):
        if decay_at(kp) >= sustained_threshold:
            kp_high = kp
            break
        kp_low = kp
        kp *= 2.0
    if kp_high is None:
        raise TuningError(
            f"no sustained oscillation up to kp={kp:.1f} rpm/K at "
            f"{fan_speed_rpm} rpm; is the loop saturating?"
        )
    if kp_low == 0.0:
        kp_low = kp_high / 2.0
        while decay_at(kp_low) >= sustained_threshold:
            kp_high = kp_low
            kp_low /= 2.0
            if kp_low < 1e-6:
                raise TuningError("loop appears unstable at arbitrarily small gain")

    for _ in range(bisection_steps):
        mid = 0.5 * (kp_low + kp_high)
        if decay_at(mid) >= sustained_threshold:
            kp_high = mid
        else:
            kp_low = mid

    ku = kp_high
    times, errors = simulate_p_only_loop(
        config,
        ku,
        fan_speed_rpm,
        utilization,
        duration_s=duration_s,
        quantized=quantized,
    )
    oscillation = measure_oscillation(times, errors)
    if oscillation.period_s <= 0.0:
        raise TuningError("boundary gain produced no measurable period")
    return UltimateGain(ku=ku, pu_s=oscillation.period_s)


def tune_region(
    config: ServerConfig,
    fan_speed_rpm: float,
    utilization: float = 0.4,
    rule: ZieglerNicholsRule = ZieglerNicholsRule.NO_OVERSHOOT,
) -> GainRegion:
    """Tune one operating region end-to-end (Ku/Pu search + ZN rule).

    The default rule is the no-overshoot variant (``KP = 0.2 Ku``): with a
    1 degC LSB the controller must satisfy the capture bound
    ``KP * T_Q <= deadband width in rpm`` or it hops across the Eqn 10
    hold window forever, and the classic 0.6-Ku rule violates that bound
    by ~3x on this plant (see DESIGN.md).  The SASO tuning freedom the
    paper invokes [9], [21] explicitly covers choosing the variant.
    """
    ultimate = find_ultimate_gain(config, fan_speed_rpm, utilization)
    gains = ziegler_nichols_gains(ultimate.ku, ultimate.pu_s, rule)
    return GainRegion(ref_speed_rpm=fan_speed_rpm, gains=gains)


#: The paper's two tuned regions (Section IV-B: "two regions, i.e., 2000
#: and 6000 rpm, are enough to linearize the relationship within 5% error").
DEFAULT_REGION_SPEEDS_RPM = (2000.0, 6000.0)


@lru_cache(maxsize=8)
def default_gain_schedule(
    config: ServerConfig | None = None,
    region_speeds_rpm: tuple[float, ...] = DEFAULT_REGION_SPEEDS_RPM,
    utilization: float = 0.4,
    rule: ZieglerNicholsRule = ZieglerNicholsRule.NO_OVERSHOOT,
) -> GainSchedule:
    """Tuned gain schedule for the Table I server (cached).

    Runs the full Ziegler-Nichols pipeline once per (config, regions)
    combination; the frozen config dataclasses make the cache key exact.
    """
    cfg = config or ServerConfig()
    regions = [
        tune_region(cfg, speed, utilization=utilization, rule=rule)
        for speed in region_speeds_rpm
    ]
    return GainSchedule(regions)
