"""Rule-based global coordination (Section V-A, Table II).

Only one local control action is admitted per decision instant, because
each local controller is stable on its own but their joint action is not
guaranteed to be.  Table II picks the action with performance as the
primary concern:

=====================  ==================  ==================  ==============
                       s(k+1) < s(k)       s(k+1) = s(k)       s(k+1) > s(k)
=====================  ==================  ==================  ==============
u(k+1) < u(k)          fan down            cap down            fan up
u(k+1) = u(k)          fan down            (nothing)           fan up
u(k+1) > u(k)          cap up              cap up              fan up
=====================  ==================  ==================  ==============

Rationale (paper): a fan increase is always admitted (fan decisions are
infrequent, so setting the speed too low hurts performance until the next
fan period); a fan decrease yields to a cap increase (restore performance
first, keep the cooling we have).
"""

from __future__ import annotations

import enum

from repro.core.base import ControlInputs, ControlState, Coordinator


class CoordinationAction(enum.Enum):
    """Which single knob the coordinator chose to move."""

    NONE = "none"
    FAN_UP = "fan_up"
    FAN_DOWN = "fan_down"
    CAP_UP = "cap_up"
    CAP_DOWN = "cap_down"


def classify(delta: float, tolerance: float = 1e-9) -> int:
    """Sign of a proposal delta with a numerical tolerance: -1, 0, or +1."""
    if delta > tolerance:
        return 1
    if delta < -tolerance:
        return -1
    return 0


def table_ii_action(ds: int, du: int) -> CoordinationAction:
    """The Table II cell for fan-delta sign ``ds`` and cap-delta sign ``du``."""
    if ds > 0:
        return CoordinationAction.FAN_UP
    if ds < 0:
        if du > 0:
            return CoordinationAction.CAP_UP
        return CoordinationAction.FAN_DOWN
    # ds == 0
    if du > 0:
        return CoordinationAction.CAP_UP
    if du < 0:
        return CoordinationAction.CAP_DOWN
    return CoordinationAction.NONE


class RuleBasedCoordinator(Coordinator):
    """Applies exactly one proposal per instant, per Table II.

    Missing proposals (``None``) are treated as "no change requested".
    The chosen action of the last decision is exposed via
    :attr:`last_action` for tracing and tests.
    """

    def __init__(self) -> None:
        self._last_action = CoordinationAction.NONE
        self._action_counts: dict[CoordinationAction, int] = {
            action: 0 for action in CoordinationAction
        }

    @property
    def last_action(self) -> CoordinationAction:
        """Action chosen at the most recent decision."""
        return self._last_action

    @property
    def action_counts(self) -> dict[CoordinationAction, int]:
        """Histogram of actions chosen so far."""
        return dict(self._action_counts)

    def restore_trace(
        self,
        last_action: CoordinationAction,
        action_counts: dict[CoordinationAction, int],
    ) -> None:
        """Overwrite the decision trace (batch backend sync-back)."""
        self._last_action = last_action
        self._action_counts = {
            action: int(action_counts.get(action, 0))
            for action in CoordinationAction
        }

    def coordinate(
        self,
        current: ControlState,
        fan_proposal: float | None,
        cap_proposal: float | None,
        inputs: ControlInputs,
    ) -> ControlState:
        ds = 0 if fan_proposal is None else classify(
            fan_proposal - current.fan_speed_rpm
        )
        du = 0 if cap_proposal is None else classify(cap_proposal - current.cpu_cap)
        action = table_ii_action(ds, du)
        self._last_action = action
        self._action_counts[action] += 1

        if action in (CoordinationAction.FAN_UP, CoordinationAction.FAN_DOWN):
            assert fan_proposal is not None
            return current.with_fan(fan_proposal)
        if action in (CoordinationAction.CAP_UP, CoordinationAction.CAP_DOWN):
            assert cap_proposal is not None
            return current.with_cap(cap_proposal)
        return current
