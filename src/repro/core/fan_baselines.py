"""Baseline fan controllers the paper argues against (Sections I, VI-B).

Enterprise firmware conservatively ships *single threshold* or *deadzone*
schemes; Fig. 4 shows the deadzone controller oscillating under a fixed
workload once the measurement lag and quantization are present.  These
implementations exist to reproduce that failure and to benchmark the
adaptive PID against.

Backend note: racks hosting these controllers still run their
plant/sensing on the array lanes (vectorized or fused), but the control
step demotes per server to these scalar objects -
``batch_controller_unsupported_reason`` only vets the stock
adaptive-PID composition.  The benchmark no-silent-fallback gates
therefore run the Table III schemes, not these baselines; see
``docs/backends.md``.
"""

from __future__ import annotations

from repro.core.base import FanController
from repro.errors import ControlError
from repro.units import check_fan_speed, check_positive, check_temperature


class StaticFanController(FanController):
    """Fixed fan speed (the most conservative baseline)."""

    def __init__(self, speed_rpm: float) -> None:
        self._speed = check_fan_speed(speed_rpm, "speed_rpm")

    def propose(self, time_s: float, tmeas_c: float) -> float:
        return self._speed


class SingleThresholdFanController(FanController):
    """Two-speed bang-bang control around one threshold.

    Runs at ``high_speed_rpm`` whenever the measured temperature is at or
    above the threshold, else at ``low_speed_rpm``.  With a lagged,
    quantized measurement this chatters between the two speeds.
    """

    def __init__(
        self,
        threshold_c: float,
        low_speed_rpm: float,
        high_speed_rpm: float,
    ) -> None:
        self._threshold_c = check_temperature(threshold_c, "threshold_c")
        self._low = check_fan_speed(low_speed_rpm, "low_speed_rpm")
        self._high = check_fan_speed(high_speed_rpm, "high_speed_rpm")
        if self._low >= self._high:
            raise ControlError(
                f"low speed ({low_speed_rpm}) must be below high ({high_speed_rpm})"
            )

    @property
    def threshold_c(self) -> float:
        """The switching threshold."""
        return self._threshold_c

    def propose(self, time_s: float, tmeas_c: float) -> float:
        return self._high if tmeas_c >= self._threshold_c else self._low


class DeadzoneFanController(FanController):
    """Incremental deadzone control (the Fig. 4 scheme).

    Raises the speed by ``step_rpm`` when the measurement exceeds
    ``t_high_c``, lowers it when below ``t_low_c``, and holds inside the
    deadzone.  The 10 s lag makes each correction arrive long after the
    temperature has already crossed the opposite bound, producing the
    sustained sawtooth of Fig. 4.
    """

    def __init__(
        self,
        t_low_c: float,
        t_high_c: float,
        step_rpm: float,
        fan_limits_rpm: tuple[float, float],
        initial_speed_rpm: float | None = None,
    ) -> None:
        self._t_low_c = check_temperature(t_low_c, "t_low_c")
        self._t_high_c = check_temperature(t_high_c, "t_high_c")
        if self._t_low_c > self._t_high_c:
            raise ControlError(
                f"t_low_c ({t_low_c}) must not exceed t_high_c ({t_high_c})"
            )
        self._step = check_positive(step_rpm, "step_rpm")
        low, high = fan_limits_rpm
        check_fan_speed(low, "fan_limits_rpm[0]")
        check_fan_speed(high, "fan_limits_rpm[1]")
        if low >= high:
            raise ControlError(f"fan limits must satisfy min < max: {fan_limits_rpm}")
        self._limits = (low, high)
        if initial_speed_rpm is None:
            initial_speed_rpm = 0.5 * (low + high)
        self._speed = min(max(initial_speed_rpm, low), high)

    @property
    def speed_rpm(self) -> float:
        """Current commanded speed."""
        return self._speed

    def notify_applied(self, fan_speed_rpm: float) -> None:
        low, high = self._limits
        self._speed = min(max(fan_speed_rpm, low), high)

    def propose(self, time_s: float, tmeas_c: float) -> float:
        low, high = self._limits
        if tmeas_c > self._t_high_c:
            self._speed = min(self._speed + self._step, high)
        elif tmeas_c < self._t_low_c:
            self._speed = max(self._speed - self._step, low)
        return self._speed
