"""Fan-speed-region gain scheduling (Section IV-B, Eqns 8-9).

A single Ziegler-Nichols gain set is only valid near the fan speed where
it was tuned, because the plant sensitivity ``dT/ds`` varies by almost an
order of magnitude across the speed range (Table I resistance law).  The
adaptive scheme keeps one gain set per *region* (the paper uses two,
tuned at 2000 and 6000 rpm) and, at every decision, interpolates between
the two regions bracketing the current operating speed:

    K(k)     = (1 - alpha(k)) * K_i + alpha(k) * K_{i+1}      (Eqn 8)
    alpha(k) = (s(k) - s_i) / (s_{i+1} - s_i)                 (Eqn 9)

Speeds outside the tuned range clamp to the end regions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.pid import PIDGains
from repro.errors import ControlError
from repro.units import check_fan_speed


@dataclass(frozen=True)
class GainRegion:
    """One tuned operating region: a reference speed and its gain set."""

    ref_speed_rpm: float
    gains: PIDGains

    def __post_init__(self) -> None:
        check_fan_speed(self.ref_speed_rpm, "ref_speed_rpm")


class GainSchedule:
    """Ordered set of tuned regions with Eqn 8-9 interpolation.

    A schedule with a single region degenerates to conventional fixed-gain
    PID, which is exactly the baseline Fig. 3 compares against.
    """

    def __init__(self, regions: list[GainRegion]) -> None:
        if not regions:
            raise ControlError("gain schedule needs at least one region")
        ordered = sorted(regions, key=lambda r: r.ref_speed_rpm)
        speeds = [r.ref_speed_rpm for r in ordered]
        if len(set(speeds)) != len(speeds):
            raise ControlError(f"duplicate region reference speeds: {speeds}")
        self._regions = ordered
        self._speeds = speeds

    @property
    def regions(self) -> list[GainRegion]:
        """Regions in increasing reference-speed order."""
        return list(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def segment_index(self, fan_speed_rpm: float) -> int:
        """Index ``i`` of the segment ``[s_i, s_{i+1})`` containing the speed.

        Speeds below the first region return 0; speeds at or above the
        last region return ``len - 1`` (the degenerate final segment).
        The fan controller resets its integral when this index changes
        between decisions (Section IV-B).
        """
        speed = check_fan_speed(fan_speed_rpm, "fan_speed_rpm")
        if len(self._regions) == 1:
            return 0
        idx = bisect_right(self._speeds, speed) - 1
        return min(max(idx, 0), len(self._regions) - 1)

    def bracket(self, fan_speed_rpm: float) -> tuple[int, int, float]:
        """Bracketing region indices and the Eqn 9 weight ``alpha``.

        Returns ``(i, j, alpha)`` with gains to blend as
        ``(1 - alpha) * K_i + alpha * K_j``.  Outside the tuned range the
        weight clamps to 0 or 1 (pure end-region gains).
        """
        speed = check_fan_speed(fan_speed_rpm, "fan_speed_rpm")
        if len(self._regions) == 1:
            return 0, 0, 0.0
        if speed <= self._speeds[0]:
            return 0, 0, 0.0
        if speed >= self._speeds[-1]:
            last = len(self._regions) - 1
            return last, last, 0.0
        i = bisect_right(self._speeds, speed) - 1
        j = i + 1
        alpha = (speed - self._speeds[i]) / (self._speeds[j] - self._speeds[i])
        return i, j, alpha

    def gains_at(self, fan_speed_rpm: float) -> PIDGains:
        """Interpolated gains for the given operating speed (Eqns 8-9)."""
        i, j, alpha = self.bracket(fan_speed_rpm)
        if i == j:
            return self._regions[i].gains
        return self._regions[i].gains.blend(self._regions[j].gains, alpha)

    @classmethod
    def fixed(cls, gains: PIDGains, ref_speed_rpm: float = 0.0) -> "GainSchedule":
        """Single-region schedule: conventional (non-adaptive) PID."""
        return cls([GainRegion(ref_speed_rpm=ref_speed_rpm, gains=gains)])
