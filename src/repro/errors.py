"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Specific subclasses indicate which
subsystem rejected the input or detected an inconsistent state.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError, ValueError):
    """A configuration value is missing, out of range, or inconsistent."""


class UnitsError(ReproError, ValueError):
    """A physical quantity failed validation (wrong sign, range, or unit)."""


class ThermalModelError(ReproError):
    """The thermal model was built or stepped with invalid inputs."""


class SensorError(ReproError):
    """A sensing-pipeline component received invalid input or state."""


class ControlError(ReproError):
    """A controller was configured or invoked incorrectly."""


class TuningError(ControlError):
    """Ziegler-Nichols tuning failed to find a sustained oscillation."""


class CoordinationError(ControlError):
    """The global coordinator received inconsistent local proposals."""


class SimulationError(ReproError):
    """The simulation engine detected an invalid schedule or state."""


class FleetError(SimulationError):
    """A rack/fleet simulation was misconfigured or inconsistently sized."""


class RoomError(FleetError):
    """A room-scale simulation was misconfigured or inconsistently sized."""


class FaultConfigError(ReproError, ValueError):
    """A fault event or schedule is malformed or targets a missing entity."""


class WorkloadError(ReproError, ValueError):
    """A workload generator was configured with invalid parameters."""


class ObsError(ReproError, ValueError):
    """An observability config, sink spec, or report input is invalid."""


class AnalysisError(ReproError):
    """Post-processing (stability / metrics) could not interpret a trace."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
