"""Table II: exhaustive behaviour of the rule-based coordination matrix.

Enumerates all nine (fan delta sign, cap delta sign) combinations and
verifies the coordinator applies exactly the action Table II prescribes -
the unit-level ground truth for the R-coord schemes.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.base import ControlInputs, ControlState
from repro.core.rules import CoordinationAction, RuleBasedCoordinator
from repro.experiments.registry import ExperimentResult

#: Expected Table II actions keyed by (ds, du) sign pair.
EXPECTED: dict[tuple[int, int], CoordinationAction] = {
    (-1, -1): CoordinationAction.FAN_DOWN,
    (-1, 0): CoordinationAction.FAN_DOWN,
    (-1, 1): CoordinationAction.CAP_UP,
    (0, -1): CoordinationAction.CAP_DOWN,
    (0, 0): CoordinationAction.NONE,
    (0, 1): CoordinationAction.CAP_UP,
    (1, -1): CoordinationAction.FAN_UP,
    (1, 0): CoordinationAction.FAN_UP,
    (1, 1): CoordinationAction.FAN_UP,
}


def run() -> ExperimentResult:
    """Exercise the coordinator on all nine Table II cells."""
    current = ControlState(fan_speed_rpm=4000.0, cpu_cap=0.6)
    inputs = ControlInputs(time_s=100.0, tmeas_c=77.0, measured_util=0.5)
    rows = []
    checks = {}
    coordinator = RuleBasedCoordinator()
    for (ds, du), expected in sorted(EXPECTED.items()):
        fan_proposal = current.fan_speed_rpm + 500.0 * ds
        cap_proposal = current.cpu_cap + 0.1 * du
        state = coordinator.coordinate(current, fan_proposal, cap_proposal, inputs)
        action = coordinator.last_action
        ok = action is expected
        fan_moved = state.fan_speed_rpm != current.fan_speed_rpm
        cap_moved = state.cpu_cap != current.cpu_cap
        single = not (fan_moved and cap_moved)
        checks[f"cell({ds},{du})"] = ok and single
        rows.append(
            [f"ds={ds:+d}", f"du={du:+d}", expected.value, action.value, ok and single]
        )
    report = "\n".join(
        [
            "Table II - rule-based coordination matrix",
            format_table(
                ["fan delta", "cap delta", "expected", "chosen", "pass"], rows
            ),
            "",
            "Invariant: at most one knob moves per decision (single-action rule).",
        ]
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: coordination rule matrix",
        data={"cells": {f"{k}": v.value for k, v in EXPECTED.items()}},
        report=report,
        checks=checks,
    )
