"""Experiment registry: id -> runnable, with a structured result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run.

    ``data`` holds machine-readable series/metrics (used by tests and
    benchmarks); ``report`` is the human-readable text the experiment
    prints.
    """

    experiment_id: str
    title: str
    data: dict[str, Any]
    report: str
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """Whether every recorded reproduction check holds."""
        return all(self.checks.values())


#: Populated lazily by :func:`get_experiment` to avoid import cycles.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def _load() -> None:
    if EXPERIMENTS:
        return
    from repro.experiments import (
        fig1_sensor_lag,
        fig3_adaptive_pid,
        fig4_deadzone_oscillation,
        fig5_dynamic_stability,
        table2_rules,
        table3_coordination,
    )

    EXPERIMENTS.update(
        {
            "fig1": fig1_sensor_lag.run,
            "fig3": fig3_adaptive_pid.run,
            "fig4": fig4_deadzone_oscillation.run,
            "fig5": fig5_dynamic_stability.run,
            "table2": table2_rules.run,
            "table3": table3_coordination.run,
        }
    )


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment runner by id."""
    _load()
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by id with optional overrides."""
    return get_experiment(experiment_id)(**kwargs)
