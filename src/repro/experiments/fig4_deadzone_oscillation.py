"""Fig. 4: deadzone fan control oscillates under a *fixed* workload.

The paper measured a production server running a deadzone fan controller
and a constant load: the fan speed cycles between roughly 2000 and
5000 rpm purely because of the measurement lag and quantization.  We
reproduce the setup with the deadzone baseline controller and contrast it
with the adaptive PID (+ Eqn 10 guard), which holds the speed steady, and
with the same deadzone controller on an *ideal* sensor, which converges -
demonstrating that the non-idealities, not the controller structure
alone, cause the oscillation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.report import format_table, sparkline
from repro.analysis.stability import analyze_stability
from repro.config import ServerConfig, ideal_sensing_config
from repro.core.fan_baselines import DeadzoneFanController
from repro.experiments.registry import ExperimentResult
from repro.sim.scenarios import build_fan_controller, run_fan_only
from repro.workload.synthetic import ConstantWorkload


def _deadzone(config: ServerConfig) -> DeadzoneFanController:
    return DeadzoneFanController(
        t_low_c=config.control.t_ref_fan_c - 1.0,
        t_high_c=config.control.t_ref_fan_c + 1.0,
        step_rpm=600.0,
        fan_limits_rpm=(config.fan.min_speed_rpm, config.fan.max_speed_rpm),
        initial_speed_rpm=2500.0,
    )


def run(
    config: ServerConfig | None = None,
    utilization: float = 0.5,
    duration_s: float = 1800.0,
) -> ExperimentResult:
    """Reproduce Fig. 4 and the adaptive-PID / ideal-sensor contrasts."""
    cfg = config or ServerConfig()
    # The production firmware of Fig. 4 adjusts the fan every few seconds;
    # model that with a 5 s deadzone decision period.
    deadzone_cfg = cfg.with_control(fan_interval_s=5.0)
    workload = ConstantWorkload(utilization)

    res_deadzone = run_fan_only(
        _deadzone(deadzone_cfg),
        workload,
        duration_s,
        config=deadzone_cfg,
        initial_utilization=utilization,
        label="deadzone",
    )
    ideal_cfg = replace(deadzone_cfg, sensing=ideal_sensing_config())
    res_ideal = run_fan_only(
        _deadzone(ideal_cfg),
        workload,
        duration_s,
        config=ideal_cfg,
        initial_utilization=utilization,
        label="deadzone-ideal-sensor",
    )
    res_adaptive = run_fan_only(
        build_fan_controller(cfg, initial_speed_rpm=2500.0),
        workload,
        duration_s,
        config=cfg,
        initial_utilization=utilization,
        label="adaptive-pid",
    )

    stability = {
        "deadzone": analyze_stability(
            res_deadzone.times, res_deadzone.fan_speed_rpm, min_amplitude=500.0
        ),
        "deadzone_ideal": analyze_stability(
            res_ideal.times, res_ideal.fan_speed_rpm, min_amplitude=500.0
        ),
        "adaptive": analyze_stability(
            res_adaptive.times, res_adaptive.fan_speed_rpm, min_amplitude=500.0
        ),
    }
    checks = {
        "deadzone_oscillates_with_nonideal_sensing": stability[
            "deadzone"
        ].oscillatory,
        "ideal_sensing_removes_oscillation": not stability[
            "deadzone_ideal"
        ].oscillatory,
        "adaptive_pid_is_stable": not stability["adaptive"].oscillatory,
    }
    rows = [
        [name, s.oscillatory, s.amplitude, s.period_s]
        for name, s in stability.items()
    ]
    report = "\n".join(
        [
            f"Fig. 4 - deadzone fan control under fixed load (u={utilization})",
            f"  deadzone (lag+quant) : {sparkline(res_deadzone.fan_speed_rpm, 64)}",
            f"  deadzone (ideal)     : {sparkline(res_ideal.fan_speed_rpm, 64)}",
            f"  adaptive PID         : {sparkline(res_adaptive.fan_speed_rpm, 64)}",
            "",
            format_table(
                ["controller", "oscillatory", "amplitude [rpm]", "period [s]"], rows
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4: deadzone oscillation under fixed load",
        data={
            "stability": {
                name: {
                    "oscillatory": s.oscillatory,
                    "amplitude_rpm": s.amplitude,
                    "period_s": s.period_s,
                }
                for name, s in stability.items()
            },
        },
        report=report,
        checks=checks,
    )
