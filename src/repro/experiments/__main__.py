"""CLI: ``python -m repro.experiments [id ...]`` runs paper experiments.

With no arguments, every registered experiment runs in order and a final
summary line reports the reproduction checks.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments; returns a process exit code."""
    get_experiment("table2")  # force registry load for the help text
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce figures/tables from Kim et al., DATE 2014.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="id",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)
    ids = args.ids or sorted(EXPERIMENTS)

    failures = 0
    for experiment_id in ids:
        result = get_experiment(experiment_id)()
        print(f"=== {result.title}")
        print(result.report)
        for name, passed in result.checks.items():
            print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
            failures += 0 if passed else 1
        print()
    if failures:
        print(f"{failures} reproduction check(s) failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
