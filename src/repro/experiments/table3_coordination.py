"""Table III: deadline violations and fan energy across the five schemes.

Runs the Section VI-A workload through all coordination schemes and
reports the two Table III columns, with the paper's published values
alongside.  The reproduction criterion is the *shape*: the ordering of
schemes on both columns and the rough factors between them (see
EXPERIMENTS.md); absolute numbers depend on workload randomness and the
parameters the paper does not publish.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.config import ServerConfig
from repro.experiments.registry import ExperimentResult
from repro.sim.batch import run_batch
from repro.sim.result import SimulationResult
from repro.sim.scenarios import SCHEME_LABELS, SCHEME_NAMES, scheme_spec

#: The paper's published Table III (violation %, normalized fan energy).
PAPER_TABLE_III = {
    "uncoordinated": (26.12, 1.000),
    "ecoord": (44.44, 0.703),
    "rcoord": (14.14, 1.075),
    "rcoord_atref": (11.42, 0.801),
    "rcoord_atref_ssfan": (6.92, 0.804),
}


def run_all_schemes(
    config: ServerConfig | None = None,
    duration_s: float = 1800.0,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> dict[str, list[SimulationResult]]:
    """One run per scheme per seed, batched as a single ``(B,)`` grid.

    All scheme x seed cells share the time grid, so the whole table runs
    through the vectorized backend in one go (schemes whose controllers
    cannot batch - SSfan, E-coord - fall back per server inside the
    batch), with results identical to per-cell scalar runs.
    """
    cfg = config or ServerConfig()
    cells = [(scheme, seed) for scheme in SCHEME_NAMES for seed in seeds]
    results = run_batch(
        [
            scheme_spec(scheme, duration_s=duration_s, seed=seed, config=cfg)
            for scheme, seed in cells
        ]
    )
    grouped: dict[str, list[SimulationResult]] = {s: [] for s in SCHEME_NAMES}
    for (scheme, _), result in zip(cells, results):
        grouped[scheme].append(result)
    return grouped


def run(
    config: ServerConfig | None = None,
    duration_s: float = 1800.0,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> ExperimentResult:
    """Reproduce Table III (seed-averaged)."""
    runs = run_all_schemes(config, duration_s, seeds)
    base_energy = np.mean([r.fan_energy_j for r in runs["uncoordinated"]])
    measured = {}
    for scheme in SCHEME_NAMES:
        viol = float(np.mean([r.violation_percent for r in runs[scheme]]))
        energy = float(np.mean([r.fan_energy_j for r in runs[scheme]]) / base_energy)
        measured[scheme] = (viol, energy)

    v = {s: measured[s][0] for s in SCHEME_NAMES}
    e = {s: measured[s][1] for s in SCHEME_NAMES}
    checks = {
        # Violation ordering (Table III column 2).  R-coord's standalone
        # advantage over the uncoordinated baseline is within seed noise
        # in this reproduction (see EXPERIMENTS.md), so it is checked with
        # a tolerance; the full-scheme improvement is checked strictly.
        "ecoord_worst_violations": v["ecoord"] > v["uncoordinated"],
        "rcoord_no_worse_than_baseline": v["rcoord"]
        < v["uncoordinated"] + 3.0,
        "atref_beats_rcoord": v["rcoord_atref"] < v["rcoord"],
        "ssfan_best_of_rcoords": v["rcoord_atref_ssfan"]
        < min(v["rcoord"], v["rcoord_atref"]),
        # Headline claim: the full scheme cuts the baseline's violations
        # by double-digit percentage points (paper: 26.12 -> 6.92).
        "full_scheme_large_improvement": v["uncoordinated"]
        - v["rcoord_atref_ssfan"]
        >= 10.0,
        # Energy ordering (Table III column 3).
        "ecoord_cheapest": e["ecoord"] == min(e.values()),
        "rcoord_costs_more_than_atref": e["rcoord"] > e["rcoord_atref"],
        "atref_saves_vs_baseline": e["rcoord_atref"] < 0.9,
        "ssfan_close_to_atref": e["rcoord_atref_ssfan"] >= e["rcoord_atref"],
    }

    rows = []
    for scheme in SCHEME_NAMES:
        pv, pe = PAPER_TABLE_III[scheme]
        mv, me = measured[scheme]
        rows.append([SCHEME_LABELS[scheme], pv, mv, pe, me])
    report = "\n".join(
        [
            f"Table III - coordination schemes ({len(seeds)} seeds x "
            f"{duration_s:.0f} s)",
            format_table(
                [
                    "solution",
                    "paper viol%",
                    "ours viol%",
                    "paper norm E",
                    "ours norm E",
                ],
                rows,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Table III: performance and fan energy comparison",
        data={"measured": measured, "paper": PAPER_TABLE_III},
        report=report,
        checks=checks,
    )
