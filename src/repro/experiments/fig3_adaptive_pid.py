"""Fig. 3: fixed-gain PID (tuned @2000 / @6000 rpm) vs the adaptive scheme.

The paper's traces show, under a 0.1/0.7 alternating load:

* parameters tuned at 2000 rpm - stable everywhere but slow (their
  convergence measurement: ~210 s);
* parameters tuned at 6000 rpm - fast at high speed but unstable in the
  low-speed region (plant sensitivity there is ~8x higher, so the gains
  sit outside the stability range);
* the adaptive gain schedule (Eqns 8-9) - stable *and* fast.

The experiment scores the claims with two clean protocols plus the
paper's own square-wave visual:

1. **Low-region stability**: constant u = 0.3 (fan ~2300 rpm).  The
   @6000 gains must sustain a fan-speed limit cycle; the @2000 and
   adaptive controllers must converge.
2. **High-region convergence**: a 0.1 -> 0.7 demand step.  The adaptive
   schedule must settle the junction no slower than the @2000 gains
   (paper: 210 s for @2000; adaptive "drastically improved").
"""

from __future__ import annotations

from repro.analysis.report import format_table, sparkline
from repro.analysis.stability import analyze_stability, settling_time_s
from repro.config import ServerConfig
from repro.core.gain_schedule import GainSchedule
from repro.core.tuning import default_gain_schedule
from repro.experiments.registry import ExperimentResult
from repro.sim.scenarios import build_fan_controller, run_fan_only
from repro.workload.synthetic import ConstantWorkload, SquareWaveWorkload, StepWorkload


def _variants(config: ServerConfig) -> dict[str, GainSchedule]:
    tuned = default_gain_schedule(config)
    low, high = tuned.regions[0], tuned.regions[-1]
    return {
        "fixed@2000": GainSchedule.fixed(low.gains, low.ref_speed_rpm),
        "fixed@6000": GainSchedule.fixed(high.gains, high.ref_speed_rpm),
        "adaptive": tuned,
    }


def run(
    config: ServerConfig | None = None,
    duration_s: float = 2400.0,
    step_time_s: float = 300.0,
) -> ExperimentResult:
    """Reproduce Fig. 3's three-controller comparison."""
    cfg = config or ServerConfig()
    variants = _variants(cfg)

    # Protocol 1: constant low load - does the controller limit-cycle?
    stability = {}
    low_traces = {}
    for name, schedule in variants.items():
        controller = build_fan_controller(cfg, schedule=schedule,
                                          initial_speed_rpm=1500.0)
        res = run_fan_only(
            controller,
            ConstantWorkload(0.3),
            duration_s,
            config=cfg,
            initial_utilization=0.3,
            label=f"{name}-low",
        )
        stability[name] = analyze_stability(
            res.times, res.fan_speed_rpm, min_amplitude=400.0
        )
        low_traces[name] = res

    # Protocol 2: demand step into the high region - how fast to settle?
    settling = {}
    for name, schedule in variants.items():
        controller = build_fan_controller(cfg, schedule=schedule,
                                          initial_speed_rpm=1400.0)
        res = run_fan_only(
            controller,
            StepWorkload(0.1, 0.7, step_time_s),
            duration_s,
            config=cfg,
            initial_utilization=0.1,
            label=f"{name}-step",
        )
        mask = res.times > step_time_s
        settled_at = settling_time_s(
            res.times[mask],
            res.junction_c[mask],
            final_value=cfg.control.t_ref_fan_c,
            tolerance=0.02,
        )
        settling[name] = (
            settled_at - step_time_s if settled_at != float("inf") else float("inf")
        )

    # The paper's visual: the square-wave workload traces.
    square_traces = {}
    for name, schedule in variants.items():
        controller = build_fan_controller(cfg, schedule=schedule,
                                          initial_speed_rpm=1400.0)
        square_traces[name] = run_fan_only(
            controller,
            SquareWaveWorkload(low=0.1, high=0.7, half_period_s=300.0),
            duration_s,
            config=cfg,
            label=f"{name}-square",
        )

    checks = {
        "fixed_6000_limit_cycles_at_low_speed": stability["fixed@6000"].oscillatory,
        "fixed_2000_stable_at_low_speed": not stability["fixed@2000"].oscillatory,
        "adaptive_stable_at_low_speed": not stability["adaptive"].oscillatory,
        "adaptive_no_slower_than_fixed_2000": settling["adaptive"]
        <= settling["fixed@2000"] + 30.0,
        "fixed_2000_settles_in_paper_ballpark": 60.0
        <= settling["fixed@2000"]
        <= 400.0,
    }
    rows = [
        [
            name,
            stability[name].oscillatory,
            stability[name].amplitude,
            settling[name],
        ]
        for name in variants
    ]
    lines = ["Fig. 3 - fixed-gain vs adaptive PID"]
    lines.append("square-wave fan traces (paper's visual):")
    for name, res in square_traces.items():
        lines.append(f"  {name:11s} {sparkline(res.fan_speed_rpm, 64)}")
    lines.append("constant low-load fan traces (stability protocol):")
    for name, res in low_traces.items():
        lines.append(f"  {name:11s} {sparkline(res.fan_speed_rpm, 64)}")
    lines.append("")
    lines.append(
        format_table(
            [
                "controller",
                "low-region limit cycle",
                "cycle amp [rpm]",
                "step settling [s]",
            ],
            rows,
        )
    )
    lines.append("(paper: @2000 converges in ~210 s; @6000 unstable at low speed)")
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: adaptive vs conventional PID",
        data={
            "oscillatory": {n: s.oscillatory for n, s in stability.items()},
            "oscillation_amplitude_rpm": {
                n: s.amplitude for n, s in stability.items()
            },
            "settling_s": settling,
        },
        report="\n".join(lines),
        checks=checks,
    )
