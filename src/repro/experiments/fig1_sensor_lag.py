"""Fig. 1: the ~10 s measurement lag behind a workload change.

The paper's Fig. 1 plots *CPU utilization* against the *power sensor*
reading: the telemetry follows the workload change only ~10 seconds
later, caused by the I2C path to the BMC.  We reproduce it three ways:

* with the power-sensor pipeline (the figure's own signal), measuring
  the apparent delay between the utilization step and the measured power
  response;
* with the temperature pipeline (the controller's view), showing the
  same lag on the junction channel; and
* with the transaction-level I2C bus model, showing how the lag grows
  with the number of sensors sharing the bus (the paper's "bandwidth
  contention becomes even worse in newer generation servers").
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table, sparkline
from repro.config import ServerConfig
from repro.experiments.registry import ExperimentResult
from repro.sensing.i2c import I2CBus
from repro.sensing.power_sensor import PowerSensor
from repro.sensing.sensor import TemperatureSensor
from repro.thermal.server import ServerThermalModel
from repro.workload.synthetic import StepWorkload


def _step_response(
    config: ServerConfig, step_time_s: float, duration_s: float, dt_s: float
) -> dict[str, np.ndarray]:
    """Open-loop utilization step at fixed fan speed.

    Records the true junction and its measurement, plus the utilization
    and the power-sensor reading - the two curves the paper's figure
    shows.
    """
    plant = ServerThermalModel(config, initial_utilization=0.1,
                               initial_fan_speed_rpm=3000.0)
    plant.settle(0.1, 3000.0)
    sensor = TemperatureSensor(config.sensing)
    power_sensor = PowerSensor(config.cpu, lag_s=config.sensing.lag_s)
    workload = StepWorkload(before=0.1, after=0.7, step_time_s=step_time_s)
    n = int(round(duration_s / dt_s))
    times = np.empty(n)
    true_c = np.empty(n)
    meas_c = np.empty(n)
    utilization = np.empty(n)
    power_meas_w = np.empty(n)
    sensor.observe(0.0, plant.junction_c)
    power_sensor.observe_utilization(0.0, 0.1)
    for k in range(n):
        t = (k + 1) * dt_s
        demand = workload.demand(t)
        state = plant.step(dt_s, demand, 3000.0)
        sensor.observe(t, state.junction_c)
        power_sensor.observe_utilization(t, demand)
        times[k] = t
        true_c[k] = state.junction_c
        meas_c[k] = sensor.read(t).value_c
        utilization[k] = demand
        power_meas_w[k] = power_sensor.read(t).power_w
    return {
        "times": times,
        "true_c": true_c,
        "meas_c": meas_c,
        "utilization": utilization,
        "power_meas_w": power_meas_w,
    }


def measure_apparent_lag_s(
    times: np.ndarray,
    true_c: np.ndarray,
    meas_c: np.ndarray,
    step_time_s: float,
    threshold_c: float = 1.0,
) -> float:
    """Delay between true and measured crossing of a response threshold."""
    base = true_c[times < step_time_s].mean()
    true_idx = np.argmax(true_c > base + threshold_c)
    meas_idx = np.argmax(meas_c > base + threshold_c)
    return float(times[meas_idx] - times[true_idx])


def contention_lag_table(
    sensor_counts: tuple[int, ...] = (1, 4, 8, 16, 32),
    transaction_time_s: float = 0.3,
    base_latency_s: float = 0.5,
) -> list[tuple[int, float]]:
    """Worst-case reading staleness vs number of sensors on the bus."""
    rows = []
    for count in sensor_counts:
        bus = I2CBus(transaction_time_s, base_latency_s)
        for i in range(count):
            bus.attach(f"sensor{i}")
        rows.append((count, bus.worst_case_lag_s()))
    return rows


def run(
    config: ServerConfig | None = None,
    step_time_s: float = 60.0,
    duration_s: float = 240.0,
    dt_s: float = 0.5,
) -> ExperimentResult:
    """Reproduce Fig. 1 and report the measured apparent lag."""
    cfg = config or ServerConfig()
    series = _step_response(cfg, step_time_s, duration_s, dt_s)
    lag = measure_apparent_lag_s(
        series["times"], series["true_c"], series["meas_c"], step_time_s
    )
    # Power-channel lag: first time the measured power reflects the step.
    power_before = series["power_meas_w"][series["times"] < step_time_s].max()
    power_idx = int(np.argmax(series["power_meas_w"] > power_before + 1.0))
    power_lag = float(series["times"][power_idx] - step_time_s)
    contention = contention_lag_table()

    checks = {
        # The paper measures ~10 s; our pipeline is configured for 10 s.
        "lag_matches_configuration": abs(lag - cfg.sensing.lag_s) <= 2.0,
        "power_sensor_lag_matches": abs(power_lag - cfg.sensing.lag_s) <= 2.0,
        "contention_grows_with_sensors": contention[-1][1] > contention[0][1],
    }
    report = "\n".join(
        [
            "Fig. 1 - telemetry lag behind a 0.1 -> 0.7 utilization step",
            f"  CPU utilization : {sparkline(series['utilization'], 70)}",
            f"  power sensor    : {sparkline(series['power_meas_w'], 70)}",
            f"  true junction   : {sparkline(series['true_c'], 70)}",
            f"  measured Tj     : {sparkline(series['meas_c'], 70)}",
            f"  power lag {power_lag:.1f} s / junction lag {lag:.1f} s "
            f"(configured {cfg.sensing.lag_s:.1f} s; paper: ~10 s)",
            "",
            "I2C bandwidth contention (worst-case staleness vs sensor count):",
            format_table(
                ["sensors", "worst-case lag [s]"],
                [[n, lag_s] for n, lag_s in contention],
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1: sensing lag on a utilization step",
        data={
            "apparent_lag_s": lag,
            "power_lag_s": power_lag,
            "configured_lag_s": cfg.sensing.lag_s,
            "contention": contention,
            "series": series,
        },
        report=report,
        checks=checks,
    )
