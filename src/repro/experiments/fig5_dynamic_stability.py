"""Fig. 5: the full global scheme stays stable under a noisy dynamic load.

The paper's Fig. 5 runs the proposed fan controller together with the CPU
load controller under the 0.1/0.7 alternating workload with Gaussian
noise (sigma = 0.04) and shows a bounded, non-divergent fan speed trace.
We reproduce the run and check: no sustained limit cycle beyond the
workload's own period, junction bounded, and fan speed well inside the
physical range on average.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table, sparkline
from repro.config import ServerConfig
from repro.experiments.registry import ExperimentResult
from repro.sim.scenarios import (
    build_global_controller,
    build_plant,
    build_sensor,
    paper_workload,
)
from repro.sim.engine import Simulator


def run(
    config: ServerConfig | None = None,
    duration_s: float = 2400.0,
    seed: int = 5,
    noise_std: float = 0.04,
) -> ExperimentResult:
    """Reproduce Fig. 5's stability demonstration."""
    cfg = config or ServerConfig()
    controller = build_global_controller("rcoord", cfg)
    plant = build_plant(cfg)
    sensor = build_sensor(cfg, seed=seed)
    workload = paper_workload(
        duration_s,
        seed=seed,
        include_spikes=False,
        noise_std=noise_std,
    )
    sim = Simulator(plant, sensor, workload, controller, record_decimation=10)
    res = sim.run(duration_s, label="fig5")

    fan = res.fan_speed_rpm
    junction = res.junction_c
    # Per-half-cycle fan means (reported for inspection) plus the three
    # stability criteria the paper's figure demonstrates: the junction
    # stays bounded, the fan is not pinned at a rail, and in the quiet
    # (low-load) phases the loop settles instead of limit-cycling.
    half = 300.0
    n_cycles = int(res.times[-1] // half)
    cycle_means = []
    for i in range(1, n_cycles):  # skip the first (startup) half-cycle
        mask = (res.times >= i * half) & (res.times < (i + 1) * half)
        if np.any(mask):
            cycle_means.append(float(fan[mask].mean()))

    # Final low phase: demand ~0.1, so a stable loop shows a calm fan.
    # Low phases occupy even half-cycle indices ([0, 300) is low).
    last_low_start = (n_cycles - 2 if n_cycles % 2 == 0 else n_cycles - 1) * half
    low_mask = (res.times >= last_low_start + half / 3.0) & (
        res.times < last_low_start + half
    )
    low_phase_amplitude = (
        float(fan[low_mask].max() - fan[low_mask].min())
        if np.any(low_mask)
        else 0.0
    )

    fraction_at_max = float(np.mean(fan == cfg.fan.max_speed_rpm))
    checks = {
        "junction_bounded": float(junction.max()) < 90.0,
        "fan_not_railed": fraction_at_max < 0.5,
        "quiet_phase_settles": low_phase_amplitude < 2500.0,
    }
    report = "\n".join(
        [
            f"Fig. 5 - global scheme, noisy dynamic load (sigma={noise_std})",
            f"  demand : {sparkline(res.demand, 70)}",
            f"  fan    : {sparkline(fan, 70)}",
            f"  Tj     : {sparkline(junction, 70)}",
            "",
            format_table(
                ["metric", "value"],
                [
                    ["max junction [C]", float(junction.max())],
                    ["mean fan [rpm]", float(fan.mean())],
                    ["violations [%]", res.violation_percent],
                    ["final low-phase fan amplitude [rpm]", low_phase_amplitude],
                ],
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: stability under dynamic noisy load",
        data={
            "summary": res.summary(),
            "cycle_means_rpm": cycle_means,
            "low_phase_amplitude_rpm": low_phase_amplitude,
        },
        report=report,
        checks=checks,
    )
