"""Experiment scripts reproducing every figure and table of the paper.

Each experiment module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.registry.ExperimentResult` with structured data
plus a formatted text report.  The registry maps experiment ids to those
functions; ``python -m repro.experiments <id>`` runs one from the shell.

=========  =======================================================
id         artefact
=========  =======================================================
fig1       Fig. 1 - I2C lag on a utilization step
fig3       Fig. 3 - fixed-gain vs adaptive PID traces
fig4       Fig. 4 - deadzone fan oscillation under fixed load
fig5       Fig. 5 - global scheme stability under noisy load
table2     Table II - coordination rule matrix behaviour
table3     Table III - five coordination schemes compared
=========  =======================================================
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
    "run_experiment",
]
