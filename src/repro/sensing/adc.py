"""ADC quantization model.

Enterprise platforms standardized on 8-bit ADCs for physical sensors
(Section I), so a reading with a 1 degC LSB carries up to +-0.5 degC of
quantization error - enough to make threshold controllers chatter.

:class:`AdcQuantizer` is a mid-tread uniform quantizer with saturation at
the code range limits, configurable bit width, LSB size, and input offset.
"""

from __future__ import annotations

import math

from repro.config import SensingConfig
from repro.errors import SensorError
from repro.units import check_nonnegative


class AdcQuantizer:
    """Mid-tread uniform quantizer emulating an n-bit ADC.

    Parameters
    ----------
    step:
        LSB size in the measured unit (degC for temperature sensors).
        A step of ``0`` disables quantization (ideal pass-through).
    bits:
        ADC resolution; codes span ``[0, 2**bits - 1]``.
    minimum:
        Input value mapped to code 0.
    """

    def __init__(self, step: float = 1.0, bits: int = 8, minimum: float = 0.0) -> None:
        check_nonnegative(step, "step")
        if bits < 1 or bits > 32:
            raise SensorError(f"bits must be in [1, 32], got {bits}")
        if not math.isfinite(minimum):
            raise SensorError(f"minimum must be finite, got {minimum!r}")
        self._step = float(step)
        self._bits = bits
        self._minimum = float(minimum)
        self._max_code = 2**bits - 1

    @property
    def step(self) -> float:
        """LSB size (0 means pass-through)."""
        return self._step

    @property
    def bits(self) -> int:
        """ADC resolution in bits."""
        return self._bits

    @property
    def minimum(self) -> float:
        """Input value of code 0."""
        return self._minimum

    @property
    def maximum(self) -> float:
        """Input value of the full-scale code."""
        return self._minimum + self._step * self._max_code

    def code(self, value: float) -> int:
        """Digital code for an analog input (with saturation)."""
        if not math.isfinite(value):
            raise SensorError(f"ADC input must be finite, got {value!r}")
        if self._step == 0.0:
            raise SensorError("code() is undefined for a pass-through quantizer")
        raw = round((value - self._minimum) / self._step)
        return int(min(max(raw, 0), self._max_code))

    def quantize(self, value: float) -> float:
        """Quantized analog value (code mapped back to the input unit)."""
        if self._step == 0.0:
            if not math.isfinite(value):
                raise SensorError(f"ADC input must be finite, got {value!r}")
            return value
        return self._minimum + self.code(value) * self._step

    @classmethod
    def from_config(cls, config: SensingConfig) -> "AdcQuantizer":
        """Build from a :class:`~repro.config.SensingConfig`."""
        return cls(
            step=config.quantization_step_c,
            bits=config.adc_bits,
            minimum=config.adc_min_c,
        )
