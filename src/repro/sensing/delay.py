"""Transport-delay line for sensor samples.

Models the fixed latency between when a value is produced at the sensor
and when the control firmware can read it (Fig. 1: ~10 s through the I2C
path).  Samples pushed at time ``t`` become readable at ``t + delay``;
reads return the newest sample that has cleared the delay (zero-order
hold).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SensorError
from repro.units import check_nonnegative


class DelayLine:
    """FIFO of timestamped samples with a fixed transport delay.

    Parameters
    ----------
    delay_s:
        Transport delay; 0 makes the line transparent.
    initial_value:
        Value returned before any pushed sample has cleared the delay.
        ``None`` means reads before then raise :class:`SensorError`.
    """

    def __init__(self, delay_s: float, initial_value: float | None = None) -> None:
        self._delay_s = check_nonnegative(delay_s, "delay_s")
        self._queue: deque[tuple[float, float]] = deque()
        self._current: float | None = initial_value
        self._last_push_time: float | None = None

    @classmethod
    def from_state(
        cls,
        delay_s: float,
        current: float,
        arrivals: list[tuple[float, float]],
    ) -> "DelayLine":
        """Rebuild a line from a current value and in-flight samples.

        ``arrivals`` holds ``(arrival_time, value)`` pairs in arrival
        order - already including the transport delay, so they are
        enqueued verbatim.  Used by the batch backend to hand its FIFO
        state back to a scalar sensor object.
        """
        line = cls(delay_s, initial_value=current)
        for arrival_time, value in arrivals:
            line._queue.append((arrival_time, value))
        return line

    @property
    def delay_s(self) -> float:
        """The configured transport delay in seconds."""
        return self._delay_s

    @property
    def pending(self) -> int:
        """Number of samples still in flight."""
        return len(self._queue)

    def push(self, time_s: float, value: float) -> None:
        """Insert a sample produced at ``time_s``.

        Timestamps must be non-decreasing (the bus preserves order).
        """
        if self._last_push_time is not None and time_s < self._last_push_time:
            raise SensorError(
                f"delay line requires time-ordered pushes; got {time_s} after "
                f"{self._last_push_time}"
            )
        self._last_push_time = time_s
        self._queue.append((time_s + self._delay_s, value))

    def read(self, time_s: float) -> float:
        """Newest value whose arrival time is <= ``time_s``.

        Values that cleared the delay earlier are dropped; the line behaves
        as a zero-order hold on the delayed signal.
        """
        while self._queue and self._queue[0][0] <= time_s:
            self._current = self._queue.popleft()[1]
        if self._current is None:
            raise SensorError(
                f"no sample has cleared the {self._delay_s} s delay by t={time_s}"
            )
        return self._current

    def peek(self, time_s: float) -> float | None:
        """Like :meth:`read` but returns ``None`` instead of raising."""
        try:
            return self.read(time_s)
        except SensorError:
            return None
