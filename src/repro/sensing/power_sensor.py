"""Power-sensor telemetry pipeline (the signal Fig. 1 actually plots).

Fig. 1 of the paper shows *CPU utilization* against the *power sensor*
reading: the power telemetry lags the workload by ~10 s through the same
I2C path as the temperature sensors.  This module models that channel:
utilization drives CPU power (Eqn 1), and the reading passes through the
same noise -> ADC -> transport-delay stages as a temperature measurement,
just with a watts-scaled quantizer.

Enterprise BMCs typically digitize power with the same standardized 8-bit
converters, so the default LSB is full-scale/255.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CpuPowerConfig
from repro.errors import SensorError
from repro.power.cpu import CpuPowerModel
from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.sensing.noise import GaussianNoise, NoiseModel, NoNoise
from repro.units import check_nonnegative, check_utilization


@dataclass(frozen=True)
class PowerReading:
    """A firmware-visible power reading with its sample timestamp."""

    time_s: float
    power_w: float


class PowerSensor:
    """CPU power telemetry: Eqn 1 + noise + ADC + I2C transport delay.

    Parameters
    ----------
    cpu_config:
        Eqn 1 coefficients (power span defines the ADC full scale).
    lag_s:
        Transport delay of the telemetry path (default: the same 10 s the
        temperature channel suffers).
    adc_bits:
        Converter resolution; the LSB is ``p_max / (2**bits - 1)``.
    noise_std_w:
        Gaussian noise on the analog reading, in watts.
    sample_interval_s:
        Sensor sampling cadence.
    """

    def __init__(
        self,
        cpu_config: CpuPowerConfig | None = None,
        lag_s: float = 10.0,
        adc_bits: int = 8,
        noise_std_w: float = 0.0,
        sample_interval_s: float = 1.0,
        seed: int | None = None,
    ) -> None:
        self._power_model = CpuPowerModel(cpu_config)
        check_nonnegative(lag_s, "lag_s")
        check_nonnegative(noise_std_w, "noise_std_w")
        p_max = self._power_model.config.p_max_w
        step = p_max / (2**adc_bits - 1)
        self._adc = AdcQuantizer(step=step, bits=adc_bits, minimum=0.0)
        self._noise: NoiseModel = (
            GaussianNoise(noise_std_w, seed=seed) if noise_std_w > 0.0 else NoNoise()
        )
        self._delay = DelayLine(lag_s)
        self._sample_interval = sample_interval_s
        self._next_sample_time = 0.0
        self._primed = False

    @property
    def lag_s(self) -> float:
        """Transport delay of the power telemetry."""
        return self._delay.delay_s

    @property
    def lsb_w(self) -> float:
        """Quantization step in watts."""
        return self._adc.step

    def observe_utilization(self, time_s: float, utilization: float) -> None:
        """Feed the applied CPU utilization; the sensor sees Eqn 1 power."""
        check_utilization(utilization, "utilization")
        self.observe_power(time_s, self._power_model.power_w(utilization))

    def observe_power(self, time_s: float, power_w: float) -> None:
        """Feed the instantaneous CPU power directly."""
        check_nonnegative(time_s, "time_s")
        check_nonnegative(power_w, "power_w")
        quantized = self._adc.quantize(power_w + self._noise.sample())
        if not self._primed:
            self._delay = DelayLine(self._delay.delay_s, initial_value=quantized)
            self._delay.push(time_s, quantized)
            self._primed = True
            self._next_sample_time = time_s + self._sample_interval
            return
        if time_s + 1e-9 < self._next_sample_time:
            return
        self._delay.push(time_s, quantized)
        while self._next_sample_time <= time_s + 1e-9:
            self._next_sample_time += self._sample_interval

    def read(self, time_s: float) -> PowerReading:
        """Firmware-visible power at ``time_s``."""
        if not self._primed:
            raise SensorError("power sensor has never observed a sample")
        return PowerReading(time_s=time_s, power_w=self._delay.read(time_s))
