"""The composed temperature sensor pipeline.

Physical junction temperature
    -> additive noise (transducer)
    -> ADC quantization (8-bit, 1 degC LSB)
    -> I2C transport delay (~10 s)
    -> periodic sampling by the control firmware.

:class:`TemperatureSensor` is driven from the simulation loop: call
:meth:`observe` every plant step with the true temperature, and
:meth:`read` whenever a controller samples its input.  The value a
controller sees is the quantized, delayed one - never the physical
temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SensingConfig
from repro.errors import SensorError
from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.sensing.noise import GaussianNoise, NoiseModel, NoNoise
from repro.units import check_nonnegative


@dataclass(frozen=True)
class SensorReading:
    """A firmware-visible reading with its sample timestamp."""

    time_s: float
    value_c: float


class TemperatureSensor:
    """Noise + quantization + transport delay measurement pipeline.

    Parameters
    ----------
    config:
        Sensing parameters (lag, LSB, noise, sample interval).
    noise:
        Override the noise model (defaults to Gaussian with the
        configured std, or :class:`NoNoise` when the std is zero).
    seed:
        RNG seed for the default Gaussian noise model.
    initial_value_c:
        Reading reported before the first sample clears the delay;
        defaults to the first observed value (see :meth:`observe`).
    """

    def __init__(
        self,
        config: SensingConfig | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
        initial_value_c: float | None = None,
    ) -> None:
        self._config = config or SensingConfig()
        if noise is not None:
            self._noise = noise
        elif self._config.noise_std_c > 0.0:
            self._noise = GaussianNoise(self._config.noise_std_c, seed=seed)
        else:
            self._noise = NoNoise()
        self._adc = AdcQuantizer.from_config(self._config)
        self._delay = DelayLine(self._config.lag_s, initial_value=initial_value_c)
        self._sample_interval = self._config.sample_interval_s
        self._next_sample_time = 0.0
        self._last_reading: SensorReading | None = None
        self._primed = initial_value_c is not None
        self._fault = None

    @property
    def config(self) -> SensingConfig:
        """The sensing configuration in force."""
        return self._config

    @property
    def adc(self) -> AdcQuantizer:
        """The quantizer stage (exposes LSB/bit configuration)."""
        return self._adc

    @property
    def noise(self) -> NoiseModel:
        """The additive-noise stage (the batch backend reuses its stream)."""
        return self._noise

    @property
    def is_primed(self) -> bool:
        """True once :meth:`observe` has been called at least once."""
        return self._primed

    @property
    def fault_state(self):
        """The installed sensing-fault pipeline (None = clean sensor)."""
        return self._fault

    def set_fault_state(self, state) -> None:
        """Install (or clear, with None) a per-run sensing-fault pipeline.

        The state object is a
        :class:`~repro.faults.states.SensorFaultState`: its
        ``pre_adc`` hook corrupts the analog (noisy) value before
        quantization, ``post_adc`` the digital value after - the same
        scalar transforms the batch backend applies, so fault-injected
        runs agree bit-for-bit across lanes.  Simulators install it at
        run start; it carries per-run state (stuck-register captures),
        so never reuse one across runs.
        """
        self._fault = state

    @property
    def lag_s(self) -> float:
        """Transport delay of the pipeline."""
        return self._delay.delay_s

    def observe(self, time_s: float, true_temp_c: float) -> None:
        """Feed the physical temperature at ``time_s``.

        The sensor samples at its own cadence (``sample_interval_s``); calls
        between sample instants are ignored, mirroring a transducer polled
        by the ADC at a fixed rate.  The very first observation also primes
        the pre-delay output so early reads are defined.
        """
        check_nonnegative(time_s, "time_s")
        if not self._primed:
            # Before anything clears the 10 s delay, firmware sees the
            # power-on reading: the first sampled value.
            measured = true_temp_c + self._noise.sample()
            if self._fault is not None:
                measured = self._fault.pre_adc(time_s, measured)
            quantized = self._adc.quantize(measured)
            if self._fault is not None:
                quantized = self._fault.post_adc(time_s, quantized)
            self._delay = DelayLine(self._config.lag_s, initial_value=quantized)
            self._delay.push(time_s, quantized)
            self._primed = True
            self._next_sample_time = time_s + self._sample_interval
            return
        if time_s + 1e-9 < self._next_sample_time:
            return
        measured = true_temp_c + self._noise.sample()
        if self._fault is not None:
            measured = self._fault.pre_adc(time_s, measured)
        quantized = self._adc.quantize(measured)
        if self._fault is not None:
            quantized = self._fault.post_adc(time_s, quantized)
        self._delay.push(time_s, quantized)
        # Schedule the next sample; catch up if observe() was called late.
        while self._next_sample_time <= time_s + 1e-9:
            self._next_sample_time += self._sample_interval
    def read(self, time_s: float) -> SensorReading:
        """Firmware-visible reading at ``time_s``.

        Raises :class:`SensorError` if :meth:`observe` has never been
        called (the pipeline has no data at all).
        """
        if not self._primed:
            raise SensorError("sensor has never observed a temperature")
        value = self._delay.read(time_s)
        self._last_reading = SensorReading(time_s=time_s, value_c=value)
        return self._last_reading

    @property
    def last_reading(self) -> SensorReading | None:
        """Most recent reading returned by :meth:`read`."""
        return self._last_reading

    def restore_pipeline(
        self,
        current_value_c: float,
        pending: list[tuple[float, float]],
        next_sample_time_s: float,
    ) -> None:
        """Overwrite the pipeline state from a batch run.

        The batch backend advances sensing as array state; at the end of
        a run it hands each sensor its firmware-visible value, the
        in-flight ``(arrival_time, value)`` samples, and the next sample
        instant, so scalar reads/observes afterwards continue exactly
        where the batch left off.
        """
        self._delay = DelayLine.from_state(
            self._config.lag_s, current_value_c, pending
        )
        self._next_sample_time = next_sample_time_s
        self._primed = True
        self._last_reading = None
