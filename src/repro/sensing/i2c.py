"""Transaction-level I2C bus model with bandwidth contention.

The paper attributes the ~10 s measurement lag to the bandwidth-limited
I2C bus between sensors and the BMC, and notes that the lag *grows with
the number of sensors* sharing the bus (Section I).  This module models
that mechanism explicitly:

* the bus serves one read transaction at a time, each taking
  ``transaction_time_s``;
* attached devices are polled round-robin;
* a transaction captures the device's value at transaction *start* and
  delivers it at transaction *end* plus a firmware ``base_latency_s``.

With ``n`` devices, a device's reading is therefore stale by between
``base_latency_s + transaction_time_s`` and roughly
``base_latency_s + (n + 1) * transaction_time_s`` - reproducing the
contention-scaling effect.  The simpler fixed-lag
:class:`~repro.sensing.delay.DelayLine` (10 s) is what the paper's control
experiments assume; this model justifies that number and supports
sensitivity studies over sensor count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SensorError
from repro.units import check_nonnegative, check_positive


@dataclass(frozen=True)
class I2CTransaction:
    """One completed bus transaction (useful for tracing/diagnostics)."""

    device: str
    start_s: float
    end_s: float
    value: float

    @property
    def duration_s(self) -> float:
        """Bus occupancy of this transaction."""
        return self.end_s - self.start_s


class I2CBus:
    """Round-robin polled sensor bus.

    Drive it from the simulation loop with :meth:`step`, passing the
    *current physical values* of all attached devices; read the firmware-
    visible value of a device with :meth:`read`.
    """

    def __init__(
        self, transaction_time_s: float = 0.5, base_latency_s: float = 0.0
    ) -> None:
        self._txn_time = check_positive(transaction_time_s, "transaction_time_s")
        self._base_latency = check_nonnegative(base_latency_s, "base_latency_s")
        self._devices: list[str] = []
        self._rr_index = 0
        self._pending: tuple[str, float, float] | None = None  # device, start, value
        #: Per-device queue of (available_time, value) deliveries awaiting
        #: their firmware latency; drained into _current on read().
        self._deliveries: dict[str, deque[tuple[float, float]]] = {}
        self._current: dict[str, float] = {}
        self._last_time = 0.0
        self._history: list[I2CTransaction] = []

    @property
    def transaction_time_s(self) -> float:
        """Time one read transaction occupies the bus."""
        return self._txn_time

    @property
    def base_latency_s(self) -> float:
        """Fixed firmware-path latency added after transaction completion."""
        return self._base_latency

    @property
    def devices(self) -> list[str]:
        """Names of attached devices, in polling order."""
        return list(self._devices)

    @property
    def history(self) -> list[I2CTransaction]:
        """All completed transactions (grows with simulation length)."""
        return list(self._history)

    def worst_case_lag_s(self) -> float:
        """Upper bound on reading staleness for the current device count.

        A device just missed by the poller waits a full cycle plus its own
        transaction, plus the firmware latency.
        """
        n = max(len(self._devices), 1)
        return self._base_latency + (n + 1) * self._txn_time

    def attach(self, name: str) -> None:
        """Attach a named device to the polling cycle."""
        if name in self._devices:
            raise SensorError(f"device {name!r} already attached")
        self._devices.append(name)
        self._deliveries[name] = deque()

    def step(self, time_s: float, values: dict[str, float]) -> list[I2CTransaction]:
        """Advance the bus schedule to ``time_s``.

        ``values`` must contain the current physical value of every
        attached device; a transaction starting now captures from it.
        Returns transactions completed during this step.
        """
        if time_s < self._last_time:
            raise SensorError(
                f"bus time must be monotonic; got {time_s} after {self._last_time}"
            )
        if not self._devices:
            raise SensorError("no devices attached to the I2C bus")
        missing = [d for d in self._devices if d not in values]
        if missing:
            raise SensorError(f"missing values for devices: {missing}")

        completed: list[I2CTransaction] = []
        # Start a transaction immediately if the bus is idle.
        if self._pending is None:
            device = self._devices[self._rr_index]
            self._pending = (device, self._last_time, values[device])

        # Complete as many transactions as fit before time_s.
        while self._pending is not None:
            device, start, value = self._pending
            end = start + self._txn_time
            if end > time_s:
                break
            txn = I2CTransaction(device=device, start_s=start, end_s=end, value=value)
            completed.append(txn)
            self._history.append(txn)
            self._deliveries[device].append((end + self._base_latency, value))
            self._rr_index = (self._rr_index + 1) % len(self._devices)
            next_device = self._devices[self._rr_index]
            self._pending = (next_device, end, values[next_device])

        self._last_time = time_s
        return completed

    def read(self, name: str, time_s: float) -> float | None:
        """Firmware-visible value of device ``name`` at ``time_s``.

        Returns the newest delivery whose firmware latency has elapsed;
        ``None`` until the device's first delivery.  Reads must not go
        backwards in time (deliveries are consumed in order).
        """
        if name not in self._devices:
            raise SensorError(f"unknown device {name!r}")
        queue = self._deliveries[name]
        while queue and queue[0][0] <= time_s:
            self._current[name] = queue.popleft()[1]
        return self._current.get(name)
