"""Telemetry recorder: append-only channels exported as numpy arrays.

The simulation engine records one sample per step into named channels
(time, junction temperature, fan speed, ...).  Channels grow in amortized
O(1) python lists and convert to numpy arrays on demand for analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


class TelemetryRecorder:
    """Named, synchronized telemetry channels.

    Every :meth:`record` call must provide the same set of channels as the
    first call, keeping all channels equal-length and index-aligned.
    """

    def __init__(self) -> None:
        self._channels: dict[str, list[float]] = {}
        self._length = 0

    @property
    def length(self) -> int:
        """Number of recorded samples."""
        return self._length

    @property
    def channel_names(self) -> list[str]:
        """Names of all channels (insertion order)."""
        return list(self._channels)

    def record(self, **values: float) -> None:
        """Append one sample across all channels."""
        if not values:
            raise AnalysisError("record() needs at least one channel")
        if not self._channels:
            self._channels = {name: [] for name in values}
        elif set(values) != set(self._channels):
            raise AnalysisError(
                f"channel set changed: expected {sorted(self._channels)}, "
                f"got {sorted(values)}"
            )
        for name, value in values.items():
            self._channels[name].append(float(value))
        self._length += 1

    def array(self, name: str) -> np.ndarray:
        """One channel as a float numpy array."""
        if name not in self._channels:
            raise AnalysisError(
                f"unknown channel {name!r}; have {sorted(self._channels)}"
            )
        return np.asarray(self._channels[name], dtype=float)

    def arrays(self) -> dict[str, np.ndarray]:
        """All channels as numpy arrays."""
        return {name: self.array(name) for name in self._channels}

    def last(self, name: str) -> float:
        """Most recent value of a channel."""
        channel = self._channels.get(name)
        if not channel:
            raise AnalysisError(f"channel {name!r} is empty or unknown")
        return channel[-1]
