"""Telemetry recorder: append-only channels exported as numpy arrays.

The simulation engine records one sample per step into named channels
(time, junction temperature, fan speed, ...).  Channels grow in amortized
O(1) python lists and convert to numpy arrays on demand for analysis.

For unbounded streams (long soak runs, live dashboards fed by the
observability subsystem) pass ``max_samples`` to cap memory: channels
become rings that keep only the most recent ``max_samples`` samples,
evicting the oldest sample across *all* channels atomically so they stay
index-aligned.  :attr:`TelemetryRecorder.dropped` counts evictions and
:attr:`TelemetryRecorder.total_recorded` the lifetime sample count, so
consumers can tell a full window from a short run.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import AnalysisError


class TelemetryRecorder:
    """Named, synchronized telemetry channels.

    Every :meth:`record` call must provide the same set of channels as the
    first call, keeping all channels equal-length and index-aligned.

    Parameters
    ----------
    max_samples:
        ``None`` (default) grows without bound.  A positive value keeps
        only the most recent ``max_samples`` samples per channel; older
        samples are evicted oldest-first, simultaneously from every
        channel, and counted in :attr:`dropped`.
    """

    def __init__(self, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise AnalysisError(
                f"max_samples must be >= 1 or None, got {max_samples}"
            )
        self._max_samples = max_samples
        self._channels: dict[str, list[float] | deque[float]] = {}
        self._length = 0
        self._total = 0

    @property
    def max_samples(self) -> int | None:
        """The retention cap (None = unbounded)."""
        return self._max_samples

    @property
    def length(self) -> int:
        """Number of retained samples (= lifetime count when unbounded)."""
        return self._length

    @property
    def total_recorded(self) -> int:
        """Lifetime number of :meth:`record` calls, evicted or not."""
        return self._total

    @property
    def dropped(self) -> int:
        """Samples evicted from the front to honour ``max_samples``."""
        return self._total - self._length

    @property
    def channel_names(self) -> list[str]:
        """Names of all channels (insertion order)."""
        return list(self._channels)

    def _new_channel(self) -> list[float] | deque[float]:
        if self._max_samples is None:
            return []
        # deque(maxlen=...) evicts its own oldest entry on append, so one
        # record() call shifts every channel's window by the same sample.
        return deque(maxlen=self._max_samples)

    def record(self, **values: float) -> None:
        """Append one sample across all channels."""
        if not values:
            raise AnalysisError("record() needs at least one channel")
        if not self._channels:
            self._channels = {name: self._new_channel() for name in values}
        elif set(values) != set(self._channels):
            raise AnalysisError(
                f"channel set changed: expected {sorted(self._channels)}, "
                f"got {sorted(values)}"
            )
        for name, value in values.items():
            self._channels[name].append(float(value))
        self._total += 1
        if self._max_samples is None or self._length < self._max_samples:
            self._length += 1

    def array(self, name: str) -> np.ndarray:
        """One channel as a float numpy array (oldest retained first)."""
        if name not in self._channels:
            raise AnalysisError(
                f"unknown channel {name!r}; have {sorted(self._channels)}"
            )
        return np.asarray(self._channels[name], dtype=float)

    def arrays(self) -> dict[str, np.ndarray]:
        """All channels as numpy arrays."""
        return {name: self.array(name) for name in self._channels}

    def last(self, name: str) -> float:
        """Most recent value of a channel."""
        channel = self._channels.get(name)
        if not channel:
            raise AnalysisError(f"channel {name!r} is empty or unknown")
        return channel[-1]
