"""Additive measurement-noise models applied before quantization."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.units import check_nonnegative


class NoiseModel(ABC):
    """Additive noise drawn per sample."""

    @abstractmethod
    def sample(self) -> float:
        """Draw one noise value to add to a measurement."""


class NoNoise(NoiseModel):
    """Ideal noiseless sensor."""

    def sample(self) -> float:
        return 0.0


class GaussianNoise(NoiseModel):
    """Zero-mean Gaussian noise with standard deviation ``std``.

    A ``std`` of 0 behaves identically to :class:`NoNoise`.
    """

    def __init__(self, std: float, seed: int | None = None) -> None:
        self._std = check_nonnegative(std, "std")
        self._rng = np.random.default_rng(seed)

    @property
    def std(self) -> float:
        """Noise standard deviation."""
        return self._std

    def sample(self) -> float:
        if self._std == 0.0:
            return 0.0
        return float(self._rng.normal(0.0, self._std))


class UniformNoise(NoiseModel):
    """Zero-mean uniform noise on ``[-half_width, +half_width]``."""

    def __init__(self, half_width: float, seed: int | None = None) -> None:
        self._half_width = check_nonnegative(half_width, "half_width")
        self._rng = np.random.default_rng(seed)

    @property
    def half_width(self) -> float:
        """Half-width of the uniform interval."""
        return self._half_width

    def sample(self) -> float:
        if self._half_width == 0.0:
            return 0.0
        return float(self._rng.uniform(-self._half_width, self._half_width))
