"""Per-core sensor array polled over a shared I2C bus.

The Section I scaling problem, in executable form: each core has its own
8-bit-quantized sensor, all sensors share one bus, and the firmware acts
on the *hottest* reading it has - which may be several polling cycles
stale.  With enough sensors on the bus, the effective lag alone
reproduces the 10 s figure of the paper's fixed-lag model.
"""

from __future__ import annotations

from repro.config import SensingConfig
from repro.errors import SensorError
from repro.sensing.adc import AdcQuantizer
from repro.sensing.i2c import I2CBus


class SensorArray:
    """N quantized temperature sensors behind one polled I2C bus.

    Parameters
    ----------
    n_sensors:
        Number of per-core sensors on the bus.
    sensing:
        LSB/bit configuration (shared by all sensors).
    transaction_time_s:
        Bus occupancy of one sensor read.
    base_latency_s:
        Firmware-path latency after a transaction completes.
    """

    def __init__(
        self,
        n_sensors: int,
        sensing: SensingConfig | None = None,
        transaction_time_s: float = 0.5,
        base_latency_s: float = 0.5,
    ) -> None:
        if n_sensors < 1:
            raise SensorError(f"n_sensors must be >= 1, got {n_sensors}")
        self._sensing = sensing or SensingConfig()
        self._adc = AdcQuantizer.from_config(self._sensing)
        self._bus = I2CBus(transaction_time_s, base_latency_s)
        self._names = [f"core{i}" for i in range(n_sensors)]
        for name in self._names:
            self._bus.attach(name)

    @property
    def n_sensors(self) -> int:
        """Number of sensors on the bus."""
        return len(self._names)

    @property
    def bus(self) -> I2CBus:
        """The underlying bus (exposes contention diagnostics)."""
        return self._bus

    def worst_case_lag_s(self) -> float:
        """Upper bound on any single reading's staleness."""
        return self._bus.worst_case_lag_s()

    def observe(self, time_s: float, temps_c: list[float]) -> None:
        """Feed the true per-core temperatures at ``time_s``."""
        if len(temps_c) != len(self._names):
            raise SensorError(
                f"expected {len(self._names)} temperatures, got {len(temps_c)}"
            )
        values = {
            name: self._adc.quantize(temp)
            for name, temp in zip(self._names, temps_c)
        }
        self._bus.step(time_s, values)

    def read_all(self, time_s: float) -> dict[str, float | None]:
        """Firmware-visible reading per sensor (None before first delivery)."""
        return {name: self._bus.read(name, time_s) for name in self._names}

    def read_hottest(self, time_s: float) -> float:
        """The hottest firmware-visible reading - the DTM input.

        Raises :class:`SensorError` until at least one sensor has
        delivered a reading.
        """
        readings = [r for r in self.read_all(time_s).values() if r is not None]
        if not readings:
            raise SensorError(f"no sensor delivered a reading by t={time_s}")
        return max(readings)
