"""Sensing substrate: the non-ideal temperature measurement pipeline.

Section I of the paper identifies two non-idealities that destabilize fan
controllers:

1. **Time lag** (~10 s) between the physical transducer and the control
   firmware, caused by the bandwidth-limited I2C bus to the BMC.
2. **Quantization** from standardized 8-bit ADCs (1 degC per LSB).

This package models the full path: physical temperature -> additive noise
-> ADC quantization -> I2C transport delay -> periodic sampling by the
firmware.  :class:`~repro.sensing.sensor.TemperatureSensor` composes the
stages; each stage is also available separately.
"""

from repro.sensing.adc import AdcQuantizer
from repro.sensing.delay import DelayLine
from repro.sensing.i2c import I2CBus, I2CTransaction
from repro.sensing.noise import GaussianNoise, NoNoise, NoiseModel, UniformNoise
from repro.sensing.power_sensor import PowerReading, PowerSensor
from repro.sensing.sensor import SensorReading, TemperatureSensor
from repro.sensing.sensor_array import SensorArray
from repro.sensing.telemetry import TelemetryRecorder

__all__ = [
    "AdcQuantizer",
    "DelayLine",
    "GaussianNoise",
    "I2CBus",
    "I2CTransaction",
    "NoNoise",
    "NoiseModel",
    "PowerReading",
    "PowerSensor",
    "SensorArray",
    "SensorReading",
    "TelemetryRecorder",
    "TemperatureSensor",
    "UniformNoise",
]
