"""Multi-core server plant: N die nodes sharing one fan-cooled heat sink.

Section III-A assumes perfectly balanced load so one junction suffices;
newer platforms carry one sensor per core and poll them all over the
shared I2C bus (Section I).  This extension models that configuration:

* each core is its own fast RC node (Eqn 1 power split per core),
* all cores couple to the common heat sink, which sees the total power,
* per-core utilizations may be imbalanced - the hottest core is what the
  DTM must regulate.

With balanced utilizations the model reduces exactly to the single-node
:class:`~repro.thermal.server.ServerThermalModel` (verified in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ServerConfig
from repro.errors import ThermalModelError
from repro.power.fan import FanPowerModel
from repro.thermal.die import CpuDie
from repro.thermal.heatsink import HeatSink
from repro.units import check_duration, check_utilization, clamp


@dataclass(frozen=True)
class MultiCoreState:
    """Snapshot of the multi-core plant after one step."""

    time_s: float
    junctions_c: tuple[float, ...]
    heatsink_c: float
    cpu_power_w: float
    fan_power_w: float
    fan_speed_rpm: float

    @property
    def hottest_c(self) -> float:
        """Hottest junction - the DTM's regulation target."""
        return max(self.junctions_c)

    @property
    def spread_c(self) -> float:
        """Temperature spread across cores (0 when balanced)."""
        return max(self.junctions_c) - min(self.junctions_c)


class MultiCoreServerModel:
    """N cores on a shared heat sink.

    Eqn 1 is split evenly: each core contributes ``P_static / n`` idle
    power and ``(P_dyn / n) * u_i`` dynamic power; the die resistance per
    core is ``n * R_die`` so that a balanced load reproduces the
    single-node junction temperature exactly.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        n_cores: int = 4,
        initial_utilization: float = 0.1,
        initial_fan_speed_rpm: float = 4000.0,
    ) -> None:
        if n_cores < 1:
            raise ThermalModelError(f"n_cores must be >= 1, got {n_cores}")
        self._config = config or ServerConfig()
        self._n = n_cores
        self._fan_power = FanPowerModel(self._config.fan)
        check_utilization(initial_utilization, "initial_utilization")

        cpu = self._config.cpu
        self._static_per_core = cpu.p_static_w / n_cores
        self._dyn_per_core = cpu.p_dynamic_w / n_cores
        # Per-core junction rise must match the single-node model under
        # balanced load: r_core * P_core == R_die * P_total.
        self._r_core = self._config.die.r_die_k_per_w * n_cores

        self._time_s = 0.0
        ambient = self._config.ambient_c
        speed = clamp(
            initial_fan_speed_rpm,
            self._config.fan.min_speed_rpm,
            self._config.fan.max_speed_rpm,
        )
        total_power = cpu.p_static_w + cpu.p_dynamic_w * initial_utilization
        self._heatsink = HeatSink(
            self._config.heatsink,
            max_fan_speed_rpm=self._config.fan.max_speed_rpm,
            initial_temp_c=ambient,
        )
        hs_ss = self._heatsink.steady_state_c(speed, ambient, total_power)
        self._heatsink.reset(hs_ss)

        from repro.config import DieConfig

        core_die_config = DieConfig(
            time_constant_s=self._config.die.time_constant_s,
            r_die_k_per_w=self._r_core,
        )
        per_core_power = self._core_power_w(initial_utilization)
        self._cores = []
        for _ in range(n_cores):
            die = CpuDie(core_die_config, initial_temp_c=hs_ss)
            die.reset(die.steady_state_c(hs_ss, per_core_power))
            self._cores.append(die)
        self._last_state = self._snapshot(
            [initial_utilization] * n_cores, speed
        )

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self._n

    @property
    def config(self) -> ServerConfig:
        """The server configuration."""
        return self._config

    @property
    def state(self) -> MultiCoreState:
        """State snapshot after the most recent step."""
        return self._last_state

    @property
    def junctions_c(self) -> tuple[float, ...]:
        """Current per-core junction temperatures."""
        return tuple(core.temperature_c for core in self._cores)

    def _core_power_w(self, utilization: float) -> float:
        return self._static_per_core + self._dyn_per_core * utilization

    def _snapshot(
        self, utilizations: list[float], fan_speed_rpm: float
    ) -> MultiCoreState:
        total_power = sum(self._core_power_w(u) for u in utilizations)
        return MultiCoreState(
            time_s=self._time_s,
            junctions_c=self.junctions_c,
            heatsink_c=self._heatsink.temperature_c,
            cpu_power_w=total_power,
            fan_power_w=self._fan_power.power_w(fan_speed_rpm),
            fan_speed_rpm=fan_speed_rpm,
        )

    def step(
        self, dt_s: float, utilizations: list[float], fan_speed_rpm: float
    ) -> MultiCoreState:
        """Advance the plant with per-core utilizations."""
        check_duration(dt_s, "dt_s")
        if len(utilizations) != self._n:
            raise ThermalModelError(
                f"expected {self._n} per-core utilizations, got "
                f"{len(utilizations)}"
            )
        for util in utilizations:
            check_utilization(util, "utilization")
        speed = clamp(
            fan_speed_rpm,
            self._config.fan.min_speed_rpm,
            self._config.fan.max_speed_rpm,
        )
        self._time_s += dt_s
        total_power = sum(self._core_power_w(u) for u in utilizations)
        hs_temp = self._heatsink.step(
            dt_s, speed, self._config.ambient_c, total_power
        )
        for core, util in zip(self._cores, utilizations):
            core.step(dt_s, hs_temp, self._core_power_w(util))
        self._last_state = self._snapshot(list(utilizations), speed)
        return self._last_state
