"""CPU die (junction) thermal node.

Section III-B: the die time constant (0.1 s, Table I) is far below the heat
sink's (>= 60 s), so the junction temperature is computed by integrating
the die node while treating the heat sink temperature as constant over each
step.  The die relaxes toward ``T_hs + R_die * P_cpu``.
"""

from __future__ import annotations

from repro.config import DieConfig
from repro.thermal.rc_node import RCNode


class CpuDie:
    """Fast junction node riding on the heat sink.

    Parameters
    ----------
    config:
        Die time constant and junction-to-heatsink resistance.
    initial_temp_c:
        Starting junction temperature.
    """

    def __init__(self, config: DieConfig, initial_temp_c: float) -> None:
        self._config = config
        capacitance = config.time_constant_s / config.r_die_k_per_w
        self._node = RCNode(
            resistance_k_per_w=config.r_die_k_per_w,
            capacitance_j_per_k=capacitance,
            initial_temp_c=initial_temp_c,
        )

    @property
    def config(self) -> DieConfig:
        """Die thermal configuration."""
        return self._config

    @property
    def temperature_c(self) -> float:
        """Current junction temperature in Celsius."""
        return self._node.temperature_c

    @property
    def time_constant_s(self) -> float:
        """Die thermal time constant (Table I: 0.1 s)."""
        return self._config.time_constant_s

    def steady_state_c(self, heatsink_temp_c: float, power_w: float) -> float:
        """Junction steady state for a fixed heat sink temperature."""
        return self._node.steady_state_c(heatsink_temp_c, power_w)

    def step(self, dt_s: float, heatsink_temp_c: float, power_w: float) -> float:
        """Advance the junction by ``dt_s`` seconds and return it."""
        return self._node.step(dt_s, heatsink_temp_c, power_w)

    def advance(self, dt_s: float, heatsink_temp_c: float, power_w: float) -> float:
        """Hot-loop variant of :meth:`step`: ``dt_s`` validated by the caller."""
        return self._node.advance(dt_s, heatsink_temp_c, power_w)

    def reset(self, temp_c: float) -> None:
        """Force the junction temperature."""
        self._node.reset(temp_c)
