"""The server plant: CPU die on a fan-cooled heat sink (Section III-B).

:class:`ServerThermalModel` is the plant every controller in this library
acts on.  Per simulation step it takes the *applied* CPU utilization and
fan speed, computes powers (Eqn 1 and the cubic fan law), advances the heat
sink (Eqn 2-3) and then the die (fast node, heat sink held constant), and
exposes the true junction temperature - which the sensing pipeline then
degrades before any controller sees it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ServerConfig
from repro.power.cpu import CpuPowerModel
from repro.power.fan import FanPowerModel
from repro.thermal.ambient import AmbientProfile, ConstantAmbient
from repro.thermal.die import CpuDie
from repro.thermal.heatsink import HeatSink
from repro.thermal.steady_state import SteadyStateServerModel
from repro.units import check_duration, check_utilization, clamp


@dataclass(frozen=True)
class ServerState:
    """Snapshot of the plant after one step."""

    time_s: float
    junction_c: float
    heatsink_c: float
    ambient_c: float
    cpu_power_w: float
    fan_power_w: float
    utilization: float
    fan_speed_rpm: float

    @property
    def total_power_w(self) -> float:
        """``P_tot = P_cpu + P_fan`` (Section III-B)."""
        return self.cpu_power_w + self.fan_power_w


class ServerThermalModel:
    """Single-socket (or N balanced sockets) server plant.

    Parameters
    ----------
    config:
        Full server description (Table I defaults).
    ambient:
        Ambient profile; defaults to a constant at ``config.ambient_c``.
    initial_utilization, initial_fan_speed_rpm:
        Operating point used to set the initial temperatures to their
        steady state, so simulations start thermally settled.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        ambient: AmbientProfile | None = None,
        initial_utilization: float = 0.1,
        initial_fan_speed_rpm: float | None = None,
    ) -> None:
        self._config = config or ServerConfig()
        self._ambient = ambient or ConstantAmbient(self._config.ambient_c)
        self._cpu_power = CpuPowerModel(self._config.cpu)
        self._fan_power = FanPowerModel(self._config.fan)
        self._steady = SteadyStateServerModel(self._config)

        check_utilization(initial_utilization, "initial_utilization")
        if initial_fan_speed_rpm is None:
            initial_fan_speed_rpm = 0.5 * (
                self._config.fan.min_speed_rpm + self._config.fan.max_speed_rpm
            )
        self._time_s = 0.0
        ambient_now = self._ambient.temperature_c(0.0)
        power = self._socket_cpu_power(initial_utilization)
        self._heatsink = HeatSink(
            self._config.heatsink,
            max_fan_speed_rpm=self._config.fan.max_speed_rpm,
            initial_temp_c=ambient_now,
        )
        hs_ss = self._heatsink.steady_state_c(
            initial_fan_speed_rpm, ambient_now, power
        )
        self._heatsink.reset(hs_ss)
        self._die = CpuDie(self._config.die, initial_temp_c=hs_ss)
        die_ss = self._die.steady_state_c(hs_ss, power)
        self._die.reset(die_ss)
        self._last_state = ServerState(
            time_s=0.0,
            junction_c=die_ss,
            heatsink_c=hs_ss,
            ambient_c=ambient_now,
            cpu_power_w=power * self._config.n_sockets,
            fan_power_w=self._fan_power.power_w(initial_fan_speed_rpm)
            * self._config.n_sockets,
            utilization=initial_utilization,
            fan_speed_rpm=initial_fan_speed_rpm,
        )

    @property
    def config(self) -> ServerConfig:
        """The server configuration in force."""
        return self._config

    @property
    def ambient(self) -> AmbientProfile:
        """The inlet/ambient profile the plant breathes from."""
        return self._ambient

    @property
    def heatsink(self) -> HeatSink:
        """The heat sink submodel (exposes the Rhs(V) law)."""
        return self._heatsink

    @property
    def die(self) -> CpuDie:
        """The die submodel."""
        return self._die

    @property
    def time_s(self) -> float:
        """Current simulation time of the plant."""
        return self._time_s

    @property
    def state(self) -> ServerState:
        """State snapshot after the most recent step."""
        return self._last_state

    @property
    def junction_c(self) -> float:
        """True junction temperature (pre-sensing-pipeline)."""
        return self._die.temperature_c

    def clamp_fan_speed(self, speed_rpm: float) -> float:
        """Clamp a commanded fan speed into the fan's physical range."""
        fan = self._config.fan
        return clamp(speed_rpm, fan.min_speed_rpm, fan.max_speed_rpm)

    @property
    def steady_state(self) -> SteadyStateServerModel:
        """The algebraic steady-state model sharing this plant's config."""
        return self._steady

    def steady_state_junction_c(
        self, utilization: float, fan_speed_rpm: float, ambient_c: float | None = None
    ) -> float:
        """Junction steady state at a fixed operating point.

        Used by tuning, linearization, and the E-coord baseline's internal
        model.  Delegates to :class:`SteadyStateServerModel`, evaluating
        the ambient at the plant's current time when not given.
        """
        if ambient_c is None:
            ambient_c = self._ambient.temperature_c(self._time_s)
        return self._steady.junction_c(utilization, fan_speed_rpm, ambient_c)

    def required_fan_speed_rpm(
        self,
        utilization: float,
        target_junction_c: float,
        ambient_c: float | None = None,
    ) -> float:
        """Lowest fan speed holding the junction at ``target_junction_c``.

        Inverts the steady-state model analytically; the result is clamped
        to the fan's physical range.  Used by the single-step scaling
        scheme when stepping back down from maximum speed (Section V-C).
        """
        if ambient_c is None:
            ambient_c = self._ambient.temperature_c(self._time_s)
        return self._steady.required_fan_speed_rpm(
            utilization, target_junction_c, ambient_c
        )

    def step(self, dt_s: float, utilization: float, fan_speed_rpm: float) -> ServerState:
        """Advance the plant by ``dt_s`` with the applied knob settings.

        The commanded fan speed is clamped to the physical range; the
        returned :class:`ServerState` records the clamped value actually
        applied.
        """
        dt = check_duration(dt_s, "dt_s")
        util = check_utilization(utilization, "utilization")
        return self.step_fast(dt, util, fan_speed_rpm)

    def step_fast(
        self, dt_s: float, utilization: float, fan_speed_rpm: float
    ) -> ServerState:
        """Hot-loop variant of :meth:`step`: ``dt_s`` validated by the caller.

        :class:`~repro.sim.engine.ServerStepper` fixes ``dt`` at
        construction, so re-validating it (and re-checking utilization
        through the full helper) every step is pure overhead.  The inline
        range test below still rejects out-of-range *and* NaN utilization
        (NaN fails both comparisons) and defers to
        :func:`~repro.units.check_utilization` for the error message.
        """
        if not 0.0 <= utilization <= 1.0:
            check_utilization(utilization, "utilization")
        speed = self.clamp_fan_speed(fan_speed_rpm)
        self._time_s += dt_s
        ambient_now = self._ambient.temperature_c(self._time_s)
        power = self._socket_cpu_power(utilization)
        hs_temp = self._heatsink.advance(dt_s, speed, ambient_now, power)
        junction = self._die.advance(dt_s, hs_temp, power)
        self._last_state = ServerState(
            time_s=self._time_s,
            junction_c=junction,
            heatsink_c=hs_temp,
            ambient_c=ambient_now,
            cpu_power_w=power * self._config.n_sockets,
            fan_power_w=self._fan_power.power_w(speed) * self._config.n_sockets,
            utilization=utilization,
            fan_speed_rpm=speed,
        )
        return self._last_state

    def restore(self, state: ServerState) -> None:
        """Overwrite the plant's dynamic state from a snapshot.

        Used by the vectorized batch backend to sync a plant object to the
        final state of an array-run, so mixed scalar/batch workflows see
        one consistent plant afterwards.
        """
        self._time_s = state.time_s
        self._heatsink.reset(state.heatsink_c)
        self._die.reset(state.junction_c)
        self._last_state = state

    def settle(self, utilization: float, fan_speed_rpm: float) -> ServerState:
        """Jump the plant directly to the steady state of an operating point.

        Convenient for starting experiments from equilibrium without
        simulating the long heat sink transient.
        """
        util = check_utilization(utilization, "utilization")
        speed = self.clamp_fan_speed(fan_speed_rpm)
        ambient_now = self._ambient.temperature_c(self._time_s)
        power = self._socket_cpu_power(util)
        hs_ss = self._heatsink.steady_state_c(speed, ambient_now, power)
        self._heatsink.reset(hs_ss)
        die_ss = self._die.steady_state_c(hs_ss, power)
        self._die.reset(die_ss)
        self._last_state = ServerState(
            time_s=self._time_s,
            junction_c=die_ss,
            heatsink_c=hs_ss,
            ambient_c=ambient_now,
            cpu_power_w=power * self._config.n_sockets,
            fan_power_w=self._fan_power.power_w(speed) * self._config.n_sockets,
            utilization=util,
            fan_speed_rpm=speed,
        )
        return self._last_state

    def _socket_cpu_power(self, utilization: float) -> float:
        """Per-socket CPU power (Eqn 1); sockets are balanced by assumption."""
        return self._cpu_power.power_w(utilization)
