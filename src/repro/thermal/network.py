"""General multi-node thermal RC network (HotSpot-style, ref [18]).

The two-node die/heat-sink plant in :mod:`repro.thermal.server` is what the
paper uses; this module provides the general formulation so the library can
model richer packages (spreader, per-core nodes, DIMMs sharing airflow) and
so the two-node model can be validated against an independent solver.

State equation (thermal/electrical duality)::

    C * dT/dt = -G * (T - T_amb * 1) + P(t)

with ``C`` the diagonal capacitance matrix and ``G`` the conductance
(Laplacian-like) matrix built from node-to-node and node-to-ambient
conductances.  The step update uses the exact matrix exponential via
scipy, with inputs held constant over the step:

    T(t+dt) = T_ss + expm(-C^-1 G dt) @ (T(t) - T_ss)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import expm

from repro.errors import ThermalModelError
from repro.units import check_duration, check_positive, check_temperature

#: Propagator-cache capacity.  Fan control toggles among a handful of
#: discrete conductance levels, so a small LRU holds every working-set
#: propagator while bounding memory for conductance-sweep workloads.
_PROPAGATOR_CACHE_MAX = 32


@dataclass
class ThermalNode:
    """One node of a thermal RC network.

    ``conductance_to_ambient_w_per_k`` may be zero for internal nodes that
    only couple to other nodes.
    """

    name: str
    capacitance_j_per_k: float
    conductance_to_ambient_w_per_k: float = 0.0
    initial_temp_c: float = 25.0
    neighbors: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.capacitance_j_per_k, "capacitance_j_per_k")
        if self.conductance_to_ambient_w_per_k < 0.0:
            raise ThermalModelError(
                f"node {self.name!r}: ambient conductance must be >= 0"
            )
        check_temperature(self.initial_temp_c, "initial_temp_c")


class ThermalNetwork:
    """A thermal RC network solved with the exact matrix exponential.

    Parameters
    ----------
    nodes:
        Node definitions.  ``neighbors`` maps neighbor node name to the
        pairwise conductance in W/K; each edge needs to appear on only one
        endpoint (it is symmetrized internally).
    ambient_c:
        Ambient temperature (can be changed via :meth:`set_ambient`).
    """

    def __init__(self, nodes: list[ThermalNode], ambient_c: float = 25.0) -> None:
        if not nodes:
            raise ThermalModelError("a thermal network needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ThermalModelError(f"duplicate node names: {names}")
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}
        self._ambient_c = check_temperature(ambient_c, "ambient_c")

        n = len(nodes)
        capacitances = np.array([node.capacitance_j_per_k for node in nodes])
        conductance = np.zeros((n, n))
        for node in nodes:
            i = self._index[node.name]
            conductance[i, i] += node.conductance_to_ambient_w_per_k
            for other, g in node.neighbors.items():
                if other not in self._index:
                    raise ThermalModelError(
                        f"node {node.name!r} references unknown neighbor {other!r}"
                    )
                if g <= 0.0:
                    raise ThermalModelError(
                        f"edge {node.name!r}-{other!r} conductance must be > 0"
                    )
                j = self._index[other]
                if j == i:
                    raise ThermalModelError(f"node {node.name!r} links to itself")
                # Symmetrize: add the full edge once per declaration.
                conductance[i, i] += g
                conductance[j, j] += g
                conductance[i, j] -= g
                conductance[j, i] -= g

        if not any(node.conductance_to_ambient_w_per_k > 0.0 for node in nodes):
            raise ThermalModelError(
                "network has no path to ambient; temperatures would diverge"
            )
        self._capacitance = capacitances
        self._conductance = conductance
        self._ambient_coupling = np.array(
            [node.conductance_to_ambient_w_per_k for node in nodes]
        )
        self._temps = np.array([node.initial_temp_c for node in nodes], dtype=float)
        # Keyed by (dt, conductance fingerprint) so conductance changes do
        # not invalidate propagators for *other* conductance states: a
        # controller toggling among discrete fan levels reuses the expm of
        # every level it has visited.
        self._propagator_cache: OrderedDict[tuple[float, bytes], np.ndarray] = (
            OrderedDict()
        )
        self._conductance_key: bytes | None = None

    @property
    def node_names(self) -> list[str]:
        """Node names in state-vector order."""
        return list(self._names)

    @property
    def ambient_c(self) -> float:
        """Current ambient temperature."""
        return self._ambient_c

    def set_ambient(self, temp_c: float) -> None:
        """Change the ambient temperature (no cache invalidation needed)."""
        self._ambient_c = check_temperature(temp_c, "temp_c")

    def set_edge_conductance(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Update the conductance of the edge between nodes ``a`` and ``b``.

        Used to model fan-speed-dependent convection in network form.
        Invalidates cached propagators.
        """
        if conductance_w_per_k <= 0.0:
            raise ThermalModelError("edge conductance must be > 0")
        i, j = self._index[a], self._index[b]
        if i == j:
            raise ThermalModelError("cannot set a self-edge")
        old = -self._conductance[i, j]
        delta = conductance_w_per_k - old
        self._conductance[i, i] += delta
        self._conductance[j, j] += delta
        self._conductance[i, j] -= delta
        self._conductance[j, i] -= delta
        self._conductance_key = None

    def set_ambient_conductance(self, name: str, conductance_w_per_k: float) -> None:
        """Update a node's conductance to ambient.  Invalidates caches."""
        if conductance_w_per_k < 0.0:
            raise ThermalModelError("ambient conductance must be >= 0")
        i = self._index[name]
        delta = conductance_w_per_k - self._ambient_coupling[i]
        self._ambient_coupling[i] += delta
        self._conductance[i, i] += delta
        self._conductance_key = None

    def temperature_c(self, name: str) -> float:
        """Current temperature of one node."""
        return float(self._temps[self._index[name]])

    def temperatures_c(self) -> dict[str, float]:
        """Current temperatures of all nodes."""
        return {name: float(self._temps[i]) for name, i in self._index.items()}

    def steady_state_c(self, power_w: dict[str, float]) -> dict[str, float]:
        """Steady-state temperatures for a constant power injection.

        Solves ``G (T - T_amb 1) = P`` (the coupling to ambient is already
        folded into G's diagonal, with the ambient offset handled by the
        change of variables ``x = T - T_amb``).
        """
        p = self._power_vector(power_w)
        x = np.linalg.solve(self._conductance, p)
        return {
            name: float(x[i] + self._ambient_c) for name, i in self._index.items()
        }

    def step(self, dt_s: float, power_w: dict[str, float]) -> dict[str, float]:
        """Advance all nodes by ``dt_s`` with constant power injections."""
        dt = check_duration(dt_s, "dt_s")
        p = self._power_vector(power_w)
        x = self._temps - self._ambient_c
        x_ss = np.linalg.solve(self._conductance, p)
        propagator = self._propagator(dt)
        x_next = x_ss + propagator @ (x - x_ss)
        self._temps = x_next + self._ambient_c
        if not np.all(np.isfinite(self._temps)):
            raise ThermalModelError("thermal network state diverged")
        return self.temperatures_c()

    def reset(self, temps_c: dict[str, float]) -> None:
        """Force node temperatures (missing nodes keep their value)."""
        for name, value in temps_c.items():
            self._temps[self._index[name]] = check_temperature(value, name)

    def _power_vector(self, power_w: dict[str, float]) -> np.ndarray:
        p = np.zeros(len(self._names))
        for name, value in power_w.items():
            if name not in self._index:
                raise ThermalModelError(f"unknown node in power map: {name!r}")
            if value < 0.0:
                raise ThermalModelError(f"negative power injection at {name!r}")
            p[self._index[name]] = value
        return p

    def _propagator(self, dt_s: float) -> np.ndarray:
        if self._conductance_key is None:
            self._conductance_key = self._conductance.tobytes()
        key = (dt_s, self._conductance_key)
        cached = self._propagator_cache.get(key)
        if cached is None:
            a = -self._conductance / self._capacitance[:, None]
            cached = expm(a * dt_s)
            self._propagator_cache[key] = cached
            if len(self._propagator_cache) > _PROPAGATOR_CACHE_MAX:
                self._propagator_cache.popitem(last=False)
        else:
            self._propagator_cache.move_to_end(key)
        return cached
