"""Ambient-temperature profiles.

All paper experiments use a constant ambient; step and diurnal profiles are
provided for robustness studies (e.g. how coordination behaves when inlet
temperature drifts, a common datacenter scenario).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigError
from repro.units import check_duration, check_nonnegative, check_temperature


class AmbientProfile(ABC):
    """Time-varying ambient (inlet air) temperature."""

    @abstractmethod
    def temperature_c(self, t_s: float) -> float:
        """Ambient temperature in Celsius at simulation time ``t_s``."""


class ConstantAmbient(AmbientProfile):
    """Fixed ambient temperature (the paper's setting)."""

    def __init__(self, temp_c: float = 25.0) -> None:
        self._temp_c = check_temperature(temp_c, "temp_c")

    def temperature_c(self, t_s: float) -> float:
        return self._temp_c


class CoupledInlet(AmbientProfile):
    """Inlet profile driven externally by a rack-level coupling model.

    A server in a rack does not breathe room air: its inlet is the room
    ambient plus whatever fraction of upstream servers' exhaust
    recirculates into its intake.  The fleet coupling layer computes that
    recirculation offset each simulation step and pushes it in via
    :meth:`set_offset_c`; the wrapped base profile supplies the room
    ambient.  With the offset left at zero this reduces exactly to the
    base profile, so an uncoupled server behaves bit-for-bit like a
    standalone one.
    """

    def __init__(self, base: AmbientProfile | None = None, room_c: float = 25.0) -> None:
        self._base = base or ConstantAmbient(room_c)
        self._offset_c = 0.0

    @property
    def base(self) -> AmbientProfile:
        """The room-ambient profile underneath the recirculation offset."""
        return self._base

    @property
    def offset_c(self) -> float:
        """Recirculation temperature rise currently applied."""
        return self._offset_c

    def set_offset_c(self, offset_c: float) -> None:
        """Set the recirculation rise added on top of the room ambient."""
        if not math.isfinite(offset_c):
            raise ConfigError(f"offset_c must be finite, got {offset_c!r}")
        if offset_c < 0.0:
            raise ConfigError(f"offset_c must be >= 0, got {offset_c!r}")
        self._offset_c = float(offset_c)

    def temperature_c(self, t_s: float) -> float:
        return self._base.temperature_c(t_s) + self._offset_c


class StepAmbient(AmbientProfile):
    """Ambient that steps from ``before_c`` to ``after_c`` at ``step_time_s``.

    Models e.g. a CRAC unit failure or a hot-aisle containment breach.
    """

    def __init__(self, before_c: float, after_c: float, step_time_s: float) -> None:
        self._before_c = check_temperature(before_c, "before_c")
        self._after_c = check_temperature(after_c, "after_c")
        self._step_time_s = check_nonnegative(step_time_s, "step_time_s")

    def temperature_c(self, t_s: float) -> float:
        return self._after_c if t_s >= self._step_time_s else self._before_c


class DiurnalAmbient(AmbientProfile):
    """Sinusoidal day/night ambient swing.

    ``T(t) = mean + amplitude * sin(2*pi*(t - phase)/period)``
    """

    def __init__(
        self,
        mean_c: float = 25.0,
        amplitude_c: float = 3.0,
        period_s: float = 86400.0,
        phase_s: float = 0.0,
    ) -> None:
        self._mean_c = check_temperature(mean_c, "mean_c")
        self._amplitude_c = check_nonnegative(amplitude_c, "amplitude_c")
        self._period_s = check_duration(period_s, "period_s")
        if not math.isfinite(phase_s):
            raise ConfigError(f"phase_s must be finite, got {phase_s!r}")
        self._phase_s = float(phase_s)

    def temperature_c(self, t_s: float) -> float:
        angle = 2.0 * math.pi * (t_s - self._phase_s) / self._period_s
        return self._mean_c + self._amplitude_c * math.sin(angle)
