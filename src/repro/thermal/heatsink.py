"""Heat sink model: fan-speed-dependent resistance and fixed capacitance.

Table I of the paper gives the resistance law

    Rhs(V) = 0.141 + 132.51 / V**0.923   [K/W],  V = fan speed in rpm

and a thermal time constant of 60 s *at maximum airflow*.  The capacitance
is therefore derived once as ``Chs = 60 / Rhs(V_max)`` and kept constant;
at lower fan speeds the effective time constant grows as Rhs grows, which
is exactly the slow-plant behaviour that makes low-fan-speed operating
regions more sensitive (Section IV-B).
"""

from __future__ import annotations

from repro.config import HeatSinkConfig
from repro.errors import ThermalModelError
from repro.thermal.rc_node import RCNode
from repro.units import check_fan_speed, check_positive


class HeatSink:
    """Heat sink RC node whose resistance follows the Table I fan-speed law.

    Parameters
    ----------
    config:
        Resistance-law coefficients and the time constant at max airflow.
    max_fan_speed_rpm:
        Fan speed at which the 60 s time constant is specified (Table I:
        8500 rpm).
    initial_temp_c:
        Starting heat sink temperature.
    """

    def __init__(
        self,
        config: HeatSinkConfig,
        max_fan_speed_rpm: float,
        initial_temp_c: float,
    ) -> None:
        self._config = config
        self._max_speed = check_positive(max_fan_speed_rpm, "max_fan_speed_rpm")
        self._fouling_k_per_w = 0.0
        r_at_max = self.resistance_at(self._max_speed)
        capacitance = config.tau_at_max_airflow_s / r_at_max
        self._node = RCNode(
            resistance_k_per_w=r_at_max,
            capacitance_j_per_k=capacitance,
            initial_temp_c=initial_temp_c,
        )

    @property
    def config(self) -> HeatSinkConfig:
        """The resistance-law configuration."""
        return self._config

    @property
    def capacitance_j_per_k(self) -> float:
        """Derived thermal capacitance (fixed)."""
        return self._node.capacitance_j_per_k

    @property
    def temperature_c(self) -> float:
        """Current heat sink temperature in Celsius."""
        return self._node.temperature_c

    @property
    def fouling_k_per_w(self) -> float:
        """Extra base resistance from surface fouling (0 when clean)."""
        return self._fouling_k_per_w

    def set_fouling_k_per_w(self, extra_k_per_w: float) -> None:
        """Set the fouling term added to the base resistance.

        Driven by the fault-injection subsystem (a ``fouling`` event
        ramps it up over its window).  The derived capacitance stays
        fixed - the sink's thermal mass does not change when its fins
        clog - and the algebraic
        :class:`~repro.thermal.steady_state.SteadyStateServerModel`
        keeps the clean law, so controller-internal models stay honest
        about what the firmware could know.
        """
        if not (extra_k_per_w >= 0.0):
            raise ThermalModelError(
                f"fouling resistance must be >= 0, got {extra_k_per_w!r}"
            )
        self._fouling_k_per_w = float(extra_k_per_w)

    def resistance_at(self, fan_speed_rpm: float) -> float:
        """Evaluate ``Rhs(V)`` for a fan speed in rpm.

        Raises :class:`ThermalModelError` for a zero speed (the law
        diverges: no airflow means effectively unbounded resistance).
        """
        speed = check_fan_speed(fan_speed_rpm, "fan_speed_rpm")
        if speed <= 0.0:
            raise ThermalModelError(
                "heat sink resistance is undefined at zero fan speed"
            )
        cfg = self._config
        return (
            cfg.r_base_k_per_w + self._fouling_k_per_w
        ) + cfg.r_coeff / speed**cfg.r_exponent

    def resistance_slope_at(self, fan_speed_rpm: float) -> float:
        """Analytic derivative ``dRhs/dV`` in (K/W)/rpm.

        Used by the linearization analysis (Section IV-B) and the E-coord
        baseline, which needs the marginal temperature benefit of a fan
        speed increase.
        """
        speed = check_fan_speed(fan_speed_rpm, "fan_speed_rpm")
        if speed <= 0.0:
            raise ThermalModelError("resistance slope undefined at zero fan speed")
        cfg = self._config
        return -cfg.r_coeff * cfg.r_exponent / speed ** (cfg.r_exponent + 1.0)

    def time_constant_at(self, fan_speed_rpm: float) -> float:
        """Effective time constant ``Rhs(V) * Chs`` in seconds."""
        return self.resistance_at(fan_speed_rpm) * self._node.capacitance_j_per_k

    def steady_state_c(
        self, fan_speed_rpm: float, ambient_c: float, power_w: float
    ) -> float:
        """Steady-state heat sink temperature (Eqn 3)."""
        return ambient_c + self.resistance_at(fan_speed_rpm) * power_w

    def step(
        self, dt_s: float, fan_speed_rpm: float, ambient_c: float, power_w: float
    ) -> float:
        """Advance the heat sink node by ``dt_s`` seconds (Eqn 2).

        The fan speed is held constant over the step; its effect enters via
        the updated resistance.
        """
        self._node.resistance_k_per_w = self.resistance_at(fan_speed_rpm)
        return self._node.step(dt_s, ambient_c, power_w)

    def advance(
        self, dt_s: float, fan_speed_rpm: float, ambient_c: float, power_w: float
    ) -> float:
        """Hot-loop variant of :meth:`step`: ``dt_s`` validated by the caller.

        The fan-speed checks stay (zero speed makes the resistance law
        diverge regardless of where ``dt`` was validated).
        """
        self._node.resistance_k_per_w = self.resistance_at(fan_speed_rpm)
        return self._node.advance(dt_s, ambient_c, power_w)

    def reset(self, temp_c: float) -> None:
        """Force the heat sink temperature."""
        self._node.reset(temp_c)
