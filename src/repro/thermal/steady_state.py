"""Closed-form steady-state server model (Eqns 1-3 combined).

Several components need algebraic (not simulated) answers about the plant:

* the Ziegler-Nichols tuner picks operating points,
* E-coord [6] ranks actions by marginal temperature per marginal watt,
* single-step fan scaling (Section V-C) computes "the lowest possible fan
  speed which enables to run required CPU utilization without any
  temperature violation".

All of that is steady-state math on the published Table I model, collected
here so the dynamic plant (:class:`~repro.thermal.server.ServerThermalModel`)
and the controllers share one implementation.
"""

from __future__ import annotations

from repro.config import ServerConfig
from repro.power.cpu import CpuPowerModel
from repro.power.fan import FanPowerModel
from repro.units import check_temperature, check_utilization, clamp


class SteadyStateServerModel:
    """Algebraic steady-state relations of the Table I server."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self._config = config or ServerConfig()
        self._cpu_power = CpuPowerModel(self._config.cpu)
        self._fan_power = FanPowerModel(self._config.fan)

    @property
    def config(self) -> ServerConfig:
        """The server configuration."""
        return self._config

    def cpu_power_w(self, utilization: float) -> float:
        """Per-socket CPU power (Eqn 1)."""
        return self._cpu_power.power_w(utilization)

    def fan_power_w(self, fan_speed_rpm: float) -> float:
        """Per-socket fan power (cubic law)."""
        return self._fan_power.power_w(fan_speed_rpm)

    def clamp_fan_speed(self, speed_rpm: float) -> float:
        """Clamp a speed into the fan's physical range."""
        fan = self._config.fan
        return clamp(speed_rpm, fan.min_speed_rpm, fan.max_speed_rpm)

    def heatsink_resistance(self, fan_speed_rpm: float) -> float:
        """``Rhs(V)`` from Table I."""
        cfg = self._config.heatsink
        return cfg.r_base_k_per_w + cfg.r_coeff / fan_speed_rpm**cfg.r_exponent

    def heatsink_resistance_slope(self, fan_speed_rpm: float) -> float:
        """``dRhs/dV`` (negative: faster fan, lower resistance)."""
        cfg = self._config.heatsink
        return (
            -cfg.r_coeff * cfg.r_exponent / fan_speed_rpm ** (cfg.r_exponent + 1.0)
        )

    def junction_c(
        self,
        utilization: float,
        fan_speed_rpm: float,
        ambient_c: float | None = None,
    ) -> float:
        """Steady-state junction temperature at an operating point."""
        util = check_utilization(utilization, "utilization")
        speed = self.clamp_fan_speed(fan_speed_rpm)
        if ambient_c is None:
            ambient_c = self._config.ambient_c
        power = self._cpu_power.power_w(util)
        r_total = self.heatsink_resistance(speed) + self._config.die.r_die_k_per_w
        return ambient_c + r_total * power

    def junction_slope_per_rpm(
        self,
        utilization: float,
        fan_speed_rpm: float,
    ) -> float:
        """``dTj/dV`` at an operating point (negative).

        This is the plant sensitivity that varies ~8x between 2000 and
        6000 rpm and motivates the adaptive gain schedule (Section IV-B).
        """
        util = check_utilization(utilization, "utilization")
        speed = self.clamp_fan_speed(fan_speed_rpm)
        power = self._cpu_power.power_w(util)
        return power * self.heatsink_resistance_slope(speed)

    def junction_slope_per_util(self, utilization: float, fan_speed_rpm: float) -> float:
        """``dTj/du`` at an operating point (positive)."""
        check_utilization(utilization, "utilization")
        speed = self.clamp_fan_speed(fan_speed_rpm)
        r_total = self.heatsink_resistance(speed) + self._config.die.r_die_k_per_w
        return r_total * self._config.cpu.p_dynamic_w

    def required_fan_speed_rpm(
        self,
        utilization: float,
        target_junction_c: float,
        ambient_c: float | None = None,
    ) -> float:
        """Lowest fan speed keeping the junction at ``target_junction_c``.

        Analytic inversion of the steady-state model, clamped to the fan's
        physical range (``max`` when even full airflow cannot reach the
        target, ``min`` when any airflow suffices).
        """
        util = check_utilization(utilization, "utilization")
        check_temperature(target_junction_c, "target_junction_c")
        if ambient_c is None:
            ambient_c = self._config.ambient_c
        power = self._cpu_power.power_w(util)
        fan = self._config.fan
        if power <= 0.0:
            return fan.min_speed_rpm
        hs_cfg = self._config.heatsink
        r_hs = (
            target_junction_c - ambient_c
        ) / power - self._config.die.r_die_k_per_w
        r_variable = r_hs - hs_cfg.r_base_k_per_w
        if r_variable <= 0.0:
            return fan.max_speed_rpm
        speed = (hs_cfg.r_coeff / r_variable) ** (1.0 / hs_cfg.r_exponent)
        return self.clamp_fan_speed(speed)

    def marginal_fan_power_w_per_rpm(self, fan_speed_rpm: float) -> float:
        """``dPfan/dV`` - the steep marginal cost E-coord weighs."""
        return self._fan_power.marginal_power_w_per_rpm(
            self.clamp_fan_speed(fan_speed_rpm)
        )

    def marginal_cpu_power_w_per_util(self) -> float:
        """``dPcpu/du = P_dyn``."""
        return self._cpu_power.marginal_power_per_utilization_w()
