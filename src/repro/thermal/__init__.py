"""Thermal substrate: RC models of die, heat sink, and full server.

The paper models the server with the standard thermal/electrical duality
(Section III-B): the heat sink is a single RC node whose resistance depends
nonlinearly on fan speed (Table I), and the CPU die is a much faster node
riding on top of it.  This package provides:

* :class:`~repro.thermal.rc_node.RCNode` - exact-exponential single-node
  integrator (Eqn 2).
* :class:`~repro.thermal.heatsink.HeatSink` - Rhs(V) law and derived Chs.
* :class:`~repro.thermal.die.CpuDie` - fast junction node.
* :class:`~repro.thermal.server.ServerThermalModel` - the plant used by
  every experiment.
* :class:`~repro.thermal.network.ThermalNetwork` - a general multi-node RC
  network (used for validation and extension studies).
* Ambient profiles in :mod:`repro.thermal.ambient`.
"""

from repro.thermal.ambient import (
    AmbientProfile,
    ConstantAmbient,
    CoupledInlet,
    DiurnalAmbient,
    StepAmbient,
)
from repro.thermal.die import CpuDie
from repro.thermal.heatsink import HeatSink
from repro.thermal.multicore import MultiCoreServerModel, MultiCoreState
from repro.thermal.network import ThermalNetwork, ThermalNode
from repro.thermal.rc_node import RCNode
from repro.thermal.server import ServerState, ServerThermalModel
from repro.thermal.steady_state import SteadyStateServerModel

__all__ = [
    "AmbientProfile",
    "ConstantAmbient",
    "CoupledInlet",
    "CpuDie",
    "DiurnalAmbient",
    "HeatSink",
    "MultiCoreServerModel",
    "MultiCoreState",
    "RCNode",
    "ServerState",
    "ServerThermalModel",
    "SteadyStateServerModel",
    "StepAmbient",
    "ThermalNetwork",
    "ThermalNode",
]
