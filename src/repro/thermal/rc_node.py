"""Single lumped RC thermal node with exact exponential integration.

Implements Eqn (2) of the paper::

    T(t + dt) = T_ss + (T(t) - T_ss) * exp(-dt / (R * C))

where ``T_ss = T_ref + R * P`` (Eqn 3), ``T_ref`` being the temperature the
node relaxes toward with zero injected power (ambient for the heat sink,
heat-sink temperature for the die).

Because the update uses the exact solution of the first-order ODE for
inputs held constant over the step, it is unconditionally stable: the stiff
die node (tau = 0.1 s) can be advanced with any dt without blow-up, which a
forward-Euler scheme would not allow.
"""

from __future__ import annotations

import math

from repro.errors import ThermalModelError
from repro.units import check_duration, check_positive, check_temperature


class RCNode:
    """One thermal RC node.

    Parameters
    ----------
    resistance_k_per_w:
        Thermal resistance to the reference node, in K/W.  May be changed
        between steps (the heat sink's resistance varies with fan speed).
    capacitance_j_per_k:
        Thermal capacitance in J/K.  Fixed for the node's lifetime.
    initial_temp_c:
        Starting temperature in Celsius.
    """

    def __init__(
        self,
        resistance_k_per_w: float,
        capacitance_j_per_k: float,
        initial_temp_c: float,
    ) -> None:
        self._resistance = check_positive(resistance_k_per_w, "resistance_k_per_w")
        self._capacitance = check_positive(capacitance_j_per_k, "capacitance_j_per_k")
        self._temp_c = check_temperature(initial_temp_c, "initial_temp_c")

    @property
    def temperature_c(self) -> float:
        """Current node temperature in Celsius."""
        return self._temp_c

    @property
    def resistance_k_per_w(self) -> float:
        """Current thermal resistance in K/W."""
        return self._resistance

    @resistance_k_per_w.setter
    def resistance_k_per_w(self, value: float) -> None:
        self._resistance = check_positive(value, "resistance_k_per_w")

    @property
    def capacitance_j_per_k(self) -> float:
        """Thermal capacitance in J/K."""
        return self._capacitance

    @property
    def time_constant_s(self) -> float:
        """Current time constant ``R * C`` in seconds."""
        return self._resistance * self._capacitance

    def steady_state_c(self, reference_temp_c: float, power_w: float) -> float:
        """Steady-state temperature for the given boundary conditions.

        Eqn (3): ``T_ss = T_ref + R * P``.
        """
        return reference_temp_c + self._resistance * power_w

    def step(self, dt_s: float, reference_temp_c: float, power_w: float) -> float:
        """Advance the node by ``dt_s`` seconds and return the new temperature.

        ``reference_temp_c`` and ``power_w`` are held constant over the step,
        which makes the exponential update exact (Eqn 2).
        """
        return self.advance(check_duration(dt_s, "dt_s"), reference_temp_c, power_w)

    def advance(self, dt_s: float, reference_temp_c: float, power_w: float) -> float:
        """Exponential update without input validation.

        Hot-loop variant of :meth:`step` for callers that fix ``dt_s`` once
        (e.g. :class:`~repro.sim.engine.ServerStepper`) and validate it at
        the boundary.  The divergence guard stays: it protects against bad
        *state*, which per-step input checks cannot rule out.
        """
        t_ss = self.steady_state_c(reference_temp_c, power_w)
        decay = math.exp(-dt_s / (self._resistance * self._capacitance))
        self._temp_c = t_ss + (self._temp_c - t_ss) * decay
        if not math.isfinite(self._temp_c):
            raise ThermalModelError(
                f"RC node temperature diverged (T_ss={t_ss}, decay={decay})"
            )
        return self._temp_c

    def reset(self, temp_c: float) -> None:
        """Force the node temperature (used when (re)initializing a plant)."""
        self._temp_c = check_temperature(temp_c, "temp_c")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RCNode(R={self._resistance:.4f} K/W, C={self._capacitance:.1f} J/K, "
            f"T={self._temp_c:.2f} degC)"
        )
