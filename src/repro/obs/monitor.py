"""Streaming health monitors and the incident layer (``repro.obs.monitor``).

The PR 5 watchdog only catches the degenerate NaN sensor failure; this
module adds the continuous health evaluation ROADMAP item 4 asks for:
detectors that ride the :class:`~repro.obs.ObsCollector` cadence and
evaluate per-server / per-rack rules *during* the run, emitting
severity-tagged incident records with onset/clear times.

Detector taxonomy
-----------------

========================  ========  ======================================
detector                  severity  fires when
========================  ========  ======================================
``tmeas_margin``          critical  measured junction within
                                    ``tmeas_margin_c`` of the critical
                                    limit
``fan_saturation``        warning   commanded fan >= ``fan_sat_fraction``
                                    of max for ``fan_sat_dwell_s``
``supply_margin``         warning   rack supply air (asymptotic CRAC
                                    setpoint + active brownout forcing)
                                    within ``supply_margin_c`` of the
                                    room inlet limit
``stuck_sensor``          critical  reading bit-identical for
                                    ``stuck_periods`` fan periods while
                                    applied utilization moved by at least
                                    ``stuck_min_util_delta``
``sensor_drift``          warning   fast/slow EWMA residual on the
                                    measurement exceeds
                                    ``drift_residual_c`` while applied
                                    utilization is steady
========================  ========  ======================================

The cardinal rule is inherited from PR 6 and is *hard*: monitors read
channel values the simulation already produced, never mutate simulator
state, and never draw randomness.  A monitored run is bit-for-bit
identical to a bare run on every lane.

Cross-lane incident identity
----------------------------

Detectors consume only the decision channels the tier-B backend
contract pins **exactly** across scalar / vectorized / fused (measured
temperature, commanded fan, applied utilization; see docs/backends.md).
The batch lanes cast array entries to python floats and run the very
same per-server update code as the scalar lane, so the incident list is
identical -- not merely close -- whichever backend produced the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import ObsError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (collector -> config)
    from repro.faults.events import FaultSchedule
    from repro.obs.collector import ObsCollector

__all__ = [
    "SEVERITIES",
    "MonitorConfig",
    "HealthMonitor",
    "arm_run_monitor",
    "score_detections",
]

#: Incident severities, mildest first.
SEVERITIES = ("warning", "critical")

#: Fault-schedule kinds with a dedicated detector, used by
#: :func:`score_detections` to pair seeded faults with incidents.
DETECTOR_FOR_KIND = {
    "stuck": "stuck_sensor",
    "drift": "sensor_drift",
    "crac_brownout": "supply_margin",
}

_EPS = 1e-9


def _check_positive(value: float, name: str) -> None:
    if not math.isfinite(value) or value <= 0.0:
        raise ObsError(f"{name} must be finite and > 0, got {value!r}")


def _check_nonnegative(value: float, name: str) -> None:
    if not math.isfinite(value) or value < 0.0:
        raise ObsError(f"{name} must be finite and >= 0, got {value!r}")


@dataclass(frozen=True)
class MonitorConfig:
    """Health-monitor settings, carried on ``ObsConfig.monitor``.

    All fields are scalars so the config stays hashable (campaign chunk
    keys hash their ``ObsConfig``).  Thresholds default to values
    calibrated against the PR 5 seeded fault schedules: every seeded
    stuck/drift/brownout scenario is caught while the fault-free golden
    traces stay incident-free.
    """

    enabled: bool = True
    #: Detector evaluation cadence in sim seconds.  The default (5 s, a
    #: multiple of ``cpu_interval_s`` so scalar-lane samples land on
    #: control instants where a sensor reading already exists) keeps the
    #: detector sweep inside the <= 5% overhead budget the bench gates
    #: while still taking 12+ samples per detector dwell (60-90 s): the
    #: cadence adds at most one sample interval of onset latency.  Set
    #: ``1.0`` to sample every control instant.
    sample_every_s: float = 5.0
    #: ``tmeas_margin`` fires when the measured junction is within this
    #: many degC of the critical limit.
    tmeas_margin_c: float = 2.0
    #: Override for the junction limit; ``None`` arms from the
    #: controller's ``t_critical_c``.
    tmeas_limit_c: float | None = None
    #: ``fan_saturation`` considers the fan saturated at this fraction
    #: of max speed...
    fan_sat_fraction: float = 0.98
    #: ...and fires once it has dwelled there this long.
    fan_sat_dwell_s: float = 60.0
    #: ``stuck_sensor`` needs the reading frozen this many fan periods.
    stuck_periods: int = 2
    #: ...while the fast-EWMA-smoothed applied utilization moved by at
    #: least this much (a legitimately quiet - or well-regulated -
    #: server may hold one ADC code for a long time; only a *sustained*
    #: power shift guarantees a real junction crosses an LSB).
    stuck_min_util_delta: float = 0.25
    #: ``sensor_drift`` fast/slow EWMA time constants (seconds).
    drift_tau_fast_s: float = 10.0
    drift_tau_slow_s: float = 60.0
    #: Residual (fast minus slow EWMA) magnitude that flags drift.
    drift_residual_c: float = 1.5
    #: Residual must persist this long before the incident opens: a
    #: workload-transient residual decays within ~``drift_tau_slow_s``,
    #: a true calibration drift holds its residual indefinitely.
    drift_dwell_s: float = 90.0
    #: Drift checks are gated on applied utilization being steady: the
    #: fast/slow utilization EWMAs must agree within this band.
    drift_util_band: float = 0.05
    #: Suppress drift openings this long after run start: the initial
    #: thermal ramp is a genuine transient at steady utilization.
    drift_warmup_s: float = 120.0
    #: ``supply_margin`` fires when rack supply air is within this many
    #: degC of the room inlet limit.
    supply_margin_c: float = 3.0

    def __post_init__(self) -> None:
        _check_positive(self.sample_every_s, "sample_every_s")
        _check_nonnegative(self.tmeas_margin_c, "tmeas_margin_c")
        if self.tmeas_limit_c is not None and not math.isfinite(
            self.tmeas_limit_c
        ):
            raise ObsError(
                f"tmeas_limit_c must be finite, got {self.tmeas_limit_c!r}"
            )
        if not 0.0 < self.fan_sat_fraction <= 1.0:
            raise ObsError(
                "fan_sat_fraction must be in (0, 1], got "
                f"{self.fan_sat_fraction!r}"
            )
        _check_nonnegative(self.fan_sat_dwell_s, "fan_sat_dwell_s")
        if self.stuck_periods < 1:
            raise ObsError(
                f"stuck_periods must be >= 1, got {self.stuck_periods!r}"
            )
        _check_nonnegative(self.stuck_min_util_delta, "stuck_min_util_delta")
        _check_positive(self.drift_tau_fast_s, "drift_tau_fast_s")
        _check_positive(self.drift_tau_slow_s, "drift_tau_slow_s")
        if self.drift_tau_slow_s <= self.drift_tau_fast_s:
            raise ObsError(
                "drift_tau_slow_s must exceed drift_tau_fast_s, got "
                f"{self.drift_tau_slow_s!r} <= {self.drift_tau_fast_s!r}"
            )
        _check_positive(self.drift_residual_c, "drift_residual_c")
        _check_nonnegative(self.drift_dwell_s, "drift_dwell_s")
        _check_nonnegative(self.drift_util_band, "drift_util_band")
        _check_nonnegative(self.drift_warmup_s, "drift_warmup_s")
        _check_nonnegative(self.supply_margin_c, "supply_margin_c")


class HealthMonitor:
    """Per-run streaming detector state machine.

    Simulators arm one monitor per run (:func:`arm_run_monitor`), feed
    it one sample per server at each due instant, then ``commit`` the
    sample to run rack-scope checks and advance the cadence.  Scalar
    lanes call :meth:`sample_server` per stepper and let the *last*
    stepper commit; batch lanes call :meth:`ingest_batch`, which samples
    every server in index order and commits -- the same incident append
    order either way.
    """

    def __init__(
        self,
        config: MonitorConfig,
        *,
        limits_c: Sequence[float],
        fan_max_rpm: Sequence[float],
        fan_interval_s: Sequence[float],
        start_s: float,
        label: str = "",
        sensor_lag_s: Sequence[float] | None = None,
        rack_supplies: Sequence[tuple[float, tuple]] = (),
        inlet_limit_c: float | None = None,
    ) -> None:
        n = len(limits_c)
        if len(fan_max_rpm) != n or len(fan_interval_s) != n:
            raise ObsError(
                "limits_c, fan_max_rpm and fan_interval_s must have one "
                f"entry per server, got {n}/{len(fan_max_rpm)}/"
                f"{len(fan_interval_s)}"
            )
        self._cfg = config
        self._n = n
        self._label = label
        self._collector: ObsCollector | None = None
        self.incidents: list[dict] = []
        self.next_due_s = start_s + config.sample_every_s
        self._every = config.sample_every_s

        limit = config.tmeas_limit_c
        self._tm_threshold = [
            (limit if limit is not None else limits_c[i]) - config.tmeas_margin_c
            for i in range(n)
        ]
        self._tm_open: list[dict | None] = [None] * n

        self._fan_threshold = [
            config.fan_sat_fraction * fan_max_rpm[i] for i in range(n)
        ]
        self._fan_since: list[float | None] = [None] * n
        self._fan_open: list[dict | None] = [None] * n

        self._stuck_hold = [
            config.stuck_periods * fan_interval_s[i] for i in range(n)
        ]
        self._stuck_last: list[float | None] = [None] * n
        self._stuck_since = [start_s] * n
        self._stuck_umin = [0.0] * n
        self._stuck_umax = [0.0] * n
        self._stuck_open: list[dict | None] = [None] * n
        # Lag alignment for the stuck gate: the reading reflects the
        # junction ``lag_s`` ago, so "power moved while frozen" must
        # look at utilization over the *same* delayed horizon - after a
        # workload step, applied power moves a full transport lag before
        # the measurement may legitimately respond.  Each server keeps a
        # ring of fast-EWMA values one lag deep; the gate consumes the
        # oldest entry.
        if sensor_lag_s is None:
            sensor_lag_s = [0.0] * n
        self._util_rings: list[list[float | None]] = []
        self._util_pos = [0] * n
        for i in range(n):
            depth = 1 + max(
                0, int(math.ceil(sensor_lag_s[i] / config.sample_every_s))
            )
            self._util_rings.append([None] * depth)

        # EWMA smoothing factors for one detector sample interval, plus
        # flat copies of the per-sample thresholds: ``sample_server`` is
        # the subsystem's hot path (every server, every due instant) and
        # chained dataclass attribute loads are measurable there.
        self._alpha_fast = min(1.0, config.sample_every_s / config.drift_tau_fast_s)
        self._alpha_slow = min(1.0, config.sample_every_s / config.drift_tau_slow_s)
        self._sat_dwell = config.fan_sat_dwell_s
        self._stuck_delta = config.stuck_min_util_delta
        self._drift_band = config.drift_util_band
        self._drift_thresh = config.drift_residual_c
        self._drift_dwell = config.drift_dwell_s
        self._drift_fast: list[float | None] = [None] * n
        self._drift_slow = [0.0] * n
        self._util_fast: list[float | None] = [None] * n
        self._util_slow = [0.0] * n
        self._drift_since: list[float | None] = [None] * n
        self._drift_open: list[dict | None] = [None] * n
        self._drift_armed_s = start_s + config.drift_warmup_s

        # Rack-scope supply checks: (base_supply_c, brownout windows).
        # Windows are (start_s, end_s, magnitude) triples taken from the
        # fault schedule at arm time; evaluating the asymptotic supply
        # (base + active forcing) keeps the check lane-independent --
        # the RC transient lives in the room coupling, not here.
        self._racks = [
            (float(base), tuple(windows)) for base, windows in rack_supplies
        ]
        self._sup_open: list[dict | None] = [None] * len(self._racks)
        self._sup_threshold = None
        if self._racks:
            if inlet_limit_c is None:
                raise ObsError(
                    "rack supply monitoring needs the room inlet limit"
                )
            self._sup_threshold = inlet_limit_c - config.supply_margin_c

    # -- wiring ---------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return self._n

    def bind(self, collector: ObsCollector) -> None:
        """Route opened incidents into *collector* (sinks, spans, list)."""
        self._collector = collector

    # -- incident lifecycle --------------------------------------------

    def _open(
        self, detector: str, severity: str, scope: str, t: float, value: float
    ) -> dict:
        incident = {
            "detector": detector,
            "severity": severity,
            "scope": scope,
            "onset_s": t,
            "clear_s": None,
            "value": value,
            "run": self._label,
        }
        self.incidents.append(incident)
        if self._collector is not None:
            self._collector.record_incident(incident)
        return incident

    @staticmethod
    def _close(incident: dict, t: float) -> None:
        incident["clear_s"] = t

    # -- per-sample detector updates -----------------------------------

    def sample_server(
        self,
        t: float,
        i: int,
        tmeas_c: float,
        fan_cmd_rpm: float,
        applied_util: float,
    ) -> None:
        """Run every per-server detector on one sample.

        Pure float arithmetic on already-produced channel values; the
        batch lanes feed the exact same code via :meth:`ingest_batch`.
        """
        finite = math.isfinite(tmeas_c)

        # tmeas margin to the critical limit.
        inc = self._tm_open[i]
        if finite and tmeas_c >= self._tm_threshold[i]:
            if inc is None:
                self._tm_open[i] = self._open(
                    "tmeas_margin", "critical", f"server:{i}", t, tmeas_c
                )
        elif inc is not None:
            self._close(inc, t)
            self._tm_open[i] = None

        # Fan saturation dwell.
        if fan_cmd_rpm >= self._fan_threshold[i]:
            since = self._fan_since[i]
            if since is None:
                self._fan_since[i] = since = t
            if (
                self._fan_open[i] is None
                and t - since + _EPS >= self._sat_dwell
            ):
                self._fan_open[i] = self._open(
                    "fan_saturation", "warning", f"server:{i}", t, fan_cmd_rpm
                )
        else:
            self._fan_since[i] = None
            inc = self._fan_open[i]
            if inc is not None:
                self._close(inc, t)
                self._fan_open[i] = None

        # Utilization EWMAs, shared by the stuck gate (fast) and the
        # drift gate (fast vs slow): thermal inertia filters brief
        # spikes, so detectors reason about *sustained* power movement.
        uf = self._util_fast[i]
        if uf is None:
            uf = applied_util
            self._util_fast[i] = applied_util
            self._util_slow[i] = applied_util
        else:
            uf = uf + self._alpha_fast * (applied_util - uf)
            self._util_fast[i] = uf
            us = self._util_slow[i]
            self._util_slow[i] = us + self._alpha_slow * (applied_util - us)
        # Circular ring, not append/pop: this runs every sample.  During
        # the first ``depth`` samples the slot is still None and the
        # current value stands in - harmless, because the stuck hold
        # (>= one fan period) cannot elapse that early in a run.
        ring = self._util_rings[i]
        pos = self._util_pos[i]
        uf_lag = ring[pos]
        ring[pos] = uf
        self._util_pos[i] = (pos + 1) % len(ring)
        if uf_lag is None:
            uf_lag = uf

        # Stuck-at: reading bit-identical over multiple fan periods
        # while *smoothed* utilization moved.  Exact float equality on
        # purpose - the quantized reading is the channel being tested.
        # The gate uses the fast EWMA's excursion, not raw min/max: a
        # regulated server under a bursty workload holds one ADC code
        # for minutes while instantaneous power spikes (the plant's
        # thermal mass filters them), but a *sustained* shift of
        # ``stuck_min_util_delta`` must move a real junction past one
        # LSB between 30 s fan corrections.  The excursion is evaluated
        # on the *lag-delayed* EWMA (``uf_lag``): the reading at t
        # reflects the junction ``lag_s`` earlier, so power that moved
        # within the last transport lag cannot yet show up in a healthy
        # measurement and must not count against it.
        if not finite:
            self._stuck_last[i] = None
            inc = self._stuck_open[i]
            if inc is not None:
                self._close(inc, t)
                self._stuck_open[i] = None
        elif self._stuck_last[i] is None or tmeas_c != self._stuck_last[i]:
            self._stuck_last[i] = tmeas_c
            self._stuck_since[i] = t
            self._stuck_umin[i] = uf_lag
            self._stuck_umax[i] = uf_lag
            inc = self._stuck_open[i]
            if inc is not None:
                self._close(inc, t)
                self._stuck_open[i] = None
        else:
            if uf_lag < self._stuck_umin[i]:
                self._stuck_umin[i] = uf_lag
            if uf_lag > self._stuck_umax[i]:
                self._stuck_umax[i] = uf_lag
            if (
                self._stuck_open[i] is None
                and t - self._stuck_since[i] + _EPS >= self._stuck_hold[i]
                and self._stuck_umax[i] - self._stuck_umin[i]
                >= self._stuck_delta
            ):
                self._stuck_open[i] = self._open(
                    "stuck_sensor", "critical", f"server:{i}", t, tmeas_c
                )

        # Drift: fast/slow EWMA residual, gated on steady utilization.
        if not finite:
            # A NaN sample poisons the EWMAs; reset and let the
            # watchdog / stuck detector own this failure mode.
            self._drift_fast[i] = None
            self._drift_since[i] = None
            inc = self._drift_open[i]
            if inc is not None:
                self._close(inc, t)
                self._drift_open[i] = None
            return
        ef = self._drift_fast[i]
        if ef is None:
            self._drift_fast[i] = tmeas_c
            self._drift_slow[i] = tmeas_c
            residual = 0.0
        else:
            self._drift_fast[i] = ef + self._alpha_fast * (tmeas_c - ef)
            es = self._drift_slow[i]
            self._drift_slow[i] = es + self._alpha_slow * (tmeas_c - es)
            residual = self._drift_fast[i] - self._drift_slow[i]
        steady = (
            abs(self._util_fast[i] - self._util_slow[i]) <= self._drift_band
        )
        if steady and abs(residual) >= self._drift_thresh:
            since = self._drift_since[i]
            if since is None:
                self._drift_since[i] = since = t
            if (
                self._drift_open[i] is None
                and t >= self._drift_armed_s
                and t - since + _EPS >= self._drift_dwell
            ):
                self._drift_open[i] = self._open(
                    "sensor_drift", "warning", f"server:{i}", t, residual
                )
        else:
            self._drift_since[i] = None
            inc = self._drift_open[i]
            if inc is not None:
                self._close(inc, t)
                self._drift_open[i] = None

    def commit(self, t: float) -> None:
        """Finish the sample at *t*: rack checks, then advance the cadence."""
        threshold = self._sup_threshold
        if threshold is not None:
            for r, (base, windows) in enumerate(self._racks):
                supply = base
                for start_s, end_s, magnitude in windows:
                    if start_s <= t + _EPS < end_s:
                        supply += magnitude
                inc = self._sup_open[r]
                if supply >= threshold:
                    if inc is None:
                        self._sup_open[r] = self._open(
                            "supply_margin", "warning", f"rack:{r}", t, supply
                        )
                elif inc is not None:
                    self._close(inc, t)
                    self._sup_open[r] = None
        due = self.next_due_s
        t_plus = t + _EPS
        while due <= t_plus:
            due += self._every
        self.next_due_s = due

    def ingest_batch(self, t: float, tmeas, fan_cmd, applied) -> None:
        """Batch-lane entry point: sample every server, then commit.

        Array entries are converted to python floats (``tolist`` - one
        bulk conversion, not N scalar indexings) so the detector
        arithmetic is bitwise-identical to the scalar lane.
        """
        tm = tmeas.tolist()
        fan = fan_cmd.tolist()
        util = applied.tolist()
        sample = self.sample_server
        for i in range(self._n):
            sample(t, i, tm[i], fan[i], util[i])
        self.commit(t)


def _controller_interval(controller: Any, name: str, default: float) -> float:
    control = getattr(controller, "control", None)
    if control is None:
        return default
    return float(getattr(control, name, default))


def _supply_windows(
    schedule: FaultSchedule | None, room: Any
) -> list[tuple[float, tuple]]:
    """Per-rack (base supply, brownout windows) from room topology."""
    if room is None:
        return []
    supplies = room.supply_temperatures_c()
    windows: list[list[tuple[float, float, float]]] = [
        [] for _ in range(room.n_racks)
    ]
    if schedule is not None:
        cracs = room.cracs
        for event in schedule.events_of("crac_brownout"):
            if event.server >= len(cracs):
                continue
            span = (event.start_s, event.end_s, event.magnitude)
            for rack_index in cracs[event.server].racks:
                windows[rack_index].append(span)
    return [
        (float(supplies[r]), tuple(windows[r])) for r in range(room.n_racks)
    ]


def arm_run_monitor(
    obs: Any,
    *,
    plants: Sequence[Any],
    controllers: Sequence[Any],
    start_s: float,
    label: str = "",
    sensors: Sequence[Any] | None = None,
    schedule: FaultSchedule | None = None,
    room: Any = None,
    inlet_limit_c: float | None = None,
) -> HealthMonitor | None:
    """Build and bind this run's monitor from the collector's config.

    Called by every simulator right after ``arm_stream``.  Always
    (re)assigns ``obs.monitor`` so a collector reused across runs never
    carries a stale monitor into an unmonitored run.  Returns the
    monitor (or ``None`` when monitoring is not configured).
    """
    if obs is None:
        return None
    config = getattr(obs.config, "monitor", None)
    if config is None or not config.enabled:
        obs.monitor = None
        return None
    limits = [
        config.tmeas_limit_c
        if config.tmeas_limit_c is not None
        else float(controller.control.t_critical_c)
        for controller in controllers
    ]
    fan_max = [float(plant.config.fan.max_speed_rpm) for plant in plants]
    fan_interval = [
        _controller_interval(controller, "fan_interval_s", 30.0)
        for controller in controllers
    ]
    lags = None
    if sensors is not None:
        lags = [
            float(getattr(getattr(s, "config", None), "lag_s", 0.0))
            for s in sensors
        ]
    monitor = HealthMonitor(
        config,
        limits_c=limits,
        fan_max_rpm=fan_max,
        fan_interval_s=fan_interval,
        start_s=start_s,
        label=label,
        sensor_lag_s=lags,
        rack_supplies=_supply_windows(schedule, room),
        inlet_limit_c=inlet_limit_c,
    )
    obs.arm_monitor(monitor)
    return monitor


def score_detections(
    incidents: Iterable[dict],
    schedule: FaultSchedule,
    *,
    grace_s: float = 60.0,
) -> dict:
    """Score a run's incidents against its seeded fault schedule.

    Pairs each scheduled fault that has a dedicated detector (see
    ``DETECTOR_FOR_KIND``) with the earliest matching incident at or
    after its onset, recording the detection latency.  Incidents from
    those detectors that fall outside every scheduled window (plus
    *grace_s* for dwell/transport lag) count as false positives.
    """
    incidents = list(incidents)
    events = []
    scored_detectors = set(DETECTOR_FOR_KIND.values())
    for event in schedule.events:
        detector = DETECTOR_FOR_KIND.get(event.kind)
        if detector is None:
            continue
        scope_prefix = (
            "rack:" if event.kind == "crac_brownout" else f"server:{event.server}"
        )
        matched = None
        for incident in incidents:
            if incident["detector"] != detector:
                continue
            if not incident["scope"].startswith(scope_prefix):
                continue
            onset = incident["onset_s"]
            if onset + _EPS < event.start_s:
                continue
            if matched is None or onset < matched["onset_s"]:
                matched = incident
        events.append(
            {
                "kind": event.kind,
                "index": event.server,
                "start_s": event.start_s,
                "detector": detector,
                "detected": matched is not None,
                "latency_s": (
                    None
                    if matched is None
                    else matched["onset_s"] - event.start_s
                ),
            }
        )
    false_positives = []
    for incident in incidents:
        if incident["detector"] not in scored_detectors:
            continue
        onset = incident["onset_s"]
        explained = False
        for event in schedule.events:
            if DETECTOR_FOR_KIND.get(event.kind) != incident["detector"]:
                continue
            if event.start_s - _EPS <= onset < event.end_s + grace_s:
                explained = True
                break
        if not explained:
            false_positives.append(incident)
    latencies = [e["latency_s"] for e in events if e["latency_s"] is not None]
    return {
        "events": events,
        "detected": sum(1 for e in events if e["detected"]),
        "missed": [e for e in events if not e["detected"]],
        "false_positives": false_positives,
        "max_latency_s": max(latencies) if latencies else None,
    }
