"""Live observability: an HTTP endpoint and streaming campaign folds.

Two pieces make a running simulation observable *while it runs*:

* :class:`LiveObsServer` - a stdlib :mod:`http.server` endpoint serving

  - ``/metrics`` - the OpenMetrics exposition of the source's current
    summary (:func:`repro.obs.export.render_openmetrics`),
  - ``/healthz`` - JSON health derived from active incidents (HTTP 503
    while any *critical* incident is open, 200 otherwise),
  - ``/incidents`` - the raw incident list as JSON.

  The server runs in a daemon thread and only ever *reads* collector
  state - it takes no locks the simulation could contend on and never
  touches simulator objects, so attaching it cannot perturb a run (the
  bit-for-bit contract from ``docs/observability.md`` holds with a
  scraper hammering ``/metrics`` mid-run; pinned by
  ``tests/test_export.py``).  Lock-free reads mean a scrape can race a
  collector update; the handler retries the snapshot a few times and
  returns 503 if the collector never holds still, which in practice
  does not happen (updates are single dict writes under the GIL).

* :class:`CampaignStream` - the parent-side fold of the records
  campaign workers push through a queue-backed sink
  (:class:`~repro.obs.sinks.QueueSink`).  Periodic worker snapshots
  give mid-task progress; one ``task_final`` record per task carries
  the authoritative summary.  :meth:`CampaignStream.merged` folds the
  final summaries **in task order** with
  :func:`~repro.obs.collector.merge_summaries`, so the finished fold is
  byte-identical to the post-hoc serial merge
  (:func:`~repro.fleet.campaign.merge_campaign_obs`) no matter how many
  workers raced; :meth:`live_summary` additionally folds the latest
  in-flight snapshots for the live view the server exports.

Quickstart::

    sim = FleetSimulator(rack, obs=ObsConfig())
    with LiveObsServer(sim) as server:
        print(server.url)            # http://127.0.0.1:<port>
        result = sim.run(600.0)      # scrape /metrics while this runs

    stream = CampaignStream()
    with LiveObsServer(stream) as server:
        results = CampaignRunner(workers=4).run(tasks, stream=stream)
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.errors import ObsError
from repro.obs.collector import ObsCollector, merge_summaries
from repro.obs.export import render_openmetrics

__all__ = ["CampaignStream", "LiveObsServer"]


def _resolve_source(source: Any) -> Callable[[], dict]:
    """Normalize a metrics source to a zero-arg summary callable.

    Accepts an :class:`ObsCollector`, anything exposing a
    ``live_summary()`` method (:class:`CampaignStream`), anything
    exposing an ``obs`` attribute holding a collector (the simulators'
    ``obs`` property), or a plain callable returning a summary dict.
    """
    if isinstance(source, ObsCollector):
        return source.summary
    live = getattr(source, "live_summary", None)
    if callable(live):
        return live
    obs = getattr(source, "obs", None)
    if isinstance(obs, ObsCollector):
        return obs.summary
    if callable(source):
        return source
    raise ObsError(
        "live server source must be an ObsCollector, a CampaignStream, "
        "a simulator with an armed collector, or a callable returning a "
        f"summary dict; got {type(source).__name__}"
        + (
            " (was the simulator built without obs=?)"
            if obs is None and hasattr(source, "run")
            else ""
        )
    )


def _snapshot(summary_fn: Callable[[], dict], attempts: int = 5) -> dict:
    """One summary read, retried if a concurrent update moves a dict."""
    last: RuntimeError | None = None
    for _ in range(attempts):
        try:
            return summary_fn()
        except RuntimeError as exc:  # dict mutated during iteration
            last = exc
            time.sleep(0.001)
    raise ObsError(f"summary source never settled: {last}")


def _health(summary: Mapping[str, Any]) -> tuple[int, dict]:
    """HTTP status + body for ``/healthz`` from the incident state."""
    active: dict[str, int] = {}
    totals: dict[str, int] = {}
    for incident in summary.get("incidents", ()):
        severity = str(incident.get("severity", "unknown"))
        totals[severity] = totals.get(severity, 0) + 1
        if incident.get("clear_s") is None:
            active[severity] = active.get(severity, 0) + 1
    if active.get("critical"):
        status, code = "critical", 503
    elif active:
        status, code = "degraded", 200
    else:
        status, code = "ok", 200
    body = {
        "status": status,
        "active_incidents": active,
        "total_incidents": totals,
        "server_steps": summary.get("counters", {}).get("server_steps", 0),
    }
    if "runs" in summary:
        body["runs"] = summary["runs"]
    return code, body


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/metrics``, ``/healthz``, ``/incidents``; silent logs."""

    server: "_Server"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Suppress per-request stderr logging (scrapes are frequent)."""

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Any) -> None:
        self._send(
            code,
            "application/json",
            (json.dumps(payload, sort_keys=True) + "\n").encode(),
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                summary = _snapshot(self.server.summary_fn)
                text = render_openmetrics(summary, self.server.labels)
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.encode(),
                )
            elif path == "/healthz":
                code, body = _health(_snapshot(self.server.summary_fn))
                self._send_json(code, body)
            elif path == "/incidents":
                summary = _snapshot(self.server.summary_fn)
                self._send_json(200, list(summary.get("incidents", ())))
            else:
                self._send_json(404, {"error": f"no such path: {path}"})
        except Exception as exc:  # never kill the serving thread
            self._send_json(503, {"error": str(exc)})


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    summary_fn: Callable[[], dict]
    labels: dict[str, str]


class LiveObsServer:
    """Serve a live ``/metrics`` + ``/healthz`` + ``/incidents`` endpoint.

    Parameters
    ----------
    source:
        What to export: an :class:`~repro.obs.ObsCollector`, a simulator
        carrying one (``Simulator``/``FleetSimulator``/``RoomSimulator``
        built with ``obs=``), a :class:`CampaignStream`, or a callable
        returning a summary dict.
    host, port:
        Bind address.  ``port=0`` (default) picks an ephemeral port;
        read it back from :attr:`port` / :attr:`url` after
        :meth:`start`.
    labels:
        Base labels stamped on every exported sample (e.g.
        ``{"rack": "r0"}``).

    Use as a context manager (starts on enter, stops on exit) or call
    :meth:`start` / :meth:`stop` explicitly.  The serving thread is a
    daemon: an unstopped server never blocks interpreter exit.
    """

    def __init__(
        self,
        source: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self._summary_fn = _resolve_source(source)
        self._host = host
        self._requested_port = port
        self._labels = dict(labels or {})
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise ObsError("server not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self._host}:{self.port}"

    @property
    def running(self) -> bool:
        """Whether the serving thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "LiveObsServer":
        """Bind and serve in a daemon thread; returns ``self``."""
        if self._server is not None:
            raise ObsError("server already started")
        server = _Server((self._host, self._requested_port), _Handler)
        server.summary_fn = self._summary_fn
        server.labels = self._labels
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-obs-live",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "LiveObsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class CampaignStream:
    """Parent-side incremental fold of streamed campaign observability.

    Pass one to :meth:`~repro.fleet.campaign.CampaignRunner.run` via
    ``stream=``; the runner routes every worker record here (serially
    or through a bounded multiprocessing queue) and the stream exposes:

    * :meth:`progress` - tasks done, aggregate server-steps/s, incident
      tallies by detector/severity - available *mid-campaign*;
    * :meth:`live_summary` - completed-task summaries plus the latest
      in-flight snapshots, folded for the :class:`LiveObsServer`;
    * :meth:`merged` - the deterministic final fold: completed-task
      summaries only, in task order, so the result is byte-identical to
      the post-hoc :func:`~repro.fleet.campaign.merge_campaign_obs`
      merge whichever workers ran the tasks.

    ``obs`` optionally names a parent-process collector; the stream
    marks a zero-duration ``task:<label>`` span on it as each task
    finishes, which is how campaign macro events land on the stitched
    trace timeline (``python -m repro.obs.report --merged-trace``).

    All public methods are thread-safe: the runner's drain thread calls
    :meth:`add_record` while HTTP handler threads read.
    """

    def __init__(
        self,
        queue_maxsize: int = 1024,
        obs: ObsCollector | None = None,
    ) -> None:
        if queue_maxsize < 0:
            raise ObsError(
                f"queue_maxsize must be >= 0, got {queue_maxsize}"
            )
        #: Bound for the worker->parent record queue (0 = unbounded).
        #: Workers drop *snapshot* records (counted) when the queue is
        #: full; ``task_final`` records block instead - see
        #: docs/observability.md "backpressure".
        self.queue_maxsize = queue_maxsize
        self.obs = obs
        self._lock = threading.Lock()
        self._finals: dict[int, dict | None] = {}
        self._partials: dict[str, dict] = {}
        self._live_incidents: dict[str, list[dict]] = {}
        self._n_tasks: int | None = None
        self._sink_dropped = 0
        self._t0 = time.perf_counter()

    def begin(self, n_tasks: int) -> None:
        """Reset for a campaign of ``n_tasks`` tasks (runner calls this)."""
        with self._lock:
            self._n_tasks = n_tasks
            self._finals.clear()
            self._partials.clear()
            self._live_incidents.clear()
            self._sink_dropped = 0
            self._t0 = time.perf_counter()

    @property
    def n_tasks(self) -> int | None:
        """Campaign size, once the runner announced it."""
        return self._n_tasks

    @property
    def tasks_done(self) -> int:
        """Tasks whose final record arrived."""
        with self._lock:
            return len(self._finals)

    @property
    def sink_dropped(self) -> int:
        """Snapshot records workers dropped on a full queue."""
        with self._lock:
            return self._sink_dropped

    def add_record(self, record: Mapping[str, Any]) -> None:
        """Fold one worker record (snapshot, incident, or task final)."""
        kind = record.get("type")
        label = str(record.get("label", "run"))
        with self._lock:
            if self._n_tasks is None:
                raise ObsError(
                    "CampaignStream received a record before begin(); "
                    "pass the stream to CampaignRunner.run(stream=...) "
                    "rather than feeding it directly"
                )
            if kind == "task_final":
                index = int(record["index"])
                self._finals[index] = record.get("summary")
                self._sink_dropped += int(record.get("sink_dropped", 0))
                self._partials.pop(label, None)
                self._live_incidents.pop(label, None)
                if self.obs is not None:
                    self.obs.mark(f"task:{label}")
            elif kind == "incident":
                incident = {
                    k: v
                    for k, v in record.items()
                    if k not in ("type", "label")
                }
                self._live_incidents.setdefault(label, []).append(incident)
            elif kind in ("metrics", "final"):
                self._partials[label] = dict(record)
                # Snapshots carry the full incident list with clear
                # times; the live overlay for this run is superseded.
                self._live_incidents.pop(label, None)

    def merged(self) -> dict[str, Any]:
        """Final deterministic fold: completed tasks only, task order."""
        with self._lock:
            ordered = [
                self._finals[index] for index in sorted(self._finals)
            ]
        return merge_summaries(
            summary for summary in ordered if summary is not None
        )

    def live_summary(self) -> dict[str, Any]:
        """Completed summaries plus in-flight snapshots, one fold."""
        with self._lock:
            ordered = [
                self._finals[index]
                for index in sorted(self._finals)
                if self._finals[index] is not None
            ]
            for label in sorted(self._partials):
                partial = dict(self._partials[label])
                partial["enabled"] = True
                incidents = list(partial.get("incidents", ()))
                partial["incidents"] = incidents
                ordered.append(partial)
            extra_incidents = [
                dict(incident)
                for label in sorted(self._live_incidents)
                for incident in self._live_incidents[label]
            ]
        summary = merge_summaries(ordered)
        if extra_incidents:
            summary["incidents"] = sorted(
                summary["incidents"] + extra_incidents,
                key=lambda inc: (
                    inc.get("onset_s", 0.0),
                    inc.get("run", ""),
                    inc.get("scope", ""),
                    inc.get("detector", ""),
                ),
            )
        return summary

    def progress(self) -> dict[str, Any]:
        """Mid-campaign progress: tasks, throughput, incident tallies."""
        summary = self.live_summary()
        with self._lock:
            done = len(self._finals)
            n_tasks = self._n_tasks
            dropped = self._sink_dropped
            elapsed = time.perf_counter() - self._t0
        steps = summary.get("counters", {}).get("server_steps", 0)
        incidents: dict[str, dict[str, int]] = {}
        active = 0
        for incident in summary.get("incidents", ()):
            detector = str(incident.get("detector", "unknown"))
            severity = str(incident.get("severity", "unknown"))
            slot = incidents.setdefault(detector, {})
            slot[severity] = slot.get(severity, 0) + 1
            if incident.get("clear_s") is None:
                active += 1
        return {
            "tasks_done": done,
            "n_tasks": n_tasks,
            "elapsed_s": elapsed,
            "server_steps": steps,
            "server_steps_per_sec": steps / elapsed if elapsed > 0 else 0.0,
            "incidents": incidents,
            "active_incidents": active,
            "sink_dropped": dropped,
        }
