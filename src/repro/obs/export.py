"""OpenMetrics/Prometheus text exposition of observability state.

:func:`render_openmetrics` turns an observability summary - the dict
:meth:`~repro.obs.collector.ObsCollector.summary` produces, a
campaign-merged :func:`~repro.obs.collector.merge_summaries` result, or
the live view a :class:`~repro.obs.live.CampaignStream` folds - into the
Prometheus text exposition format, terminated by the OpenMetrics
``# EOF`` marker.  The :mod:`repro.obs.live` HTTP endpoint serves this
text at ``/metrics``; any Prometheus-compatible scraper ingests it.

Metric naming scheme (documented in ``docs/observability.md``):

========================================  =========  ====================
family                                    type       source
========================================  =========  ====================
``repro_<counter>_total``                 counter    collector counters
                                                     (``server_steps``,
                                                     ``control_steps``,
                                                     ``incidents``, ...)
``repro_<gauge>``                         gauge      collector gauges
``repro_phase_seconds_total{phase=}``     counter    phase accumulators
``repro_phase_calls_total{phase=}``       counter    phase call counts
``repro_<hist>`` (+ ``_bucket``/``_sum``  histogram  collector histograms
/``_count``)                                         (power-of-two
                                                     buckets)
``repro_<hist>_quantile{quantile=}``      gauge      estimated quantiles
                                                     (:func:`quantiles_from_hist`)
``repro_incidents_total{detector=,        counter    incident records
severity=}``
``repro_incidents_active{detector=,       gauge      incidents with no
severity=}``                                         clear time yet
``repro_runs_total``                      counter    merged run count
``repro_wall_seconds``                    gauge      collector wall time
``repro_trace_spans_total`` /             counter    span-ring totals
``repro_trace_dropped_total``
========================================  =========  ====================

Every family carries the caller's base labels (e.g. ``run="fleet"``,
``lane="fused"``, ``rack="r0"``); label values are escaped per the
exposition-format rules (backslash, double quote, newline).

:func:`lint_openmetrics` is the pure-python lint ``tests/test_export.py``
and the CI live-scrape gate run against real scrapes: it checks
``# HELP``/``# TYPE`` headers, sample syntax and label escaping,
counter monotonicity (non-negative, ``_total``-suffixed), histogram
bucket coherence (cumulative, ``+Inf`` bucket equal to ``_count``), and
the terminating ``# EOF``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

from repro.errors import ObsError

__all__ = [
    "METRIC_PREFIX",
    "QUANTILES",
    "escape_label_value",
    "lint_openmetrics",
    "metric_name",
    "quantiles_from_hist",
    "render_openmetrics",
]

#: Prefix every exported metric family carries.
METRIC_PREFIX = "repro"

#: Quantiles the exposition (and the report CLI) estimate per histogram.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = ("counter", "gauge", "histogram")


def metric_name(name: str) -> str:
    """Sanitize an arbitrary collector key into a metric-name token.

    Invalid characters collapse to ``_``; a leading digit gains a ``_``
    prefix.  Collector keys are already snake_case, so in practice this
    is the identity - the sanitation exists so a user-defined counter
    like ``"cache.hits"`` cannot produce an unparseable exposition.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double quote, and newline are the three characters the
    format escapes; everything else passes through.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """A sample value in exposition syntax (Go-style infinities/NaN)."""
    if isinstance(value, bool):  # bool is an int subclass; reject early
        raise ObsError(f"sample value must be numeric, got {value!r}")
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates one exposition document family by family."""

    def __init__(self, base_labels: Mapping[str, str]) -> None:
        self.base = dict(base_labels)
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        merged = dict(self.base)
        if labels:
            merged.update(labels)
        self.lines.append(f"{name}{_format_labels(merged)} {_format_value(value)}")

    def text(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def _hist_bounds_counts(hist: Mapping[str, Any]) -> list[tuple[float, int]]:
    """Sorted ``(upper_bound, count)`` pairs from a hist ``as_dict``.

    Bucket keys are ``"%g"``-rendered bounds (``"inf"`` for the overflow
    bucket); zero-count buckets are omitted at the source, which is fine
    for both cumulative rendering and quantile estimation.
    """
    pairs = []
    for key, count in hist.get("buckets", {}).items():
        bound = math.inf if key == "inf" else float(key)
        pairs.append((bound, int(count)))
    pairs.sort(key=lambda pair: pair[0])
    return pairs


def quantiles_from_hist(
    hist: Mapping[str, Any], qs: Iterable[float] = QUANTILES
) -> dict[float, float | None]:
    """Estimate quantiles of a bucketed histogram from its bounds.

    The estimate interpolates linearly inside the bucket the quantile
    rank falls into (bucket lower edge = the previous bucket's upper
    bound, 0.0 before the first).  Power-of-two bounds make each bucket
    at most 8x wide here, so the estimate is coarse but order-of-
    magnitude honest; ranks landing in the overflow bucket clamp to the
    recorded ``max`` (or the last finite bound when no max is carried).
    Returns ``None`` per quantile for an empty histogram.
    """
    total = int(hist.get("count", 0))
    out: dict[float, float | None] = {}
    if total <= 0:
        return {float(q): None for q in qs}
    pairs = _hist_bounds_counts(hist)
    observed_max = hist.get("max")
    observed_min = hist.get("min")
    for q in qs:
        q = float(q)
        if not 0.0 < q <= 1.0:
            raise ObsError(f"quantile must be in (0, 1], got {q}")
        rank = q * total
        cumulative = 0
        lower = 0.0
        value: float | None = None
        for bound, count in pairs:
            if cumulative + count >= rank:
                if math.isinf(bound):
                    value = (
                        float(observed_max)
                        if observed_max is not None
                        else lower
                    )
                else:
                    fraction = (rank - cumulative) / count
                    value = lower + fraction * (bound - lower)
                break
            cumulative += count
            lower = bound if not math.isinf(bound) else lower
        if value is None:  # pragma: no cover - counts always reach rank
            value = float(observed_max) if observed_max is not None else lower
        if observed_min is not None:
            value = max(value, float(observed_min))
        if observed_max is not None:
            value = min(value, float(observed_max))
        out[q] = value
    return out


def _incident_tallies(
    incidents: Iterable[Mapping[str, Any]],
) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
    """Total and still-active incident counts keyed ``(detector, severity)``."""
    totals: dict[tuple[str, str], int] = {}
    active: dict[tuple[str, str], int] = {}
    for incident in incidents:
        key = (
            str(incident.get("detector", "unknown")),
            str(incident.get("severity", "unknown")),
        )
        totals[key] = totals.get(key, 0) + 1
        if incident.get("clear_s") is None:
            active[key] = active.get(key, 0) + 1
    return totals, active


def render_openmetrics(
    summary: Mapping[str, Any],
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render one observability summary as exposition text.

    ``summary`` is any summary-shaped dict (single run, campaign merge,
    or live fold); ``labels`` are base labels stamped on every sample.
    The document always declares the ``repro_incidents_total`` and
    ``repro_incidents_active`` families - even with zero incidents - so
    scrapers (and the CI gate) can rely on their presence.
    """
    if not isinstance(summary, Mapping):
        raise ObsError(
            f"summary must be a mapping, got {type(summary).__name__}"
        )
    base = dict(labels or {})
    if "run" not in base and summary.get("label"):
        base["run"] = str(summary["label"])
    writer = _Writer(base)

    for name in sorted(summary.get("counters", {})):
        value = summary["counters"][name]
        token = metric_name(name)
        # The incidents counter re-exports below with detector/severity
        # labels; an unlabeled twin would double-count on aggregation.
        if token == "incidents":
            continue
        family = f"{METRIC_PREFIX}_{token}_total"
        writer.family(family, "counter", f"Collector counter '{name}'.")
        writer.sample(family, int(value))

    for name in sorted(summary.get("gauges", {})):
        family = f"{METRIC_PREFIX}_{metric_name(name)}"
        writer.family(family, "gauge", f"Collector gauge '{name}'.")
        writer.sample(family, float(summary["gauges"][name]))

    phases = summary.get("phases", {})
    if phases:
        seconds = f"{METRIC_PREFIX}_phase_seconds_total"
        calls = f"{METRIC_PREFIX}_phase_calls_total"
        writer.family(
            seconds, "counter", "Accumulated wall seconds per phase."
        )
        for name in sorted(phases):
            writer.sample(seconds, float(phases[name]["total_s"]), {"phase": name})
        writer.family(calls, "counter", "Phase interval count per phase.")
        for name in sorted(phases):
            writer.sample(calls, int(phases[name]["count"]), {"phase": name})

    for name in sorted(summary.get("hists", {})):
        hist = summary["hists"][name]
        family = f"{METRIC_PREFIX}_{metric_name(name)}"
        writer.family(
            family, "histogram", f"Collector histogram '{name}'."
        )
        cumulative = 0
        saw_inf = False
        for bound, count in _hist_bounds_counts(hist):
            cumulative += count
            if math.isinf(bound):
                le, saw_inf = "+Inf", True
            else:
                le = f"{bound:g}"
            writer.sample(f"{family}_bucket", cumulative, {"le": le})
        total = int(hist.get("count", 0))
        if not saw_inf:
            # The summary elides zero-count buckets, which usually drops
            # the overflow bucket; OpenMetrics requires the +Inf bucket
            # to exist and equal the total count.
            writer.sample(f"{family}_bucket", total, {"le": "+Inf"})
        writer.sample(f"{family}_sum", float(hist.get("sum", 0.0)))
        writer.sample(f"{family}_count", total)
        quantile_family = f"{family}_quantile"
        writer.family(
            quantile_family,
            "gauge",
            f"Estimated quantiles of histogram '{name}' "
            "(interpolated from power-of-two buckets).",
        )
        for q, value in quantiles_from_hist(hist).items():
            if value is None:
                continue
            writer.sample(quantile_family, value, {"quantile": f"{q:g}"})

    incidents = summary.get("incidents", [])
    totals, active = _incident_tallies(incidents)
    totals_family = f"{METRIC_PREFIX}_incidents_total"
    active_family = f"{METRIC_PREFIX}_incidents_active"
    writer.family(
        totals_family,
        "counter",
        "Health-monitor incidents recorded, by detector and severity.",
    )
    for detector, severity in sorted(totals):
        writer.sample(
            totals_family,
            totals[(detector, severity)],
            {"detector": detector, "severity": severity},
        )
    writer.family(
        active_family,
        "gauge",
        "Incidents with no clear time yet, by detector and severity.",
    )
    for detector, severity in sorted(active):
        writer.sample(
            active_family,
            active[(detector, severity)],
            {"detector": detector, "severity": severity},
        )

    if "runs" in summary:
        family = f"{METRIC_PREFIX}_runs_total"
        writer.family(family, "counter", "Runs folded into this summary.")
        writer.sample(family, int(summary["runs"]))

    if "wall_s" in summary:
        family = f"{METRIC_PREFIX}_wall_seconds"
        writer.family(
            family, "gauge", "Wall-clock seconds observed by the collector."
        )
        writer.sample(family, float(summary["wall_s"]))

    trace = summary.get("trace")
    if trace:
        spans_family = f"{METRIC_PREFIX}_trace_spans_total"
        writer.family(spans_family, "counter", "Trace spans recorded.")
        writer.sample(spans_family, int(trace.get("recorded", 0)))
        dropped_family = f"{METRIC_PREFIX}_trace_dropped_total"
        writer.family(
            dropped_family, "counter", "Trace spans evicted from the ring."
        )
        writer.sample(dropped_family, int(trace.get("dropped", 0)))

    return writer.text()


# ----------------------------------------------------------------------
# Lint

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_labels(raw: str, errors: list[str], lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            errors.append(f"line {lineno}: malformed label set {raw!r}")
            return labels
        key = match.group("key")
        if key in labels:
            errors.append(f"line {lineno}: duplicate label {key!r}")
        labels[key] = match.group("value")
        rest = rest[match.end() :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: malformed label set {raw!r}")
            return labels
    return labels


def _parse_value(raw: str) -> float | None:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        return None


def _family_of(sample_name: str, types: Mapping[str, str]) -> str | None:
    """The declared family a sample belongs to, or None when undeclared."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix):
            stem = sample_name[: -len(suffix)]
            if stem in types:
                return stem
    return None


def lint_openmetrics(text: str) -> list[str]:
    """Check one exposition document; returns a list of error strings.

    An empty list means the document passes.  The checks:

    * document ends with a ``# EOF`` line;
    * ``# TYPE`` lines declare a known type, once per family, with a
      ``# HELP`` line for the same family;
    * every sample parses (name, optional label set, value) with valid
      metric/label names and escaped label values;
    * every sample belongs to a declared family, after the type's
      allowed suffixes (``_total`` for counters; ``_bucket``/``_sum``/
      ``_count`` for histograms);
    * counter samples are finite and non-negative and their names end
      in ``_total``;
    * histogram buckets carry parseable ``le`` bounds, are cumulative
      (non-decreasing with ``le``), and the ``+Inf`` bucket equals the
      family's ``_count`` sample.
    """
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("document does not end with '# EOF'")

    types: dict[str, str] = {}
    helps: set[str] = set()
    # family -> list of (le, value) bucket samples, and _count values.
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            errors.append(f"line {lineno}: blank line")
            continue
        if stripped == "# EOF":
            if lineno != len(lines):
                errors.append(f"line {lineno}: '# EOF' before end of document")
            continue
        if stripped.startswith("# HELP "):
            parts = stripped.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                errors.append(f"line {lineno}: malformed HELP line")
            else:
                helps.add(parts[2])
            continue
        if stripped.startswith("# TYPE "):
            parts = stripped.split(" ")
            if len(parts) != 4 or not _NAME_OK.match(parts[2]):
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            family, kind = parts[2], parts[3]
            if kind not in _VALID_TYPES:
                errors.append(
                    f"line {lineno}: unknown metric type {kind!r} "
                    f"for {family}"
                )
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = kind
            if family not in helps:
                errors.append(f"line {lineno}: TYPE for {family} has no HELP")
            continue
        if stripped.startswith("#"):
            errors.append(f"line {lineno}: unexpected comment {stripped!r}")
            continue

        match = _SAMPLE_RE.match(stripped)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {stripped!r}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", errors, lineno)
        for key in labels:
            if not _LABEL_OK.match(key):
                errors.append(f"line {lineno}: invalid label name {key!r}")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: unparseable value {match.group('value')!r}"
            )
            continue
        family = _family_of(name, types)
        if family is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter sample {name!r} must end "
                    "in '_total'"
                )
            if math.isnan(value) or math.isinf(value) or value < 0:
                errors.append(
                    f"line {lineno}: counter {name!r} has non-monotone-"
                    f"compatible value {match.group('value')}"
                )
        elif kind == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without 'le' label"
                    )
                else:
                    bound = _parse_value(labels["le"])
                    if bound is None:
                        errors.append(
                            f"line {lineno}: unparseable le bound "
                            f"{labels['le']!r}"
                        )
                    else:
                        buckets.setdefault(family, []).append((bound, value))
            elif name.endswith("_count"):
                counts[family] = value

    for family, pairs in buckets.items():
        ordered = sorted(pairs, key=lambda pair: pair[0])
        values = [value for _, value in ordered]
        if any(b > a for a, b in zip(values[1:], values)):
            errors.append(
                f"histogram {family}: bucket counts are not cumulative"
            )
        if not ordered or not math.isinf(ordered[-1][0]):
            errors.append(f"histogram {family}: missing '+Inf' bucket")
        elif family in counts and ordered[-1][1] != counts[family]:
            errors.append(
                f"histogram {family}: '+Inf' bucket ({ordered[-1][1]:g}) "
                f"!= _count ({counts[family]:g})"
            )
    return errors
