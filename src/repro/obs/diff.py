"""First-divergence locator for runs, results, and golden traces.

The two-tier backend contract (docs/backends.md) and the golden-trace
suite tell you *that* two runs differ; this module tells you *where*:
the first recorded step and channel at which two runs part ways, with
both values and the simulation time.  That turns a conformance or
regression failure into a one-command diagnosis::

    python -m repro.obs.diff golden_a.json golden_b.json
    python -m repro.obs.diff --decision-only run_a.json run_b.json

The CLI consumes the golden-fixture JSON layout written by
``tools/regen_golden.py`` (rack payloads with a ``servers`` list, room
payloads with a ``racks`` list).  The API works on any channel mapping:
:func:`diff_channels` for two ``{name: samples}`` dicts,
:func:`diff_results` for two single-server results,
:func:`diff_fleet_results` for fleet/room results, and
:func:`diff_vs_golden` for a fresh result against a committed fixture.

Comparisons are exact by default (NaN == NaN, so dropout windows do not
read as divergence); pass ``rtol``/``atol`` to compare the fused
backend's tolerance-bounded thermal channels, or restrict to
:data:`DECISION_CHANNELS` - the channels tier B pins bitwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ObsError
from repro.sim.engine import TELEMETRY_CHANNELS

__all__ = [
    "DECISION_CHANNELS",
    "Divergence",
    "diff_channels",
    "diff_results",
    "diff_fleet_results",
    "diff_vs_golden",
    "main",
]

#: Channels the tier-B fused contract pins *bitwise* across backends
#: (docs/backends.md); thermal state channels are tolerance-bounded.
DECISION_CHANNELS = (
    "time",
    "tmeas",
    "fan_speed",
    "cpu_cap",
    "demand",
    "applied",
    "t_ref",
)


@dataclass(frozen=True)
class Divergence:
    """The first recorded sample at which two runs differ.

    ``index`` is the record index (after any decimation/subsampling the
    compared arrays carry); ``time_s`` is the simulation time of that
    record when a ``time`` channel was available.  ``where`` localizes
    the server (e.g. ``"server 3"`` or ``"rack 1/server 0"``).
    """

    index: int
    channel: str
    a: float
    b: float
    time_s: float | None = None
    where: str = ""

    def describe(self) -> str:
        """One-line human-readable location report."""
        place = f" [{self.where}]" if self.where else ""
        when = "" if self.time_s is None else f" (t={self.time_s:g}s)"
        return (
            f"first divergence{place}: step {self.index}{when} "
            f"channel {self.channel!r}: {self.a!r} != {self.b!r}"
        )


def _default_channels(a: Mapping[str, Any], b: Mapping[str, Any]) -> list[str]:
    shared = set(a) & set(b)
    ordered = [name for name in TELEMETRY_CHANNELS if name in shared]
    ordered += sorted(shared - set(ordered))
    return ordered


def diff_channels(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    channels: Sequence[str] | None = None,
    rtol: float = 0.0,
    atol: float = 0.0,
    where: str = "",
) -> Divergence | None:
    """First divergent (step, channel) between two channel mappings.

    Returns ``None`` when every compared channel matches.  Channels
    default to the shared names in recording order; NaNs compare equal
    so dropout windows are not spurious divergences.  Ties at the same
    record index resolve to the earlier channel in recording order.
    """
    if channels is None:
        names = _default_channels(a, b)
    else:
        names = list(channels)
        for name in names:
            if name not in a or name not in b:
                raise ObsError(
                    f"channel {name!r} missing from one of the runs"
                )
    if not names:
        raise ObsError("no shared channels to compare")
    best: tuple[int, int] | None = None
    best_report: tuple[str, float, float] | None = None
    for pos, name in enumerate(names):
        x = np.asarray(a[name], dtype=float)
        y = np.asarray(b[name], dtype=float)
        if x.shape != y.shape:
            raise ObsError(
                f"channel {name!r} shapes differ: {x.shape} vs {y.shape} "
                "- the runs recorded different grids"
            )
        if rtol or atol:
            neq = ~np.isclose(x, y, rtol=rtol, atol=atol, equal_nan=True)
        else:
            neq = (x != y) & ~(np.isnan(x) & np.isnan(y))
        hits = np.flatnonzero(neq)
        if hits.size:
            i = int(hits[0])
            if best is None or (i, pos) < best:
                best = (i, pos)
                best_report = (name, float(x[i]), float(y[i]))
    if best is None:
        return None
    index = best[0]
    name, av, bv = best_report
    time_s = None
    times = a.get("time")
    if times is not None and index < len(times):
        time_s = float(np.asarray(times, dtype=float)[index])
    return Divergence(
        index=index, channel=name, a=av, b=bv, time_s=time_s, where=where
    )


def _server_channel_maps(result: Any) -> list[tuple[str, Mapping[str, Any]]]:
    """Flatten any result/payload shape to labelled per-server channels."""
    if isinstance(result, Mapping):
        if "racks" in result:
            return [
                (f"rack {r}/server {s}", server["channels"])
                for r, rack in enumerate(result["racks"])
                for s, server in enumerate(rack["servers"])
            ]
        if "servers" in result:
            return [
                (f"server {s}", server["channels"])
                for s, server in enumerate(result["servers"])
            ]
        return [("", result.get("channels", result))]
    rack_results = getattr(result, "rack_results", None)
    if rack_results is not None:
        return [
            (f"rack {r}/server {s}", server.channels)
            for r, rack in enumerate(rack_results)
            for s, server in enumerate(rack.server_results)
        ]
    server_results = getattr(result, "server_results", None)
    if server_results is not None:
        return [
            (f"server {s}", server.channels)
            for s, server in enumerate(server_results)
        ]
    channels = getattr(result, "channels", None)
    if channels is not None:
        return [("", channels)]
    raise ObsError(
        f"cannot extract channels from {type(result).__name__}; expected a "
        "SimulationResult/FleetResult/RoomResult or a golden-trace payload"
    )


def _first_over_servers(
    pairs_a: list[tuple[str, Mapping[str, Any]]],
    pairs_b: list[tuple[str, Mapping[str, Any]]],
    **kwargs: Any,
) -> Divergence | None:
    if len(pairs_a) != len(pairs_b):
        raise ObsError(
            f"server counts differ: {len(pairs_a)} vs {len(pairs_b)}"
        )
    best: Divergence | None = None
    for (where, chan_a), (_, chan_b) in zip(pairs_a, pairs_b):
        found = diff_channels(chan_a, chan_b, where=where, **kwargs)
        if found is not None and (best is None or found.index < best.index):
            best = found
    return best


def diff_results(
    a: Any,
    b: Any,
    *,
    channels: Sequence[str] | None = None,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Divergence | None:
    """First divergence between two single-server simulation results."""
    return diff_channels(
        a.channels, b.channels, channels=channels, rtol=rtol, atol=atol
    )


def diff_fleet_results(
    a: Any,
    b: Any,
    *,
    channels: Sequence[str] | None = None,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Divergence | None:
    """First divergence between two fleet or room results.

    Scans every server and returns the divergence with the smallest
    record index (earliest simulation time on a shared grid).
    """
    return _first_over_servers(
        _server_channel_maps(a),
        _server_channel_maps(b),
        channels=channels,
        rtol=rtol,
        atol=atol,
    )


def diff_vs_golden(
    result: Any,
    payload: Mapping[str, Any],
    *,
    channels: Sequence[str] | None = None,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Divergence | None:
    """First divergence between a fresh result and a golden fixture.

    Applies the fixture's ``subsample`` stride to the result's recorded
    channels so both sides sit on the fixture grid; the reported index
    is on that subsampled grid (its ``time_s`` disambiguates).
    """
    stride = int(payload.get("subsample", 1))
    fresh = _server_channel_maps(result)
    if stride > 1:
        fresh = [
            (
                where,
                {
                    name: np.asarray(values)[::stride]
                    for name, values in chan.items()
                },
            )
            for where, chan in fresh
        ]
    return _first_over_servers(
        fresh,
        _server_channel_maps(payload),
        channels=channels,
        rtol=rtol,
        atol=atol,
    )


def _load_payload(path: str) -> Mapping[str, Any]:
    file = Path(path)
    if not file.exists():
        raise ObsError(f"no such run file: {path}")
    try:
        payload = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ObsError(f"{path}: expected a JSON object of channels")
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: diff two golden-format run files."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description=(
            "Report the first (step, channel) where two recorded runs "
            "diverge.  Inputs are golden-trace JSON files as written by "
            "tools/regen_golden.py.  Exit status: 0 identical, 1 "
            "divergent, 2 on input errors."
        ),
    )
    parser.add_argument("run_a", help="baseline run JSON")
    parser.add_argument("run_b", help="candidate run JSON")
    parser.add_argument(
        "--channels",
        help="comma-separated channel subset (default: all shared channels)",
    )
    parser.add_argument(
        "--decision-only",
        action="store_true",
        help=(
            "compare only the decision channels the tier-B fused "
            "contract pins bitwise: " + ", ".join(DECISION_CHANNELS)
        ),
    )
    parser.add_argument(
        "--rtol", type=float, default=0.0, help="relative tolerance (default 0)"
    )
    parser.add_argument(
        "--atol", type=float, default=0.0, help="absolute tolerance (default 0)"
    )
    args = parser.parse_args(argv)
    if args.channels and args.decision_only:
        parser.error("--channels and --decision-only are mutually exclusive")
    channels: Sequence[str] | None = None
    if args.decision_only:
        channels = DECISION_CHANNELS
    elif args.channels:
        channels = [name.strip() for name in args.channels.split(",") if name.strip()]
    try:
        pairs_a = _server_channel_maps(_load_payload(args.run_a))
        pairs_b = _server_channel_maps(_load_payload(args.run_b))
        found = _first_over_servers(
            pairs_a, pairs_b, channels=channels, rtol=args.rtol, atol=args.atol
        )
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if found is None:
        n_channels = len(channels) if channels else "all shared"
        print(
            f"runs identical across {len(pairs_a)} server(s) "
            f"({n_channels} channels)"
        )
        return 0
    print(found.describe())
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
