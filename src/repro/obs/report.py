"""Render observability files as summary tables: ``python -m repro.obs.report``.

Reads the JSONL files the observability subsystem emits - metrics
streams from :class:`~repro.obs.sinks.JsonlSink` and span traces from
:meth:`~repro.obs.collector.ObsCollector.export_trace_jsonl` - and
renders aligned plain-text tables (via
:func:`repro.analysis.report.format_table`, the same renderer the
experiment scripts use).

Usage::

    python -m repro.obs.report run_metrics.jsonl [more.jsonl ...]
    python -m repro.obs.report --trace run_trace.jsonl
    python -m repro.obs.report --phases run_metrics.jsonl
    python -m repro.obs.report --incidents run_metrics.jsonl

Modes:

* default - one row per run label (the last snapshot wins): simulated
  time, server steps, throughput, wall time, and the dominant phase.
* ``--phases`` - the per-phase breakdown of every run: total seconds,
  call count, and share of timed work.
* ``--trace`` - span-file mode: per-span-name totals (count, total and
  mean duration) from a trace JSONL.
* ``--incidents`` - the health-monitor incident table (severity, scope,
  onset/clear, detector) from live ``type == "incident"`` records,
  final snapshots, or campaign-merged summaries - whatever mix the
  input files carry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.report import format_table
from repro.errors import ObsError


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse one record per non-empty line; raises ObsError on bad input."""
    path = Path(path)
    if not path.exists():
        raise ObsError(f"no such file: {path}")
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ObsError(f"{path}:{lineno}: expected a JSON object")
        records.append(record)
    return records


def _final_snapshots(records: Iterable[dict]) -> dict[str, dict]:
    """Last snapshot per run label (streams end with a 'final' record)."""
    finals: dict[str, dict] = {}
    for record in records:
        label = str(record.get("label", "run"))
        finals[label] = record
    return finals


def _dominant_phase(record: dict) -> str:
    phases = record.get("phases", {})
    if not phases:
        return "-"
    name, entry = max(phases.items(), key=lambda item: item[1]["total_s"])
    total = sum(e["total_s"] for e in phases.values())
    share = entry["total_s"] / total if total > 0 else 0.0
    return f"{name} ({100 * share:.0f}%)"


def render_runs(records: list[dict]) -> str:
    """The default table: one row per run label."""
    rows = []
    for label, record in sorted(_final_snapshots(records).items()):
        counters = record.get("counters", {})
        server_steps = counters.get("server_steps", 0)
        wall = record.get("wall_s", 0.0)
        rows.append(
            [
                label,
                record.get("sim_time_s", 0.0),
                server_steps,
                server_steps / wall if wall > 0 else 0.0,
                wall,
                _dominant_phase(record),
            ]
        )
    return format_table(
        ["run", "sim_time_s", "server_steps", "steps/s", "wall_s", "top phase"],
        rows,
        float_format="{:,.1f}",
    )


def render_phases(records: list[dict]) -> str:
    """Per-phase breakdown of every run in the input."""
    rows = []
    for label, record in sorted(_final_snapshots(records).items()):
        phases = record.get("phases", {})
        timed = sum(entry["total_s"] for entry in phases.values())
        ordered = sorted(
            phases.items(), key=lambda item: item[1]["total_s"], reverse=True
        )
        for name, entry in ordered:
            share = entry["total_s"] / timed if timed > 0 else 0.0
            rows.append(
                [label, name, entry["total_s"], entry["count"], 100 * share]
            )
    if not rows:
        return "no phase data found"
    return format_table(
        ["run", "phase", "total_s", "count", "% of timed"],
        rows,
        float_format="{:,.3f}",
    )


def render_trace(records: list[dict]) -> str:
    """Per-span-name aggregates from a trace JSONL."""
    totals: dict[str, list] = {}
    for record in records:
        name = str(record.get("name", "?"))
        duration = float(record.get("end_s", 0.0)) - float(
            record.get("start_s", 0.0)
        )
        slot = totals.setdefault(name, [0, 0.0])
        slot[0] += 1
        slot[1] += duration
    rows = [
        [name, count, total, 1e6 * total / count if count else 0.0]
        for name, (count, total) in sorted(
            totals.items(), key=lambda item: item[1][1], reverse=True
        )
    ]
    if not rows:
        return "no spans found"
    return format_table(
        ["span", "count", "total_s", "mean_us"], rows, float_format="{:,.3f}"
    )


def collect_incidents(records: Iterable[dict]) -> list[dict]:
    """Incident dicts from a mixed JSONL stream, deduplicated per run.

    Three record shapes carry incidents: live ``type == "incident"``
    emits (no clear time yet - they fire at onset), periodic/final
    snapshots with an ``"incidents"`` list, and campaign-merged
    summaries (same key).  Snapshot lists supersede the live records of
    the same run label because they carry clear times; the *last*
    snapshot per label wins, matching :func:`_final_snapshots`.
    """
    live: dict[str, list[dict]] = {}
    snapshot: dict[str, list[dict]] = {}
    for record in records:
        label = str(record.get("label", record.get("run", "run")))
        if record.get("type") == "incident":
            live.setdefault(label, []).append(
                {k: v for k, v in record.items() if k not in ("type", "label")}
            )
        elif isinstance(record.get("incidents"), list):
            snapshot[label] = [dict(inc) for inc in record["incidents"]]
    out: list[dict] = []
    for label in sorted(set(live) | set(snapshot)):
        out.extend(snapshot.get(label, live.get(label, [])))
    return out


def render_incidents(records: list[dict]) -> str:
    """The health-monitor incident table."""
    incidents = collect_incidents(records)
    incidents.sort(
        key=lambda inc: (
            inc.get("onset_s", 0.0),
            str(inc.get("run", "")),
            str(inc.get("scope", "")),
            str(inc.get("detector", "")),
        )
    )
    if not incidents:
        return "no incidents found"
    rows = []
    for inc in incidents:
        clear = inc.get("clear_s")
        rows.append(
            [
                str(inc.get("run", "-")),
                str(inc.get("detector", "?")),
                str(inc.get("severity", "?")),
                str(inc.get("scope", "?")),
                float(inc.get("onset_s", 0.0)),
                "open" if clear is None else f"{float(clear):,.1f}",
                float(inc.get("value", 0.0)),
            ]
        )
    return format_table(
        ["run", "detector", "severity", "scope", "onset_s", "clear_s", "value"],
        rows,
        float_format="{:,.1f}",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize repro observability JSONL files.",
    )
    parser.add_argument("files", nargs="+", help="metrics or trace JSONL files")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--phases",
        action="store_true",
        help="per-phase breakdown instead of the per-run summary",
    )
    mode.add_argument(
        "--trace",
        action="store_true",
        help="treat inputs as span-trace JSONL files",
    )
    mode.add_argument(
        "--incidents",
        action="store_true",
        help="health-monitor incident table instead of the run summary",
    )
    args = parser.parse_args(argv)

    try:
        records: list[dict] = []
        for path in args.files:
            records.extend(read_jsonl(path))
        if args.trace:
            output = render_trace(records)
        elif args.phases:
            output = render_phases(records)
        elif args.incidents:
            output = render_incidents(records)
        else:
            output = render_runs(records)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
