"""Render observability files as summary tables: ``python -m repro.obs.report``.

Reads the JSONL files the observability subsystem emits - metrics
streams from :class:`~repro.obs.sinks.JsonlSink` and span traces from
:meth:`~repro.obs.collector.ObsCollector.export_trace_jsonl` - and
renders aligned plain-text tables (via
:func:`repro.analysis.report.format_table`, the same renderer the
experiment scripts use) or, with ``--format json``, the same rows as a
JSON array for scripting.

Usage::

    python -m repro.obs.report run_metrics.jsonl [more.jsonl ...]
    python -m repro.obs.report --trace run_trace.jsonl
    python -m repro.obs.report --phases run_metrics.jsonl
    python -m repro.obs.report --hists run_metrics.jsonl
    python -m repro.obs.report --incidents run_metrics.jsonl
    python -m repro.obs.report --merged-trace traces/*.jsonl --out merged.json

Modes:

* default - one row per run label (the last snapshot wins): simulated
  time, server steps, throughput, wall time, and the dominant phase.
* ``--phases`` - the per-phase breakdown of every run: total seconds,
  call count, and share of timed work.
* ``--hists`` - histogram rows per run: count, mean, and p50/p95/p99
  estimated from the power-of-two bucket bounds
  (:func:`repro.obs.export.quantiles_from_hist`, the same estimator
  the ``/metrics`` exposition uses).
* ``--trace`` - span-file mode: per-span-name totals (count, total and
  mean duration) from a trace JSONL.
* ``--incidents`` - the health-monitor incident table (severity, scope,
  onset/clear, detector) from live ``type == "incident"`` records,
  final snapshots, or campaign-merged summaries - whatever mix the
  input files carry.
* ``--merged-trace`` - stitch several pid-tagged span-trace JSONL files
  (per-worker campaign exports plus the parent's) into **one** Chrome/
  Perfetto trace document with a lane per worker pid (thread rows are
  span depths).  All files share a single time origin: CPython's
  ``perf_counter`` reads a system-wide monotonic clock on Linux and
  Windows, so worker and parent clocks are directly comparable there
  (see docs/observability.md for the platform caveat).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.report import format_table
from repro.errors import ObsError
from repro.obs.export import QUANTILES, quantiles_from_hist


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse one record per non-empty line; raises ObsError on bad input."""
    path = Path(path)
    if not path.exists():
        raise ObsError(f"no such file: {path}")
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ObsError(f"{path}:{lineno}: expected a JSON object")
        records.append(record)
    return records


def _final_snapshots(records: Iterable[dict]) -> dict[str, dict]:
    """Last snapshot per run label (streams end with a 'final' record)."""
    finals: dict[str, dict] = {}
    for record in records:
        label = str(record.get("label", "run"))
        finals[label] = record
    return finals


def _dominant_phase(record: dict) -> str:
    phases = record.get("phases", {})
    if not phases:
        return "-"
    name, entry = max(phases.items(), key=lambda item: item[1]["total_s"])
    total = sum(e["total_s"] for e in phases.values())
    share = entry["total_s"] / total if total > 0 else 0.0
    return f"{name} ({100 * share:.0f}%)"


def runs_rows(records: list[dict]) -> tuple[list[str], list[list]]:
    """The default table: one row per run label."""
    rows = []
    for label, record in sorted(_final_snapshots(records).items()):
        counters = record.get("counters", {})
        server_steps = counters.get("server_steps", 0)
        wall = record.get("wall_s", 0.0)
        rows.append(
            [
                label,
                record.get("sim_time_s", 0.0),
                server_steps,
                server_steps / wall if wall > 0 else 0.0,
                wall,
                _dominant_phase(record),
            ]
        )
    headers = [
        "run", "sim_time_s", "server_steps", "steps/s", "wall_s", "top phase",
    ]
    return headers, rows


def phases_rows(records: list[dict]) -> tuple[list[str], list[list]]:
    """Per-phase breakdown of every run in the input."""
    rows = []
    for label, record in sorted(_final_snapshots(records).items()):
        phases = record.get("phases", {})
        timed = sum(entry["total_s"] for entry in phases.values())
        ordered = sorted(
            phases.items(), key=lambda item: item[1]["total_s"], reverse=True
        )
        for name, entry in ordered:
            share = entry["total_s"] / timed if timed > 0 else 0.0
            rows.append(
                [label, name, entry["total_s"], entry["count"], 100 * share]
            )
    return ["run", "phase", "total_s", "count", "% of timed"], rows


def hists_rows(records: list[dict]) -> tuple[list[str], list[list]]:
    """Histogram rows per run, with bucket-estimated quantiles.

    The p50/p95/p99 columns come from
    :func:`~repro.obs.export.quantiles_from_hist` - the exact values the
    live ``/metrics`` exposition exports as ``*_quantile`` gauges.
    """
    rows = []
    for label, record in sorted(_final_snapshots(records).items()):
        for name in sorted(record.get("hists", {})):
            hist = record["hists"][name]
            count = int(hist.get("count", 0))
            quantiles = quantiles_from_hist(hist)
            rows.append(
                [
                    label,
                    name,
                    count,
                    hist.get("mean") if count else None,
                    *(quantiles[q] for q in QUANTILES),
                    hist.get("max"),
                ]
            )
    headers = ["run", "hist", "count", "mean"]
    headers += [f"p{100 * q:g}" for q in QUANTILES]
    headers += ["max"]
    return headers, rows


def trace_rows(records: list[dict]) -> tuple[list[str], list[list]]:
    """Per-span-name aggregates from a trace JSONL."""
    totals: dict[str, list] = {}
    for record in records:
        name = str(record.get("name", "?"))
        duration = float(record.get("end_s", 0.0)) - float(
            record.get("start_s", 0.0)
        )
        slot = totals.setdefault(name, [0, 0.0])
        slot[0] += 1
        slot[1] += duration
    rows = [
        [name, count, total, 1e6 * total / count if count else 0.0]
        for name, (count, total) in sorted(
            totals.items(), key=lambda item: item[1][1], reverse=True
        )
    ]
    return ["span", "count", "total_s", "mean_us"], rows


def collect_incidents(records: Iterable[dict]) -> list[dict]:
    """Incident dicts from a mixed JSONL stream, deduplicated per run.

    Three record shapes carry incidents: live ``type == "incident"``
    emits (no clear time yet - they fire at onset), periodic/final
    snapshots with an ``"incidents"`` list, and campaign-merged
    summaries (same key).  Snapshot lists supersede the live records of
    the same run label because they carry clear times; the *last*
    snapshot per label wins, matching :func:`_final_snapshots`.
    """
    live: dict[str, list[dict]] = {}
    snapshot: dict[str, list[dict]] = {}
    for record in records:
        label = str(record.get("label", record.get("run", "run")))
        if record.get("type") == "incident":
            live.setdefault(label, []).append(
                {k: v for k, v in record.items() if k not in ("type", "label")}
            )
        elif isinstance(record.get("incidents"), list):
            snapshot[label] = [dict(inc) for inc in record["incidents"]]
    out: list[dict] = []
    for label in sorted(set(live) | set(snapshot)):
        out.extend(snapshot.get(label, live.get(label, [])))
    return out


def incidents_rows(records: list[dict]) -> tuple[list[str], list[list]]:
    """The health-monitor incident table."""
    incidents = collect_incidents(records)
    incidents.sort(
        key=lambda inc: (
            inc.get("onset_s", 0.0),
            str(inc.get("run", "")),
            str(inc.get("scope", "")),
            str(inc.get("detector", "")),
        )
    )
    rows = []
    for inc in incidents:
        clear = inc.get("clear_s")
        rows.append(
            [
                str(inc.get("run", "-")),
                str(inc.get("detector", "?")),
                str(inc.get("severity", "?")),
                str(inc.get("scope", "?")),
                float(inc.get("onset_s", 0.0)),
                "open" if clear is None else f"{float(clear):,.1f}",
                float(inc.get("value", 0.0)),
            ]
        )
    headers = [
        "run", "detector", "severity", "scope", "onset_s", "clear_s", "value",
    ]
    return headers, rows


def _render(
    headers: list[str],
    rows: list[list],
    fmt: str,
    float_format: str,
    empty: str,
) -> str:
    """Rows as an aligned table or a JSON array of row objects."""
    if fmt == "json":
        return json.dumps(
            [dict(zip(headers, row)) for row in rows], sort_keys=True
        )
    if not rows:
        return empty
    return format_table(headers, rows, float_format=float_format)


def render_runs(records: list[dict], fmt: str = "table") -> str:
    """The default per-run summary table."""
    return _render(*runs_rows(records), fmt, "{:,.1f}", "no runs found")


def render_phases(records: list[dict], fmt: str = "table") -> str:
    """Per-phase breakdown of every run in the input."""
    return _render(
        *phases_rows(records), fmt, "{:,.3f}", "no phase data found"
    )


def render_hists(records: list[dict], fmt: str = "table") -> str:
    """Histogram rows with bucket-estimated p50/p95/p99."""
    headers, rows = hists_rows(records)
    if fmt == "table":
        rows = [
            ["-" if cell is None else cell for cell in row] for row in rows
        ]
    return _render(headers, rows, fmt, "{:,.6g}", "no histograms found")


def render_trace(records: list[dict], fmt: str = "table") -> str:
    """Per-span-name aggregates from a trace JSONL."""
    return _render(*trace_rows(records), fmt, "{:,.3f}", "no spans found")


def render_incidents(records: list[dict], fmt: str = "table") -> str:
    """The health-monitor incident table."""
    return _render(
        *incidents_rows(records), fmt, "{:,.1f}", "no incidents found"
    )


def merge_traces(
    trace_files: list[tuple[str, list[dict]]],
) -> dict[str, Any]:
    """Stitch pid-tagged span traces into one Chrome trace document.

    ``trace_files`` pairs a source name (for fallback lanes) with its
    records.  Spans land on ``pid`` lanes (records missing a ``pid`` -
    pre-PR-10 exports - get a synthetic per-file lane) with ``tid`` set
    to the span's nesting depth; zero-duration spans (incident onsets,
    ``task:`` completion marks) render as thread-scoped instant events.
    One global time origin aligns every file: ``perf_counter`` is a
    system-wide monotonic clock on Linux and Windows, so worker and
    parent readings share an epoch and the campaign timeline is real.
    """
    lanes: list[tuple[int, str, dict]] = []
    for file_index, (source, records) in enumerate(trace_files):
        for record in records:
            if "start_s" not in record or "end_s" not in record:
                raise ObsError(
                    f"{source}: not a span-trace record: {record!r}"
                )
            pid = int(record.get("pid", -(file_index + 1)))
            lanes.append((pid, source, record))
    if not lanes:
        return {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "metadata": {"sources": [name for name, _ in trace_files]},
        }
    t0 = min(float(record["start_s"]) for _, _, record in lanes)
    events: list[dict[str, Any]] = []
    labels_by_pid: dict[int, list[str]] = {}
    for pid, _, record in lanes:
        label = str(record.get("label", ""))
        known = labels_by_pid.setdefault(pid, [])
        if label and label not in known:
            known.append(label)
        start = float(record["start_s"])
        end = float(record["end_s"])
        event: dict[str, Any] = {
            "name": str(record.get("name", "?")),
            "ts": (start - t0) * 1e6,
            "pid": pid,
            "tid": int(record.get("depth", 0)),
            "cat": "repro",
        }
        if start == end:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = (end - start) * 1e6
        events.append(event)
    for pid in sorted(labels_by_pid):
        labels = labels_by_pid[pid]
        name = f"worker {pid}" if pid >= 0 else "trace"
        if labels:
            shown = ", ".join(labels[:3]) + (", ..." if len(labels) > 3 else "")
            name = f"{name} ({shown})"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    events.sort(key=lambda e: (e.get("ph") == "M", e.get("ts", 0.0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "sources": [name for name, _ in trace_files],
            "pids": sorted(labels_by_pid),
        },
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize repro observability JSONL files.",
    )
    parser.add_argument("files", nargs="+", help="metrics or trace JSONL files")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--phases",
        action="store_true",
        help="per-phase breakdown instead of the per-run summary",
    )
    mode.add_argument(
        "--hists",
        action="store_true",
        help="histogram table with bucket-estimated p50/p95/p99",
    )
    mode.add_argument(
        "--trace",
        action="store_true",
        help="treat inputs as span-trace JSONL files",
    )
    mode.add_argument(
        "--incidents",
        action="store_true",
        help="health-monitor incident table instead of the run summary",
    )
    mode.add_argument(
        "--merged-trace",
        action="store_true",
        help="stitch pid-tagged trace JSONL files into one Chrome trace",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format for the table modes (default: table)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        help="write output to a file instead of stdout "
        "(the natural home for --merged-trace documents)",
    )
    args = parser.parse_args(argv)

    try:
        if args.merged_trace:
            trace_files = [
                (path, read_jsonl(path)) for path in args.files
            ]
            output = json.dumps(merge_traces(trace_files))
        else:
            records: list[dict] = []
            for path in args.files:
                records.extend(read_jsonl(path))
            if args.trace:
                output = render_trace(records, args.format)
            elif args.phases:
                output = render_phases(records, args.format)
            elif args.hists:
                output = render_hists(records, args.format)
            elif args.incidents:
                output = render_incidents(records, args.format)
            else:
                output = render_runs(records, args.format)
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        args.out.write_text(output + "\n")
        print(f"wrote {args.out}")
    else:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
