"""Metric sinks: where streaming observability records go.

A sink receives plain-dict records (JSON-friendly: strings, numbers,
nested dicts/lists only) from an :class:`~repro.obs.collector.ObsCollector`
at its configured cadence plus once at run end.  The contract is
deliberately tiny so new transports (sockets, databases, dashboards)
bolt on without touching the collectors:

* ``emit(record)`` - accept one record; must not raise on well-formed
  input and must never mutate the record.
* ``close()`` - flush and release resources; idempotent.

Sinks are resolved from picklable string specs (``"memory"``,
``"stdout"``, ``"jsonl:<path>"``) so campaign tasks can carry their
observability configuration across process-pool boundaries.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, TextIO

from repro.errors import ObsError


class MetricSink:
    """Base class: the two-method sink contract."""

    def emit(self, record: dict[str, Any]) -> None:
        """Accept one streaming record (a plain JSON-friendly dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent; default: nothing)."""


class MemorySink(MetricSink):
    """Collect records in a list (the default; no I/O on the hot path)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)


class JsonlSink(MetricSink):
    """Append records to a JSONL file, one JSON object per line.

    The file opens lazily on the first record (so an enabled-but-silent
    run touches nothing) and appends, so several sequential runs can
    share one file; concurrent writers should use distinct paths (the
    campaign runner keeps workers on in-memory sinks and re-emits
    merged records from the parent for exactly this reason).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = None
        self.n_records = 0

    def emit(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.n_records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class StdoutSink(MetricSink):
    """Print records as JSON lines to stdout (progress for console runs)."""

    def emit(self, record: dict[str, Any]) -> None:
        sys.stdout.write(json.dumps(record, sort_keys=True) + "\n")


class QueueSink(MetricSink):
    """Push records onto a (multiprocessing) queue without ever blocking.

    The campaign streaming lane (:class:`~repro.obs.live.CampaignStream`)
    hands each worker a bounded queue; the worker's collector emits its
    periodic snapshots through this sink.  Backpressure semantics, as
    documented in docs/observability.md:

    * periodic **snapshot** records use ``put_nowait`` - a full queue
      *drops* the record and increments :attr:`dropped` (a slow parent
      must never stall the simulation);
    * the per-task **final** record (pushed by the campaign worker
      itself, not this sink) blocks, because the deterministic merged
      fold needs every final summary exactly once.

    Accepts any object with ``put_nowait``; ``multiprocessing.Manager``
    queue proxies qualify and pickle across pool boundaries.
    """

    def __init__(self, queue: Any) -> None:
        self.queue = queue
        #: Records dropped because the queue was full.
        self.dropped = 0

    def emit(self, record: dict[str, Any]) -> None:
        try:
            self.queue.put_nowait(record)
        except Exception:
            # queue.Full (or a Manager proxy's wrapped equivalent).
            self.dropped += 1


def build_sink(spec: str | MetricSink | None) -> MetricSink:
    """Resolve a sink spec: ``"memory"``, ``"stdout"``, ``"jsonl:<path>"``.

    An existing :class:`MetricSink` instance passes through unchanged;
    ``None`` means the in-memory default.
    """
    if spec is None:
        return MemorySink()
    if isinstance(spec, MetricSink):
        return spec
    if spec == "memory":
        return MemorySink()
    if spec == "stdout":
        return StdoutSink()
    if spec.startswith("jsonl:"):
        path = spec[len("jsonl:") :]
        if not path:
            raise ObsError("jsonl sink spec needs a path: 'jsonl:<path>'")
        return JsonlSink(path)
    raise ObsError(
        f"unknown sink spec {spec!r}; use 'memory', 'stdout', or "
        "'jsonl:<path>'"
    )
